//! Workspace façade crate.
//!
//! Hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`) of the DATE 2003 PLL BIST reproduction.
//! The library surface simply re-exports the member crates so examples
//! and tests can use one import root.

pub use pllbist as bist;
pub use pllbist_analog as analog;
pub use pllbist_digital as digital;
pub use pllbist_numeric as numeric;
pub use pllbist_sim as sim;
