//! The checkpointing contract, pinned bitwise: a sweep that restores a
//! settled lock snapshot per point (or per worker) must produce results
//! **bit-for-bit identical** to one that re-locks from scratch, at every
//! thread count. `PllEngine::restore` is specified bit-exact, and the
//! campaign runner hands each worker pure per-point functions — so the
//! plan's `checkpoint`/`scheduler` knobs may only ever change wall-clock
//! time, never a single mantissa bit.

use pllbist::monitor::{MonitorSettings, TransferFunctionMonitor};
use pllbist_sim::bench_measure::{measure_sweep_points, BenchPoint, BenchSettings};
use pllbist_sim::config::PllConfig;
use pllbist_sim::{CampaignPlan, Scheduler};

fn bench_settings() -> BenchSettings {
    BenchSettings {
        settle_periods: 2.0,
        measure_periods: 2.0,
        samples_per_period: 16,
        ..BenchSettings::default()
    }
}

fn plan(cfg: &PllConfig, threads: usize, checkpoint: bool) -> CampaignPlan {
    let scheduler = if threads <= 1 {
        Scheduler::Serial
    } else {
        Scheduler::WorkStealing { threads }
    };
    CampaignPlan::new(cfg.clone())
        .scheduler(scheduler)
        .checkpoint(checkpoint)
}

/// Raw IEEE-754 bits — `PartialEq` on `f64` would let `-0.0 == 0.0`
/// slide; the checkpoint contract is stronger than numeric equality.
fn bench_bits(points: &[BenchPoint]) -> Vec<[u64; 3]> {
    points
        .iter()
        .map(|p| [p.f_mod_hz.to_bits(), p.gain.to_bits(), p.phase.to_bits()])
        .collect()
}

#[test]
fn bench_sweep_is_bitwise_invariant_to_checkpoint_and_threads() {
    let cfg = PllConfig::paper_table3();
    let tones = [2.0, 5.0, 8.0, 14.0, 20.0, 30.0];
    let settings = bench_settings();
    let baseline = bench_bits(&measure_sweep_points(
        &plan(&cfg, 1, false),
        &tones,
        &settings,
    ));
    for threads in [1, 4] {
        for checkpoint in [false, true] {
            let got = bench_bits(&measure_sweep_points(
                &plan(&cfg, threads, checkpoint),
                &tones,
                &settings,
            ));
            assert_eq!(
                got, baseline,
                "threads = {threads}, checkpoint = {checkpoint}: \
                 bench sweep must be bit-identical to the serial from-scratch run"
            );
        }
    }
}

fn monitor_settings() -> MonitorSettings {
    MonitorSettings {
        mod_frequencies_hz: vec![2.0, 6.0, 10.0, 25.0],
        settle_periods: 2.5,
        loop_settle_secs: 0.25,
        capture_transcript: false,
        ..MonitorSettings::fast()
    }
}

#[test]
fn monitor_sweep_is_bitwise_invariant_to_checkpointing() {
    let cfg = PllConfig::paper_table3();
    for threads in [1usize, 4] {
        let run = |checkpoint: bool| {
            TransferFunctionMonitor::new(monitor_settings())
                .measure(&plan(&cfg, threads, checkpoint))
                .expect_healthy()
        };
        let fresh = run(false);
        let ckpt = run(true);
        assert_eq!(fresh.points.len(), ckpt.points.len());
        for (a, b) in fresh.points.iter().zip(&ckpt.points) {
            let bits = |p: &pllbist::monitor::MonitorPoint| {
                (
                    p.f_mod_hz.to_bits(),
                    p.frequency.frequency_hz.to_bits(),
                    p.frequency.clock_count,
                    p.frequency.gate_cycles,
                    p.delta_f_hz.to_bits(),
                    p.phase.phase_degrees.to_bits(),
                    p.phase.pulse_count,
                    p.t_input_peak.to_bits(),
                    p.t_output_peak.to_bits(),
                    p.peak_found,
                )
            };
            assert_eq!(
                bits(a),
                bits(b),
                "threads = {threads}, f = {}: checkpointed monitor point must be \
                 bit-identical to the from-scratch one",
                a.f_mod_hz
            );
        }
        assert_eq!(
            fresh.nominal.frequency_hz.to_bits(),
            ckpt.nominal.frequency_hz.to_bits()
        );
    }
}
