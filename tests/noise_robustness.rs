//! Robustness of the BIST under edge jitter — a measurement that only
//! works on a noiseless device is not a production test.

use pllbist::monitor::{MonitorSettings, TransferFunctionMonitor};
use pllbist_sim::behavioral::CpPll;
use pllbist_sim::config::PllConfig;
use pllbist_sim::lock::{wait_for_lock, LockDetector};
use pllbist_sim::noise::NoiseConfig;
use pllbist_sim::stimulus::FmStimulus;
use pllbist_sim::{CampaignPlan, Scheduler};
use pllbist_telemetry::TelemetryConfig;

#[test]
fn loop_stays_locked_under_moderate_jitter() {
    let cfg = PllConfig::paper_table3();
    let mut pll = CpPll::new_locked(&cfg);
    // 20 µs RMS on a 1 ms reference period: a noisy but usable source.
    pll.set_noise(Some(NoiseConfig::symmetric(20e-6, 1234)));
    pll.advance_to(1.0);
    let f = pll.average_frequency_hz(0.5);
    assert!((f - 5_000.0).abs() < 5.0, "f = {f}");
}

#[test]
fn lock_detector_needs_a_window_wider_than_the_jitter() {
    let cfg = PllConfig::paper_table3();
    for (rms, window, expect_lock) in [
        (5e-6, 100e-6, true),    // jitter well inside the window
        (200e-6, 100e-6, false), // jitter dominates the window
    ] {
        let mut pll = CpPll::new_locked(&cfg);
        pll.set_noise(Some(NoiseConfig::symmetric(rms, 7)));
        pll.advance_to(0.3);
        let mut det = LockDetector::new(window, 32);
        let locked = wait_for_lock(&mut pll, &mut det, 1.0).is_ok();
        assert_eq!(
            locked, expect_lock,
            "rms {rms}, window {window}: locked = {locked}"
        );
    }
}

#[test]
fn monitor_survives_reference_jitter() {
    // A realistic crystal-reference jitter (1 µs RMS on 1 ms period =
    // 0.1 %) must not move the measured magnitudes materially.
    let cfg = PllConfig::paper_table3();
    let settings = MonitorSettings {
        mod_frequencies_hz: vec![1.0, 8.0, 25.0],
        settle_periods: 2.5,
        loop_settle_secs: 0.25,
        ..MonitorSettings::fast()
    };
    let monitor = TransferFunctionMonitor::new(settings);

    let plan = CampaignPlan::new(cfg.clone()).scheduler(Scheduler::Serial);
    let clean = monitor.measure(&plan).expect_healthy();
    let mut noisy_pll = CpPll::new_locked(&cfg);
    noisy_pll.set_noise(Some(NoiseConfig::symmetric(1e-6, 42)));
    let noisy = monitor.measure_device(&mut noisy_pll, &TelemetryConfig::disabled());

    for (c, n) in clean.points.iter().zip(&noisy.points) {
        let rc = c.delta_f_hz.abs() / clean.points[0].delta_f_hz.abs();
        let rn = n.delta_f_hz.abs() / noisy.points[0].delta_f_hz.abs();
        assert!(
            (rc - rn).abs() / rc.max(0.05) < 0.2,
            "f = {}: clean {rc} vs noisy {rn}",
            c.f_mod_hz
        );
    }
}

#[test]
fn heavy_jitter_degrades_the_phase_reading_gracefully() {
    // 100 µs RMS (10 % of the reference period): the peak detector's flip
    // time wanders, but the measurement still completes and the in-band
    // magnitude survives (the hold+counter averages the noise).
    let cfg = PllConfig::paper_table3();
    let settings = MonitorSettings {
        mod_frequencies_hz: vec![1.0, 8.0],
        settle_periods: 2.5,
        loop_settle_secs: 0.25,
        ..MonitorSettings::fast()
    };
    let monitor = TransferFunctionMonitor::new(settings);
    let mut pll = CpPll::new_locked(&cfg);
    pll.set_noise(Some(NoiseConfig::symmetric(100e-6, 9)));
    let result = monitor.measure_device(&mut pll, &TelemetryConfig::disabled());
    assert_eq!(result.points.len(), 2);
    let in_band = &result.points[0];
    assert!(
        (in_band.delta_f_hz - 50.0).abs() < 12.0,
        "in-band ΔF = {}",
        in_band.delta_f_hz
    );
}

#[test]
fn jittered_runs_are_reproducible_by_seed() {
    let cfg = PllConfig::paper_table3();
    let run = |seed: u64| {
        let mut pll = CpPll::new_locked(&cfg);
        pll.set_noise(Some(NoiseConfig::symmetric(10e-6, seed)));
        pll.set_stimulus(FmStimulus::multi_tone(1_000.0, 10.0, 8.0, 10));
        pll.advance_to(1.0);
        pll.vco_phase_cycles()
    };
    assert_eq!(run(5).to_bits(), run(5).to_bits());
    assert_ne!(run(5).to_bits(), run(6).to_bits());
}
