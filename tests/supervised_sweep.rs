//! Cross-crate contract tests for the supervised campaign pipeline:
//! panic containment at every thread count, bitwise identity of healthy
//! runs (bench sweep and BIST monitor, telemetry on), full quarantine of
//! a numerically sick device, and a seeded property over random fault
//! placements — all phrased as [`CampaignPlan`]s lowered onto the single
//! `run_plan` executor.

use pllbist::monitor::{MonitorSettings, TransferFunctionMonitor};
use pllbist_sim::bench_measure::{run_sweep, BenchSettings};
use pllbist_sim::config::PllConfig;
use pllbist_sim::{
    run_plan, CampaignPlan, ClosedFormPll, NullCodec, PllEngine, Scheduler, SupervisorPolicy,
    SweepPointError,
};
use pllbist_telemetry::TelemetryConfig;
use pllbist_testkit::{prop_assert, prop_assert_eq, prop_check};

/// Runs `f` with panic messages silenced (the supervisor contains the
/// panics these tests seed on purpose; the default hook would spam the
/// test log).
fn quietly<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

fn sched(threads: usize) -> Scheduler {
    if threads <= 1 {
        Scheduler::Serial
    } else {
        Scheduler::WorkStealing { threads }
    }
}

#[test]
fn injected_panic_is_contained_at_every_thread_count() {
    let cfg = PllConfig::paper_table3();
    let tones = [1.0, 4.0, 8.0, 16.0, 32.0];
    let mut runs = Vec::new();
    quietly(|| {
        for threads in [1usize, 4] {
            let plan = CampaignPlan::new(cfg.clone())
                .engine::<ClosedFormPll>()
                .lock_settle(0.1)
                .supervised(SupervisorPolicy::default())
                .scheduler(sched(threads));
            let swept = run_plan(&plan, &tones, NullCodec::<f64>::new(), "panic-test", {
                |pll, fm, _tel| {
                    if fm == 8.0 {
                        panic!("seeded panic at {fm} Hz");
                    }
                    let t = pll.time();
                    pll.advance_to(t + 0.05);
                    Ok(pll.control_voltage())
                }
            })
            .expect("no campaign log in play");
            assert_eq!(swept.points.len(), tones.len(), "threads {threads}");
            for (point, &fm) in swept.points.iter().zip(&tones) {
                match point {
                    Ok(v) => {
                        assert!(fm != 8.0 && v.is_finite(), "threads {threads}, tone {fm}")
                    }
                    Err(SweepPointError::WorkerPanic { message }) => {
                        assert_eq!(fm, 8.0, "threads {threads}");
                        assert!(message.contains("seeded panic"), "{message}");
                    }
                    Err(other) => panic!("threads {threads}: unexpected error {other}"),
                }
            }
            // Panics are never retried: exactly one incident.
            assert_eq!(swept.incidents.len(), 1, "threads {threads}");
            runs.push(swept);
        }
    });
    // Healthy points are bitwise identical across thread counts.
    for (a, b) in runs[0].points.iter().zip(&runs[1].points) {
        if let (Ok(x), Ok(y)) = (a, b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn supervised_bench_sweep_is_bitwise_identical_with_telemetry_on() {
    let cfg = PllConfig::paper_table3();
    let tones = [2.0, 8.0, 20.0];
    let settings = BenchSettings {
        settle_periods: 2.0,
        measure_periods: 2.0,
        ..BenchSettings::default()
    };
    for threads in [1usize, 4] {
        let plan = CampaignPlan::new(cfg.clone())
            .scheduler(sched(threads))
            .telemetry(TelemetryConfig::enabled());
        let legacy = run_sweep(&plan, &tones, &settings).expect("healthy sweep");
        let supervised = run_sweep(
            &plan.clone().supervised(SupervisorPolicy::default()),
            &tones,
            &settings,
        )
        .expect("healthy sweep");
        assert!(supervised.incidents.is_empty(), "threads {threads}");
        assert_eq!(supervised.points.len(), legacy.points.len());
        for (got, want) in supervised.ok_points().iter().zip(&legacy.ok_points()) {
            assert_eq!(got.f_mod_hz, want.f_mod_hz);
            assert_eq!(
                got.gain.to_bits(),
                want.gain.to_bits(),
                "threads {threads}: gain at {} Hz",
                want.f_mod_hz
            );
            assert_eq!(
                got.phase.to_bits(),
                want.phase.to_bits(),
                "threads {threads}: phase at {} Hz",
                want.f_mod_hz
            );
        }
    }
}

#[test]
fn supervised_monitor_is_bitwise_identical_with_telemetry_on() {
    let cfg = PllConfig::paper_table3();
    for threads in [1usize, 4] {
        let settings = MonitorSettings {
            mod_frequencies_hz: vec![1.0, 8.0, 25.0],
            settle_periods: 2.5,
            loop_settle_secs: 0.25,
            capture_transcript: true,
            ..MonitorSettings::fast()
        };
        let plan = CampaignPlan::new(cfg.clone())
            .scheduler(sched(threads))
            .telemetry(TelemetryConfig::enabled());
        let monitor = TransferFunctionMonitor::new(settings);
        let baseline = monitor.measure(&plan).expect_healthy();
        let supervised = monitor.measure(&plan.clone().supervised(SupervisorPolicy::default()));
        assert!(supervised.incidents.is_empty(), "threads {threads}");
        assert_eq!(supervised.nominal, Ok(baseline.nominal));
        for (got, want) in supervised.points.iter().zip(&baseline.points) {
            assert_eq!(got.as_ref().ok(), Some(want), "threads {threads}");
        }
        assert_eq!(
            supervised.transcript, baseline.transcript,
            "threads {threads}"
        );
    }
}

#[test]
fn nan_device_is_fully_quarantined_without_aborting() {
    let mut cfg = PllConfig::paper_table3();
    cfg.vco_curvature = (f64::NAN, 0.0);
    let tones = [2.0, 8.0, 20.0];
    let settings = BenchSettings {
        settle_periods: 2.0,
        measure_periods: 2.0,
        ..BenchSettings::default()
    };
    let plan = CampaignPlan::new(cfg)
        .scheduler(Scheduler::WorkStealing { threads: 2 })
        .supervised(SupervisorPolicy::default());
    let run = quietly(|| run_sweep(&plan, &tones, &settings).expect("quarantine, not abort"));
    assert_eq!(run.points.len(), tones.len());
    assert_eq!(run.quarantined_count(), tones.len());
    assert!(run
        .points
        .iter()
        .all(|p| matches!(p, Err(SweepPointError::NumericalDivergence { .. }))));
    // An all-quarantined sweep is a typed DegenerateFit, not an empty
    // plot a downstream fitter would silently accept.
    assert!(matches!(
        run.to_bode(),
        Err(SweepPointError::DegenerateFit { .. })
    ));
    // Every point exhausted its deterministic retry budget.
    assert_eq!(
        run.incidents.len(),
        tones.len() * (SupervisorPolicy::default().max_retries as usize + 1)
    );
}

#[test]
fn supervised_sweep_always_completes_with_random_fault_placement() {
    let cfg = PllConfig::paper_table3();
    let tones = [1.0, 3.0, 9.0, 27.0];
    quietly(|| {
        prop_check!(cases: 16, |g| {
            // One case flavor injects NaN into the device itself (the
            // behavioral engine's guarded state diverges); the others
            // seed a panic or a typed failure into one capture.
            if g.u32_range(0, 3) == 0 {
                let mut nan_cfg = cfg.clone();
                nan_cfg.vco_curvature = (f64::NAN, 0.0);
                let threads = g.pick(&[1usize, 2, 4]);
                let policy = SupervisorPolicy::default();
                let plan = CampaignPlan::new(nan_cfg)
                    .lock_settle(0.1)
                    .supervised(policy.clone())
                    .scheduler(sched(threads));
                let swept =
                    run_plan(&plan, &tones, NullCodec::<f64>::new(), "prop-nan", |pll, _fm, _| {
                        let t = pll.time();
                        pll.advance_to(t + 0.02);
                        Ok(pll.control_voltage())
                    })
                    .expect("no campaign log in play");
                prop_assert_eq!(swept.points.len(), tones.len());
                prop_assert_eq!(
                    swept.points.iter().filter(|p| p.is_err()).count(),
                    tones.len()
                );
                for point in &swept.points {
                    let kind = point.as_ref().err().map(|e| e.kind());
                    prop_assert_eq!(kind, Some("numerical_divergence"));
                }
                prop_assert_eq!(
                    swept.incidents.len(),
                    tones.len() * (policy.max_retries as usize + 1)
                );
                return Ok(());
            }
            let sick = g.usize_range(0, tones.len() - 1);
            let threads = g.pick(&[1usize, 2, 4]);
            let as_panic = g.bool();
            let policy = SupervisorPolicy::default();
            let plan = CampaignPlan::new(cfg.clone())
                .engine::<ClosedFormPll>()
                .lock_settle(0.1)
                .supervised(policy.clone())
                .scheduler(sched(threads));
            let swept =
                run_plan(&plan, &tones, NullCodec::<f64>::new(), "prop-fault", |pll, fm, _| {
                    if fm == tones[sick] {
                        if as_panic {
                            panic!("seeded panic");
                        }
                        return Err(SweepPointError::DegenerateFit { f_mod_hz: fm });
                    }
                    let t = pll.time();
                    pll.advance_to(t + 0.02);
                    Ok(pll.control_voltage())
                })
                .expect("no campaign log in play");
            prop_assert_eq!(swept.points.len(), tones.len());
            prop_assert_eq!(swept.points.iter().filter(|p| p.is_err()).count(), 1);
            for (point, &fm) in swept.points.iter().zip(&tones) {
                if fm == tones[sick] {
                    prop_assert!(point.is_err());
                    let kind = point.as_ref().err().map(|e| e.kind());
                    if as_panic {
                        prop_assert_eq!(kind, Some("worker_panic"));
                    } else {
                        prop_assert_eq!(kind, Some("degenerate_fit"));
                    }
                } else {
                    prop_assert!(point.is_ok());
                }
            }
            // Retryable faults burn the retry budget; panics never retry.
            let want_incidents = if as_panic {
                1
            } else {
                policy.max_retries as usize + 1
            };
            prop_assert_eq!(swept.incidents.len(), want_incidents);
            Ok(())
        });
    });
}
