//! End-to-end integration: the full BIST measurement chain against the
//! analytic models, across stimulus classes — the substance of the
//! paper's figs. 11 and 12.

use pllbist::monitor::{MonitorSettings, StimulusKind, TransferFunctionMonitor};
use pllbist_sim::config::PllConfig;
use pllbist_sim::{CampaignPlan, Scheduler};
use std::f64::consts::TAU;

fn serial_plan(cfg: &PllConfig) -> CampaignPlan {
    CampaignPlan::new(cfg.clone()).scheduler(Scheduler::Serial)
}

fn settings_with(stimulus: StimulusKind) -> MonitorSettings {
    MonitorSettings {
        stimulus,
        mod_frequencies_hz: vec![1.0, 5.0, 8.0, 14.0, 30.0],
        settle_periods: 3.0,
        loop_settle_secs: 0.3,
        ..MonitorSettings::fast()
    }
}

fn measured_magnitudes(stimulus: StimulusKind) -> Vec<(f64, f64)> {
    let cfg = PllConfig::paper_table3();
    let result = TransferFunctionMonitor::new(settings_with(stimulus))
        .measure(&serial_plan(&cfg))
        .expect_healthy();
    let reference = result.points[0].delta_f_hz.abs();
    result
        .points
        .iter()
        .map(|p| (p.f_mod_hz, p.delta_f_hz.abs() / reference))
        .collect()
}

#[test]
fn multi_tone_sweep_tracks_hold_referred_model() {
    let cfg = PllConfig::paper_table3();
    let h = cfg.analysis().hold_referred_transfer();
    let h_ref = h.magnitude(TAU * 1.0);
    for (f, got) in measured_magnitudes(StimulusKind::MultiTone { steps: 10 }) {
        let want = h.magnitude(TAU * f) / h_ref;
        assert!(
            (got - want).abs() / want < 0.2,
            "f = {f}: measured {got}, model {want}"
        );
    }
}

#[test]
fn pure_sine_and_ten_step_fsk_agree() {
    // The paper's central fig. 11 finding: "the ideal sinusoidal FM plot
    // closely corresponds to the ten-step FS plot".
    let sine = measured_magnitudes(StimulusKind::PureSine);
    let fsk = measured_magnitudes(StimulusKind::MultiTone { steps: 10 });
    for ((f, a), (_, b)) in sine.iter().zip(&fsk) {
        assert!(
            (a - b).abs() / a.max(0.05) < 0.15,
            "f = {f}: sine {a} vs 10-step {b}"
        );
    }
}

#[test]
fn two_tone_deviates_more_than_multi_tone() {
    // Fig. 11's comparison trace: the two-tone (square) FSK departs from
    // the sine response where the multi-tone does not. The square wave
    // carries only 4/π·sinc-weighted fundamental plus strong odd
    // harmonics, which bias the peak capture around the resonance.
    let sine = measured_magnitudes(StimulusKind::PureSine);
    let fsk10 = measured_magnitudes(StimulusKind::MultiTone { steps: 10 });
    let fsk2 = measured_magnitudes(StimulusKind::TwoTone);
    let err = |a: &[(f64, f64)], b: &[(f64, f64)]| -> f64 {
        a.iter()
            .zip(b)
            .map(|((_, x), (_, y))| ((x - y) / x.max(0.05)).abs())
            .sum::<f64>()
    };
    let err10 = err(&sine, &fsk10);
    let err2 = err(&sine, &fsk2);
    assert!(
        err2 > 1.5 * err10,
        "two-tone total deviation {err2} should exceed ten-step {err10}"
    );
}

#[test]
fn quantized_dco_matches_ideal_multi_tone() {
    // The real DCO tone grid (1 Hz resolution at the paper's operating
    // point) barely perturbs the measurement.
    let ideal = measured_magnitudes(StimulusKind::MultiTone { steps: 10 });
    let quant = measured_magnitudes(StimulusKind::QuantizedDco {
        steps: 10,
        f_master_hz: 1e6,
    });
    for ((f, a), (_, b)) in ideal.iter().zip(&quant) {
        assert!(
            (a - b).abs() / a.max(0.05) < 0.12,
            "f = {f}: ideal {a} vs quantised {b}"
        );
    }
}

#[test]
fn measured_phase_response_is_monotone_lag() {
    // Fig. 12's shape: lag grows monotonically from ~0° through −90° at
    // fn towards −180°.
    let cfg = PllConfig::paper_table3();
    let result = TransferFunctionMonitor::new(settings_with(StimulusKind::MultiTone { steps: 10 }))
        .measure(&serial_plan(&cfg))
        .expect_healthy();
    let phases: Vec<f64> = result
        .points
        .iter()
        .map(|p| p.phase.phase_degrees)
        .collect();
    assert!(
        phases.windows(2).all(|w| w[1] <= w[0] + 8.0),
        "phases not monotone: {phases:?}"
    );
    assert!(phases[0] > -30.0, "in-band lag small: {}", phases[0]);
    let last = *phases.last().unwrap();
    assert!(last < -150.0, "out-of-band approaches −180°: {last}");
    // At fn = 8 Hz the hold-readout is close to −90°.
    let at_fn = result
        .points
        .iter()
        .find(|p| (p.f_mod_hz - 8.0).abs() < 0.5)
        .unwrap();
    assert!(
        (-115.0..=-65.0).contains(&at_fn.phase.phase_degrees),
        "phase at fn: {}",
        at_fn.phase.phase_degrees
    );
}

#[test]
fn estimates_recover_design_parameters() {
    let cfg = PllConfig::paper_table3();
    let mut settings = settings_with(StimulusKind::MultiTone { steps: 10 });
    settings.mod_frequencies_hz = pllbist_sim::bench_measure::log_spaced(1.0, 40.0, 11);
    let result = TransferFunctionMonitor::new(settings)
        .measure(&serial_plan(&cfg))
        .expect_healthy();
    let est = result.estimate();
    let fn_hz = est.natural_frequency_hz.expect("resonance found");
    let zeta = est.damping.expect("damping extracted");
    assert!((fn_hz - 8.0).abs() < 1.2, "fn = {fn_hz}");
    assert!((zeta - 0.43).abs() < 0.08, "ζ = {zeta}");
}
