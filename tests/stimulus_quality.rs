//! Spectral quality of the DCO stimulus and the PM/FM equivalence —
//! quantifying the paper's §2/§3 arguments with the workspace's own DSP.

use pllbist_numeric::fft::amplitude_spectrum;
use pllbist_numeric::goertzel::goertzel;
use pllbist_sim::behavioral::CpPll;
use pllbist_sim::config::PllConfig;
use pllbist_sim::stimulus::FmStimulus;
use std::f64::consts::TAU;

/// Samples a stimulus's deviation waveform over whole periods.
fn sample_deviation(stim: &FmStimulus, n: usize, periods: u32) -> (Vec<f64>, f64) {
    let fs = n as f64 * stim.f_mod_hz() / periods as f64;
    let sig = (0..n).map(|k| stim.deviation_at(k as f64 / fs)).collect();
    (sig, fs)
}

#[test]
fn multi_tone_staircase_harmonics_sit_at_k_steps_plus_minus_one() {
    // A midpoint-sampled 10-step staircase of a sine has its first
    // spurious lines at the 9th and 11th harmonics (images of the
    // sampling process), each ~1/9 and ~1/11 of the fundamental — which
    // is why the PLL's low-pass (fn ≈ f_mod here) strips them: the
    // paper's "excellent approximation" argument, in numbers.
    let steps = 10usize;
    let stim = FmStimulus::multi_tone(1_000.0, 10.0, 8.0, steps);
    let (sig, fs) = sample_deviation(&stim, 1 << 12, 8);
    let spec = amplitude_spectrum(&sig, fs);
    let bin_of = |f: f64| (f / (fs / (1 << 12) as f64)).round() as usize;

    let fundamental = spec[bin_of(8.0)].1;
    assert!(
        (fundamental - 10.0 * 0.983).abs() < 0.2,
        "sinc-weighted fundamental"
    );
    // Low harmonics (2..=8) are absent.
    for h in 2..=8 {
        let a = spec[bin_of(8.0 * h as f64)].1;
        assert!(a < 0.05 * fundamental, "harmonic {h}: {a}");
    }
    // Image harmonics at steps∓1 carry ~1/(steps∓1) of the fundamental.
    let h9 = spec[bin_of(8.0 * 9.0)].1;
    let h11 = spec[bin_of(8.0 * 11.0)].1;
    assert!(
        (h9 / fundamental - 1.0 / 9.0).abs() < 0.03,
        "9th: {}",
        h9 / fundamental
    );
    assert!(
        (h11 / fundamental - 1.0 / 11.0).abs() < 0.03,
        "11th: {}",
        h11 / fundamental
    );
}

#[test]
fn two_tone_square_has_strong_odd_harmonics() {
    let stim = FmStimulus::two_tone(1_000.0, 10.0, 8.0);
    let (sig, fs) = sample_deviation(&stim, 1 << 12, 8);
    let spec = amplitude_spectrum(&sig, fs);
    let bin_of = |f: f64| (f / (fs / (1 << 12) as f64)).round() as usize;
    let f1 = spec[bin_of(8.0)].1;
    let f3 = spec[bin_of(24.0)].1;
    // Square wave: fundamental 4Δ/π, 3rd harmonic a full third of it.
    assert!(
        (f1 - 4.0 * 10.0 / std::f64::consts::PI).abs() < 0.3,
        "f1 {f1}"
    );
    assert!((f3 / f1 - 1.0 / 3.0).abs() < 0.02, "f3/f1 {}", f3 / f1);
}

#[test]
fn loop_strips_the_staircase_images() {
    // Drive the closed loop with the 10-step staircase and check the
    // output deviation's 9th-harmonic content is attenuated by the loop's
    // roll-off relative to the stimulus's own 1/9 line.
    let cfg = PllConfig::paper_table3();
    let f_mod = 4.0;
    let mut pll = CpPll::new_locked(&cfg);
    pll.set_stimulus(FmStimulus::multi_tone(1_000.0, 10.0, f_mod, 10));
    pll.advance_to(1.5);
    // Whole-reference-period boxcar samples of output frequency.
    pll.enable_sampling(1.0 / cfg.f_ref_hz);
    pll.advance_to(1.5 + 4.0 / f_mod);
    let samples = pll.take_samples();
    let traj: Vec<(f64, f64)> = samples
        .windows(2)
        .map(|w| {
            (
                0.5 * (w[0].t + w[1].t),
                (w[1].phase_cycles - w[0].phase_cycles) / (w[1].t - w[0].t) - 5_000.0,
            )
        })
        .collect();
    let fs = 1.0 / (traj[1].0 - traj[0].0);
    let sig: Vec<f64> = traj.iter().map(|p| p.1).collect();
    let fund = goertzel(&sig, fs, f_mod).magnitude();
    let image = goertzel(&sig, fs, 9.0 * f_mod).magnitude();
    // Stimulus image ratio is 1/9 ≈ 0.111; the loop (|H| at 36 Hz vs
    // 4 Hz ≈ 0.05/1.0) must push it well below that.
    assert!(fund > 30.0, "fundamental tracked: {fund}");
    assert!(
        image / fund < 0.05,
        "image suppressed by the loop: {}",
        image / fund
    );
}

#[test]
fn pm_drives_the_loop_identically_to_equivalent_fm() {
    // Paper §2: "it is possible to replace phase modulation by frequency
    // modulation" — the closed-loop output deviation amplitude must agree.
    let cfg = PllConfig::paper_table3();
    let f_mod = 3.0;
    let amp_cycles = 10.0 / (TAU * f_mod); // ⇒ 10 Hz peak deviation
    let measure = |stim: FmStimulus| -> f64 {
        let mut pll = CpPll::new_locked(&cfg);
        pll.set_stimulus(stim);
        pll.advance_to(2.0);
        pll.enable_sampling(1.0 / cfg.f_ref_hz);
        pll.advance_to(2.0 + 3.0 / f_mod);
        let samples = pll.take_samples();
        let sig: Vec<f64> = samples
            .windows(2)
            .map(|w| (w[1].phase_cycles - w[0].phase_cycles) / (w[1].t - w[0].t) - 5_000.0)
            .collect();
        goertzel(&sig, cfg.f_ref_hz, f_mod).magnitude()
    };
    let via_fm = measure(FmStimulus::pure_sine(1_000.0, 10.0, f_mod));
    let via_pm = measure(FmStimulus::phase_modulated(1_000.0, amp_cycles, f_mod));
    assert!(
        (via_fm - via_pm).abs() / via_fm < 0.03,
        "FM {via_fm} vs PM {via_pm}"
    );
}
