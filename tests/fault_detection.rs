//! Fault-detection integration: transfer-function monitoring flags
//! parametric circuit defects (the paper's §1 motivation and our abl05
//! ablation in test form).

use pllbist::estimate::LimitComparator;
use pllbist::monitor::{MonitorSettings, TransferFunctionMonitor};
use pllbist_analog::fault::Fault;
use pllbist_sim::config::PllConfig;
use pllbist_sim::{CampaignPlan, Scheduler};

fn serial_plan(cfg: &PllConfig) -> CampaignPlan {
    CampaignPlan::new(cfg.clone()).scheduler(Scheduler::Serial)
}

fn monitor() -> TransferFunctionMonitor {
    TransferFunctionMonitor::new(MonitorSettings {
        mod_frequencies_hz: vec![1.0, 5.0, 8.0, 12.0, 25.0],
        settle_periods: 3.0,
        loop_settle_secs: 0.3,
        ..MonitorSettings::fast()
    })
}

fn golden_limits() -> LimitComparator {
    // Calibrated on the golden device's measured values so the method's
    // own bias does not consume the guard band.
    let est = monitor()
        .measure(&serial_plan(&PllConfig::paper_table3()))
        .expect_healthy()
        .estimate();
    LimitComparator::around(
        est.natural_frequency_hz.expect("golden fn"),
        est.damping.expect("golden ζ"),
        0.2,
    )
}

#[test]
fn golden_device_passes() {
    let limits = golden_limits();
    let est = monitor()
        .measure(&serial_plan(&PllConfig::paper_table3()))
        .expect_healthy()
        .estimate();
    let verdict = limits.judge(&est);
    assert!(verdict.pass, "{verdict}");
}

#[test]
fn gross_vco_gain_fault_fails() {
    // −50 % VCO gain moves ωn by 1/√2 — far outside ±20 %.
    let cfg = PllConfig::paper_table3()
        .with_fault(Fault::VcoGainScale(0.5))
        .unwrap();
    let est = monitor()
        .measure(&serial_plan(&cfg))
        .expect_healthy()
        .estimate();
    let verdict = golden_limits().judge(&est);
    assert!(!verdict.pass, "fault escaped: {est:?}");
}

#[test]
fn filter_capacitor_fault_fails() {
    let cfg = PllConfig::paper_table3()
        .with_fault(Fault::FilterCapScale(3.0))
        .unwrap();
    let est = monitor()
        .measure(&serial_plan(&cfg))
        .expect_healthy()
        .estimate();
    let verdict = golden_limits().judge(&est);
    assert!(!verdict.pass, "fault escaped: {est:?}");
}

#[test]
fn weakened_zero_fault_shifts_damping() {
    // R2 × 0.1 starves the stabilising zero: ζ collapses, peaking grows.
    let cfg = PllConfig::paper_table3()
        .with_fault(Fault::FilterR2Scale(0.1))
        .unwrap();
    let golden = monitor()
        .measure(&serial_plan(&PllConfig::paper_table3()))
        .expect_healthy()
        .estimate();
    let faulty = monitor()
        .measure(&serial_plan(&cfg))
        .expect_healthy()
        .estimate();
    let (zg, zf) = (golden.damping.unwrap(), faulty.damping.unwrap());
    assert!(zf < 0.6 * zg, "golden ζ {zg}, faulty ζ {zf}");
}

#[test]
fn leakage_fault_detected_through_hold_droop() {
    // A leaky control node makes the held frequency sag during the count
    // window — the measured deviations become inconsistent and the
    // parameters move out of band.
    let cfg = PllConfig::paper_table3()
        .with_fault(Fault::FilterLeakage(1e6))
        .unwrap();
    let golden = monitor()
        .measure(&serial_plan(&PllConfig::paper_table3()))
        .expect_healthy()
        .estimate();
    let faulty = monitor()
        .measure(&serial_plan(&cfg))
        .expect_healthy()
        .estimate();
    let fg = golden.natural_frequency_hz.unwrap();
    // Either the estimate moves or vanishes — both flag the part.
    match faulty.natural_frequency_hz {
        None => {}
        Some(ff) => assert!(
            (ff - fg).abs() / fg > 0.1 || faulty.damping.is_none(),
            "leakage escaped: golden {fg}, faulty {ff} ({faulty:?})"
        ),
    }
}

#[test]
fn campaign_detection_rate_is_high() {
    let limits = golden_limits();
    let mon = monitor();
    let mut detected = 0usize;
    let mut total = 0usize;
    for fault in Fault::standard_campaign() {
        // Skip faults that don't wire into the voltage-driven paper loop
        // (e.g. current-pump mismatch).
        let Ok(cfg) = PllConfig::paper_table3().with_fault(fault) else {
            continue;
        };
        let est = mon.measure(&serial_plan(&cfg)).expect_healthy().estimate();
        total += 1;
        if !limits.judge(&est).pass {
            detected += 1;
        }
    }
    // The marginal severities may escape a ±20 % band; the campaign as a
    // whole must still be caught at a high rate.
    assert!(
        detected * 10 >= total * 6,
        "only {detected}/{total} faults detected"
    );
}
