//! The hold mechanism (paper §4 point 3, Table 2 stage 3) and the
//! counter error budget — abl03's subject matter as integration tests.

use pllbist::counter::{FrequencyCounter, PhaseCounter};
use pllbist::monitor::{CaptureMode, MonitorSettings, TransferFunctionMonitor};
use pllbist_sim::behavioral::CpPll;
use pllbist_sim::config::PllConfig;
use pllbist_sim::stimulus::FmStimulus;
use pllbist_sim::{CampaignPlan, Scheduler};

fn serial_plan(cfg: &PllConfig) -> CampaignPlan {
    CampaignPlan::new(cfg.clone()).scheduler(Scheduler::Serial)
}

#[test]
fn hold_keeps_frequency_constant_for_arbitrarily_long_gates() {
    let cfg = PllConfig::paper_table3();
    let mut pll = CpPll::new_locked(&cfg);
    pll.set_stimulus(FmStimulus::pure_sine(1_000.0, 10.0, 4.0));
    pll.advance_to(1.2);
    pll.set_hold(true);
    let f0 = pll.vco_frequency_hz();
    // 10 s of hold: a gate this long would be absurd live, trivial held.
    let f_avg = pll.average_frequency_hz(10.0);
    assert!((f_avg - f0).abs() < 1e-6, "held: {f0} vs {f_avg}");
}

#[test]
fn longer_gates_buy_resolution_only_when_held() {
    let cfg = PllConfig::paper_table3();
    // Held: resolution improves linearly with gate length.
    let short = FrequencyCounter::new(1e6, 20);
    let long = FrequencyCounter::new(1e6, 2000);
    let mut pll = CpPll::new_locked(&cfg);
    pll.advance_to(0.5);
    pll.set_hold(true);
    let r_short = short.measure(&mut pll, false);
    let r_long = long.measure(&mut pll, false);
    assert!(r_long.resolution_hz < r_short.resolution_hz / 50.0);
    assert!(
        (r_long.frequency_hz - r_short.frequency_hz).abs()
            < r_short.resolution_hz + r_long.resolution_hz
    );
}

#[test]
fn unheld_long_gate_averages_the_peak_away() {
    // Without hold, a gate long relative to the modulation period reads
    // the cycle average, not the peak — the problem the paper's hold
    // technique exists to solve.
    let cfg = PllConfig::paper_table3();
    let f_mod = 4.0;
    let mut pll = CpPll::new_locked(&cfg);
    pll.set_stimulus(FmStimulus::pure_sine(1_000.0, 10.0, f_mod));
    pll.advance_to(2.0);
    // Gate spanning two whole modulation periods.
    let f_avg = pll.average_frequency_hz(2.0 / f_mod);
    // The in-band peak is ~5050 Hz; the full-period average is ~5000.
    assert!(
        (f_avg - 5_000.0).abs() < 5.0,
        "long unheld gate reads the average: {f_avg}"
    );
}

#[test]
fn hold_mode_beats_gated_mode_on_resolution() {
    // abl03: same sweep, two capture modes; the hold mode's counter
    // resolution is decisively better because its gate is unconstrained.
    let cfg = PllConfig::paper_table3();
    let base = MonitorSettings {
        mod_frequencies_hz: vec![1.0, 8.0, 25.0],
        settle_periods: 2.5,
        loop_settle_secs: 0.25,
        ..MonitorSettings::fast()
    };
    let hold = TransferFunctionMonitor::new(MonitorSettings {
        capture: CaptureMode::HoldAndCount,
        ..base.clone()
    })
    .measure(&serial_plan(&cfg))
    .expect_healthy();
    let gated = TransferFunctionMonitor::new(MonitorSettings {
        capture: CaptureMode::GatedCount {
            gate_fraction: 0.05,
        },
        ..base
    })
    .measure(&serial_plan(&cfg))
    .expect_healthy();
    // The gated counter's window shrinks with the modulation period, so
    // its resolution degrades towards fast tones; the held counter's gate
    // is unconstrained and its resolution stays flat.
    let g_res: Vec<f64> = gated
        .points
        .iter()
        .map(|p| p.frequency.resolution_hz)
        .collect();
    let h_res: Vec<f64> = hold
        .points
        .iter()
        .map(|p| p.frequency.resolution_hz)
        .collect();
    assert!(
        g_res.last().unwrap() > &(5.0 * g_res[0]),
        "gated resolution degrades with f_mod: {g_res:?}"
    );
    assert!(
        h_res.last().unwrap() < &(2.0 * h_res[0]),
        "held resolution is flat: {h_res:?}"
    );
    // At the fastest tone — where the peak is narrow and the resolution
    // matters most — the hold mode wins decisively.
    assert!(
        h_res.last().unwrap() * 3.0 < *g_res.last().unwrap(),
        "hold {h_res:?} vs gated {g_res:?}"
    );
}

#[test]
fn phase_counter_resolution_scales_with_test_clock() {
    let fast = PhaseCounter::new(1e6).reading(0.0, 0.016, 0.125);
    let slow = PhaseCounter::new(1e4).reading(0.0, 0.016, 0.125);
    assert!(fast.resolution_degrees < slow.resolution_degrees / 50.0);
    // Both agree within the coarser resolution.
    assert!((fast.phase_degrees - slow.phase_degrees).abs() <= slow.resolution_degrees + 1e-9);
}

#[test]
fn leakage_makes_the_hold_droop_visibly() {
    use pllbist_analog::fault::Fault;
    let healthy = PllConfig::paper_table3();
    let leaky = healthy.with_fault(Fault::FilterLeakage(2e6)).unwrap();
    for (cfg, droops) in [(&healthy, false), (&leaky, true)] {
        let mut pll = CpPll::new_locked(cfg);
        pll.advance_to(0.5);
        pll.set_hold(true);
        let f0 = pll.vco_frequency_hz();
        pll.advance_to(1.5);
        let f1 = pll.vco_frequency_hz();
        if droops {
            assert!(f0 - f1 > 100.0, "leaky hold must droop: {f0} → {f1}");
        } else {
            assert!((f0 - f1).abs() < 1e-6, "healthy hold is exact: {f0} → {f1}");
        }
    }
}
