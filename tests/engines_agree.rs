//! Cross-engine validation: the behavioural fast path, the gate-level
//! co-simulation and the analogue-access bench baseline must tell the
//! same story (ablations abl02 / abl06 in test form).

use pllbist::monitor::{MonitorSettings, TransferFunctionMonitor};
use pllbist_sim::behavioral::CpPll;
use pllbist_sim::bench_measure::{measure_point, BenchSettings};
use pllbist_sim::config::PllConfig;
use pllbist_sim::cosim::MixedSignalPll;
use pllbist_sim::engine::ClosedFormPll;
use pllbist_sim::event_driven::EventDrivenCpPll;
use pllbist_sim::{CampaignPlan, Scheduler};
use std::f64::consts::TAU;

#[test]
fn behavioral_and_gate_level_track_each_other() {
    let cfg = PllConfig::paper_table3();
    let mut beh = CpPll::new_locked(&cfg);
    let mut gate = MixedSignalPll::with_clock_reference(&cfg);
    for k in 1..=4 {
        let t = k as f64 * 0.1;
        beh.advance_to(t);
        gate.advance_to(t);
        let pb = beh.vco_phase_cycles();
        let pg = gate.vco_phase_cycles();
        assert!(
            (pb - pg).abs() < 5.0,
            "t = {t}: behavioral {pb} vs gate {pg} cycles"
        );
    }
}

#[test]
fn bist_monitor_agrees_across_backends() {
    // The tentpole check: the *same* Table 2 BIST sequence — stimulus,
    // peak detector, hold, counters — runs unchanged against the
    // behavioural engine and the gate-level co-simulation via
    // `PllEngine`, and both backends report the same transfer function.
    let cfg = PllConfig::paper_table3();
    let settings = MonitorSettings {
        mod_frequencies_hz: vec![2.0, 8.0, 20.0],
        settle_periods: 3.0,
        loop_settle_secs: 0.3,
        capture_transcript: false,
        ..MonitorSettings::fast()
    };
    let monitor = TransferFunctionMonitor::new(settings);
    let serial = CampaignPlan::new(cfg.clone()).scheduler(Scheduler::Serial);
    let beh = monitor.measure(&serial).expect_healthy();
    let gate = monitor
        .measure(&serial.clone().engine::<MixedSignalPll>())
        .expect_healthy();

    assert!(
        (beh.nominal.frequency_hz - gate.nominal.frequency_hz).abs() < 5.0,
        "nominal: behavioral {} vs gate {}",
        beh.nominal.frequency_hz,
        gate.nominal.frequency_hz
    );
    let bb = beh.to_bode();
    let gb = gate.to_bode();
    for (pb, pg) in bb.points().iter().zip(gb.points()) {
        assert!(
            (pb.magnitude - pg.magnitude).abs() / pb.magnitude.max(1e-9) < 0.25,
            "ω = {}: |H| behavioral {} vs gate {}",
            pb.omega,
            pb.magnitude,
            pg.magnitude
        );
        assert!(
            (pb.phase - pg.phase).abs() < 20f64.to_radians(),
            "ω = {}: phase behavioral {}° vs gate {}°",
            pb.omega,
            pb.phase.to_degrees(),
            pg.phase.to_degrees()
        );
    }
}

#[test]
fn bist_monitor_agrees_on_the_event_driven_backend() {
    // The same Table 2 sequence on the per-event closed-form engine must
    // land on the same Bode curve as the micro-stepped engine — the
    // event engine is a faster path through identical physics, not a
    // different model. The two simulation backends share every quantised
    // readout (counters, peak detector, hold), so the monitor curves
    // agree far tighter than either agrees with the gate-level backend
    // in `bist_monitor_agrees_across_backends`.
    let cfg = PllConfig::paper_table3();
    let settings = MonitorSettings {
        mod_frequencies_hz: vec![2.0, 8.0, 20.0],
        settle_periods: 3.0,
        loop_settle_secs: 0.3,
        capture_transcript: false,
        ..MonitorSettings::fast()
    };
    let monitor = TransferFunctionMonitor::new(settings);
    let serial = CampaignPlan::new(cfg.clone()).scheduler(Scheduler::Serial);
    let ev = monitor
        .measure(&serial.clone().engine::<EventDrivenCpPll>())
        .expect_healthy();
    let beh = monitor.measure(&serial).expect_healthy();
    let closed = monitor
        .measure(&serial.clone().engine::<ClosedFormPll>())
        .expect_healthy();

    assert!(
        (ev.nominal.frequency_hz - beh.nominal.frequency_hz).abs() < 5.0,
        "nominal: event {} vs behavioral {}",
        ev.nominal.frequency_hz,
        beh.nominal.frequency_hz
    );
    // The closed-form adapter synthesises its edges from the analytic
    // steady state, so nominal-frequency readouts still line up.
    assert!(
        (ev.nominal.frequency_hz - closed.nominal.frequency_hz).abs() < 5.0,
        "nominal: event {} vs closed form {}",
        ev.nominal.frequency_hz,
        closed.nominal.frequency_hz
    );
    let eb = ev.to_bode();
    let bb = beh.to_bode();
    for (pe, pb) in eb.points().iter().zip(bb.points()) {
        assert!(
            (pe.magnitude - pb.magnitude).abs() / pe.magnitude.max(1e-9) < 0.05,
            "ω = {}: |H| event {} vs behavioral {}",
            pe.omega,
            pe.magnitude,
            pb.magnitude
        );
        assert!(
            (pe.phase - pb.phase).abs() < 5f64.to_radians(),
            "ω = {}: phase event {}° vs behavioral {}°",
            pe.omega,
            pe.phase.to_degrees(),
            pb.phase.to_degrees()
        );
    }
}

#[test]
fn event_driven_bench_matches_the_closed_form_model() {
    // Agreement with the closed form where it is actually comparable:
    // the fig. 3 bench measurement (sine fit on the analogue node) reads
    // the *full* feedback response, exactly the curve the `ClosedFormPll`
    // adapter plays back analytically. The event-driven backend must fit
    // that model as tightly as the behavioural engine does in
    // `bench_baseline_matches_full_linear_model`.
    use pllbist_sim::bench_measure::measure_point_with_stats;
    use pllbist_sim::event_driven::EventDrivenCpPll;
    let cfg = PllConfig::paper_table3();
    let h = cfg.analysis().feedback_transfer();
    let settings = BenchSettings {
        settle_periods: 3.0,
        measure_periods: 3.0,
        ..BenchSettings::default()
    };
    for fm in [2.0, 8.0, 20.0] {
        let (p, _stats) =
            measure_point_with_stats::<EventDrivenCpPll>(&cfg, fm, &settings).expect("bench point");
        let want = h.eval_jw(TAU * fm);
        assert!(
            (p.gain - want.abs()).abs() / want.abs() < 0.1,
            "f = {fm}: event bench {}, closed form {}",
            p.gain,
            want.abs()
        );
        assert!(
            (p.phase - want.arg()).abs() < 0.2,
            "f = {fm}: event bench phase {}, closed form {}",
            p.phase,
            want.arg()
        );
    }
}

#[test]
fn bench_baseline_matches_full_linear_model() {
    // The fig. 3 bench method has analogue access, so it sees the *full*
    // response (zero included) — unlike the hold-based BIST.
    let cfg = PllConfig::paper_table3();
    let h = cfg.analysis().feedback_transfer();
    let settings = BenchSettings {
        settle_periods: 3.0,
        measure_periods: 3.0,
        ..BenchSettings::default()
    };
    for fm in [2.0, 8.0, 20.0] {
        let p = measure_point::<CpPll>(&cfg, fm, &settings).expect("bench point");
        let want = h.eval_jw(TAU * fm);
        assert!(
            (p.gain - want.abs()).abs() / want.abs() < 0.1,
            "f = {fm}: bench {}, model {}",
            p.gain,
            want.abs()
        );
        assert!(
            (p.phase - want.arg()).abs() < 0.2,
            "f = {fm}: bench phase {}, model {}",
            p.phase,
            want.arg()
        );
    }
}

#[test]
fn bench_and_bist_differ_exactly_by_the_hold_readout() {
    // abl06 in miniature: at a frequency past the zero, the bench (full
    // response) and the BIST (hold-referred) disagree by the |1 + jωτ2|
    // factor — both are right about what they measure.
    let cfg = PllConfig::paper_table3();
    let a = cfg.analysis();
    let fm = 25.0;
    let w = TAU * fm;
    let full = a.feedback_transfer().magnitude(w);
    let hold = a.hold_referred_transfer().magnitude(w);
    assert!(full / hold > 2.0, "zero factor visible: {full} vs {hold}");

    let bench = measure_point::<CpPll>(
        &cfg,
        fm,
        &BenchSettings {
            settle_periods: 3.0,
            measure_periods: 3.0,
            ..BenchSettings::default()
        },
    )
    .expect("bench point");
    assert!(
        (bench.gain - full).abs() / full < 0.12,
        "bench follows the full response: {} vs {full}",
        bench.gain
    );
}

#[test]
fn gate_level_pfd_matches_behavioral_pfd_statistics() {
    use pllbist_analog::pfd::{BehavioralPfd, PfdOutput};
    use pllbist_digital::kernel::Circuit;
    use pllbist_digital::logic::Logic;
    use pllbist_digital::time::SimTime;
    use pllbist_sim::cosim::build_gate_pfd;

    // Drive both PFDs with the same deterministic edge pattern and
    // compare UP-time accounting.
    let skews_us: Vec<i64> = (0..40).map(|k| ((k * 37) % 21) as i64 - 10).collect();

    // Gate level.
    let mut c = Circuit::new();
    let r = c.input("r", Logic::Low);
    let f = c.input("f", Logic::Low);
    let (up, dn) = build_gate_pfd(&mut c, r, f, SimTime::from_nanos(2));
    c.trace_net(up);
    c.trace_net(dn);
    let mut t = SimTime::from_micros(50);
    for &sk in &skews_us {
        let (tr, tf) = if sk >= 0 {
            (t, t + SimTime::from_micros(sk as u64))
        } else {
            (t + SimTime::from_micros((-sk) as u64), t)
        };
        c.poke(r, Logic::High, tr);
        c.poke(r, Logic::Low, tr + SimTime::from_micros(20));
        c.poke(f, Logic::High, tf);
        c.poke(f, Logic::Low, tf + SimTime::from_micros(20));
        t += SimTime::from_micros(100);
    }
    c.run_until(t);
    let up_gate = c.trace().total_high_time(up).as_secs_f64();

    // Behavioural.
    let mut pfd = BehavioralPfd::new();
    let mut up_beh = 0.0;
    for (k, &sk) in skews_us.iter().enumerate() {
        let t0 = 50e-6 + k as f64 * 100e-6;
        if sk >= 0 {
            pfd.on_reference_edge(t0);
            pfd.on_feedback_edge(t0 + sk as f64 * 1e-6);
        } else {
            pfd.on_feedback_edge(t0);
            pfd.on_reference_edge(t0 + (-sk) as f64 * 1e-6);
        }
        if let Some(p) = pfd.last_pulse() {
            if p.direction == PfdOutput::Up {
                up_beh += p.end - p.start;
            }
        }
    }
    // Gate-level adds ~2 gate delays per pulse; tolerance covers that.
    assert!(
        (up_gate - up_beh).abs() < 0.05 * up_beh.max(1e-6) + 40.0 * 6e-9,
        "gate {up_gate} vs behavioral {up_beh}"
    );
}
