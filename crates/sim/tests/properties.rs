//! Property-based tests on the simulation layer: stimulus phase algebra,
//! engine invariants and linear-model consistency (on the in-tree
//! `pllbist-testkit` harness).

use pllbist_sim::behavioral::{CpPll, LoopEvent};
use pllbist_sim::config::PllConfig;
use pllbist_sim::lock::LockDetector;
use pllbist_sim::noise::NoiseConfig;
use pllbist_sim::stimulus::FmStimulus;
use pllbist_testkit::{prop_assert, prop_assert_eq, prop_assume, prop_check, Gen};

fn any_stimulus(g: &mut Gen) -> FmStimulus {
    let f_nom = g.f64_range(100.0, 5_000.0);
    let dev = g.f64_range(0.5, 20.0).min(f_nom / 5.0);
    let f_mod = g.f64_range(0.5, 50.0);
    match g.pick(&[0usize, 2, 3, 10]) {
        0 => FmStimulus::pure_sine(f_nom, dev, f_mod),
        2 => FmStimulus::two_tone(f_nom, dev, f_mod),
        s => FmStimulus::multi_tone(f_nom, dev, f_mod, s),
    }
}

#[test]
fn stimulus_phase_is_monotone_and_consistent() {
    prop_check!(cases: 48, |g| {
        let stim = any_stimulus(g);
        let t0 = g.f64_range(0.0, 2.0);
        // Phase increases; its slope stays inside the deviation bounds.
        let dt = 1e-4;
        let p0 = stim.phase_cycles(t0);
        let p1 = stim.phase_cycles(t0 + dt);
        prop_assert!(p1 > p0);
        let f_avg = (p1 - p0) / dt;
        let f_lo = stim.f_nominal_hz() - stim.peak_deviation_hz() - 1e-6;
        let f_hi = stim.f_nominal_hz() + stim.peak_deviation_hz() + 1e-6;
        prop_assert!(f_avg >= f_lo && f_avg <= f_hi, "{f_avg} not in [{f_lo},{f_hi}]");
        Ok(())
    });
}

#[test]
fn stimulus_edges_land_on_integer_phase() {
    prop_check!(cases: 48, |g| {
        let stim = any_stimulus(g);
        let t0 = g.f64_range(0.0, 1.0);
        let mut t = t0;
        let mut prev = t0;
        for _ in 0..10 {
            t = stim.next_edge_after(t);
            prop_assert!(t > prev);
            let ph = stim.phase_cycles(t);
            prop_assert!((ph - ph.round()).abs() < 1e-5, "phase {ph} at {t}");
            prev = t;
        }
        Ok(())
    });
}

#[test]
fn edge_count_matches_phase_advance() {
    prop_check!(cases: 48, |g| {
        let stim = any_stimulus(g);
        // Count edges over ~20 nominal periods; must equal the floor
        // difference of the phase function (±1 boundary effect).
        let t_end = 20.0 / stim.f_nominal_hz();
        let mut t = 0.0;
        let mut count = 0i64;
        while t < t_end {
            t = stim.next_edge_after(t);
            if t < t_end {
                count += 1;
            }
        }
        let expect = stim.phase_cycles(t_end).floor() as i64;
        prop_assert!((count - expect).abs() <= 1, "{count} vs {expect}");
        Ok(())
    });
}

#[test]
fn locked_loop_mean_frequency_follows_any_constant_offset() {
    prop_check!(cases: 48, |g| {
        let dev = g.f64_range(-8.0, 8.0);
        prop_assume!(dev.abs() > 0.5);
        let cfg = PllConfig::paper_table3();
        let mut pll = CpPll::new_locked(&cfg);
        pll.set_stimulus(FmStimulus::constant(cfg.f_ref_hz, dev));
        pll.advance_to(1.0);
        let f = pll.average_frequency_hz(0.1);
        let want = 5.0 * (1_000.0 + dev);
        prop_assert!((f - want).abs() < 1.5, "f {f}, want {want}");
        Ok(())
    });
}

#[test]
fn vco_phase_never_decreases() {
    prop_check!(cases: 48, |g| {
        let dev = g.f64_range(1.0, 10.0);
        let f_mod = g.f64_range(1.0, 20.0);
        let cfg = PllConfig::paper_table3();
        let mut pll = CpPll::new_locked(&cfg);
        pll.set_stimulus(FmStimulus::pure_sine(cfg.f_ref_hz, dev, f_mod));
        let mut prev = pll.vco_phase_cycles();
        for k in 1..=20 {
            pll.advance_to(k as f64 * 0.01);
            let now = pll.vco_phase_cycles();
            prop_assert!(now >= prev);
            prev = now;
        }
        Ok(())
    });
}

#[test]
fn hold_is_exact_for_any_engage_time() {
    prop_check!(cases: 48, |g| {
        let t_hold = g.f64_range(0.2, 1.5);
        let cfg = PllConfig::paper_table3();
        let mut pll = CpPll::new_locked(&cfg);
        pll.set_stimulus(FmStimulus::pure_sine(cfg.f_ref_hz, 10.0, 4.0));
        pll.advance_to(t_hold);
        pll.set_hold(true);
        let f0 = pll.vco_frequency_hz();
        pll.advance_to(t_hold + 1.0);
        prop_assert!((pll.vco_frequency_hz() - f0).abs() < 1e-9);
        Ok(())
    });
}

#[test]
fn linear_model_dc_gain_is_divider_ratio() {
    prop_check!(cases: 48, |g| {
        let n = g.u32_range(2, 40);
        let vdd = g.f64_range(3.0, 12.0);
        let mut cfg = PllConfig::paper_table3();
        cfg.divider_n = n;
        cfg.drive = pllbist_sim::config::DriveConfig::Voltage { vdd };
        let a = cfg.analysis();
        prop_assert!((a.phase_transfer().dc_gain() - n as f64).abs() < 1e-6);
        prop_assert!((a.feedback_transfer().dc_gain() - 1.0).abs() < 1e-9);
        Ok(())
    });
}

#[test]
fn eq5_eq6_scaling_laws() {
    prop_check!(cases: 48, |g| {
        let scale_k = g.f64_range(0.25, 4.0);
        // ωn scales as √K, ζ (high-gain) as √K too via the ωn factor.
        let base = PllConfig::paper_table3();
        let mut scaled = base.clone();
        scaled.vco_k0 *= scale_k;
        let p0 = base.analysis().second_order().unwrap();
        let p1 = scaled.analysis().second_order().unwrap();
        let want_ratio = scale_k.sqrt();
        prop_assert!(
            (p1.omega_n / p0.omega_n - want_ratio).abs() < 0.02 * want_ratio,
            "ωn ratio {} vs {want_ratio}",
            p1.omega_n / p0.omega_n
        );
        Ok(())
    });
}

#[test]
fn lock_declared_after_exactly_required_pairs() {
    prop_check!(cases: 48, |g| {
        let skew_us = g.f64_range(1.0, 40.0);
        let required = g.u32_range(1, 20);
        let mut det = LockDetector::new(50e-6, required);
        let mut declared = None;
        for k in 0..(required + 5) {
            let t = k as f64 * 1e-3;
            det.on_event(LoopEvent::RefEdge { t });
            if det.on_event(LoopEvent::FbEdge { t: t + skew_us * 1e-6 }) {
                declared = Some(k + 1);
            }
        }
        prop_assert_eq!(declared, Some(required), "skew {} µs", skew_us);
        Ok(())
    });
}

#[test]
fn jittered_reference_edges_stay_strictly_ordered() {
    prop_check!(cases: 48, |g| {
        let rms_us = g.f64_range(1.0, 300.0);
        let seed = g.u64_range(0, 1_000);
        // Even gross jitter (clamped at ±45 % of the period internally)
        // must never reorder or duplicate reference edges.
        let cfg = PllConfig::paper_table3();
        let mut pll = CpPll::new_locked(&cfg);
        pll.set_noise(Some(NoiseConfig {
            ref_edge_jitter_rms: rms_us * 1e-6,
            fb_edge_jitter_rms: 0.0,
            seed,
        }));
        pll.collect_events(true);
        pll.advance_to(0.2);
        let refs: Vec<f64> = pll
            .take_events()
            .into_iter()
            .filter_map(|e| match e {
                LoopEvent::RefEdge { t } => Some(t),
                _ => None,
            })
            .collect();
        prop_assert!(refs.len() > 150, "{} edges", refs.len());
        for w in refs.windows(2) {
            prop_assert!(w[1] > w[0], "reordered: {} then {}", w[0], w[1]);
            prop_assert!(w[1] - w[0] < 2.5e-3, "gap {}", w[1] - w[0]);
        }
        Ok(())
    });
}

#[test]
fn step_response_is_linear_in_step_size() {
    prop_check!(cases: 48, |g| {
        let dev = g.f64_range(1.0, 9.0);
        // In the linear regime the normalised step metrics are invariant
        // to step size: overshoot fraction and peak time must match the
        // 4 Hz reference case. (Large gains can excite feed-through limit
        // cycles — a genuinely non-linear regime — so this probes the
        // paper's operating point.)
        use pllbist_sim::transient::step_response;
        let cfg = PllConfig::paper_table3();
        let a = step_response(&cfg, 4.0, 0.05);
        let b = step_response(&cfg, dev, 0.05);
        prop_assert!(
            (a.overshoot - b.overshoot).abs() < 0.08,
            "overshoot {} vs {}",
            a.overshoot,
            b.overshoot
        );
        prop_assert!(
            (a.peak_time - b.peak_time).abs() < 0.03,
            "tp {} vs {}",
            a.peak_time,
            b.peak_time
        );
        Ok(())
    });
}

#[test]
fn hold_referred_never_exceeds_full_response() {
    prop_check!(cases: 48, |g| {
        let w = g.f64_range(1.0, 2_000.0);
        // |H_hold| = |H|/|1+jωτ2| ≤ |H| at every frequency.
        let a = PllConfig::paper_table3().analysis();
        let full = a.feedback_transfer().magnitude(w);
        let hold = a.hold_referred_transfer().magnitude(w);
        prop_assert!(hold <= full + 1e-12, "{hold} > {full} at ω={w}");
        Ok(())
    });
}
