//! The parallel sweep executor must be a pure refactor of the serial
//! sweep: every modulation point is measured on its own freshly built
//! loop, so for ANY thread count the result vector is identical — same
//! order, bitwise-equal floats.

use pllbist_sim::bench_measure::{
    log_spaced, measure_sweep_points, measure_sweep_run, BenchSettings,
};
use pllbist_sim::config::PllConfig;
use pllbist_telemetry::TelemetryConfig;

fn quick_settings(threads: usize) -> BenchSettings {
    BenchSettings {
        settle_periods: 1.0,
        measure_periods: 2.0,
        samples_per_period: 32,
        threads,
        ..BenchSettings::default()
    }
}

#[test]
fn sweep_is_bitwise_identical_across_thread_counts() {
    let cfg = PllConfig::paper_table3();
    let tones = log_spaced(2.0, 30.0, 6);

    let serial = measure_sweep_points(&cfg, &tones, &quick_settings(1));
    let parallel = measure_sweep_points(&cfg, &tones, &quick_settings(4));

    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            s.f_mod_hz.to_bits(),
            p.f_mod_hz.to_bits(),
            "tone order differs at {i}"
        );
        assert_eq!(
            s.gain.to_bits(),
            p.gain.to_bits(),
            "gain differs at {i}: {} vs {}",
            s.gain,
            p.gain
        );
        assert_eq!(
            s.phase.to_bits(),
            p.phase.to_bits(),
            "phase differs at {i}: {} vs {}",
            s.phase,
            p.phase
        );
    }
}

#[test]
fn auto_thread_count_matches_serial_too() {
    let cfg = PllConfig::paper_table3();
    let tones = [3.0, 8.0, 21.0];
    let serial = measure_sweep_points(&cfg, &tones, &quick_settings(1));
    let auto = measure_sweep_points(&cfg, &tones, &quick_settings(0));
    for (s, a) in serial.iter().zip(&auto) {
        assert_eq!(s.gain.to_bits(), a.gain.to_bits());
        assert_eq!(s.phase.to_bits(), a.phase.to_bits());
    }
}

#[test]
fn telemetry_enabled_sweep_is_bitwise_identical_for_any_thread_count() {
    // The acceptance bar for the observability layer: turning the
    // collector on must not perturb a single bit of the physics, at any
    // parallelism.
    let cfg = PllConfig::paper_table3();
    let tones = log_spaced(2.0, 30.0, 5);
    let baseline = measure_sweep_points(&cfg, &tones, &quick_settings(1));
    for threads in [1, 2, 3, 8] {
        let settings = BenchSettings {
            telemetry: TelemetryConfig::enabled(),
            ..quick_settings(threads)
        };
        let run = measure_sweep_run(&cfg, &tones, &settings);
        assert!(!run.telemetry.is_empty(), "threads = {threads}");
        for (i, (b, p)) in baseline.iter().zip(&run.points).enumerate() {
            assert_eq!(
                b.gain.to_bits(),
                p.gain.to_bits(),
                "gain differs at {i} with telemetry, threads = {threads}"
            );
            assert_eq!(
                b.phase.to_bits(),
                p.phase.to_bits(),
                "phase differs at {i} with telemetry, threads = {threads}"
            );
        }
    }
}

#[test]
fn more_threads_than_points_is_fine() {
    let cfg = PllConfig::paper_table3();
    let tones = [5.0, 12.0];
    let serial = measure_sweep_points(&cfg, &tones, &quick_settings(1));
    let wide = measure_sweep_points(&cfg, &tones, &quick_settings(16));
    assert_eq!(serial, wide);
}
