//! The parallel sweep executor must be a pure refactor of the serial
//! sweep: every modulation point is measured on its own freshly built
//! loop, so for ANY thread count the result vector is identical — same
//! order, bitwise-equal floats.

use pllbist_sim::bench_measure::{log_spaced, measure_sweep_points, run_sweep, BenchSettings};
use pllbist_sim::config::PllConfig;
use pllbist_sim::{CampaignPlan, Scheduler};
use pllbist_telemetry::TelemetryConfig;

fn quick_settings() -> BenchSettings {
    BenchSettings {
        settle_periods: 1.0,
        measure_periods: 2.0,
        samples_per_period: 32,
        ..BenchSettings::default()
    }
}

fn plan_at(cfg: &PllConfig, threads: usize) -> CampaignPlan {
    let scheduler = if threads == 1 {
        Scheduler::Serial
    } else {
        Scheduler::WorkStealing { threads }
    };
    CampaignPlan::new(cfg.clone()).scheduler(scheduler)
}

#[test]
fn sweep_is_bitwise_identical_across_thread_counts() {
    let cfg = PllConfig::paper_table3();
    let tones = log_spaced(2.0, 30.0, 6);

    let serial = measure_sweep_points(&plan_at(&cfg, 1), &tones, &quick_settings());
    let parallel = measure_sweep_points(&plan_at(&cfg, 4), &tones, &quick_settings());

    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            s.f_mod_hz.to_bits(),
            p.f_mod_hz.to_bits(),
            "tone order differs at {i}"
        );
        assert_eq!(
            s.gain.to_bits(),
            p.gain.to_bits(),
            "gain differs at {i}: {} vs {}",
            s.gain,
            p.gain
        );
        assert_eq!(
            s.phase.to_bits(),
            p.phase.to_bits(),
            "phase differs at {i}: {} vs {}",
            s.phase,
            p.phase
        );
    }
}

#[test]
fn auto_thread_count_matches_serial_too() {
    let cfg = PllConfig::paper_table3();
    let tones = [3.0, 8.0, 21.0];
    let serial = measure_sweep_points(&plan_at(&cfg, 1), &tones, &quick_settings());
    let auto = measure_sweep_points(&plan_at(&cfg, 0), &tones, &quick_settings());
    for (s, a) in serial.iter().zip(&auto) {
        assert_eq!(s.gain.to_bits(), a.gain.to_bits());
        assert_eq!(s.phase.to_bits(), a.phase.to_bits());
    }
}

#[test]
fn telemetry_enabled_sweep_is_bitwise_identical_for_any_thread_count() {
    // The acceptance bar for the observability layer: turning the
    // collector on must not perturb a single bit of the physics, at any
    // parallelism.
    let cfg = PllConfig::paper_table3();
    let tones = log_spaced(2.0, 30.0, 5);
    let baseline = measure_sweep_points(&plan_at(&cfg, 1), &tones, &quick_settings());
    for threads in [1, 2, 3, 8] {
        let plan = plan_at(&cfg, threads).telemetry(TelemetryConfig::enabled());
        let run = run_sweep(&plan, &tones, &quick_settings()).expect("healthy sweep");
        assert!(!run.telemetry.is_empty(), "threads = {threads}");
        for (i, (b, p)) in baseline.iter().zip(&run.ok_points()).enumerate() {
            assert_eq!(
                b.gain.to_bits(),
                p.gain.to_bits(),
                "gain differs at {i} with telemetry, threads = {threads}"
            );
            assert_eq!(
                b.phase.to_bits(),
                p.phase.to_bits(),
                "phase differs at {i} with telemetry, threads = {threads}"
            );
        }
    }
}

#[test]
fn more_threads_than_points_is_fine() {
    let cfg = PllConfig::paper_table3();
    let tones = [5.0, 12.0];
    let serial = measure_sweep_points(&plan_at(&cfg, 1), &tones, &quick_settings());
    let wide = measure_sweep_points(&plan_at(&cfg, 16), &tones, &quick_settings());
    assert_eq!(serial, wide);
}
