//! End-to-end contract of the crash-only campaign service: durable
//! submissions over HTTP, deterministic fault injection, byte-identical
//! recovery, backpressure and graceful drain — plus the
//! [`CampaignPlan::from_header`] rejection paths and resume-after-rename
//! the service's digest round trip rests on.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use pllbist_sim::campaign::bits_hex;
use pllbist_sim::config::PllConfig;
use pllbist_sim::error::CampaignError;
use pllbist_sim::plan::Scheduler;
use pllbist_sim::service::{
    submission_body, CampaignService, CrashFault, FaultPlan, ServiceConfig, VoltsCodec,
};
use pllbist_sim::{
    http_get, http_post, CampaignLog, CampaignPlan, ClosedFormPll, CpPll, EventDrivenCpPll,
    PllEngine, SupervisorPolicy,
};
use pllbist_telemetry::json::json_str_field;
use pllbist_telemetry::{Record, SCHEMA_VERSION};

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pllbist_crash_only_service_{}_{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn closed_form_plan(threads: usize) -> CampaignPlan<ClosedFormPll> {
    CampaignPlan::new(PllConfig::paper_table3())
        .engine::<ClosedFormPll>()
        .lock_settle(0.05)
        .supervised(SupervisorPolicy::default())
        .scheduler(Scheduler::WorkStealing { threads })
}

fn event_driven_plan(threads: usize) -> CampaignPlan<EventDrivenCpPll> {
    CampaignPlan::new(PllConfig::paper_table3())
        .engine::<EventDrivenCpPll>()
        .lock_settle(0.05)
        .supervised(SupervisorPolicy::default())
        .scheduler(Scheduler::WorkStealing { threads })
}

/// Polls `/jobs/<id>` until its state is terminal (`done`/`failed`).
fn wait_terminal(addr: std::net::SocketAddr, job: &str, budget: Duration) -> String {
    let started = Instant::now();
    loop {
        if let Ok(body) = http_get(addr, &format!("/jobs/{job}")) {
            if let Some(state) = json_str_field(&body, "state") {
                if state == "done" || state == "failed" {
                    return state;
                }
            }
        }
        assert!(
            started.elapsed() < budget,
            "job {job} not terminal within {budget:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn submitted_campaign_runs_to_done_and_resubmission_is_idempotent() {
    let root = tmp_root("happy");
    let service = CampaignService::start(ServiceConfig::rooted(&root)).expect("start");
    let addr = service.addr();

    let plan = closed_form_plan(2);
    let grid = [2.0, 5.0, 11.0, 24.0];
    let job = plan.digest(&grid, "svc-it");
    let body = submission_body(&plan, &grid, "svc-it", &FaultPlan::none());
    let reply = http_post(addr, "/jobs", &body).expect("submit");
    assert!(reply.contains(&job), "reply names the job: {reply}");

    assert_eq!(wait_terminal(addr, &job, Duration::from_secs(60)), "done");
    let results = http_get(addr, &format!("/jobs/{job}/results")).expect("results");
    let lines: Vec<&str> = results.lines().collect();
    assert_eq!(lines.len(), 2 + grid.len(), "header + one line per point");
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"ok\":true") && l.contains("v_bits"))
            .count(),
        grid.len(),
        "all points healthy"
    );

    // Resubmitting a finished job is answered from the journal, without
    // re-running anything.
    let again = http_post(addr, "/jobs", &body).expect("resubmit");
    assert!(again.contains("\"state\":\"done\""), "idempotent: {again}");

    let progress = http_get(addr, "/progress").expect("progress");
    assert!(progress.contains("\"done\":1"), "progress: {progress}");
    let listing = http_get(addr, "/jobs").expect("jobs");
    assert!(listing.contains(&job), "listing: {listing}");

    // Unknown and malformed job ids are 404s, not panics.
    assert!(http_get(addr, "/jobs/0000000000000000").is_err());
    assert!(http_get(addr, "/jobs/../etc/passwd").is_err());

    service.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn faulted_campaign_recovers_byte_identical_to_unfaulted_reference() {
    // The tentpole contract: a campaign battered by kills, torn writes,
    // a torn journal append and a disk-full rejection must converge to
    // the *same bytes* an uninterrupted single-threaded reference
    // produces — point faults (retries, quarantines) included.
    let grid = [2.0, 4.5, 7.0, 11.0, 16.0, 23.0];
    let mut faults = FaultPlan::from_seed(11, grid.len(), 0);
    faults.crash = vec![
        CrashFault::Kill { after_points: 2 },
        CrashFault::TornResultWrite {
            at_flush: 1,
            keep_bytes: 7,
        },
        CrashFault::KillTearingJournal { after_points: 1 },
        CrashFault::ResultDiskFull { at_flush: 2 },
    ];
    assert!(
        !faults.flaky_retry.is_empty(),
        "seed must exercise the retry path"
    );

    let ref_root = tmp_root("byte_ref");
    let ref_service = CampaignService::start(ServiceConfig::rooted(&ref_root)).expect("start ref");
    let ref_plan = event_driven_plan(1);
    let job = ref_plan.digest(&grid, "svc-bytes");
    let ref_body = submission_body(&ref_plan, &grid, "svc-bytes", &faults.reference());
    http_post(ref_service.addr(), "/jobs", &ref_body).expect("submit ref");
    assert_eq!(
        wait_terminal(ref_service.addr(), &job, Duration::from_secs(120)),
        "done"
    );
    ref_service.shutdown();

    let hot_root = tmp_root("byte_hot");
    let hot_service =
        CampaignService::start(ServiceConfig::rooted(&hot_root)).expect("start faulted");
    let hot_plan = event_driven_plan(3);
    let hot_body = submission_body(&hot_plan, &grid, "svc-bytes", &faults);
    http_post(hot_service.addr(), "/jobs", &hot_body).expect("submit faulted");
    assert_eq!(
        wait_terminal(hot_service.addr(), &job, Duration::from_secs(120)),
        "done"
    );
    hot_service.shutdown();

    let job_dir = |root: &PathBuf| root.join(format!("job-{job}"));
    let reference = std::fs::read(job_dir(&ref_root).join("campaign.jsonl")).expect("ref bytes");
    let recovered = std::fs::read(job_dir(&hot_root).join("campaign.jsonl")).expect("hot bytes");
    assert_eq!(
        reference, recovered,
        "recovered campaign must be byte-identical to the reference"
    );

    // The journal tells the whole story: four interruptions (one of
    // them torn mid-append and healed), then done.
    let journal = std::fs::read_to_string(job_dir(&hot_root).join("job.jsonl")).expect("journal");
    assert!(
        journal
            .lines()
            .filter(|l| l.contains("interrupted"))
            .count()
            >= 3,
        "interruptions journaled:\n{journal}"
    );
    let done_line = journal
        .lines()
        .rfind(|l| l.contains("\"done\""))
        .expect("done event");
    // The resumed final attempt restored lock from the checkpoint
    // sidecar instead of re-settling.
    assert!(
        done_line.contains("sidecar_hits=1"),
        "sidecar resume recorded: {done_line}"
    );
    assert!(
        job_dir(&hot_root).join("campaign.ckpt").is_file(),
        "checkpoint sidecar persisted"
    );

    // The flight recorder marks every resumed attempt.
    let flight = std::fs::read_to_string(job_dir(&hot_root).join("campaign.flight.jsonl"))
        .expect("flight sidecar");
    assert!(
        flight.contains("\"restart\""),
        "restart event on the flight timeline:\n{flight}"
    );

    let _ = std::fs::remove_dir_all(&ref_root);
    let _ = std::fs::remove_dir_all(&hot_root);
}

#[test]
fn bounded_queue_answers_429_and_drops_the_durable_trace() {
    let root = tmp_root("backpressure");
    let mut config = ServiceConfig::rooted(&root);
    config.queue_capacity = 1;
    let service = CampaignService::start(config).expect("start");
    let addr = service.addr();

    // A deliberately slow occupant: the behavioural engine stepping a
    // sub-hertz modulation point keeps the runner busy while the queue
    // fills behind it.
    let slow_plan = CampaignPlan::new(PllConfig::paper_table3())
        .engine::<CpPll>()
        .lock_settle(0.05)
        .supervised(SupervisorPolicy::default())
        .scheduler(Scheduler::Serial);
    let slow_grid = [0.05, 0.07];
    let slow_body = submission_body(&slow_plan, &slow_grid, "svc-slow", &FaultPlan::none());
    let slow_job = slow_plan.digest(&slow_grid, "svc-slow");
    http_post(addr, "/jobs", &slow_body).expect("submit slow");
    std::thread::sleep(Duration::from_millis(150)); // runner picks it up

    let queued_plan = closed_form_plan(1);
    let queued_grid = [3.0, 6.0];
    let queued_body = submission_body(&queued_plan, &queued_grid, "svc-q", &FaultPlan::none());
    let queued_reply = http_post(addr, "/jobs", &queued_body).expect("queued submit");
    assert!(
        queued_reply.contains("queued"),
        "second job queues: {queued_reply}"
    );

    let extra_plan = closed_form_plan(1);
    let extra_grid = [4.0, 8.0];
    let extra_body = submission_body(&extra_plan, &extra_grid, "svc-extra", &FaultPlan::none());
    let extra_job = extra_plan.digest(&extra_grid, "svc-extra");
    match http_post(addr, "/jobs", &extra_body) {
        Err(pllbist_sim::HttpError::Status { code, body }) => {
            assert_eq!(code, 429, "backpressure status: {body}");
            assert!(body.contains("queue full"), "backpressure body: {body}");
        }
        other => panic!("expected 429, got {other:?}"),
    }
    // The rejected job leaves no durable trace — a restart must not
    // resurrect work the client was told was refused.
    assert!(
        !root.join(format!("job-{extra_job}")).exists(),
        "429'd job dir removed"
    );

    assert_eq!(
        wait_terminal(addr, &slow_job, Duration::from_secs(120)),
        "done"
    );
    service.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn draining_service_refuses_new_work_with_503() {
    let root = tmp_root("drain");
    let service = CampaignService::start(ServiceConfig::rooted(&root)).expect("start");
    let addr = service.addr();

    let reply = http_post(addr, "/drain", "").expect("drain");
    assert!(reply.contains("\"draining\":true"), "drain reply: {reply}");
    let progress = http_get(addr, "/progress").expect("progress");
    assert!(
        progress.contains("\"draining\":true"),
        "progress: {progress}"
    );

    let plan = closed_form_plan(1);
    let grid = [3.0, 9.0];
    let body = submission_body(&plan, &grid, "svc-drain", &FaultPlan::none());
    match http_post(addr, "/jobs", &body) {
        Err(pllbist_sim::HttpError::Status { code, .. }) => {
            assert_eq!(code, 503, "draining service refuses submissions");
        }
        other => panic!("expected 503, got {other:?}"),
    }
    service.shutdown();
    let journal = std::fs::read_to_string(root.join("service.jsonl")).expect("service journal");
    assert!(journal.contains("\"drain\""), "drain journaled:\n{journal}");
    assert!(journal.contains("\"stop\""), "stop journaled:\n{journal}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn restart_rescan_resumes_an_interrupted_job_and_preserves_its_work() {
    // Simulate the aftermath of SIGKILL by hand-crafting the job
    // directory a dead service would leave: a durable submission, a
    // journal ending mid-flight, and a partial results file.
    let root = tmp_root("rescan");
    let plan = closed_form_plan(2);
    let grid = [2.0, 5.0, 11.0, 24.0];
    let salt = "svc-rescan";
    let job = plan.digest(&grid, salt);
    let dir = root.join(format!("job-{job}"));
    std::fs::create_dir_all(&dir).expect("mkdir");

    let run_header = Record::Run {
        bin: "serve".to_string(),
        schema: SCHEMA_VERSION,
    }
    .to_json();
    let body = submission_body(&plan, &grid, salt, &FaultPlan::none());
    std::fs::write(dir.join("submit.jsonl"), format!("{run_header}\n{body}")).expect("submit");

    let event = |state: &str, attempt: u32| {
        format!(
            "{{\"type\":\"result\",\"name\":\"job.event\",\"fields\":{{\"state\":\"{state}\",\"attempt\":{attempt},\"detail\":\"handcrafted\"}}}}"
        )
    };
    std::fs::write(
        dir.join("job.jsonl"),
        format!(
            "{run_header}\n{}\n{}\n{}\n",
            event("queued", 0),
            event("running", 0),
            event("interrupted", 0),
        ),
    )
    .expect("journal");

    // Two points already on disk, with sentinel values a re-run of the
    // physics would never produce: recovery must keep them verbatim.
    let log = CampaignLog::open(
        dir.join("campaign.jsonl"),
        VoltsCodec,
        job.clone(),
        grid.len(),
    )
    .expect("open partial");
    log.record(0, &Ok(123.456));
    log.record(1, &Ok(-654.321));
    log.finish(false).expect("partial finish");
    drop(log);

    let service = CampaignService::start(ServiceConfig::rooted(&root)).expect("restart");
    assert_eq!(
        wait_terminal(service.addr(), &job, Duration::from_secs(60)),
        "done"
    );
    let results = http_get(service.addr(), &format!("/jobs/{job}/results")).expect("results");
    service.shutdown();

    assert!(
        results.contains(&bits_hex(123.456)) && results.contains(&bits_hex(-654.321)),
        "preserved pre-crash work verbatim:\n{results}"
    );
    assert_eq!(
        results
            .lines()
            .filter(|l| l.contains("\"campaign.point\""))
            .count(),
        grid.len(),
        "completed the remaining points"
    );
    let flight =
        std::fs::read_to_string(dir.join("campaign.flight.jsonl")).expect("flight sidecar");
    assert!(
        flight.contains("\"restart\""),
        "rescan resume marked on the flight timeline:\n{flight}"
    );
    let journal = std::fs::read_to_string(dir.join("job.jsonl")).expect("journal");
    assert!(
        journal.contains("requeued by restart rescan"),
        "rescan journaled:\n{journal}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// from_header rejection paths and resume-after-rename
// ---------------------------------------------------------------------------

#[test]
fn from_header_rejects_tampered_and_truncated_headers() {
    let plan = closed_form_plan(1).checkpoint(true);
    let grid = [2.0, 5.0, 11.0];
    let salt = "hdr";
    let header = plan.header_line(&grid, salt);
    let config = PllConfig::paper_table3;

    // The genuine header round trips.
    CampaignPlan::<ClosedFormPll>::from_header(&header, config(), &grid, salt).expect("round trip");

    // Truncation loses required fields.
    let truncated = &header[..header.len() / 2];
    assert!(matches!(
        CampaignPlan::<ClosedFormPll>::from_header(truncated, config(), &grid, salt),
        Err(CampaignError::Malformed { .. })
    ));

    // A tampered digest is refused like a foreign results file.
    let digest = plan.digest(&grid, salt);
    let flipped = if digest.starts_with('0') {
        digest.replacen('0', "1", 1)
    } else {
        format!("0{}", &digest[1..])
    };
    let tampered = header.replace(&digest, &flipped);
    assert!(matches!(
        CampaignPlan::<ClosedFormPll>::from_header(&tampered, config(), &grid, salt),
        Err(CampaignError::HeaderMismatch { .. })
    ));

    // The wrong engine type sees a backend mismatch.
    assert!(matches!(
        CampaignPlan::<CpPll>::from_header(&header, config(), &grid, salt),
        Err(CampaignError::HeaderMismatch { .. })
    ));

    // A shorter grid contradicts the point count.
    assert!(matches!(
        CampaignPlan::<ClosedFormPll>::from_header(&header, config(), &grid[..2], salt),
        Err(CampaignError::HeaderMismatch { .. })
    ));

    // The wrong salt recomputes a different digest.
    assert!(matches!(
        CampaignPlan::<ClosedFormPll>::from_header(&header, config(), &grid, "other-salt"),
        Err(CampaignError::HeaderMismatch { .. })
    ));
}

#[test]
fn renamed_results_file_resumes_without_recomputing_points() {
    // The results file is location-independent: its digest header, not
    // its path, is its identity. Complete a two-point prefix, rename
    // the file, and resume — the completed points must be skipped.
    let dir = tmp_root("rename");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let grid = [2.0, 5.0, 11.0];
    let plan = closed_form_plan(1);
    let digest = plan.digest(&grid, "mv");

    let before = dir.join("before.jsonl");
    let log = CampaignLog::open(&before, VoltsCodec, digest.clone(), grid.len()).expect("open");
    log.record(0, &Ok(1.25));
    log.record(1, &Ok(2.5));
    log.finish(false).expect("partial");
    drop(log);

    let after = dir.join("after.jsonl");
    std::fs::rename(&before, &after).expect("rename");

    let reopened = CampaignLog::open(&after, VoltsCodec, digest, grid.len()).expect("reopen");
    assert_eq!(reopened.completed_count(), 2, "prefix survives the rename");
    let captured = AtomicUsize::new(0);
    let outcome = plan.scenario().run_points::<ClosedFormPll, VoltsCodec, _>(
        &grid,
        1,
        true,
        plan.supervision(),
        &pllbist_telemetry::Collector::disabled(),
        Some(&reopened),
        None,
        None,
        |pll, _fm| {
            captured.fetch_add(1, Ordering::SeqCst);
            let t = pll.time();
            pll.advance_to(t + 0.01);
            Ok(pll.control_voltage())
        },
    );
    reopened.finish(true).expect("finish");
    assert_eq!(
        captured.load(Ordering::SeqCst),
        1,
        "only the missing point is recomputed"
    );
    assert_eq!(outcome.points.len(), grid.len());
    assert!(outcome.points.iter().all(|p| p.is_ok()));
}
