//! Contract tests for the campaign observatory: attaching the progress
//! board, flight recorder and HTTP status server to a supervised
//! resumable campaign must never change the physics — results files
//! stay byte-identical with observability on or off, at every thread
//! count — while a killed run leaves a parseable flight dump and the
//! live endpoints report monotone progress.

use std::path::PathBuf;
use std::sync::Arc;

use pllbist_sim::campaign::{bits_hex, f64_from_bits_hex, json_str_field, CampaignLog, PointCodec};
use pllbist_sim::config::PllConfig;
use pllbist_sim::observe::{CampaignObserver, ObservatoryConfig};
use pllbist_sim::scenario::Scenario;
use pllbist_sim::server::{http_get, StatusServer};
use pllbist_sim::{ClosedFormPll, PllEngine, SupervisorPolicy, SweepPointError};
use pllbist_telemetry::recorder::{parse_dump, FlightEventKind};
use pllbist_telemetry::{json_u64_field, Collector, Fields, Value};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pllbist_observatory_it");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Campaign codec over a plain `f64` point (control voltage).
struct VoltageCodec;

impl PointCodec for VoltageCodec {
    type Point = f64;

    fn encode(&self, point: &f64) -> Fields {
        vec![("v_bits".to_string(), Value::Str(bits_hex(*point)))]
    }

    fn decode(&self, line: &str) -> Option<f64> {
        f64_from_bits_hex(&json_str_field(line, "v_bits")?)
    }
}

const TONES: [f64; 6] = [1.0, 3.0, 7.0, 9.0, 21.0, 55.0];
const SICK_TONE: f64 = 9.0;

fn capture(
    pll: &mut pllbist_sim::Supervised<ClosedFormPll>,
    fm: f64,
) -> Result<f64, SweepPointError> {
    let t = pll.time();
    pll.advance_to(t + 0.02);
    if fm == SICK_TONE {
        // One typed, deterministic failure so the observer sees real
        // retry and quarantine traffic on every run.
        return Err(SweepPointError::DegenerateFit { f_mod_hz: fm });
    }
    Ok(pll.control_voltage())
}

/// Runs the supervised resumable campaign over `tones`, optionally
/// observed, and returns the quarantined count.
fn run_campaign(
    path: &PathBuf,
    tones: &[f64],
    threads: usize,
    observer: Option<&CampaignObserver>,
    finish: bool,
) -> usize {
    let cfg = PllConfig::paper_table3();
    let scenario = Scenario::with_lock_settle(&cfg, 0.1);
    let policy = SupervisorPolicy::default();
    let tel = Collector::disabled();
    let log = CampaignLog::open(path, VoltageCodec, "obsit0000000001".into(), TONES.len())
        .expect("open log");
    let swept = scenario.run_points::<ClosedFormPll, VoltageCodec, _>(
        tones,
        threads,
        true,
        Some(&policy),
        &tel,
        Some(&log),
        None,
        observer,
        capture,
    );
    if finish {
        log.finish(true).expect("complete");
    }
    swept.quarantined_count()
}

#[test]
fn observed_campaign_with_server_is_byte_identical_to_unobserved() {
    // Unobserved reference.
    let reference_path = tmp("plain.jsonl");
    let _ = std::fs::remove_file(&reference_path);
    assert_eq!(run_campaign(&reference_path, &TONES, 1, None, true), 1);
    let reference = std::fs::read(&reference_path).expect("reference bytes");

    for threads in [1usize, 4, 16] {
        let path = tmp(&format!("observed_t{threads}.jsonl"));
        let flight = path.with_extension("flight.jsonl");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&flight);

        let observer = Arc::new(CampaignObserver::new(
            TONES.len(),
            threads,
            ObservatoryConfig::for_results_file(&path),
        ));
        let server = StatusServer::start(Arc::clone(&observer), "127.0.0.1:0").expect("server");
        let quarantined = run_campaign(&path, &TONES, threads, Some(&observer), true);
        observer.finish().expect("flight dump");

        // The no-steering contract: same physics, same bytes.
        assert_eq!(quarantined, 1, "threads {threads}");
        assert_eq!(
            std::fs::read(&path).expect("observed bytes"),
            reference,
            "threads {threads}: observer + server changed the results file"
        );

        // The server answers from the completed board.
        let progress = http_get(server.addr(), "/progress").expect("poll");
        assert_eq!(json_u64_field(&progress, "total"), Some(TONES.len() as u64));
        assert_eq!(json_u64_field(&progress, "done"), Some(TONES.len() as u64));
        assert_eq!(json_u64_field(&progress, "quarantined"), Some(1));
        let incidents = http_get(server.addr(), "/incidents").expect("poll incidents");
        assert!(
            json_u64_field(&incidents, "degenerate_fit").unwrap_or(0) >= 1,
            "threads {threads}: {incidents}"
        );
        server.shutdown();

        // The finish dump is a parseable timeline ending in a clean
        // finish note, with claim/done coverage for every point.
        let dump = std::fs::read_to_string(&flight).expect("flight dump");
        assert!(dump.contains("\"reason\":\"finish\""));
        let events = parse_dump(&dump);
        let claims = events
            .iter()
            .filter(|e| e.kind == FlightEventKind::Claim)
            .count();
        let dones = events
            .iter()
            .filter(|e| e.kind == FlightEventKind::Done)
            .count();
        assert_eq!(claims, TONES.len(), "threads {threads}");
        assert_eq!(dones, TONES.len(), "threads {threads}");
        assert!(events.iter().any(|e| e.kind == FlightEventKind::Retry));
        assert!(events.iter().any(|e| e.kind == FlightEventKind::Quarantine));

        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&flight).unwrap();
    }
    std::fs::remove_file(&reference_path).unwrap();
}

#[test]
fn killed_observed_campaign_dumps_flight_and_resumes_byte_identically() {
    let reference_path = tmp("kill_reference.jsonl");
    let _ = std::fs::remove_file(&reference_path);
    assert_eq!(run_campaign(&reference_path, &TONES, 1, None, true), 1);
    let reference = std::fs::read(&reference_path).expect("reference bytes");

    let path = tmp("kill_observed.jsonl");
    let flight = path.with_extension("flight.jsonl");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&flight);

    // "Kill" the campaign after three points: the sweep only covers a
    // prefix of the tone list, and the observer dies without finish()
    // (the Drop path a panicking or aborted process takes).
    {
        let observer =
            CampaignObserver::new(TONES.len(), 2, ObservatoryConfig::for_results_file(&path));
        run_campaign(&path, &TONES[..3], 2, Some(&observer), false);
    }
    let dump = std::fs::read_to_string(&flight).expect("abort dump exists");
    assert!(
        dump.contains("\"reason\":\"abort\""),
        "a killed run records why it dumped: {dump}"
    );
    let events = parse_dump(&dump);
    assert!(
        events.iter().any(|e| e.kind == FlightEventKind::Claim),
        "the timeline reaches back into the killed run"
    );

    // Resume across thread counts: skipped points load from the log, the
    // rest recompute, and the final file matches the never-killed run.
    for threads in [4usize, 1, 16] {
        let observer = CampaignObserver::new(
            TONES.len(),
            threads,
            ObservatoryConfig::for_results_file(&path),
        );
        assert_eq!(
            run_campaign(&path, &TONES, threads, Some(&observer), true),
            1
        );
        observer.finish().expect("finish dump");
        assert_eq!(
            std::fs::read(&path).expect("resumed bytes"),
            reference,
            "resume on {threads} threads"
        );
        let resumed = parse_dump(&std::fs::read_to_string(&flight).expect("resume dump"));
        assert!(
            resumed
                .iter()
                .any(|e| e.kind == FlightEventKind::Note && e.detail.contains("loaded from log")),
            "resume on {threads} threads records the skip"
        );
        // Rewind for the next resume round: keep only the first three
        // points again.
        let full = std::fs::read_to_string(&path).expect("utf8");
        let lines: Vec<&str> = full.lines().collect();
        let mut killed = lines[..2 + 3].join("\n");
        killed.push('\n');
        killed.push_str("{\"type\":\"result\",\"na");
        std::fs::write(&path, &killed).expect("re-kill");
    }

    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&flight).unwrap();
    std::fs::remove_file(&reference_path).unwrap();
}

#[test]
fn status_server_reports_monotone_progress_over_a_live_campaign() {
    let path = tmp("live.jsonl");
    let _ = std::fs::remove_file(&path);
    let observer = Arc::new(CampaignObserver::new(
        TONES.len(),
        2,
        ObservatoryConfig::default(),
    ));
    let server = StatusServer::start(Arc::clone(&observer), "127.0.0.1:0").expect("server");
    let addr = server.addr();

    let campaign_path = path.clone();
    let campaign_observer = Arc::clone(&observer);
    let campaign = std::thread::spawn(move || {
        run_campaign(&campaign_path, &TONES, 2, Some(&campaign_observer), true)
    });

    // Poll while the campaign runs: completion counts must never move
    // backwards, and every response must parse.
    let mut last_done = 0u64;
    loop {
        let body = http_get(addr, "/progress").expect("poll");
        let done = json_u64_field(&body, "done").expect("done field");
        assert!(
            done >= last_done,
            "done went backwards: {last_done} -> {done}"
        );
        last_done = done;
        if done >= TONES.len() as u64 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_eq!(campaign.join().expect("campaign thread"), 1);
    observer.finish().expect("finish");

    let workers = http_get(addr, "/workers").expect("workers");
    assert_eq!(
        workers.matches("\"index\":").count(),
        2,
        "one entry per worker: {workers}"
    );
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}
