//! Adversarial property tests for the hand-rolled JSONL field parsers
//! the campaign stack reads its artifacts with
//! (`pllbist_sim::campaign::{json_u64_field, json_bool_field,
//! json_str_field}`, re-exported from `pllbist_telemetry::json`).
//!
//! Three hostile regimes are pinned:
//!
//! * **Torn lines** — a kill mid-write truncates a record at an
//!   arbitrary char boundary; every parser must return cleanly (no
//!   panic), and a string field must never fabricate a full value from
//!   a torn tail.
//! * **Escaped payloads** — quotes, backslashes, control characters and
//!   non-ASCII text inside string values must round-trip through the
//!   writer-side escaper and back.
//! * **Duplicate keys** — first occurrence wins, which is the contract
//!   that lets writers keep fixed tag keys ahead of free-text payloads.

use pllbist_sim::campaign::{
    bits_hex, f64_from_bits_hex, json_bool_field, json_str_field, json_u64_field, CampaignLog,
    PointCodec,
};
use pllbist_sim::CampaignError;
use pllbist_telemetry::{Fields, Value};
use pllbist_testkit::{prop_assert, prop_assert_eq, prop_assume, prop_check};

/// Writer-side escaper matching the workspace JSONL encoders
/// (`Record::to_json` and friends): `\" \\ \n \r \t`, and `\uXXXX` for
/// the remaining control characters.
fn encode_str(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A payload string biased towards the characters that break naive
/// parsers: quotes, backslashes, braces, colons, control chars, and a
/// sprinkle of non-ASCII.
fn hostile_string(g: &mut pllbist_testkit::prop::Gen) -> String {
    let len = g.usize_range(0, 24);
    let alphabet = [
        '"',
        '\\',
        '\n',
        '\r',
        '\t',
        '\u{1}',
        '{',
        '}',
        ':',
        ',',
        'a',
        'Z',
        '0',
        ' ',
        'µ',
        '→',
        '\u{1F600}',
    ];
    (0..len).map(|_| g.pick(&alphabet)).collect()
}

#[test]
fn str_field_round_trips_hostile_payloads() {
    prop_check!(cases: 512, |g| {
        let value = hostile_string(g);
        let trailer = hostile_string(g);
        let line = format!(
            "{{\"type\":\"note\",\"msg\":{},\"tail\":{}}}",
            encode_str(&value),
            encode_str(&trailer)
        );
        prop_assert_eq!(
            json_str_field(&line, "msg"),
            Some(value.clone()),
            "line: {line}"
        );
        Ok(())
    });
}

#[test]
fn parsers_survive_torn_lines_without_panicking() {
    prop_check!(cases: 512, |g| {
        let value = hostile_string(g);
        let n = g.u64_range(0, u64::MAX / 2);
        let b = g.bool();
        let line = format!(
            "{{\"type\":\"result\",\"index\":{n},\"ok\":{b},\"msg\":{}}}",
            encode_str(&value)
        );
        // Truncate at a random char boundary — the kill-mid-write shape
        // the campaign log's torn-tail tolerance is built around.
        let boundaries: Vec<usize> = line.char_indices().map(|(i, _)| i).collect();
        let cut = g.pick(&boundaries[..]);
        let torn = &line[..cut];
        // No panics; whatever comes back must be an honest prefix view.
        let _ = json_u64_field(torn, "index");
        let _ = json_bool_field(torn, "ok");
        let msg = json_str_field(torn, "msg");
        if let Some(parsed) = msg {
            // A string field only parses when its closing quote made it
            // into the torn prefix, so the value must be intact.
            prop_assert_eq!(parsed, value.clone(), "cut at {cut} of: {line}");
        }
        // The untorn line always parses exactly.
        prop_assert_eq!(json_u64_field(&line, "index"), Some(n));
        prop_assert_eq!(json_bool_field(&line, "ok"), Some(b));
        Ok(())
    });
}

#[test]
fn duplicate_keys_resolve_to_first_occurrence() {
    prop_check!(cases: 512, |g| {
        let first = g.u64_range(0, 1_000_000);
        let second = g.u64_range(0, 1_000_000);
        prop_assume!(first != second);
        let first_b = g.bool();
        let first_s = hostile_string(g);
        let second_s = hostile_string(g);
        let line = format!(
            "{{\"n\":{first},\"flag\":{first_b},\"s\":{},\"n\":{second},\"flag\":{},\"s\":{}}}",
            encode_str(&first_s),
            !first_b,
            encode_str(&second_s)
        );
        prop_assert_eq!(json_u64_field(&line, "n"), Some(first));
        prop_assert_eq!(json_bool_field(&line, "flag"), Some(first_b));
        prop_assert_eq!(json_str_field(&line, "s"), Some(first_s.clone()));
        Ok(())
    });
}

/// Minimal codec for the recovery property tests: one `f64` per point.
struct BitsCodec;

impl PointCodec for BitsCodec {
    type Point = f64;

    fn encode(&self, point: &f64) -> Fields {
        vec![("value_bits".to_string(), Value::Str(bits_hex(*point)))]
    }

    fn decode(&self, line: &str) -> Option<f64> {
        f64_from_bits_hex(&json_str_field(line, "value_bits")?)
    }
}

fn scratch(name: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pllbist_campaign_props");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!("{name}_{case}.jsonl"))
}

#[test]
fn campaign_log_recovers_the_maximal_prefix_under_multi_line_tears() {
    let case = std::sync::atomic::AtomicU64::new(0);
    prop_check!(cases: 64, |g| {
        let path = scratch(
            "multi_tear",
            case.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        );
        let _ = std::fs::remove_file(&path);
        let points = g.usize_range(1, 8);
        let digest = "0123456789abcdef".to_string();
        let log = CampaignLog::open(&path, BitsCodec, digest.clone(), points)
            .map_err(|e| pllbist_testkit::prop::CaseError::Fail(format!("fresh open: {e}")))?;
        for i in 0..points {
            log.record(i, &Ok(i as f64 * 1.5 - 2.0));
        }
        log.finish(true).map_err(|e| pllbist_testkit::prop::CaseError::Fail(format!("finish: {e}")))?;
        drop(log);

        // Tear an arbitrary-length tail: keep `intact` full records,
        // then truncate every following line to a strict prefix (no
        // tail line survives as a complete record).
        let text = std::fs::read_to_string(&path).map_err(|e| pllbist_testkit::prop::CaseError::Fail(format!("read: {e}")))?;
        let lines: Vec<&str> = text.lines().collect();
        let intact = g.usize_range(0, points);
        let mut torn = lines[..2 + intact].join("\n");
        torn.push('\n');
        for (dropped, line) in lines[2 + intact..].iter().enumerate() {
            if g.bool() && dropped > 0 {
                break; // the crash may also lose whole trailing lines
            }
            let boundaries: Vec<usize> = line.char_indices().map(|(i, _)| i).collect();
            let cut = g.pick(&boundaries[..]);
            torn.push_str(&line[..cut]);
            if g.bool() {
                torn.push('\n');
            } else {
                break; // unterminated final fragment
            }
        }
        std::fs::write(&path, &torn).map_err(|e| pllbist_testkit::prop::CaseError::Fail(format!("write: {e}")))?;

        let log = CampaignLog::open(&path, BitsCodec, digest.clone(), points)
            .map_err(|e| {
                pllbist_testkit::prop::CaseError::Fail(format!(
                    "reopen of torn file must succeed: {e} file: {torn:?}"
                ))
            })?;
        prop_assert_eq!(log.completed_count(), intact, "file: {torn:?}");
        for i in 0..intact {
            prop_assert!(log.is_completed(i));
        }
        drop(log);
        let _ = std::fs::remove_file(&path);
        Ok(())
    });
}

#[test]
fn campaign_log_refuses_complete_records_after_a_hole() {
    let case = std::sync::atomic::AtomicU64::new(0);
    prop_check!(cases: 64, |g| {
        let path = scratch(
            "hole",
            case.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        );
        let _ = std::fs::remove_file(&path);
        let points = g.usize_range(2, 8);
        let digest = "fedcba9876543210".to_string();
        let log = CampaignLog::open(&path, BitsCodec, digest.clone(), points)
            .map_err(|e| pllbist_testkit::prop::CaseError::Fail(format!("fresh open: {e}")))?;
        for i in 0..points {
            log.record(i, &Ok(i as f64 + 0.25));
        }
        log.finish(true).map_err(|e| pllbist_testkit::prop::CaseError::Fail(format!("finish: {e}")))?;
        drop(log);

        // Corrupt one record that is NOT the last: a later record still
        // round-trips exactly, so the file has provably finished work
        // after a hole — recovery must refuse, not silently drop it.
        let text = std::fs::read_to_string(&path).map_err(|e| pllbist_testkit::prop::CaseError::Fail(format!("read: {e}")))?;
        let lines: Vec<&str> = text.lines().collect();
        let victim = 2 + g.usize_range(0, points - 1);
        let mut mangled: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        let keep = g.usize_range(0, lines[victim].len().saturating_sub(1));
        mangled[victim] = lines[victim][..keep].to_string();
        let mut body = mangled.join("\n");
        body.push('\n');
        std::fs::write(&path, &body).map_err(|e| pllbist_testkit::prop::CaseError::Fail(format!("write: {e}")))?;

        match CampaignLog::open(&path, BitsCodec, digest.clone(), points) {
            Err(CampaignError::Malformed { .. }) => {}
            Err(other) => prop_assert!(false, "wrong error {other} for file: {body:?}"),
            Ok(_) => prop_assert!(false, "hole must be refused, file: {body:?}"),
        }
        let _ = std::fs::remove_file(&path);
        Ok(())
    });
}

#[test]
fn u64_field_rejects_non_numeric_and_missing_keys() {
    prop_check!(cases: 256, |g| {
        let key: String = {
            let len = g.usize_range(1, 8);
            (0..len)
                .map(|_| g.pick(&['a', 'b', 'k', 'x', '_']))
                .collect()
        };
        let value = hostile_string(g);
        let line = format!("{{\"{key}\":{}}}", encode_str(&value));
        // A string value is never a number, and an absent key is None.
        prop_assert_eq!(json_u64_field(&line, &key), None, "line: {line}");
        prop_assert!(json_u64_field(&line, "absent_key").is_none());
        prop_assert!(json_bool_field(&line, "absent_key").is_none());
        prop_assert!(json_str_field(&line, "absent_key").is_none());
        Ok(())
    });
}
