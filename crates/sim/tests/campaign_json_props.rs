//! Adversarial property tests for the hand-rolled JSONL field parsers
//! the campaign stack reads its artifacts with
//! (`pllbist_sim::campaign::{json_u64_field, json_bool_field,
//! json_str_field}`, re-exported from `pllbist_telemetry::json`).
//!
//! Three hostile regimes are pinned:
//!
//! * **Torn lines** — a kill mid-write truncates a record at an
//!   arbitrary char boundary; every parser must return cleanly (no
//!   panic), and a string field must never fabricate a full value from
//!   a torn tail.
//! * **Escaped payloads** — quotes, backslashes, control characters and
//!   non-ASCII text inside string values must round-trip through the
//!   writer-side escaper and back.
//! * **Duplicate keys** — first occurrence wins, which is the contract
//!   that lets writers keep fixed tag keys ahead of free-text payloads.

use pllbist_sim::campaign::{json_bool_field, json_str_field, json_u64_field};
use pllbist_testkit::{prop_assert, prop_assert_eq, prop_assume, prop_check};

/// Writer-side escaper matching the workspace JSONL encoders
/// (`Record::to_json` and friends): `\" \\ \n \r \t`, and `\uXXXX` for
/// the remaining control characters.
fn encode_str(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A payload string biased towards the characters that break naive
/// parsers: quotes, backslashes, braces, colons, control chars, and a
/// sprinkle of non-ASCII.
fn hostile_string(g: &mut pllbist_testkit::prop::Gen) -> String {
    let len = g.usize_range(0, 24);
    let alphabet = [
        '"',
        '\\',
        '\n',
        '\r',
        '\t',
        '\u{1}',
        '{',
        '}',
        ':',
        ',',
        'a',
        'Z',
        '0',
        ' ',
        'µ',
        '→',
        '\u{1F600}',
    ];
    (0..len).map(|_| g.pick(&alphabet)).collect()
}

#[test]
fn str_field_round_trips_hostile_payloads() {
    prop_check!(cases: 512, |g| {
        let value = hostile_string(g);
        let trailer = hostile_string(g);
        let line = format!(
            "{{\"type\":\"note\",\"msg\":{},\"tail\":{}}}",
            encode_str(&value),
            encode_str(&trailer)
        );
        prop_assert_eq!(
            json_str_field(&line, "msg"),
            Some(value.clone()),
            "line: {line}"
        );
        Ok(())
    });
}

#[test]
fn parsers_survive_torn_lines_without_panicking() {
    prop_check!(cases: 512, |g| {
        let value = hostile_string(g);
        let n = g.u64_range(0, u64::MAX / 2);
        let b = g.bool();
        let line = format!(
            "{{\"type\":\"result\",\"index\":{n},\"ok\":{b},\"msg\":{}}}",
            encode_str(&value)
        );
        // Truncate at a random char boundary — the kill-mid-write shape
        // the campaign log's torn-tail tolerance is built around.
        let boundaries: Vec<usize> = line.char_indices().map(|(i, _)| i).collect();
        let cut = g.pick(&boundaries[..]);
        let torn = &line[..cut];
        // No panics; whatever comes back must be an honest prefix view.
        let _ = json_u64_field(torn, "index");
        let _ = json_bool_field(torn, "ok");
        let msg = json_str_field(torn, "msg");
        if let Some(parsed) = msg {
            // A string field only parses when its closing quote made it
            // into the torn prefix, so the value must be intact.
            prop_assert_eq!(parsed, value.clone(), "cut at {cut} of: {line}");
        }
        // The untorn line always parses exactly.
        prop_assert_eq!(json_u64_field(&line, "index"), Some(n));
        prop_assert_eq!(json_bool_field(&line, "ok"), Some(b));
        Ok(())
    });
}

#[test]
fn duplicate_keys_resolve_to_first_occurrence() {
    prop_check!(cases: 512, |g| {
        let first = g.u64_range(0, 1_000_000);
        let second = g.u64_range(0, 1_000_000);
        prop_assume!(first != second);
        let first_b = g.bool();
        let first_s = hostile_string(g);
        let second_s = hostile_string(g);
        let line = format!(
            "{{\"n\":{first},\"flag\":{first_b},\"s\":{},\"n\":{second},\"flag\":{},\"s\":{}}}",
            encode_str(&first_s),
            !first_b,
            encode_str(&second_s)
        );
        prop_assert_eq!(json_u64_field(&line, "n"), Some(first));
        prop_assert_eq!(json_bool_field(&line, "flag"), Some(first_b));
        prop_assert_eq!(json_str_field(&line, "s"), Some(first_s.clone()));
        Ok(())
    });
}

#[test]
fn u64_field_rejects_non_numeric_and_missing_keys() {
    prop_check!(cases: 256, |g| {
        let key: String = {
            let len = g.usize_range(1, 8);
            (0..len)
                .map(|_| g.pick(&['a', 'b', 'k', 'x', '_']))
                .collect()
        };
        let value = hostile_string(g);
        let line = format!("{{\"{key}\":{}}}", encode_str(&value));
        // A string value is never a number, and an absent key is None.
        prop_assert_eq!(json_u64_field(&line, &key), None, "line: {line}");
        prop_assert!(json_u64_field(&line, "absent_key").is_none());
        prop_assert!(json_bool_field(&line, "absent_key").is_none());
        prop_assert!(json_str_field(&line, "absent_key").is_none());
        Ok(())
    });
}
