//! Contract tests for the event-driven backend under the full campaign
//! stack: supervision, telemetry, checkpointing, observation and
//! resumable results files must neither steer the physics nor break the
//! standing invariant — healthy runs are bitwise identical at every
//! thread count, and a killed campaign resumes byte-identically.

use std::path::PathBuf;
use std::sync::Arc;

use pllbist_sim::bench_measure::{measure_sweep_points, run_sweep, BenchSettings};
use pllbist_sim::campaign::{bits_hex, f64_from_bits_hex, json_str_field, CampaignLog, PointCodec};
use pllbist_sim::config::PllConfig;
use pllbist_sim::event_driven::EventDrivenCpPll;
use pllbist_sim::observe::{CampaignObserver, ObservatoryConfig};
use pllbist_sim::scenario::Scenario;
use pllbist_sim::{CampaignPlan, PllEngine, Scheduler, SupervisorPolicy, SweepPointError};
use pllbist_telemetry::{Collector, Fields, TelemetryConfig, Value};

fn quick_settings() -> BenchSettings {
    BenchSettings {
        settle_periods: 1.0,
        measure_periods: 2.0,
        samples_per_period: 32,
        ..BenchSettings::default()
    }
}

fn event_plan(cfg: &PllConfig, threads: usize) -> CampaignPlan<EventDrivenCpPll> {
    let scheduler = if threads == 1 {
        Scheduler::Serial
    } else {
        Scheduler::WorkStealing { threads }
    };
    CampaignPlan::new(cfg.clone())
        .engine::<EventDrivenCpPll>()
        .scheduler(scheduler)
        .supervised(SupervisorPolicy::default())
        .telemetry(TelemetryConfig::enabled())
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pllbist_event_campaign_it");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn supervised_event_campaign_is_bitwise_identical_at_threads_1_4_16() {
    // The standing invariant on the new backend: supervision + telemetry
    // + lock checkpointing enabled, any thread count, same bits.
    let cfg = PllConfig::paper_table3();
    let tones = [2.0, 5.0, 11.0, 24.0];
    let baseline = run_sweep(&event_plan(&cfg, 1), &tones, &quick_settings()).unwrap();
    assert_eq!(baseline.quarantined_count(), 0);
    // Supervision itself observes without steering: the bare sweep
    // produces the same bits.
    let bare_plan = event_plan(&cfg, 1).unsupervised();
    let bare = measure_sweep_points(&bare_plan, &tones, &quick_settings());
    for (a, b) in baseline.points.iter().zip(&bare) {
        let a = a.as_ref().unwrap();
        assert_eq!(a.gain.to_bits(), b.gain.to_bits());
        assert_eq!(a.phase.to_bits(), b.phase.to_bits());
    }
    for threads in [4usize, 16] {
        let run = run_sweep(&event_plan(&cfg, threads), &tones, &quick_settings()).unwrap();
        assert!(run.incidents.is_empty(), "threads {threads}");
        assert!(!run.telemetry.is_empty(), "threads {threads}");
        for (i, (a, b)) in baseline.points.iter().zip(&run.points).enumerate() {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(
                a.gain.to_bits(),
                b.gain.to_bits(),
                "threads {threads}: gain at point {i}"
            );
            assert_eq!(
                a.phase.to_bits(),
                b.phase.to_bits(),
                "threads {threads}: phase at point {i}"
            );
        }
    }
}

#[test]
fn killed_event_campaign_resumes_byte_identically_at_every_thread_count() {
    let cfg = PllConfig::paper_table3();
    let tones = [2.0, 6.0, 14.0, 28.0];
    let path = tmp("event_kill_resume.jsonl");
    let _ = std::fs::remove_file(&path);

    let reference_run = run_sweep(
        &event_plan(&cfg, 1).resume_from(&path),
        &tones,
        &quick_settings(),
    )
    .expect("reference run");
    assert_eq!(reference_run.quarantined_count(), 0);
    let reference = std::fs::read(&path).expect("results file");
    let lines: Vec<String> = std::str::from_utf8(&reference)
        .expect("utf8")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(lines.len(), 2 + tones.len());

    for (kill_after, resume_threads) in [(1usize, 4usize), (2, 16), (3, 1)] {
        let mut killed = lines[..2 + kill_after].join("\n");
        killed.push('\n');
        killed.push_str("{\"type\":\"result\",\"name\":\"campaign.po");
        std::fs::write(&path, &killed).expect("write killed file");

        let resumed = run_sweep(
            &event_plan(&cfg, resume_threads).resume_from(&path),
            &tones,
            &quick_settings(),
        )
        .expect("resumed run");
        for (a, b) in reference_run.points.iter().zip(&resumed.points) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.gain.to_bits(), b.gain.to_bits());
            assert_eq!(a.phase.to_bits(), b.phase.to_bits());
        }
        assert_eq!(
            std::fs::read(&path).expect("resumed file"),
            reference,
            "killed after {kill_after}, resumed on {resume_threads} threads"
        );
    }
    std::fs::remove_file(&path).expect("cleanup");
}

/// Campaign codec over a plain `f64` point (control voltage).
struct VoltageCodec;

impl PointCodec for VoltageCodec {
    type Point = f64;

    fn encode(&self, point: &f64) -> Fields {
        vec![("v_bits".to_string(), Value::Str(bits_hex(*point)))]
    }

    fn decode(&self, line: &str) -> Option<f64> {
        f64_from_bits_hex(&json_str_field(line, "v_bits")?)
    }
}

const TONES: [f64; 6] = [1.0, 3.0, 7.0, 9.0, 21.0, 55.0];
const SICK_TONE: f64 = 9.0;

fn capture(
    pll: &mut pllbist_sim::Supervised<EventDrivenCpPll>,
    fm: f64,
) -> Result<f64, SweepPointError> {
    let t = pll.time();
    pll.advance_to(t + 0.02);
    if fm == SICK_TONE {
        // One typed, deterministic failure so the observed run carries
        // real retry and quarantine traffic on the event backend too.
        return Err(SweepPointError::DegenerateFit { f_mod_hz: fm });
    }
    Ok(pll.control_voltage())
}

fn run_observed(path: &PathBuf, threads: usize, observer: Option<&CampaignObserver>) -> usize {
    let cfg = PllConfig::paper_table3();
    let scenario = Scenario::with_lock_settle(&cfg, 0.1);
    let policy = SupervisorPolicy::default();
    let tel = Collector::disabled();
    let log = CampaignLog::open(path, VoltageCodec, "evobs00000000001".into(), TONES.len())
        .expect("open log");
    let swept = scenario.run_points::<EventDrivenCpPll, VoltageCodec, _>(
        &TONES,
        threads,
        true,
        Some(&policy),
        &tel,
        Some(&log),
        None,
        observer,
        capture,
    );
    log.finish(true).expect("complete");
    swept.quarantined_count()
}

#[test]
fn observed_event_campaign_is_byte_identical_to_unobserved() {
    // The observed work-stealing path on the new backend: progress board
    // + flight recorder attached, a sick point quarantining on every
    // run, and the results file must still match the unobserved
    // single-thread reference byte for byte.
    let reference_path = tmp("event_plain.jsonl");
    let _ = std::fs::remove_file(&reference_path);
    assert_eq!(run_observed(&reference_path, 1, None), 1);
    let reference = std::fs::read(&reference_path).expect("reference bytes");

    for threads in [1usize, 4, 16] {
        let path = tmp(&format!("event_observed_t{threads}.jsonl"));
        let _ = std::fs::remove_file(&path);
        let observer = Arc::new(CampaignObserver::new(
            TONES.len(),
            threads,
            ObservatoryConfig::default(),
        ));
        let quarantined = run_observed(&path, threads, Some(&observer));
        assert_eq!(quarantined, 1, "threads {threads}");
        assert_eq!(
            std::fs::read(&path).expect("observed bytes"),
            reference,
            "threads {threads}: observation must not steer"
        );
        std::fs::remove_file(&path).expect("cleanup");
    }
    std::fs::remove_file(&reference_path).expect("cleanup");
}
