//! Contract tests for the work-stealing campaign stack: bitwise
//! identity of supervised sweeps at every thread count (telemetry on),
//! agreement between the work-stealing and serial schedulers with
//! contained failures, and byte-identical resume of a killed campaign
//! results file — including quarantined points — across thread counts.

use pllbist_sim::bench_measure::{run_sweep, BenchSettings};
use pllbist_sim::campaign::{bits_hex, f64_from_bits_hex, json_str_field, CampaignLog, PointCodec};
use pllbist_sim::config::PllConfig;
use pllbist_sim::scenario::Scenario;
use pllbist_sim::{
    CampaignPlan, ClosedFormPll, PllEngine, Scheduler, SupervisorPolicy, SweepPointError,
};
use pllbist_telemetry::{Collector, Fields, TelemetryConfig, Value};
use std::path::PathBuf;

fn quick_settings() -> BenchSettings {
    BenchSettings {
        settle_periods: 1.0,
        measure_periods: 2.0,
        samples_per_period: 32,
        ..BenchSettings::default()
    }
}

fn quick_plan(cfg: &PllConfig, threads: usize) -> CampaignPlan {
    let scheduler = if threads == 1 {
        Scheduler::Serial
    } else {
        Scheduler::WorkStealing { threads }
    };
    CampaignPlan::new(cfg.clone())
        .scheduler(scheduler)
        .supervised(SupervisorPolicy::default())
        .telemetry(TelemetryConfig::enabled())
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pllbist_campaign_it");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn supervised_campaign_is_bitwise_identical_at_threads_1_4_16() {
    // The standing invariant, now under the work-stealing scheduler:
    // telemetry + supervision enabled, any thread count, same bits.
    let cfg = PllConfig::paper_table3();
    let tones = [2.0, 5.0, 11.0, 24.0];
    let baseline = run_sweep(&quick_plan(&cfg, 1), &tones, &quick_settings()).unwrap();
    assert_eq!(baseline.quarantined_count(), 0);
    for threads in [4usize, 16] {
        let run = run_sweep(&quick_plan(&cfg, threads), &tones, &quick_settings()).unwrap();
        assert!(run.incidents.is_empty(), "threads {threads}");
        assert!(!run.telemetry.is_empty(), "threads {threads}");
        for (i, (a, b)) in baseline.points.iter().zip(&run.points).enumerate() {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(
                a.gain.to_bits(),
                b.gain.to_bits(),
                "threads {threads}: gain at point {i}"
            );
            assert_eq!(
                a.phase.to_bits(),
                b.phase.to_bits(),
                "threads {threads}: phase at point {i}"
            );
        }
    }
}

/// Two supervised sweeps must agree outcome-for-outcome: healthy values
/// bit-for-bit, quarantined errors variant-for-variant.
fn assert_same_outcomes(
    a: &[Result<f64, SweepPointError>],
    b: &[Result<f64, SweepPointError>],
    label: &str,
) {
    assert_eq!(a.len(), b.len(), "{label}");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        match (x, y) {
            (Ok(vx), Ok(vy)) => assert_eq!(vx.to_bits(), vy.to_bits(), "{label}: point {i}"),
            (Err(ex), Err(ey)) => assert_eq!(ex, ey, "{label}: point {i}"),
            _ => panic!("{label}: point {i} ok/err disagreement"),
        }
    }
}

#[test]
fn stealing_scheduler_matches_serial_with_contained_failures() {
    let cfg = PllConfig::paper_table3();
    let tones = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    let policy = SupervisorPolicy::default();
    let scenario = Scenario::with_lock_settle(&cfg, 0.1);
    let capture = |pll: &mut pllbist_sim::Supervised<ClosedFormPll>,
                   fm: f64|
     -> Result<f64, SweepPointError> {
        let t = pll.time();
        pll.advance_to(t + 0.02);
        if fm == 8.0 {
            // Typed, retryable: every thread count walks the same
            // deterministic retry ladder before quarantining.
            return Err(SweepPointError::DegenerateFit { f_mod_hz: fm });
        }
        Ok(pll.control_voltage())
    };
    let tel = Collector::disabled();
    let run = |threads: usize| {
        scenario.run_points::<ClosedFormPll, pllbist_sim::NullCodec<f64>, _>(
            &tones,
            threads,
            true,
            Some(&policy),
            &tel,
            None,
            None,
            None,
            capture,
        )
    };
    let serial = run(1);
    assert_eq!(serial.quarantined_count(), 1);
    assert_eq!(serial.incidents.len(), policy.max_retries as usize + 1);
    for threads in [4usize, 16] {
        let stealing = run(threads);
        assert_same_outcomes(
            &serial.points,
            &stealing.points,
            &format!("threads {threads}"),
        );
        assert_eq!(stealing.incidents.len(), serial.incidents.len());
    }
}

#[test]
fn killed_bench_campaign_resumes_byte_identically_at_every_thread_count() {
    let cfg = PllConfig::paper_table3();
    let tones = [2.0, 6.0, 14.0, 28.0];
    let path = tmp("bench_kill_resume.jsonl");
    let _ = std::fs::remove_file(&path);

    // Uninterrupted reference run.
    let reference_run = run_sweep(
        &quick_plan(&cfg, 1).resume_from(&path),
        &tones,
        &quick_settings(),
    )
    .expect("reference run");
    assert_eq!(reference_run.quarantined_count(), 0);
    let reference = std::fs::read(&path).expect("results file");
    let lines: Vec<String> = std::str::from_utf8(&reference)
        .expect("utf8")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(lines.len(), 2 + tones.len());

    for (kill_after, resume_threads) in [(1usize, 4usize), (2, 16), (3, 1)] {
        // A kill mid-write leaves a clean prefix plus one torn line.
        let mut killed = lines[..2 + kill_after].join("\n");
        killed.push('\n');
        killed.push_str("{\"type\":\"result\",\"name\":\"campaign.po");
        std::fs::write(&path, &killed).expect("write killed file");

        let resumed = run_sweep(
            &quick_plan(&cfg, resume_threads).resume_from(&path),
            &tones,
            &quick_settings(),
        )
        .expect("resumed run");
        for (a, b) in reference_run.points.iter().zip(&resumed.points) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.gain.to_bits(), b.gain.to_bits());
            assert_eq!(a.phase.to_bits(), b.phase.to_bits());
        }
        assert_eq!(
            std::fs::read(&path).expect("resumed file"),
            reference,
            "killed after {kill_after}, resumed on {resume_threads} threads"
        );
    }
    std::fs::remove_file(&path).expect("cleanup");
}

/// Campaign codec over a plain `f64` point (control voltage).
struct VoltageCodec;

impl PointCodec for VoltageCodec {
    type Point = f64;

    fn encode(&self, point: &f64) -> Fields {
        vec![("v_bits".to_string(), Value::Str(bits_hex(*point)))]
    }

    fn decode(&self, line: &str) -> Option<f64> {
        f64_from_bits_hex(&json_str_field(line, "v_bits")?)
    }
}

#[test]
fn resumed_campaign_with_quarantined_points_stays_byte_identical() {
    // Quarantined outcomes are part of the results file; a resume must
    // reproduce their lines exactly too.
    let cfg = PllConfig::paper_table3();
    let tones = [1.0, 3.0, 9.0, 27.0, 81.0];
    let policy = SupervisorPolicy::default();
    let scenario = Scenario::with_lock_settle(&cfg, 0.1);
    let digest = "abl12test00000001".chars().take(16).collect::<String>();
    let path = tmp("sick_kill_resume.jsonl");
    let _ = std::fs::remove_file(&path);
    let capture = |pll: &mut pllbist_sim::Supervised<ClosedFormPll>,
                   fm: f64|
     -> Result<f64, SweepPointError> {
        let t = pll.time();
        pll.advance_to(t + 0.02);
        if fm == 9.0 {
            return Err(SweepPointError::DegenerateFit { f_mod_hz: fm });
        }
        Ok(pll.control_voltage())
    };
    let run = |threads: usize| {
        let log =
            CampaignLog::open(&path, VoltageCodec, digest.clone(), tones.len()).expect("open log");
        let tel = Collector::disabled();
        let swept = scenario.run_points::<ClosedFormPll, VoltageCodec, _>(
            &tones,
            threads,
            true,
            Some(&policy),
            &tel,
            Some(&log),
            None,
            None,
            capture,
        );
        log.finish(true).expect("complete");
        swept
    };

    let reference_run = run(1);
    assert_eq!(reference_run.quarantined_count(), 1);
    let reference = std::fs::read(&path).expect("results file");
    let lines: Vec<String> = std::str::from_utf8(&reference)
        .expect("utf8")
        .lines()
        .map(str::to_string)
        .collect();

    // Kill right after the quarantined point's line landed, so the
    // resume must both skip a quarantined record and recompute healthy
    // ones — then again before it, so it must recompute the failure.
    for (kill_after, resume_threads) in [(3usize, 4usize), (2, 16), (1, 1)] {
        let mut killed = lines[..2 + kill_after].join("\n");
        killed.push('\n');
        killed.push_str("{\"type\":\"result\",\"na");
        std::fs::write(&path, &killed).expect("write killed file");
        let resumed = run(resume_threads);
        assert_same_outcomes(
            &reference_run.points,
            &resumed.points,
            &format!("kill {kill_after}, threads {resume_threads}"),
        );
        assert_eq!(
            std::fs::read(&path).expect("resumed file"),
            reference,
            "killed after {kill_after}, resumed on {resume_threads} threads"
        );
    }
    std::fs::remove_file(&path).expect("cleanup");
}
