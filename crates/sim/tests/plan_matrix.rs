//! The correctness oracle for the `CampaignPlan` pipeline, as a seeded
//! property: EVERY combination of plan options — engine, checkpointing,
//! supervision, scheduler, observation — lowered onto the single
//! campaign runner must reproduce the serial unsupervised baseline for
//! its engine bit for bit on a healthy grid. Plus the digest/header
//! round trip, including rejection of a backend mismatch.

use std::sync::Arc;

use pllbist_sim::config::PllConfig;
use pllbist_sim::observe::{CampaignObserver, ObservatoryConfig};
use pllbist_sim::{
    run_plan, CampaignError, CampaignPlan, ClosedFormPll, EventDrivenCpPll, NullCodec, PllEngine,
    Scheduler, SupervisorPolicy,
};
use pllbist_testkit::{prop_assert_eq, prop_check};

const TONES: [f64; 5] = [1.0, 3.0, 8.0, 17.0, 40.0];

/// Runs the plan over [`TONES`] with a control-voltage capture and
/// returns the exact bit patterns, panicking on any quarantine (the
/// grid is healthy by construction).
fn sweep_bits<E: PllEngine>(plan: &CampaignPlan<E>) -> Vec<u64> {
    let out = run_plan(
        plan,
        &TONES,
        NullCodec::<f64>::new(),
        "plan-matrix",
        |pll, _fm, _tel| {
            let t = pll.time();
            pll.advance_to(t + 0.02);
            Ok(pll.control_voltage())
        },
    )
    .expect("no campaign log in play");
    assert!(out.incidents.is_empty(), "healthy grid saw incidents");
    out.points
        .into_iter()
        .map(|p| p.expect("healthy point").to_bits())
        .collect()
}

#[test]
fn every_plan_combination_matches_the_serial_unsupervised_baseline() {
    let cfg = PllConfig::paper_table3();
    let serial = |plan: CampaignPlan| plan.lock_settle(0.1).scheduler(Scheduler::Serial);
    let closed_baseline =
        sweep_bits(&serial(CampaignPlan::new(cfg.clone())).engine::<ClosedFormPll>());
    let event_baseline =
        sweep_bits(&serial(CampaignPlan::new(cfg.clone())).engine::<EventDrivenCpPll>());

    prop_check!(cases: 24, |g| {
        let event_engine = g.bool();
        let checkpoint = g.bool();
        let supervised = g.bool();
        let observed = g.bool();
        let threads = g.pick(&[1usize, 2, 4, 8]);
        let scheduler = if threads == 1 {
            Scheduler::Serial
        } else {
            Scheduler::WorkStealing { threads }
        };
        let mut plan = CampaignPlan::new(cfg.clone())
            .lock_settle(0.1)
            .checkpoint(checkpoint)
            .scheduler(scheduler);
        if supervised {
            plan = plan.supervised(SupervisorPolicy::default());
        }
        if observed {
            plan = plan.observed(Arc::new(CampaignObserver::new(
                TONES.len(),
                threads,
                ObservatoryConfig::default(),
            )));
        }
        let label = format!(
            "engine {} checkpoint {checkpoint} supervised {supervised} \
             observed {observed} threads {threads}",
            if event_engine { "event" } else { "closed_form" },
        );
        let (bits, want) = if event_engine {
            (sweep_bits(&plan.engine::<EventDrivenCpPll>()), &event_baseline)
        } else {
            (sweep_bits(&plan.engine::<ClosedFormPll>()), &closed_baseline)
        };
        prop_assert_eq!(&bits, want, "{}", label);
        Ok(())
    });
}

#[test]
fn plan_header_round_trips_and_rejects_backend_mismatch() {
    let cfg = PllConfig::paper_table3();
    let tones = [1.0, 4.0, 16.0];
    let plan = CampaignPlan::new(cfg.clone())
        .engine::<EventDrivenCpPll>()
        .lock_settle(0.25)
        .checkpoint(false)
        .supervised(SupervisorPolicy::default());
    let line = plan.header_line(&tones, "matrix");

    // Round trip: same digest, byte-identical re-serialisation.
    let back = CampaignPlan::<EventDrivenCpPll>::from_header(&line, cfg.clone(), &tones, "matrix")
        .expect("own backend round-trips");
    assert_eq!(back.digest(&tones, "matrix"), plan.digest(&tones, "matrix"));
    assert_eq!(back.header_line(&tones, "matrix"), line);

    // A header written by a different backend must be refused: loading
    // event-driven results into a closed-form campaign would silently
    // mix physics.
    let err = CampaignPlan::<ClosedFormPll>::from_header(&line, cfg, &tones, "matrix")
        .expect_err("backend mismatch must be rejected");
    assert!(
        matches!(err, CampaignError::HeaderMismatch { .. }),
        "wrong error: {err}"
    );
}

#[test]
fn scheduling_knobs_never_touch_the_digest() {
    // The digest names the *work*, not the execution policy: the same
    // campaign resumed on a different machine (thread count, observer,
    // telemetry) must hash identically — while any result-affecting
    // option must not.
    let cfg = PllConfig::paper_table3();
    let tones = [2.0, 9.0, 30.0];
    let base = CampaignPlan::new(cfg.clone()).supervised(SupervisorPolicy::default());
    let digest = base.digest(&tones, "matrix");
    let rescheduled = base
        .clone()
        .scheduler(Scheduler::WorkStealing { threads: 16 })
        .observed(Arc::new(CampaignObserver::new(
            tones.len(),
            16,
            ObservatoryConfig::default(),
        )));
    assert_eq!(rescheduled.digest(&tones, "matrix"), digest);
    // Checkpointing is proven result-neutral (the standing bitwise
    // invariant), so it is digest-neutral too.
    assert_eq!(
        base.clone().checkpoint(false).digest(&tones, "matrix"),
        digest
    );
    assert_ne!(base.clone().unsupervised().digest(&tones, "matrix"), digest);
    assert_ne!(base.digest(&tones, "other-salt"), digest);
}
