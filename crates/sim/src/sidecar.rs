//! Persisted lock-state checkpoint sidecar.
//!
//! A checkpointed campaign pays its settle transient once per process:
//! [`crate::scenario::Scenario::run_points`] settles one engine, snapshots
//! it, and every point restores the snapshot. Across a **process death**
//! that settle was repaid on every restart — for the crash-only campaign
//! service that is the dominant recovery cost on small grids. The
//! [`LockSidecar`] closes the gap: after the settle, the snapshot is
//! serialised bit-exactly (via [`PllEngine::encode_checkpoint`]) into a
//! small JSONL file next to the campaign results file, and a resumed run
//! loads it instead of re-settling.
//!
//! The sidecar is pure cache, never truth:
//!
//! * it stores the campaign's **config digest** and the engine's
//!   [`backend_name`](PllEngine::backend_name); a mismatch on load —
//!   different config, different backend, stale file — rejects the
//!   sidecar and the run re-settles exactly as before;
//! * a torn or garbled file (kill mid-write) likewise rejects — the
//!   token codecs refuse any truncated prefix;
//! * the file is written via temp-file + rename, so a crash during
//!   `store` leaves either the old sidecar or the new one, never a
//!   half-written file at the final path;
//! * backends whose state cannot be persisted bit-exactly (noise RNG
//!   attached, gate-level cosim) simply decline
//!   ([`PllEngine::encode_checkpoint`] returns `None`) and nothing is
//!   written.
//!
//! Because [`PllEngine::restore`] is bit-exact and the encode/decode
//! pair round-trips f64 bits, a sidecar-resumed campaign produces a
//! byte-identical results file — the workspace's standing determinism
//! invariant extended across process death (asserted end-to-end by
//! `abl15_crash_only_service`).

use crate::engine::PllEngine;
use pllbist_telemetry::json::json_str_field;
use pllbist_telemetry::{Fields, Record, Value, SCHEMA_VERSION};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The `bin` tag in a sidecar's run header.
const SIDECAR_BIN: &str = "ckpt";

/// The outcome of [`LockSidecar::load`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SidecarOutcome<C> {
    /// Checkpoint loaded, validated against digest and backend.
    Hit(C),
    /// No sidecar file on disk — the normal first-run case.
    Absent,
    /// A file exists but is unusable (torn, foreign digest, wrong
    /// backend, undecodable token); the reason feeds the flight
    /// recorder's note event. The run re-settles.
    Rejected(String),
}

/// A lock-state checkpoint cache bound to one campaign digest.
///
/// See the [module docs](self) for the contract. The struct itself is
/// engine-agnostic; [`store`](Self::store) and [`load`](Self::load) are
/// generic over the backend so one sidecar path serves every engine.
#[derive(Clone, Debug)]
pub struct LockSidecar {
    path: PathBuf,
    digest: String,
}

impl LockSidecar {
    /// A sidecar at an explicit path for the campaign with `digest`.
    pub fn at(path: impl Into<PathBuf>, digest: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            digest: digest.into(),
        }
    }

    /// The conventional sidecar next to a campaign results file:
    /// `results.jsonl` → `results.ckpt`.
    pub fn for_results_file(results: impl AsRef<Path>, digest: impl Into<String>) -> Self {
        Self::at(results.as_ref().with_extension("ckpt"), digest)
    }

    /// The sidecar file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The campaign digest this sidecar is bound to.
    pub fn digest(&self) -> &str {
        &self.digest
    }

    /// Persists a settled-lock snapshot. Returns `Ok(true)` when the
    /// file was written, `Ok(false)` when the backend declines
    /// persistence (nothing written, any stale sidecar removed so it
    /// cannot outlive the state it cached).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the temp-file write or rename.
    pub fn store<E: PllEngine>(&self, snapshot: &E::Checkpoint) -> Result<bool, std::io::Error> {
        let Some(token) = E::encode_checkpoint(snapshot) else {
            let _ = std::fs::remove_file(&self.path);
            return Ok(false);
        };
        let fields: Fields = vec![
            ("digest".to_string(), Value::Str(self.digest.clone())),
            (
                "backend".to_string(),
                Value::Str(E::backend_name().to_string()),
            ),
            ("state".to_string(), Value::Str(token)),
        ];
        let body = format!(
            "{}\n{}\n",
            Record::Run {
                bin: SIDECAR_BIN.to_string(),
                schema: SCHEMA_VERSION,
            }
            .to_json(),
            Record::Result {
                name: "ckpt.state".to_string(),
                fields,
            }
            .to_json()
        );
        // Temp-file + rename: a kill mid-store leaves the previous
        // sidecar (or none), never a torn file at the final path.
        let tmp = self.path.with_extension("ckpt.tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(body.as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        Ok(true)
    }

    /// Loads and validates the cached snapshot. Never errors: every
    /// failure mode degrades to [`SidecarOutcome::Absent`] /
    /// [`SidecarOutcome::Rejected`] and the campaign re-settles.
    pub fn load<E: PllEngine>(&self) -> SidecarOutcome<E::Checkpoint> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(text) => text,
            Err(_) => return SidecarOutcome::Absent,
        };
        if !text.ends_with('\n') {
            return SidecarOutcome::Rejected("torn sidecar (no trailing newline)".to_string());
        }
        let lines: Vec<&str> = text.lines().collect();
        if lines.len() != 2 {
            return SidecarOutcome::Rejected(format!(
                "sidecar has {} lines, expected 2",
                lines.len()
            ));
        }
        let expected_header = Record::Run {
            bin: SIDECAR_BIN.to_string(),
            schema: SCHEMA_VERSION,
        }
        .to_json();
        if lines[0] != expected_header {
            return SidecarOutcome::Rejected("sidecar run header mismatch".to_string());
        }
        let (Some(digest), Some(backend), Some(state)) = (
            json_str_field(lines[1], "digest"),
            json_str_field(lines[1], "backend"),
            json_str_field(lines[1], "state"),
        ) else {
            return SidecarOutcome::Rejected("sidecar state line malformed".to_string());
        };
        if digest != self.digest {
            return SidecarOutcome::Rejected(format!(
                "sidecar digest {digest} does not match campaign {}",
                self.digest
            ));
        }
        if backend != E::backend_name() {
            return SidecarOutcome::Rejected(format!(
                "sidecar backend {backend} does not match engine {}",
                E::backend_name()
            ));
        }
        match E::decode_checkpoint(&state) {
            Some(snapshot) => SidecarOutcome::Hit(snapshot),
            None => SidecarOutcome::Rejected("sidecar state token undecodable".to_string()),
        }
    }

    /// Removes the sidecar file if present (job cleanup).
    pub fn remove(&self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavioral::CpPll;
    use crate::config::PllConfig;
    use crate::engine::ClosedFormPll;
    use crate::event_driven::EventDrivenCpPll;
    use crate::scenario::Scenario;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pllbist_sidecar_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn settled<E: PllEngine>(secs: f64) -> (PllConfig, E) {
        let cfg = PllConfig::paper_table3();
        let scenario = Scenario::with_lock_settle(&cfg, secs);
        let pll = scenario.settle_fresh::<E>();
        (cfg, pll)
    }

    #[test]
    fn store_load_round_trip_is_bit_exact_for_both_engines() {
        fn check<E: PllEngine>(name: &str) {
            let (cfg, pll) = settled::<E>(0.05);
            let snap = pll.checkpoint();
            let sidecar = LockSidecar::at(tmp(name), "1111222233334444");
            assert!(sidecar.store::<E>(&snap).unwrap());
            let SidecarOutcome::Hit(loaded) = sidecar.load::<E>() else {
                panic!("expected a hit");
            };
            // Bit-exactness: advance both restored engines and compare.
            let mut a = E::new_locked(&cfg);
            a.restore(&snap);
            let mut b = E::new_locked(&cfg);
            b.restore(&loaded);
            let t = a.time() + 0.1;
            a.advance_to(t);
            b.advance_to(t);
            assert_eq!(
                a.vco_phase_cycles().to_bits(),
                b.vco_phase_cycles().to_bits()
            );
            assert_eq!(a.control_voltage().to_bits(), b.control_voltage().to_bits());
            assert_eq!(a.work_stats(), b.work_stats());
            sidecar.remove();
            assert_eq!(
                std::mem::discriminant(&sidecar.load::<E>()),
                std::mem::discriminant(&SidecarOutcome::Absent)
            );
        }
        check::<CpPll>("roundtrip_cp.ckpt");
        check::<EventDrivenCpPll>("roundtrip_ev.ckpt");
    }

    #[test]
    fn wrong_digest_backend_or_torn_file_rejects() {
        let (_cfg, pll) = settled::<CpPll>(0.02);
        let snap = pll.checkpoint();
        let sidecar = LockSidecar::at(tmp("guards.ckpt"), "aaaabbbbccccdddd");
        assert!(sidecar.store::<CpPll>(&snap).unwrap());

        // Foreign digest.
        let foreign = LockSidecar::at(sidecar.path(), "eeeeffff00001111");
        assert!(matches!(
            foreign.load::<CpPll>(),
            SidecarOutcome::Rejected(reason) if reason.contains("digest")
        ));
        // Wrong backend.
        assert!(matches!(
            sidecar.load::<EventDrivenCpPll>(),
            SidecarOutcome::Rejected(reason) if reason.contains("backend")
        ));
        // Torn file: every truncation of the stored bytes rejects (or is
        // absent when empty) — never a bogus hit.
        let full = std::fs::read_to_string(sidecar.path()).unwrap();
        for cut in 0..full.len() {
            std::fs::write(sidecar.path(), &full[..cut]).unwrap();
            assert!(
                !matches!(sidecar.load::<CpPll>(), SidecarOutcome::Hit(_)),
                "truncation at {cut} must not load"
            );
        }
        sidecar.remove();
    }

    #[test]
    fn unsupported_backend_declines_and_clears_stale_files() {
        let (_cfg, pll) = settled::<CpPll>(0.02);
        let snap = pll.checkpoint();
        let sidecar = LockSidecar::at(tmp("decline.ckpt"), "9999888877776666");
        assert!(sidecar.store::<CpPll>(&snap).unwrap());
        // The closed-form adapter keeps the trait default (no
        // persistence); storing through it must remove the stale file.
        let cfg = PllConfig::paper_table3();
        let cf = ClosedFormPll::new(&cfg);
        let cf_snap = cf.checkpoint();
        assert!(!sidecar.store::<ClosedFormPll>(&cf_snap).unwrap());
        assert!(matches!(sidecar.load::<CpPll>(), SidecarOutcome::Absent));
    }

    #[test]
    fn noisy_engine_declines_persistence() {
        let cfg = PllConfig::paper_table3();
        let mut pll = CpPll::new_locked(&cfg);
        pll.set_noise(Some(crate::noise::NoiseConfig::symmetric(2e-7, 42)));
        pll.advance_to(0.02);
        let snap = pll.checkpoint();
        assert!(
            <CpPll as PllEngine>::encode_checkpoint(&snap).is_none(),
            "RNG state must decline persistence"
        );
        let sidecar = LockSidecar::at(tmp("noisy.ckpt"), "5555444433332222");
        assert!(!sidecar.store::<CpPll>(&snap).unwrap());
    }
}
