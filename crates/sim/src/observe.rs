//! Campaign observability: the read-only observer that a resumable
//! supervised sweep reports into.
//!
//! A [`CampaignObserver`] bundles the lock-free progress board
//! ([`pllbist_telemetry::ProgressBoard`]), the flight-recorder ring
//! ([`pllbist_telemetry::FlightRecorder`]) and a stall detector. The
//! sweep path ([`crate::scenario::Scenario::run_points`], reached by
//! attaching the observer via [`crate::plan::CampaignPlan::observed`])
//! calls its hooks as points are claimed, finished and flushed; the
//! status server ([`crate::server::StatusServer`]) and the `--progress`
//! terminal line read snapshots back out.
//!
//! **No-steering contract.** Every hook is observation only: relaxed
//! atomic increments, a mutex push on an event ring, wall-clock reads.
//! Nothing an observer does feeds back into scheduling, retry decisions
//! or physics — which is why a healthy campaign's results file stays
//! byte-identical with an observer attached, at every thread count
//! (pinned by `tests/campaign_observatory.rs`).
//!
//! **Flight dumps.** The recorder ring is dumped to the configured
//! sidecar path on stall detection ([`CampaignObserver::check_stall`]),
//! on clean [`CampaignObserver::finish`], and from `Drop` when the
//! observer dies without finishing (a panic unwinding the campaign, or
//! an early abort) — so a killed run leaves a parseable timeline of its
//! last moments.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

use crate::error::{SweepPointError, ERROR_KINDS};
use crate::supervisor::{Incident, IncidentAction, PointOutcome};
use pllbist_telemetry::progress::{CampaignProgress, ProgressBoard};
use pllbist_telemetry::recorder::{FlightEventKind, FlightRecorder, NO_POINT};

/// Knobs for one campaign's observer.
#[derive(Clone, Debug)]
pub struct ObservatoryConfig {
    /// Flight-recorder ring capacity (events kept).
    pub recorder_capacity: usize,
    /// Stall threshold as a multiple of the median point wall time.
    pub stall_multiple: f64,
    /// Stall threshold floor in seconds (guards the early phase, when
    /// no median exists yet and points may legitimately be slow).
    pub stall_floor_secs: f64,
    /// Sidecar path for flight-recorder dumps; `None` disables dumping
    /// (the ring is still queryable in memory).
    pub dump_path: Option<PathBuf>,
}

impl Default for ObservatoryConfig {
    fn default() -> Self {
        Self {
            recorder_capacity: 512,
            stall_multiple: 16.0,
            stall_floor_secs: 10.0,
            dump_path: None,
        }
    }
}

impl ObservatoryConfig {
    /// Default config with the dump sidecar derived from a campaign
    /// results file path (`results.jsonl` → `results.flight.jsonl`).
    pub fn for_results_file(results: &Path) -> Self {
        Self {
            dump_path: Some(results.with_extension("flight.jsonl")),
            ..Self::default()
        }
    }
}

/// Read-only observer for one campaign run. See the module docs.
pub struct CampaignObserver {
    board: ProgressBoard,
    recorder: FlightRecorder,
    config: ObservatoryConfig,
    stall_dumped: AtomicBool,
    finished: AtomicBool,
}

impl CampaignObserver {
    /// Creates an observer for a campaign of `total` points on `workers`
    /// workers. Incident tallies are registered for every
    /// [`ERROR_KINDS`] tag.
    pub fn new(total: usize, workers: usize, config: ObservatoryConfig) -> Self {
        let observer = Self {
            board: ProgressBoard::new(total, workers, ERROR_KINDS),
            recorder: FlightRecorder::new(config.recorder_capacity),
            config,
            stall_dumped: AtomicBool::new(false),
            finished: AtomicBool::new(false),
        };
        observer
            .recorder
            .record(0, NO_POINT, FlightEventKind::Note, "campaign start");
        observer
    }

    /// The underlying progress board (for direct feeding by coarse
    /// bins).
    pub fn board(&self) -> &ProgressBoard {
        &self.board
    }

    /// The underlying flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Current progress snapshot.
    pub fn snapshot(&self) -> CampaignProgress {
        self.board.snapshot()
    }

    /// A worker claimed point `index`.
    pub fn on_claim(&self, worker: usize, index: usize) {
        self.board.point_claimed(worker);
        self.recorder
            .record(worker, index as u64, FlightEventKind::Claim, "");
    }

    /// Points satisfied from a resumed log without execution.
    pub fn on_skipped(&self, n: usize) {
        self.board.points_skipped(n);
        if n > 0 {
            self.recorder.record(
                0,
                NO_POINT,
                FlightEventKind::Note,
                &format!("resume: {n} points loaded from log"),
            );
        }
    }

    /// A worker finished point `index`: tallies the outcome and its
    /// incident trail, and records the per-point timeline events.
    pub fn on_outcome<R>(
        &self,
        worker: usize,
        index: usize,
        outcome: &PointOutcome<R>,
        wall_secs: f64,
    ) {
        for incident in &outcome.incidents {
            self.on_incident(worker, index, incident);
        }
        let ok = outcome.result.is_ok();
        self.board.point_done(worker, ok, wall_secs);
        let detail = match &outcome.result {
            Ok(_) => "ok".to_string(),
            Err(error) => error.kind().to_string(),
        };
        self.recorder
            .record(worker, index as u64, FlightEventKind::Done, &detail);
    }

    /// One supervisor incident on point `index`.
    pub fn on_incident(&self, worker: usize, index: usize, incident: &Incident) {
        let retried = incident.action == IncidentAction::Retried;
        self.board.incident(incident.error.kind(), retried);
        if matches!(
            incident.error,
            SweepPointError::NumericalDivergence { .. }
                | SweepPointError::StepBudgetExhausted { .. }
        ) {
            self.recorder.record(
                worker,
                index as u64,
                FlightEventKind::WatchdogTrip,
                incident.error.kind(),
            );
        }
        let kind = if retried {
            FlightEventKind::Retry
        } else {
            FlightEventKind::Quarantine
        };
        self.recorder.record(
            worker,
            index as u64,
            kind,
            &format!("attempt {}: {}", incident.attempt, incident.error.kind()),
        );
    }

    /// A failure escaped per-point containment and was quarantined at
    /// the merge stage (the point's worker is unknown by then).
    pub fn on_escaped_quarantine(&self, index: usize, error: &SweepPointError) {
        self.board.incident(error.kind(), false);
        self.board.point_done(0, false, 0.0);
        self.recorder.record(
            0,
            index as u64,
            FlightEventKind::Quarantine,
            &format!("escaped containment: {}", error.kind()),
        );
    }

    /// The campaign log flushed point `index` to disk.
    pub fn on_flush(&self, worker: usize, index: usize) {
        self.recorder
            .record(worker, index as u64, FlightEventKind::Flush, "");
    }

    /// Records a free-form lifecycle note on the flight timeline
    /// (sidecar hits/rejects, restart and drain markers, …).
    pub fn note(&self, detail: &str) {
        self.recorder
            .record(0, NO_POINT, FlightEventKind::Note, detail);
    }

    /// The stall threshold currently in force:
    /// `max(stall_floor_secs, stall_multiple × median point time)`.
    pub fn stall_timeout_secs(&self) -> f64 {
        let median = self.board.median_point_secs().unwrap_or(0.0);
        (self.config.stall_multiple * median).max(self.config.stall_floor_secs)
    }

    /// Polls the stall detector: returns `true` (and records a `stall`
    /// event, and dumps the flight recorder once) when no worker has
    /// heartbeated for longer than [`Self::stall_timeout_secs`]. Safe to
    /// call from any watcher thread at any rate.
    pub fn check_stall(&self) -> bool {
        if self.finished.load(Ordering::Relaxed) {
            return false;
        }
        if self.board.done_count() >= self.board.total() {
            return false;
        }
        let age = self.board.last_heartbeat_age_secs();
        let timeout = self.stall_timeout_secs();
        if age <= timeout {
            return false;
        }
        self.recorder.record(
            0,
            NO_POINT,
            FlightEventKind::Stall,
            &format!("no heartbeat for {age:.3}s (timeout {timeout:.3}s)"),
        );
        if !self.stall_dumped.swap(true, Ordering::Relaxed) {
            let _ = self.dump("stall");
        }
        true
    }

    /// Marks the campaign complete and writes the final flight dump.
    pub fn finish(&self) -> std::io::Result<()> {
        self.finished.store(true, Ordering::Relaxed);
        self.recorder
            .record(0, NO_POINT, FlightEventKind::Note, "finish");
        self.dump("finish")
    }

    /// Writes the ring to the configured sidecar (no-op without a
    /// `dump_path`).
    fn dump(&self, reason: &str) -> std::io::Result<()> {
        match &self.config.dump_path {
            Some(path) => self.recorder.dump_to(path, reason),
            None => Ok(()),
        }
    }
}

impl Drop for CampaignObserver {
    fn drop(&mut self) {
        // A campaign that dies without finish() — unwinding panic or an
        // early abort — still leaves its timeline on disk.
        if !self.finished.load(Ordering::Relaxed) {
            let reason = if std::thread::panicking() {
                "panic"
            } else {
                "abort"
            };
            self.recorder
                .record(0, NO_POINT, FlightEventKind::Note, reason);
            let _ = self.dump(reason);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pllbist_telemetry::recorder::parse_dump;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pllbist_observe_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn hooks_drive_board_and_recorder() {
        let observer = CampaignObserver::new(3, 2, ObservatoryConfig::default());
        observer.on_skipped(1);
        observer.on_claim(0, 1);
        observer.on_outcome(
            0,
            1,
            &PointOutcome::<u64> {
                result: Ok(7),
                incidents: vec![Incident {
                    f_mod_hz: 4.0,
                    attempt: 0,
                    action: IncidentAction::Retried,
                    error: SweepPointError::DegenerateFit { f_mod_hz: 4.0 },
                }],
            },
            0.01,
        );
        observer.on_flush(0, 1);
        observer.on_escaped_quarantine(
            2,
            &SweepPointError::WorkerPanic {
                message: "boom".into(),
            },
        );
        let snap = observer.snapshot();
        assert_eq!(snap.done, 3);
        assert_eq!(snap.ok, 1);
        assert_eq!(snap.quarantined, 1);
        assert_eq!(snap.skipped, 1);
        assert_eq!(snap.retries, 1);
        let kinds: Vec<FlightEventKind> = observer
            .recorder()
            .events()
            .iter()
            .map(|e| e.kind)
            .collect();
        assert!(kinds.contains(&FlightEventKind::Claim));
        assert!(kinds.contains(&FlightEventKind::Retry));
        assert!(kinds.contains(&FlightEventKind::Done));
        assert!(kinds.contains(&FlightEventKind::Flush));
        assert!(kinds.contains(&FlightEventKind::Quarantine));
    }

    #[test]
    fn watchdog_errors_record_trip_events() {
        let observer = CampaignObserver::new(1, 1, ObservatoryConfig::default());
        observer.on_incident(
            0,
            0,
            &Incident {
                f_mod_hz: 2.0,
                attempt: 0,
                action: IncidentAction::Quarantined,
                error: SweepPointError::StepBudgetExhausted {
                    t: 0.5,
                    steps: 10,
                    budget: 5,
                },
            },
        );
        assert!(observer
            .recorder()
            .events()
            .iter()
            .any(|e| e.kind == FlightEventKind::WatchdogTrip));
    }

    #[test]
    fn stall_fires_once_and_dumps() {
        let path = tmp("stall.flight.jsonl");
        let _ = std::fs::remove_file(&path);
        let observer = CampaignObserver::new(
            4,
            1,
            ObservatoryConfig {
                stall_floor_secs: 0.0,
                stall_multiple: 0.0,
                dump_path: Some(path.clone()),
                ..ObservatoryConfig::default()
            },
        );
        observer.on_claim(0, 0);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(observer.check_stall());
        // Second trip records an event but does not re-dump.
        assert!(observer.check_stall());
        let dump = std::fs::read_to_string(&path).unwrap();
        assert!(dump.contains("\"reason\":\"stall\""));
        let events = parse_dump(&dump);
        assert!(events.iter().any(|e| e.kind == FlightEventKind::Stall));
        // After finish, stall never fires and the dump is rewritten.
        observer.finish().unwrap();
        assert!(!observer.check_stall());
        let dump = std::fs::read_to_string(&path).unwrap();
        assert!(dump.contains("\"reason\":\"finish\""));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn complete_campaign_never_stalls() {
        let observer = CampaignObserver::new(
            1,
            1,
            ObservatoryConfig {
                stall_floor_secs: 0.0,
                stall_multiple: 0.0,
                ..ObservatoryConfig::default()
            },
        );
        observer.on_claim(0, 0);
        observer.on_outcome(
            0,
            0,
            &PointOutcome::<u64> {
                result: Ok(1),
                incidents: vec![],
            },
            0.001,
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(!observer.check_stall(), "all points done: not a stall");
    }

    #[test]
    fn drop_without_finish_dumps_abort() {
        let path = tmp("abort.flight.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let observer = CampaignObserver::new(
                2,
                1,
                ObservatoryConfig {
                    dump_path: Some(path.clone()),
                    ..ObservatoryConfig::default()
                },
            );
            observer.on_claim(0, 0);
        }
        let dump = std::fs::read_to_string(&path).unwrap();
        assert!(dump.contains("\"reason\":\"abort\""));
        assert!(!parse_dump(&dump).is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
