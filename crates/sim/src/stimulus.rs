//! Reference-input frequency-modulation stimuli.
//!
//! The transfer-function test modulates the PLL's reference frequency
//! sinusoidally (paper §2). On chip, a true sine is unavailable; the DCO of
//! fig. 4 approximates it by **stepping between a small set of discrete
//! frequencies** (frequency-shift keying). This module defines the three
//! stimulus classes the paper compares in figs. 11/12 —
//! [`FmStimulus::pure_sine`], [`FmStimulus::two_tone`],
//! [`FmStimulus::multi_tone`] — as instantaneous-frequency functions with
//! exact phase integrals, so the behavioural engine can place reference
//! edges with machine precision.

use std::f64::consts::TAU;

/// A frequency-modulated reference stimulus.
///
/// The reference signal's instantaneous frequency is
/// `f(t) = f_nominal + deviation(t)` where `deviation(t)` is periodic with
/// the modulation frequency. Phase is measured in **cycles** so that edge
/// `k` occurs when `phase(t) = k`.
#[derive(Clone, Debug, PartialEq)]
pub struct FmStimulus {
    f_nominal_hz: f64,
    f_mod_hz: f64,
    kind: Kind,
}

#[derive(Clone, Debug, PartialEq)]
enum Kind {
    /// Ideal sinusoidal FM with the given peak deviation.
    Sine { deviation_hz: f64 },
    /// Ideal sinusoidal PM with the given peak phase deviation in cycles
    /// (delay-line style modulation, paper §2/§3).
    SinePm { amplitude_cycles: f64 },
    /// Staircase FSK through the given deviation levels, each held for an
    /// equal fraction of the modulation period.
    Staircase { levels: Vec<f64> },
    /// Constant deviation (used to park the DCO at one tone).
    Constant { deviation_hz: f64 },
}

impl FmStimulus {
    /// Ideal sinusoidal FM: `f(t) = f_nom + Δf·sin(2π·f_mod·t)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < |Δf| < f_nom` and both frequencies are positive.
    pub fn pure_sine(f_nominal_hz: f64, deviation_hz: f64, f_mod_hz: f64) -> Self {
        validate(f_nominal_hz, deviation_hz, f_mod_hz);
        Self {
            f_nominal_hz,
            f_mod_hz,
            kind: Kind::Sine { deviation_hz },
        }
    }

    /// Ideal sinusoidal **phase** modulation:
    /// `θ(t) = f_nom·t + a·sin(2π·f_mod·t)` with `a` in cycles — what a
    /// tapped-delay-line modulator produces (paper §3's alternative). Per
    /// the paper's §2 remark, PM with amplitude `a` is equivalent to FM
    /// with peak deviation `Δf = a·2π·f_mod` shifted by 90°.
    ///
    /// # Panics
    ///
    /// Panics unless the frequencies are positive and the resulting peak
    /// frequency deviation `a·2π·f_mod` stays below `f_nom` (so phase
    /// remains monotone and edges stay well ordered).
    pub fn phase_modulated(f_nominal_hz: f64, amplitude_cycles: f64, f_mod_hz: f64) -> Self {
        assert!(
            f_nominal_hz > 0.0 && f_mod_hz > 0.0,
            "frequencies must be positive"
        );
        let peak_dev = amplitude_cycles.abs() * TAU * f_mod_hz;
        assert!(
            amplitude_cycles != 0.0 && peak_dev < f_nominal_hz,
            "PM amplitude must be nonzero and keep the phase monotone"
        );
        Self {
            f_nominal_hz,
            f_mod_hz,
            kind: Kind::SinePm { amplitude_cycles },
        }
    }

    /// Two-tone FSK: a square-wave deviation of ±Δf (the paper's "Two Tone
    /// FS" trace) phased like the sine it approximates (+Δf over the first
    /// half period).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < |Δf| < f_nom` and both frequencies are positive.
    pub fn two_tone(f_nominal_hz: f64, deviation_hz: f64, f_mod_hz: f64) -> Self {
        validate(f_nominal_hz, deviation_hz, f_mod_hz);
        Self {
            f_nominal_hz,
            f_mod_hz,
            kind: Kind::Staircase {
                levels: vec![deviation_hz, -deviation_hz],
            },
        }
    }

    /// Multi-tone FSK with `steps` equal-duration levels per modulation
    /// period, sampling the sine at interval midpoints — the paper's
    /// "Multi Tone FS" with ten steps (fig. 4 DCO output).
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2`, or on the frequency conditions of
    /// [`FmStimulus::pure_sine`].
    pub fn multi_tone(f_nominal_hz: f64, deviation_hz: f64, f_mod_hz: f64, steps: usize) -> Self {
        assert!(steps >= 2, "multi-tone FSK needs at least two steps");
        validate(f_nominal_hz, deviation_hz, f_mod_hz);
        let levels = (0..steps)
            .map(|k| deviation_hz * (TAU * (k as f64 + 0.5) / steps as f64).sin())
            .collect();
        Self {
            f_nominal_hz,
            f_mod_hz,
            kind: Kind::Staircase { levels },
        }
    }

    /// Staircase FSK through explicit deviation levels (one DCO tone per
    /// level, equal dwell times) — for quantised-DCO studies where the
    /// levels come from the actual divider tone grid.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two levels are given or any level's magnitude
    /// reaches `f_nom`.
    pub fn staircase(f_nominal_hz: f64, levels: Vec<f64>, f_mod_hz: f64) -> Self {
        assert!(levels.len() >= 2, "staircase needs at least two levels");
        for &l in &levels {
            assert!(l.abs() < f_nominal_hz, "deviation must stay below f_nom");
        }
        assert!(
            f_nominal_hz > 0.0 && f_mod_hz > 0.0,
            "frequencies must be positive"
        );
        Self {
            f_nominal_hz,
            f_mod_hz,
            kind: Kind::Staircase { levels },
        }
    }

    /// An unmodulated carrier at `f_nom + Δf` (the `f_mod` is kept for
    /// bookkeeping but nothing varies).
    pub fn constant(f_nominal_hz: f64, deviation_hz: f64) -> Self {
        assert!(
            f_nominal_hz > 0.0 && deviation_hz.abs() < f_nominal_hz,
            "deviation must stay below f_nom"
        );
        Self {
            f_nominal_hz,
            f_mod_hz: 1.0,
            kind: Kind::Constant { deviation_hz },
        }
    }

    /// Nominal (carrier) frequency in Hz.
    pub fn f_nominal_hz(&self) -> f64 {
        self.f_nominal_hz
    }

    /// Modulation frequency in Hz.
    pub fn f_mod_hz(&self) -> f64 {
        self.f_mod_hz
    }

    /// Peak deviation magnitude in Hz.
    pub fn peak_deviation_hz(&self) -> f64 {
        match &self.kind {
            Kind::Sine { deviation_hz } | Kind::Constant { deviation_hz } => deviation_hz.abs(),
            Kind::SinePm { amplitude_cycles } => amplitude_cycles.abs() * TAU * self.f_mod_hz,
            Kind::Staircase { levels } => levels.iter().fold(0.0, |m, l| m.max(l.abs())),
        }
    }

    /// Instantaneous frequency deviation from nominal at time `t`, in Hz.
    pub fn deviation_at(&self, t: f64) -> f64 {
        match &self.kind {
            Kind::Sine { deviation_hz } => deviation_hz * (TAU * self.f_mod_hz * t).sin(),
            Kind::SinePm { amplitude_cycles } => {
                // d/dt [a·sin(ωm·t)] = a·ωm·cos(ωm·t), in Hz.
                amplitude_cycles * TAU * self.f_mod_hz * (TAU * self.f_mod_hz * t).cos()
            }
            Kind::Constant { deviation_hz } => *deviation_hz,
            Kind::Staircase { levels } => {
                let frac = (t * self.f_mod_hz).rem_euclid(1.0);
                let idx = ((frac * levels.len() as f64) as usize).min(levels.len() - 1);
                levels[idx]
            }
        }
    }

    /// Instantaneous frequency at time `t`, in Hz.
    pub fn frequency_at(&self, t: f64) -> f64 {
        self.f_nominal_hz + self.deviation_at(t)
    }

    /// Accumulated phase in **cycles** from `t = 0`, exact (closed form for
    /// the sine, per-segment sums for the staircase).
    pub fn phase_cycles(&self, t: f64) -> f64 {
        self.f_nominal_hz * t + self.deviation_phase_cycles(t)
    }

    fn deviation_phase_cycles(&self, t: f64) -> f64 {
        match &self.kind {
            Kind::Sine { deviation_hz } => {
                // ∫Δf·sin(2πfm·τ)dτ = Δf(1 − cos(2πfm·t))/(2πfm)
                deviation_hz * (1.0 - (TAU * self.f_mod_hz * t).cos()) / (TAU * self.f_mod_hz)
            }
            Kind::SinePm { amplitude_cycles } => amplitude_cycles * (TAU * self.f_mod_hz * t).sin(),
            Kind::Constant { deviation_hz } => deviation_hz * t,
            Kind::Staircase { levels } => {
                let n = levels.len() as f64;
                let dwell = 1.0 / (self.f_mod_hz * n);
                let per_period: f64 = levels.iter().sum::<f64>() / (self.f_mod_hz * n);
                let periods = (t * self.f_mod_hz).floor();
                let mut acc = periods * per_period;
                let mut rem = t - periods / self.f_mod_hz;
                for &l in levels {
                    if rem <= 0.0 {
                        break;
                    }
                    let seg = rem.min(dwell);
                    acc += l * seg;
                    rem -= seg;
                }
                acc
            }
        }
    }

    /// The time of the next rising reference edge strictly after `t`
    /// (edge `k` occurs at `phase_cycles = k`).
    ///
    /// Solved by safeguarded Newton on the monotone phase function;
    /// accurate to ~1 fs.
    pub fn next_edge_after(&self, t: f64) -> f64 {
        self.time_at_phase(self.phase_cycles(t).floor() + 1.0, t)
    }

    /// The earliest time `≥ t_min` at which the accumulated phase reaches
    /// `target` cycles (used by the engine to keep the reference edge
    /// stream phase-continuous across stimulus switches).
    ///
    /// # Panics
    ///
    /// Panics if the target lies in the past (`phase(t_min) > target`).
    pub fn time_at_phase(&self, target: f64, t_min: f64) -> f64 {
        let t = t_min;
        let start = self.phase_cycles(t);
        assert!(
            start <= target,
            "phase target {target} is in the past (phase({t}) = {start})"
        );
        // Bracket: frequency is bounded within [f_nom − Δf, f_nom + Δf].
        let f_min = self.f_nominal_hz - self.peak_deviation_hz();
        let f_max = self.f_nominal_hz + self.peak_deviation_hz();
        let mut lo = t + (target - start) / f_max;
        let mut hi = t + (target - start) / f_min;
        // Guard against rounding at the bracket ends.
        lo = lo.max(t);
        hi = hi.max(lo + 1e-18);
        while self.phase_cycles(hi) < target {
            hi += 0.1 / self.f_nominal_hz;
        }
        // Newton on the monotone phase — the derivative is the
        // instantaneous frequency, bounded away from zero — safeguarded
        // by the bracket, with bisection only when a candidate escapes
        // it. Every engine backend schedules each reference edge through
        // here, so the handful-of-iterations convergence (vs ~50 pure
        // bisections to femtosecond width) is on the per-edge hot path.
        let tol = 1e-15 * hi.max(1.0);
        let mut cand = lo;
        for _ in 0..200 {
            if hi - lo < tol {
                break;
            }
            if cand <= lo || cand >= hi {
                cand = 0.5 * (lo + hi);
                if cand <= lo || cand >= hi {
                    break;
                }
            }
            let phi = self.phase_cycles(cand);
            if phi < target {
                lo = cand;
            } else {
                hi = cand;
            }
            let f = self.frequency_at(cand);
            if f <= 0.0 {
                cand = 0.5 * (lo + hi);
                continue;
            }
            let delta = (target - phi) / f;
            if delta.abs() <= tol {
                // Converged. Honour the at-or-past-target return
                // contract (a subsequent call starting from the returned
                // time must not rediscover the same edge, which would
                // double-arm the PFD): the candidate itself when it
                // already crossed, else one nudged evaluation past the
                // root, else the tightened upper bracket.
                if phi >= target {
                    return cand;
                }
                let past = (cand + delta + tol).min(hi);
                if self.phase_cycles(past) >= target {
                    return past;
                }
                return hi;
            }
            cand += delta;
        }
        // Return the upper bracket: its phase is ≥ the integer target, so a
        // subsequent call starting from the returned time cannot rediscover
        // the same edge (which would double-arm the PFD).
        hi
    }

    /// Serialises the stimulus as a compact token (floats as 16-digit
    /// lowercase bit hex, staircase levels comma-joined) for the
    /// lock-state checkpoint sidecar. No quotes/braces/backslashes, so
    /// it embeds verbatim in a JSONL string field;
    /// [`decode_state`](Self::decode_state) is the exact inverse.
    pub(crate) fn encode_state(&self) -> String {
        let hx = |v: f64| format!("{:016x}", v.to_bits());
        let kind = match &self.kind {
            Kind::Sine { deviation_hz } => format!("sine:{}", hx(*deviation_hz)),
            Kind::SinePm { amplitude_cycles } => format!("pm:{}", hx(*amplitude_cycles)),
            Kind::Constant { deviation_hz } => format!("const:{}", hx(*deviation_hz)),
            Kind::Staircase { levels } => {
                let joined: Vec<String> = levels.iter().map(|l| hx(*l)).collect();
                format!("stair:{}", joined.join(","))
            }
        };
        format!("{};{};{kind}", hx(self.f_nominal_hz), hx(self.f_mod_hz))
    }

    /// Rebuilds a stimulus from [`encode_state`](Self::encode_state)
    /// output; `None` on any malformed token (torn checkpoint → the
    /// loader falls back to re-settling).
    pub(crate) fn decode_state(code: &str) -> Option<Self> {
        fn f64_bits(s: &str) -> Option<f64> {
            (s.len() == 16).then(|| u64::from_str_radix(s, 16).ok().map(f64::from_bits))?
        }
        let mut parts = code.splitn(3, ';');
        let f_nominal_hz = f64_bits(parts.next()?)?;
        let f_mod_hz = f64_bits(parts.next()?)?;
        let kind_token = parts.next()?;
        let (tag, payload) = kind_token.split_once(':')?;
        let kind = match tag {
            "sine" => Kind::Sine {
                deviation_hz: f64_bits(payload)?,
            },
            "pm" => Kind::SinePm {
                amplitude_cycles: f64_bits(payload)?,
            },
            "const" => Kind::Constant {
                deviation_hz: f64_bits(payload)?,
            },
            "stair" => {
                let levels: Option<Vec<f64>> = payload.split(',').map(f64_bits).collect();
                Kind::Staircase { levels: levels? }
            }
            _ => return None,
        };
        Some(Self {
            f_nominal_hz,
            f_mod_hz,
            kind,
        })
    }

    /// Times within `[0, 1/f_mod)` where the *deviation* waveform peaks
    /// (maximum positive deviation) — the paper's "peak of the input
    /// modulation", the phase-counter start reference.
    pub fn deviation_peak_time(&self) -> f64 {
        match &self.kind {
            Kind::Sine { .. } => 0.25 / self.f_mod_hz,
            Kind::SinePm { .. } => 0.0, // cos peaks at t = 0 (mod T)
            Kind::Constant { .. } => 0.0,
            Kind::Staircase { levels } => {
                let n = levels.len() as f64;
                let idx = levels
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                // Centre of the peak dwell interval.
                (idx as f64 + 0.5) / (self.f_mod_hz * n)
            }
        }
    }
}

fn validate(f_nom: f64, dev: f64, f_mod: f64) {
    assert!(
        f_nom > 0.0 && f_nom.is_finite(),
        "f_nominal must be positive"
    );
    assert!(f_mod > 0.0 && f_mod.is_finite(), "f_mod must be positive");
    assert!(
        dev != 0.0 && dev.abs() < f_nom,
        "deviation must be nonzero and below f_nom"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sine_phase_is_integral_of_frequency() {
        let s = FmStimulus::pure_sine(1000.0, 10.0, 8.0);
        // Numeric integral vs closed form.
        let t_end = 0.37;
        let n = 200_000;
        let dt = t_end / n as f64;
        let mut acc = 0.0;
        for k in 0..n {
            let t0 = k as f64 * dt;
            acc += 0.5 * (s.frequency_at(t0) + s.frequency_at(t0 + dt)) * dt;
        }
        assert!((acc - s.phase_cycles(t_end)).abs() < 1e-6);
    }

    #[test]
    fn staircase_phase_is_integral_of_frequency() {
        let s = FmStimulus::multi_tone(1000.0, 10.0, 8.0, 10);
        let t_end = 0.41;
        let n = 400_000;
        let dt = t_end / n as f64;
        let mut acc = 0.0;
        for k in 0..n {
            acc += s.frequency_at((k as f64 + 0.5) * dt) * dt;
        }
        assert!((acc - s.phase_cycles(t_end)).abs() < 1e-4);
    }

    #[test]
    fn multi_tone_tracks_the_sine() {
        let sine = FmStimulus::pure_sine(1000.0, 10.0, 5.0);
        let fsk = FmStimulus::multi_tone(1000.0, 10.0, 5.0, 10);
        // Mid-dwell the staircase equals the sine at the same sample point.
        for k in 0..10 {
            let t = (k as f64 + 0.5) / (5.0 * 10.0);
            assert!(
                (fsk.deviation_at(t) - sine.deviation_at(t)).abs() < 1e-9,
                "step {k}"
            );
        }
    }

    #[test]
    fn two_tone_is_square() {
        let s = FmStimulus::two_tone(1000.0, 10.0, 4.0);
        assert_eq!(s.deviation_at(0.01), 10.0); // first half period
        assert_eq!(s.deviation_at(0.2), -10.0); // second half
        assert_eq!(s.peak_deviation_hz(), 10.0);
    }

    #[test]
    fn edges_are_monotone_and_consistent() {
        for s in [
            FmStimulus::pure_sine(1000.0, 10.0, 8.0),
            FmStimulus::multi_tone(1000.0, 10.0, 8.0, 10),
            FmStimulus::two_tone(1000.0, 10.0, 8.0),
        ] {
            let mut t = 0.0;
            let mut prev_phase = s.phase_cycles(t);
            for _ in 0..50 {
                let te = s.next_edge_after(t);
                assert!(te > t);
                let ph = s.phase_cycles(te);
                assert!(
                    (ph - ph.round()).abs() < 1e-6,
                    "edge lands on integer phase"
                );
                assert!(ph > prev_phase);
                prev_phase = ph;
                t = te;
            }
        }
    }

    #[test]
    fn edge_rate_matches_frequency() {
        let s = FmStimulus::constant(1000.0, 5.0);
        let mut t = 0.0;
        let mut count = 0;
        while t < 1.0 {
            t = s.next_edge_after(t);
            if t < 1.0 {
                count += 1;
            }
        }
        assert!((count as i64 - 1005).abs() <= 1, "{count} edges in 1 s");
    }

    #[test]
    fn peak_times() {
        let sine = FmStimulus::pure_sine(1000.0, 10.0, 8.0);
        assert!((sine.deviation_peak_time() - 0.03125).abs() < 1e-12);
        let fsk = FmStimulus::multi_tone(1000.0, 10.0, 8.0, 10);
        let tp = fsk.deviation_peak_time();
        // The staircase peaks where the sine does (within one dwell).
        assert!(
            (tp - 0.03125).abs() <= 0.5 / (8.0 * 10.0) + 1e-12,
            "tp={tp}"
        );
        let d = fsk.deviation_at(tp);
        assert!((d - fsk.peak_deviation_hz()).abs() < 1e-9);
    }

    #[test]
    fn average_frequency_preserved_over_full_period() {
        // Symmetric staircase: zero net deviation per period.
        let s = FmStimulus::multi_tone(1000.0, 10.0, 8.0, 10);
        let per = 1.0 / 8.0;
        let ph = s.phase_cycles(per) - s.phase_cycles(0.0);
        assert!((ph - 1000.0 * per).abs() < 1e-9);
    }

    #[test]
    fn pm_equals_fm_shifted_by_quarter_period() {
        // Paper §2: "it is possible to replace phase modulation by
        // frequency modulation". PM with amplitude a ≡ FM with peak
        // deviation a·2π·fm, advanced by T/4.
        let fm_mod = 5.0;
        let a = 0.2; // cycles
        let dev = a * TAU * fm_mod;
        let pm = FmStimulus::phase_modulated(1_000.0, a, fm_mod);
        let fm = FmStimulus::pure_sine(1_000.0, dev, fm_mod);
        assert!((pm.peak_deviation_hz() - dev).abs() < 1e-12);
        for k in 0..40 {
            let t = 0.3 + k as f64 * 0.011;
            // cos(x) = sin(x + π/2): the FM deviation a quarter period later.
            let fm_shifted = fm.deviation_at(t + 0.25 / fm_mod);
            assert!((pm.deviation_at(t) - fm_shifted).abs() < 1e-9, "t = {t}");
        }
        // Phase is the exact integral of the deviation (spot check).
        let t = 0.777;
        let dt = 1e-6;
        let num_dev = (pm.phase_cycles(t + dt) - pm.phase_cycles(t)) / dt - 1_000.0;
        assert!((num_dev - pm.deviation_at(t + dt / 2.0)).abs() < 1e-3);
    }

    #[test]
    fn pm_edges_land_on_integer_phase_too() {
        let pm = FmStimulus::phase_modulated(1_000.0, 0.3, 8.0);
        let mut t = 0.0;
        for _ in 0..30 {
            t = pm.next_edge_after(t);
            let ph = pm.phase_cycles(t);
            assert!((ph - ph.round()).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "keep the phase monotone")]
    fn excessive_pm_amplitude_rejected() {
        // a·2π·fm = 0.5·2π·400 > 1000 Hz.
        let _ = FmStimulus::phase_modulated(1_000.0, 0.5, 400.0);
    }

    #[test]
    #[should_panic(expected = "deviation must be nonzero")]
    fn zero_deviation_rejected() {
        let _ = FmStimulus::pure_sine(1000.0, 0.0, 8.0);
    }

    #[test]
    #[should_panic(expected = "at least two steps")]
    fn single_step_rejected() {
        let _ = FmStimulus::multi_tone(1000.0, 10.0, 8.0, 1);
    }

    #[test]
    fn state_codec_round_trips_every_kind_bit_exactly() {
        for s in [
            FmStimulus::pure_sine(1000.0, 10.0, 8.0),
            FmStimulus::phase_modulated(1_000.0, 0.3, 8.0),
            FmStimulus::two_tone(1000.0, 10.0, 4.0),
            FmStimulus::multi_tone(1000.0, 10.0, 8.0, 10),
            FmStimulus::staircase(1000.0, vec![3.5, -1.25, 7.0], 2.0),
            FmStimulus::constant(1000.0, 5.0),
        ] {
            let code = s.encode_state();
            assert!(
                !code.contains('"') && !code.contains('\\') && !code.contains('{'),
                "token must embed in a JSONL string field: {code}"
            );
            let back = FmStimulus::decode_state(&code).unwrap();
            assert_eq!(back, s, "{code}");
            assert_eq!(back.encode_state(), code);
        }
    }

    #[test]
    fn torn_state_codes_are_rejected() {
        let code = FmStimulus::multi_tone(1000.0, 10.0, 8.0, 10).encode_state();
        for cut in 0..code.len() {
            let torn = &code[..cut];
            if let Some(parsed) = FmStimulus::decode_state(torn) {
                // A prefix may only parse when it is itself a complete
                // token (e.g. a staircase cut at a level boundary) — it
                // must re-encode to exactly the prefix, never fabricate
                // the full stimulus.
                assert_eq!(parsed.encode_state(), torn, "cut at {cut}");
            }
        }
        assert!(FmStimulus::decode_state("junk").is_none());
    }
}
