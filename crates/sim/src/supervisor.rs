//! The sweep supervisor: per-point guardrails, panic isolation and the
//! deterministic quarantine-and-retry policy.
//!
//! The paper's BIST runs unattended (§4–§5); its software reproduction
//! must too. This module layers fault tolerance over the
//! [`crate::scenario`] pipeline without touching the physics:
//!
//! * [`Supervised`] wraps any [`PllEngine`] and checks guardrails after
//!   every `advance_to` call — NaN/Inf on the control voltage, VCO
//!   frequency and phase; control-voltage range/rail-pinning; a work
//!   budget. All checks are **read-only**, so a supervised healthy
//!   run is bitwise identical to an unsupervised one.
//! * [`supervised_point`] executes one sweep point under
//!   [`std::panic::catch_unwind`], retrying per [`SupervisorPolicy`]
//!   (fresh engine, halved work granularity, extended settle) and
//!   quarantining the point as a typed [`SweepPointError`] when retries
//!   are exhausted. Every decision is recorded as an [`Incident`] and —
//!   when telemetry is enabled — as a `supervisor.incident` JSONL
//!   record.
//!
//! The guardrail sampling contract is **engine-agnostic**: guardrails
//! observe only the [`PllEngine`] surface (control voltage, frequency,
//! phase, [`PllEngine::work_stats`]), never an engine's integration
//! internals. The "step" budget counts whatever `work_stats().steps`
//! means on the backend at hand — ODE micro-steps on the micro-stepped
//! [`crate::behavioral::CpPll`], committed closed-form segments (an
//! *event budget*) on the per-event
//! [`crate::event_driven::EventDrivenCpPll`] — and the retry ladder's
//! [`PllEngine::set_step_scale`] tightens the engine's own work
//! granularity (micro-step or event-subdivision guard). Because the
//! event engine commits *fewer* units per simulated second than the
//! micro-stepped engine, a budget tuned for `CpPll` is conservative, not
//! tight, on `EventDrivenCpPll`.
//!
//! A tripped guardrail aborts the in-flight point via
//! [`std::panic::panic_any`] with the typed error as payload; the
//! supervisor's `catch_unwind` recovers it *typed* (see
//! [`SweepPointError::from_panic`]). Drive a [`Supervised`] engine
//! through the supervisor entry points ([`supervised_point`], or any
//! supervised [`crate::plan::CampaignPlan`] handed to the unified
//! runner [`crate::scenario::run_plan`]) rather than bare, so trips are
//! contained instead of unwinding the caller.
//!
//! Determinism: retries are a pure function of `(config, point,
//! policy)` — attempt `k` always uses step scale
//! `retry_step_scale^k` and settle scale `retry_settle_scale^k` from a
//! freshly locked engine — so a failing campaign replays incident for
//! incident.

use crate::behavioral::Sample;
use crate::config::{DriveConfig, PllConfig};
use crate::engine::{AnalogAccess, PllEngine, WorkStats};
use crate::error::SweepPointError;
use crate::scenario::Scenario;
use crate::stimulus::FmStimulus;
use pllbist_telemetry::{fields, Collector, Record};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The deterministic quarantine-and-retry policy plus the guardrail
/// thresholds of [`Supervised`].
#[derive(Clone, Debug, PartialEq)]
pub struct SupervisorPolicy {
    /// Retries after the first failed attempt (attempt count is
    /// `max_retries + 1`). Only [`SweepPointError::is_retryable`]
    /// failures are retried.
    pub max_retries: u32,
    /// Work-granularity multiplier per retry attempt: attempt `k` runs
    /// at `retry_step_scale^k` (default 0.5 — halved each retry).
    /// Applied via [`PllEngine::set_step_scale`]: the integration
    /// micro-step on micro-stepped engines, the event-subdivision guard
    /// on event-exact engines.
    pub retry_step_scale: f64,
    /// Lock-settle multiplier per retry attempt: attempt `k` settles
    /// for `retry_settle_scale^k` times the scenario's wait.
    pub retry_settle_scale: f64,
    /// Work units (`work_stats().steps` — micro-steps or committed
    /// event segments, per backend) one point may spend before
    /// [`SweepPointError::StepBudgetExhausted`] trips (`0` = unlimited).
    pub step_budget: u64,
    /// Control-voltage rails `(lo, hi)`; `None` derives them from the
    /// drive configuration (`0..vdd` for a voltage drive, no rails for
    /// a charge pump).
    pub control_rails: Option<(f64, f64)>,
    /// Fraction of the rail span within which the control voltage
    /// counts as *pinned* to a rail.
    pub rail_margin_fraction: f64,
    /// Rail spans beyond the rails at which the control voltage is
    /// declared numerically divergent outright.
    pub rail_overshoot_fraction: f64,
    /// Consecutive checked `advance_to` calls pinned at a rail before
    /// the divergence watchdog trips.
    pub rail_streak_limit: u32,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            retry_step_scale: 0.5,
            retry_settle_scale: 1.5,
            step_budget: 10_000_000,
            control_rails: None,
            rail_margin_fraction: 1e-9,
            rail_overshoot_fraction: 10.0,
            rail_streak_limit: 256,
        }
    }
}

impl SupervisorPolicy {
    /// The control rails for `config`: the explicit override when set,
    /// otherwise `0..vdd` for a voltage drive and none for a charge
    /// pump (whose control node is not supply-bounded in the model).
    pub fn rails_for(&self, config: &PllConfig) -> Option<(f64, f64)> {
        self.control_rails.or(match config.drive {
            DriveConfig::Voltage { vdd } => Some((0.0, vdd)),
            _ => None,
        })
    }

    /// The step budget for retry `attempt` (zero-based).
    ///
    /// Attempt `k` settles for `retry_settle_scale^k` times the nominal
    /// wait *at* a `retry_step_scale^k` micro-step, so even a healthy
    /// retry needs roughly `(retry_settle_scale / retry_step_scale)^k`
    /// times the steps of attempt 0. A constant budget therefore killed
    /// exactly the deep retries the policy exists to rescue, reporting
    /// spurious [`SweepPointError::StepBudgetExhausted`]; the budget now
    /// scales with the work the attempt is *expected* to do (never
    /// shrinking below the nominal budget, saturating on overflow; `0`
    /// stays unlimited).
    pub fn step_budget_for_attempt(&self, attempt: u32) -> u64 {
        if self.step_budget == 0 || attempt == 0 {
            return self.step_budget;
        }
        let settle_growth = self.retry_settle_scale.max(1.0);
        let step_refinement = self.retry_step_scale.clamp(f64::MIN_POSITIVE, 1.0);
        let factor = (settle_growth / step_refinement)
            .max(1.0)
            .powi(attempt as i32);
        let scaled = (self.step_budget as f64 * factor).ceil();
        if scaled >= u64::MAX as f64 {
            u64::MAX
        } else {
            scaled as u64
        }
    }
}

/// What the supervisor did about one failed attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IncidentAction {
    /// The point was re-attempted with a scaled step/settle.
    Retried,
    /// Retries were exhausted (or the error was not retryable); the
    /// point is reported as a per-point `Err`.
    Quarantined,
}

impl IncidentAction {
    /// Stable tag for telemetry records.
    pub fn as_str(&self) -> &'static str {
        match self {
            IncidentAction::Retried => "retried",
            IncidentAction::Quarantined => "quarantined",
        }
    }
}

/// One supervisor decision: which point failed, on which attempt, why,
/// and what happened next. Emitted as a `supervisor.incident` telemetry
/// record when the collector is enabled.
#[derive(Clone, Debug, PartialEq)]
pub struct Incident {
    /// The failed point's modulation frequency in Hz.
    pub f_mod_hz: f64,
    /// Zero-based attempt index that failed.
    pub attempt: u32,
    /// Retry or quarantine.
    pub action: IncidentAction,
    /// The typed failure.
    pub error: SweepPointError,
}

/// Appends an incident to the collector (as a `Record::Result` named
/// `supervisor.incident`, plus the retry/quarantine counters).
pub fn emit_incident(telemetry: &Collector, incident: &Incident) {
    if !telemetry.is_enabled() {
        return;
    }
    telemetry.extend(vec![Record::Result {
        name: "supervisor.incident".to_string(),
        fields: fields![
            f_mod_hz = incident.f_mod_hz,
            attempt = incident.attempt,
            kind = incident.error.kind(),
            error = incident.error.to_string(),
            action = incident.action.as_str()
        ],
    }]);
    match incident.action {
        IncidentAction::Retried => telemetry.add("supervisor.retries", 1),
        IncidentAction::Quarantined => telemetry.add("supervisor.quarantined", 1),
    }
}

/// One supervised point's outcome: the per-point `Result` plus every
/// incident its attempts produced (empty for a first-try success).
#[derive(Clone, Debug)]
pub struct PointOutcome<R> {
    /// The measured value, or the quarantining error.
    pub result: Result<R, SweepPointError>,
    /// Retry/quarantine incidents, in attempt order.
    pub incidents: Vec<Incident>,
}

/// A [`PllEngine`] wrapper that checks divergence guardrails after
/// every `advance_to`.
///
/// All checks are read-only — a supervised healthy run drives the inner
/// engine through *exactly* the same call sequence as an unsupervised
/// one, so results stay bitwise identical. A tripped guardrail aborts
/// the point via [`std::panic::panic_any`] with the typed
/// [`SweepPointError`] as payload, to be caught at the point boundary
/// by [`supervised_point`] (or any other `catch_unwind`).
pub struct Supervised<E: PllEngine> {
    inner: E,
    step_budget: u64,
    rails: Option<(f64, f64)>,
    rail_margin_fraction: f64,
    rail_overshoot_fraction: f64,
    rail_streak_limit: u32,
    rail_streak: u32,
    baseline_steps: u64,
}

impl<E: PllEngine> Supervised<E> {
    /// Wraps `inner` with the guardrails of `policy` (rails derived
    /// from the engine's drive configuration unless overridden).
    pub fn new(inner: E, policy: &SupervisorPolicy) -> Self {
        let rails = policy.rails_for(inner.config());
        let baseline_steps = inner.work_stats().steps;
        Self {
            inner,
            step_budget: policy.step_budget,
            rails,
            rail_margin_fraction: policy.rail_margin_fraction,
            rail_overshoot_fraction: policy.rail_overshoot_fraction,
            rail_streak_limit: policy.rail_streak_limit,
            rail_streak: 0,
            baseline_steps,
        }
    }

    /// Wraps `inner` for retry `attempt` of one point: the guardrails of
    /// `policy` with the step budget rescaled per
    /// [`SupervisorPolicy::step_budget_for_attempt`], so a deep retry's
    /// deliberately finer micro-step and longer settle are not
    /// misdiagnosed as a runaway point.
    pub fn for_attempt(inner: E, policy: &SupervisorPolicy, attempt: u32) -> Self {
        let mut supervised = Self::new(inner, policy);
        supervised.step_budget = policy.step_budget_for_attempt(attempt);
        supervised
    }

    /// Wraps `inner` with every guardrail disabled (finiteness checks
    /// still run — they are free and never false-positive).
    pub fn unsupervised(inner: E) -> Self {
        Self {
            inner,
            step_budget: 0,
            rails: None,
            rail_margin_fraction: 0.0,
            rail_overshoot_fraction: f64::INFINITY,
            rail_streak_limit: u32::MAX,
            rail_streak: 0,
            baseline_steps: 0,
        }
    }

    /// Resets the per-point counters (step-budget baseline, rail
    /// streak). Call at each point/attempt boundary.
    pub fn arm_point(&mut self) {
        self.baseline_steps = self.inner.work_stats().steps;
        self.rail_streak = 0;
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Unwraps the supervised engine.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// Runs every guardrail; aborts the point via
    /// [`std::panic::panic_any`] on a violation.
    fn check_guardrails(&mut self) {
        let t = self.inner.time();
        let cv = self.inner.control_voltage();
        for (quantity, value) in [
            ("control_voltage", cv),
            ("vco_frequency_hz", self.inner.vco_frequency_hz()),
            ("vco_phase_cycles", self.inner.vco_phase_cycles()),
        ] {
            if !value.is_finite() {
                std::panic::panic_any(SweepPointError::NumericalDivergence { t, quantity, value });
            }
        }
        if let Some((lo, hi)) = self.rails {
            let span = hi - lo;
            let overshoot = self.rail_overshoot_fraction * span;
            if cv < lo - overshoot || cv > hi + overshoot {
                std::panic::panic_any(SweepPointError::NumericalDivergence {
                    t,
                    quantity: "control_voltage_out_of_range",
                    value: cv,
                });
            }
            let margin = self.rail_margin_fraction * span;
            if cv <= lo + margin || cv >= hi - margin {
                self.rail_streak = self.rail_streak.saturating_add(1);
                if self.rail_streak >= self.rail_streak_limit {
                    std::panic::panic_any(SweepPointError::NumericalDivergence {
                        t,
                        quantity: "control_voltage_rail_pinned",
                        value: cv,
                    });
                }
            } else {
                self.rail_streak = 0;
            }
        }
        if self.step_budget > 0 {
            let steps = self
                .inner
                .work_stats()
                .steps
                .saturating_sub(self.baseline_steps);
            if steps > self.step_budget {
                std::panic::panic_any(SweepPointError::StepBudgetExhausted {
                    t,
                    steps,
                    budget: self.step_budget,
                });
            }
        }
    }
}

impl<E: PllEngine> PllEngine for Supervised<E> {
    type Checkpoint = E::Checkpoint;

    /// Builds an *unsupervised* wrapper (guardrails off) so the generic
    /// scenario paths can construct one; the supervisor entry points
    /// build armed wrappers via [`Supervised::new`] instead.
    fn new_locked(config: &PllConfig) -> Self {
        Self::unsupervised(E::new_locked(config))
    }

    fn config(&self) -> &PllConfig {
        self.inner.config()
    }

    fn time(&self) -> f64 {
        self.inner.time()
    }

    fn advance_to(&mut self, t_end: f64) {
        self.inner.advance_to(t_end);
        self.check_guardrails();
    }

    fn control_voltage(&self) -> f64 {
        self.inner.control_voltage()
    }

    fn vco_frequency_hz(&self) -> f64 {
        self.inner.vco_frequency_hz()
    }

    fn vco_phase_cycles(&self) -> f64 {
        self.inner.vco_phase_cycles()
    }

    fn set_stimulus(&mut self, stimulus: FmStimulus) {
        self.inner.set_stimulus(stimulus);
    }

    fn set_hold(&mut self, hold: bool) {
        self.inner.set_hold(hold);
    }

    fn is_held(&self) -> bool {
        self.inner.is_held()
    }

    fn collect_events(&mut self, on: bool) {
        self.inner.collect_events(on);
    }

    fn take_events(&mut self) -> Vec<crate::behavioral::LoopEvent> {
        self.inner.take_events()
    }

    fn checkpoint(&self) -> Self::Checkpoint {
        self.inner.checkpoint()
    }

    fn restore(&mut self, snapshot: &Self::Checkpoint) {
        self.inner.restore(snapshot);
        self.rail_streak = 0;
        self.baseline_steps = self.inner.work_stats().steps;
    }

    fn set_step_scale(&mut self, scale: f64) {
        self.inner.set_step_scale(scale);
    }

    fn backend_name() -> &'static str {
        E::backend_name()
    }

    fn work_stats(&self) -> WorkStats {
        self.inner.work_stats()
    }
}

impl<E: AnalogAccess> AnalogAccess for Supervised<E> {
    fn enable_sampling(&mut self, interval: f64) {
        self.inner.enable_sampling(interval);
    }

    fn take_samples(&mut self) -> Vec<Sample> {
        self.inner.take_samples()
    }
}

/// Builds the engine for one attempt of one point.
///
/// Attempt `0` reproduces the unsupervised path exactly (restore the
/// shared snapshot, or settle from scratch) so healthy results stay
/// bitwise identical. Retry attempts rebuild from a fresh lock with the
/// policy's scaled micro-step and extended settle — snapshots embody
/// the nominal step size, so they cannot seed a scaled retry.
pub fn engine_for_attempt<E: PllEngine>(
    scenario: &Scenario<'_>,
    snapshot: Option<&E::Checkpoint>,
    policy: Option<&SupervisorPolicy>,
    attempt: u32,
) -> Supervised<E> {
    let mut pll = match policy {
        Some(policy) => Supervised::for_attempt(E::new_locked(scenario.config()), policy, attempt),
        None => Supervised::unsupervised(E::new_locked(scenario.config())),
    };
    if attempt == 0 {
        if let Some(snap) = snapshot {
            pll.restore(snap);
            return pll;
        }
        let t0 = pll.time();
        pll.advance_to(t0 + scenario.lock_settle_secs());
        return pll;
    }
    let Some(policy) = policy else {
        unreachable!("retry attempts require a supervision policy")
    };
    pll.set_step_scale(policy.retry_step_scale.powi(attempt as i32));
    let t0 = pll.time();
    pll.advance_to(
        t0 + scenario.lock_settle_secs() * policy.retry_settle_scale.powi(attempt as i32),
    );
    pll
}

/// Runs one sweep point under full supervision: panic isolation,
/// guardrails, deterministic retries, quarantine.
///
/// `capture` receives a settled, armed engine and returns the point's
/// value (or a typed error — e.g. a failed lock qualification). Any
/// panic inside the attempt, including guardrail trips, is caught at
/// this boundary and converted via [`SweepPointError::from_panic`].
///
/// With `policy: None` the point still gets panic isolation and a typed
/// outcome, but runs exactly one attempt on an unguarded engine and
/// emits no `supervisor.*` telemetry — the unsupervised baseline every
/// supervised healthy run must match bit for bit.
pub fn supervised_point<E, R, F>(
    scenario: &Scenario<'_>,
    snapshot: Option<&E::Checkpoint>,
    policy: Option<&SupervisorPolicy>,
    f_mod_hz: f64,
    telemetry: &Collector,
    capture: F,
) -> PointOutcome<R>
where
    E: PllEngine,
    F: Fn(&mut Supervised<E>) -> Result<R, SweepPointError>,
{
    let max_retries = policy.map_or(0, |p| p.max_retries);
    let mut incidents = Vec::new();
    for attempt in 0..=max_retries {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut pll = engine_for_attempt::<E>(scenario, snapshot, policy, attempt);
            pll.arm_point();
            capture(&mut pll)
        }))
        .unwrap_or_else(|payload| {
            // Injected SIGKILL-equivalents bypass containment entirely:
            // re-raise so the kill unwinds the sweep like a real one.
            Err(SweepPointError::from_panic(crate::error::rethrow_if_kill(
                payload,
            )))
        });
        match outcome {
            Ok(value) => {
                if telemetry.is_enabled() && policy.is_some() {
                    telemetry.add("supervisor.points_ok", 1);
                    if attempt > 0 {
                        telemetry.add("supervisor.points_recovered", 1);
                    }
                }
                return PointOutcome {
                    result: Ok(value),
                    incidents,
                };
            }
            Err(error) => {
                let retry = attempt < max_retries && error.is_retryable();
                let incident = Incident {
                    f_mod_hz,
                    attempt,
                    action: if retry {
                        IncidentAction::Retried
                    } else {
                        IncidentAction::Quarantined
                    },
                    error: error.clone(),
                };
                if policy.is_some() {
                    emit_incident(telemetry, &incident);
                }
                incidents.push(incident);
                if !retry {
                    return PointOutcome {
                        result: Err(error),
                        incidents,
                    };
                }
            }
        }
    }
    unreachable!("the retry loop returns on success or quarantine")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavioral::CpPll;
    use crate::engine::ClosedFormPll;

    fn quiet() -> Collector {
        Collector::disabled()
    }

    #[test]
    fn supervised_healthy_advance_is_bitwise_identical() {
        let cfg = PllConfig::paper_table3();
        let mut bare = CpPll::new_locked(&cfg);
        let mut sup = Supervised::new(CpPll::new_locked(&cfg), &SupervisorPolicy::default());
        for k in 1..=20 {
            let t = k as f64 * 0.01;
            PllEngine::advance_to(&mut bare, t);
            sup.advance_to(t);
        }
        assert_eq!(
            PllEngine::vco_phase_cycles(&bare).to_bits(),
            sup.vco_phase_cycles().to_bits()
        );
        assert_eq!(
            PllEngine::control_voltage(&bare).to_bits(),
            sup.control_voltage().to_bits()
        );
        assert_eq!(PllEngine::work_stats(&bare), sup.work_stats());
    }

    #[test]
    fn step_budget_trips_as_typed_error() {
        let cfg = PllConfig::paper_table3();
        let policy = SupervisorPolicy {
            step_budget: 10,
            ..SupervisorPolicy::default()
        };
        let mut sup = Supervised::new(CpPll::new_locked(&cfg), &policy);
        sup.arm_point();
        let err = catch_unwind(AssertUnwindSafe(|| sup.advance_to(1.0)))
            .map(|_| ())
            .map_err(SweepPointError::from_panic)
            .unwrap_err();
        match err {
            SweepPointError::StepBudgetExhausted { budget, steps, .. } => {
                assert_eq!(budget, 10);
                assert!(steps > 10);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn supervised_point_retries_then_quarantines_deterministically() {
        let cfg = PllConfig::paper_table3();
        let scenario = Scenario::with_lock_settle(&cfg, 0.01);
        let policy = SupervisorPolicy {
            max_retries: 2,
            ..SupervisorPolicy::default()
        };
        let run = || {
            supervised_point::<ClosedFormPll, f64, _>(
                &scenario,
                None,
                Some(&policy),
                8.0,
                &quiet(),
                |_pll| Err(SweepPointError::DegenerateFit { f_mod_hz: 8.0 }),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.result, b.result);
        assert_eq!(a.incidents, b.incidents);
        assert_eq!(a.incidents.len(), 3, "two retries then quarantine");
        assert_eq!(a.incidents[0].action, IncidentAction::Retried);
        assert_eq!(a.incidents[2].action, IncidentAction::Quarantined);
        assert!(a.result.is_err());
    }

    #[test]
    fn panics_are_contained_and_not_retried() {
        let cfg = PllConfig::paper_table3();
        let scenario = Scenario::with_lock_settle(&cfg, 0.01);
        let tel = Collector::enabled();
        let out = supervised_point::<ClosedFormPll, f64, _>(
            &scenario,
            None,
            Some(&SupervisorPolicy::default()),
            4.0,
            &tel,
            |_pll| panic!("injected point panic"),
        );
        assert_eq!(
            out.result,
            Err(SweepPointError::WorkerPanic {
                message: "injected point panic".into()
            })
        );
        assert_eq!(out.incidents.len(), 1, "panics are not retried");
        let records = tel.drain();
        assert!(records.iter().any(|r| matches!(
            r,
            Record::Result { name, .. } if name == "supervisor.incident"
        )));
        assert!(records.iter().any(|r| matches!(
            r,
            Record::Counter { name, value: 1 } if name == "supervisor.quarantined"
        )));
    }

    #[test]
    fn step_budget_scales_with_retry_attempt() {
        let policy = SupervisorPolicy::default();
        // Defaults: settle ×1.5 and step ×0.5 per attempt → expected
        // work grows 3× per attempt, and so must the budget.
        assert_eq!(policy.step_budget_for_attempt(0), 10_000_000);
        assert_eq!(policy.step_budget_for_attempt(1), 30_000_000);
        assert_eq!(policy.step_budget_for_attempt(2), 90_000_000);
        // Unlimited stays unlimited; pathological scales saturate
        // instead of wrapping.
        let unlimited = SupervisorPolicy {
            step_budget: 0,
            ..SupervisorPolicy::default()
        };
        assert_eq!(unlimited.step_budget_for_attempt(3), 0);
        assert_eq!(policy.step_budget_for_attempt(200), u64::MAX);
        let degenerate = SupervisorPolicy {
            retry_step_scale: 0.0,
            ..SupervisorPolicy::default()
        };
        assert_eq!(degenerate.step_budget_for_attempt(1), u64::MAX);
        // A policy that never scales keeps the nominal budget.
        let flat = SupervisorPolicy {
            retry_step_scale: 1.0,
            retry_settle_scale: 1.0,
            ..SupervisorPolicy::default()
        };
        assert_eq!(flat.step_budget_for_attempt(2), 10_000_000);
    }

    #[test]
    fn deep_retries_are_not_spuriously_step_budget_killed() {
        // Regression: the retry deadline is `settle × 1.5^k` at a
        // `0.5^k` micro-step, so attempt 1 needs ~3× the steps of
        // attempt 0. With the budget held constant, a budget that
        // comfortably covers attempt 0 killed the retry during its own
        // settle, quarantining recoverable points as
        // StepBudgetExhausted.
        let cfg = PllConfig::paper_table3();
        let lock_settle = 0.01;
        let scenario = Scenario::with_lock_settle(&cfg, lock_settle);
        // Steps an attempt-0 settle costs on this engine.
        let steps0 = {
            let mut pll = CpPll::new_locked(&cfg);
            let t0 = PllEngine::time(&pll);
            PllEngine::advance_to(&mut pll, t0 + lock_settle);
            PllEngine::work_stats(&pll).steps
        };
        let policy = SupervisorPolicy {
            max_retries: 2,
            step_budget: steps0 * 2,
            ..SupervisorPolicy::default()
        };
        // The scenario is real: attempt 1's settle alone overruns the
        // nominal budget (this is what made the old constant-budget
        // check trip).
        let steps1 = {
            let mut pll = CpPll::new_locked(&cfg);
            PllEngine::set_step_scale(&mut pll, policy.retry_step_scale);
            let t0 = PllEngine::time(&pll);
            PllEngine::advance_to(&mut pll, t0 + lock_settle * policy.retry_settle_scale);
            PllEngine::work_stats(&pll).steps
        };
        assert!(
            steps1 > policy.step_budget,
            "retry settle ({steps1} steps) must exceed the nominal budget \
             ({}) for this regression test to bite",
            policy.step_budget
        );
        let failures = std::sync::atomic::AtomicU32::new(1);
        let out = supervised_point::<CpPll, u64, _>(
            &scenario,
            None,
            Some(&policy),
            2.0,
            &quiet(),
            |pll| {
                if failures.fetch_sub(1, std::sync::atomic::Ordering::SeqCst) > 0 {
                    return Err(SweepPointError::DegenerateFit { f_mod_hz: 2.0 });
                }
                let t = pll.time();
                pll.advance_to(t + 0.001);
                Ok(pll.vco_phase_cycles().to_bits())
            },
        );
        assert_eq!(out.incidents.len(), 1, "{:?}", out.incidents);
        assert_eq!(out.incidents[0].action, IncidentAction::Retried);
        assert_eq!(out.incidents[0].error.kind(), "degenerate_fit");
        assert!(
            out.result.is_ok(),
            "attempt 1 was spuriously killed: {:?}",
            out.result
        );
    }

    #[test]
    fn retry_succeeds_after_transient_failure() {
        let cfg = PllConfig::paper_table3();
        let scenario = Scenario::with_lock_settle(&cfg, 0.01);
        let tel = Collector::enabled();
        let failures = std::sync::atomic::AtomicU32::new(1);
        let out = supervised_point::<ClosedFormPll, u64, _>(
            &scenario,
            None,
            Some(&SupervisorPolicy::default()),
            2.0,
            &tel,
            |pll| {
                if failures.fetch_sub(1, std::sync::atomic::Ordering::SeqCst) > 0 {
                    return Err(SweepPointError::DegenerateFit { f_mod_hz: 2.0 });
                }
                let t = pll.time();
                pll.advance_to(t + 0.05);
                Ok(pll.vco_phase_cycles().to_bits())
            },
        );
        assert!(out.result.is_ok());
        assert_eq!(out.incidents.len(), 1);
        assert_eq!(out.incidents[0].action, IncidentAction::Retried);
        let records = tel.drain();
        assert!(records.iter().any(|r| matches!(
            r,
            Record::Counter { name, value: 1 } if name == "supervisor.points_recovered"
        )));
    }
}
