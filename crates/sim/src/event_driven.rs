//! Event-driven CP-PLL engine with **exact per-event advancement**.
//!
//! Where [`crate::behavioral::CpPll`] micro-steps a `Box<dyn LoopFilter>`
//! between edges (trial segments, cloned state vectors, trapezoidal phase
//! accumulation), this engine advances the loop **per PFD switching
//! event** in the style of the Kuznetsov–Yuldashev closed-form CP-PLL
//! model (arXiv 1901.01468, with the van Paemel correction of
//! 1810.02609): between two discrete events the pump drive is constant,
//! so the loop filter collapses to a scalar affine ODE
//! ([`AffineSegment`]) whose state, output and *time integral* all have
//! closed forms. One evaluation replaces an arbitrary number of
//! micro-steps, VCO phase is accumulated exactly (no trapezoid), and
//! feedback edges are located by a safeguarded Newton iteration on the
//! closed-form phase — a handful of `exp` calls instead of sixty
//! state-vector clones.
//!
//! The observable contract is [`crate::behavioral::CpPll`]'s: the same
//! segment-boundary candidates (reference edge, feedback-phase crossing,
//! dead-zone expiry, sampler tick, the caller's horizon), the same
//! reference-edge scheduling with clamped generation jitter, the same
//! hold semantics, the same work accounting (`steps` counts committed
//! segments, every feedback edge is a shortened/rejected segment). The
//! engines differ only in rounding: phases agree to ~1e-9 cycle over a
//! sweep, not bit for bit.
//!
//! # Supported configurations
//!
//! Exact scalar propagation requires a **first-order filter and a linear
//! VCO**: every stock config and every `standard_campaign` fault
//! qualifies. [`EventDrivenCpPll::new_locked`] panics (with a pointer to
//! [`crate::behavioral::CpPll`]) for a ripple capacitor (second filter
//! state), VCO tuning-curve curvature, or a clamped VCO range. It also
//! refuses to run where the *linear* VCO frequency would cross zero —
//! railed operation far outside lock belongs to the clamped behavioural
//! model.

use crate::behavioral::{LoopEvent, Sample, SolverStats};
use crate::config::{DriveConfig, PllConfig};
use crate::engine::{PllEngine, WorkStats};
use crate::noise::{NoiseConfig, NoiseSource};
use crate::stimulus::FmStimulus;
use pllbist_analog::filter::AffineSegment;
use pllbist_analog::pfd::{BehavioralPfd, PfdOutput};
use pllbist_analog::pump::{ChargePump, PumpOutput, VoltageDriver};
use pllbist_analog::vco::Vco;

/// One PFD drive state reduced to its closed-form loop kernel: the
/// filter's scalar affine segment composed with the linear VCO, so the
/// instantaneous frequency is `f0 + gdx·x` and the phase advance over a
/// segment is exact.
#[derive(Clone, Copy, Debug)]
struct Kernel {
    seg: AffineSegment,
    /// VCO frequency at filter state `x = 0`, in Hz (unclamped linear
    /// extrapolation — may be negative; the engine guards against ever
    /// *operating* there).
    f0: f64,
    /// Frequency sensitivity to the filter state, `∂f/∂x` in Hz per
    /// state-unit.
    gdx: f64,
}

impl Kernel {
    /// Instantaneous (linear, unclamped) VCO frequency for state `x`.
    fn freq(&self, x: f64) -> f64 {
        self.f0 + self.gdx * x
    }
}

struct Sampler {
    interval: f64,
    next_t: f64,
    samples: Vec<Sample>,
}

/// One solved feedback-edge crossing: the shortened segment length, the
/// filter state at its end and the exact phase advance over it — all
/// from the same closed-form evaluations, so the commit recomputes
/// nothing.
#[derive(Clone, Copy)]
struct Crossing {
    dt: f64,
    x_end: f64,
    dphase: f64,
}

/// The drive stage as a pure function of the config (the event engine
/// only ever needs the three static `PumpOutput` values).
fn drive_of(config: &PllConfig, pfd: PfdOutput) -> PumpOutput {
    match config.drive {
        DriveConfig::Voltage { vdd } => VoltageDriver::new(vdd).drive(pfd),
        DriveConfig::Charge { i_pump, mismatch } => {
            ChargePump::with_mismatch(i_pump, mismatch).drive(pfd)
        }
    }
}

/// Array slot for a PFD state's kernel.
fn slot(state: PfdOutput) -> usize {
    match state {
        PfdOutput::Up => 0,
        PfdOutput::Down => 1,
        PfdOutput::Off => 2,
    }
}

/// The event-driven CP-PLL simulator — [`crate::behavioral::CpPll`]'s
/// semantics at closed-form speed.
///
/// # Example
///
/// ```
/// use pllbist_sim::config::PllConfig;
/// use pllbist_sim::event_driven::EventDrivenCpPll;
///
/// let cfg = PllConfig::paper_table3();
/// let mut pll = EventDrivenCpPll::new_locked(&cfg);
/// pll.advance_to(0.1); // run 100 ms at lock
/// let f = pll.average_frequency_hz(0.05);
/// assert!((f - 5_000.0).abs() < 5.0, "still at lock: {f}");
/// ```
pub struct EventDrivenCpPll {
    config: PllConfig,
    pfd: BehavioralPfd,
    vco: Vco,
    /// Kernels indexed by [`slot`]: Up, Down, Off.
    kernels: [Kernel; 3],
    /// The scalar filter state (capacitor voltage / integrator value).
    x: f64,
    stimulus: FmStimulus,
    t: f64,
    vco_phase_cycles: f64,
    fb_edge_count: u64,
    next_fb_target: f64,
    next_ref_edge: f64,
    /// The unjittered time of the pending reference edge — the edge
    /// *sequence* advances on the ideal grid; jitter only moves each
    /// edge's emission time.
    next_ref_edge_ideal: f64,
    /// Offset making the reference phase continuous across stimulus
    /// switches: ref_phase(t) = stim_phase_base + stimulus.phase_cycles(t).
    stim_phase_base: f64,
    hold: bool,
    /// Event-subdivision guard: no committed segment exceeds this, even
    /// when no event bounds it. Physics is exact at any length, so at the
    /// default (`2/f_ref`, never binding between ~1/f_ref-spaced edges)
    /// this costs nothing; the supervisor's retry ladder shrinks it via
    /// [`PllEngine::set_step_scale`] so re-attempts still tighten a real
    /// knob on this engine.
    max_segment_dt: f64,
    collect_events: bool,
    events: Vec<LoopEvent>,
    sampler: Option<Sampler>,
    noise: Option<NoiseSource>,
    stats: SolverStats,
}

impl EventDrivenCpPll {
    /// Builds the loop preset at its lock point (the only supported
    /// start: cold-start acquisition slews through the railed region the
    /// linear kernels exclude — use [`crate::behavioral::CpPll`] for
    /// that).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is outside the engine's exact class:
    /// a ripple capacitor (second filter state), VCO curvature, or a
    /// clamped VCO range.
    pub fn new_locked(config: &PllConfig) -> Self {
        assert!(
            config.vco_curvature == (0.0, 0.0),
            "EventDrivenCpPll requires a linear VCO tuning curve \
             (vco_curvature = (0, 0)); use CpPll for curved tuning"
        );
        assert!(
            config.vco_range_hz.is_none(),
            "EventDrivenCpPll requires an unclamped VCO range; \
             use CpPll for range-limited operation"
        );
        let filter = config.build_filter();
        let vco = config.build_vco();
        let gain = vco.gain_hz_per_volt();
        let kernel_for = |state: PfdOutput| -> Kernel {
            let seg = match filter.affine_segment(drive_of(config, state)) {
                Some(seg) => seg,
                None => panic!(
                    "EventDrivenCpPll requires a first-order loop filter \
                     (no ripple capacitor); use CpPll for second-order filters"
                ),
            };
            Kernel {
                seg,
                // Linear, unclamped: f(v) = f_center + gain·(v − v_center),
                // composed with v = c·x + d.
                f0: vco.f_center_hz() + gain * (seg.d - vco.v_center()),
                gdx: gain * seg.c,
            }
        };
        let kernels = [
            kernel_for(PfdOutput::Up),
            kernel_for(PfdOutput::Down),
            kernel_for(PfdOutput::Off),
        ];
        // Preset at lock through the canonical vector path so the initial
        // state matches CpPll::new_locked exactly.
        let v_lock = vco.control_for_frequency(config.f_vco_hz());
        let mut state = filter.initial_state();
        filter.preset_output(&mut state, v_lock);
        let x = state[0];
        let stimulus = FmStimulus::constant(config.f_ref_hz, 0.0);
        let next_ref_edge = stimulus.next_edge_after(0.0);
        Self {
            config: config.clone(),
            pfd: BehavioralPfd::with_dead_zone(config.pfd_dead_zone),
            vco,
            kernels,
            x,
            stimulus,
            t: 0.0,
            vco_phase_cycles: 0.0,
            fb_edge_count: 0,
            next_fb_target: config.divider_n as f64,
            next_ref_edge,
            next_ref_edge_ideal: next_ref_edge,
            stim_phase_base: 0.0,
            hold: false,
            max_segment_dt: 2.0 / config.f_ref_hz,
            collect_events: false,
            events: Vec::new(),
            sampler: None,
            noise: None,
            stats: SolverStats::default(),
        }
    }

    /// The configuration this loop was built from.
    pub fn config(&self) -> &PllConfig {
        &self.config
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// The kernel slot active *now* (hold and an unexpired dead zone both
    /// present the Off drive, exactly as `CpPll::current_drive`).
    fn active_slot(&self) -> usize {
        if self.hold {
            return slot(PfdOutput::Off);
        }
        let state = self.pfd.output();
        if state != PfdOutput::Off && self.pfd.dead_zone() > 0.0 {
            if let Some(armed) = self.pfd.armed_since() {
                if self.t - armed < self.pfd.dead_zone() {
                    return slot(PfdOutput::Off);
                }
            }
        }
        slot(state)
    }

    /// Current control voltage.
    pub fn control_voltage(&self) -> f64 {
        self.kernels[self.active_slot()].seg.output(self.x)
    }

    /// Current instantaneous VCO frequency in Hz.
    pub fn vco_frequency_hz(&self) -> f64 {
        self.vco.frequency_hz(self.control_voltage())
    }

    /// The held control voltage: the filter output with the drive
    /// high-impedance — the smooth capacitor state, free of the
    /// correction-pulse feed-through (what engaging hold would freeze).
    pub fn held_control_voltage(&self) -> f64 {
        self.kernels[slot(PfdOutput::Off)].seg.output(self.x)
    }

    /// Accumulated VCO phase in cycles — the ideal-counter readout; the
    /// BIST layer quantises this to model real counters.
    pub fn vco_phase_cycles(&self) -> f64 {
        self.vco_phase_cycles
    }

    /// Advances the simulation by `window` seconds and returns the
    /// **boxcar-average** VCO frequency over that window (what a gated
    /// frequency counter reads).
    ///
    /// # Panics
    ///
    /// Panics if `window` is not positive and finite.
    pub fn average_frequency_hz(&mut self, window: f64) -> f64 {
        assert!(
            window > 0.0 && window.is_finite(),
            "window must be positive"
        );
        let p0 = self.vco_phase_cycles;
        let t0 = self.t;
        self.advance_to(t0 + window);
        (self.vco_phase_cycles - p0) / (self.t - t0)
    }

    /// Number of feedback (divided-VCO) edges so far.
    pub fn fb_edge_count(&self) -> u64 {
        self.fb_edge_count
    }

    /// Cumulative solver work counters since construction. On this
    /// engine `steps` counts **committed closed-form segments** — the
    /// event engine's unit of work — so every step budget the supervisor
    /// enforces is effectively an event budget here.
    pub fn solver_stats(&self) -> SolverStats {
        self.stats
    }

    /// Dead-zone glitches seen by this loop's PFD so far.
    pub fn pfd_glitch_count(&self) -> u64 {
        self.pfd.glitch_count()
    }

    /// The PFD's present output state.
    pub fn pfd_output(&self) -> PfdOutput {
        self.pfd.output()
    }

    /// Replaces the reference stimulus **phase-continuously** (see
    /// [`crate::behavioral::CpPll::set_stimulus`]).
    pub fn set_stimulus(&mut self, stimulus: FmStimulus) {
        let current = self.reference_phase_cycles();
        self.stimulus = stimulus;
        self.stim_phase_base = current - self.stimulus.phase_cycles(self.t);
        self.schedule_next_ref_edge(self.t);
    }

    /// Accumulated reference phase in cycles (continuous across stimulus
    /// switches).
    pub fn reference_phase_cycles(&self) -> f64 {
        self.stim_phase_base + self.stimulus.phase_cycles(self.t)
    }

    /// Advances the reference edge schedule — the same ideal-grid walk
    /// with clamped emission jitter as the behavioural engine.
    fn schedule_next_ref_edge(&mut self, ideal_after: f64) {
        let phase_now = self.stim_phase_base + self.stimulus.phase_cycles(ideal_after);
        let mut target = phase_now.floor() + 1.0;
        if target - phase_now < 1e-9 {
            target += 1.0;
        }
        let mut ideal = self
            .stimulus
            .time_at_phase(target - self.stim_phase_base, ideal_after);
        if ideal <= ideal_after {
            let bump = (ideal_after.abs() * 4.0 * f64::EPSILON).max(1e-12);
            ideal = ideal_after + bump;
        }
        self.next_ref_edge_ideal = ideal;
        let mut emitted = ideal;
        if let Some(n) = &mut self.noise {
            let limit = 0.45 / self.config.f_ref_hz;
            let jittered = n.jitter_ref_edge(ideal);
            emitted = jittered.clamp(ideal - limit, ideal + limit);
        }
        self.next_ref_edge = emitted.max(self.t + f64::MIN_POSITIVE);
    }

    /// The current stimulus.
    pub fn stimulus(&self) -> &FmStimulus {
        &self.stimulus
    }

    /// Injects white Gaussian edge jitter (see [`crate::noise`]); `None`
    /// restores the noiseless ideal. Takes effect from the next edge.
    pub fn set_noise(&mut self, config: Option<NoiseConfig>) {
        self.noise = config.map(NoiseSource::new);
    }

    /// Engages or releases the hold mechanism (paper §4, Table 2 stage
    /// 3).
    pub fn set_hold(&mut self, hold: bool) {
        if hold && !self.hold {
            self.pfd.reset();
            self.stats.hold_engagements += 1;
        }
        self.hold = hold;
    }

    /// `true` while the hold mechanism is engaged.
    pub fn is_held(&self) -> bool {
        self.hold
    }

    /// Starts collecting [`LoopEvent`]s (reference/feedback edges).
    pub fn collect_events(&mut self, on: bool) {
        self.collect_events = on;
    }

    /// Drains collected events.
    pub fn take_events(&mut self) -> Vec<LoopEvent> {
        std::mem::take(&mut self.events)
    }

    /// Starts sampling the analogue state every `interval` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive and finite.
    pub fn enable_sampling(&mut self, interval: f64) {
        assert!(
            interval > 0.0 && interval.is_finite(),
            "sampling interval must be positive"
        );
        self.sampler = Some(Sampler {
            interval,
            next_t: self.t,
            samples: Vec::new(),
        });
    }

    /// Drains collected samples.
    pub fn take_samples(&mut self) -> Vec<Sample> {
        self.sampler
            .as_mut()
            .map(|s| std::mem::take(&mut s.samples))
            .unwrap_or_default()
    }

    /// Commits one constant-drive segment of length `dt` ending in filter
    /// state `x_new` with phase advance `dphase` (both already computed
    /// by the caller from the same closed-form evaluation).
    fn commit(&mut self, k: Kernel, dt: f64, x_new: f64, dphase: f64) {
        self.x = x_new;
        self.vco_phase_cycles += dphase;
        self.t += dt;
        self.stats.steps += 1;
        // The kernels are *unclamped* linear extrapolations; leaving the
        // positive-frequency region means the clamp of the behavioural
        // model would have engaged and the closed form no longer holds.
        let f_end = k.freq(self.x);
        assert!(
            f_end > 0.0,
            "EventDrivenCpPll: VCO frequency left the positive linear \
             region (f = {f_end} Hz at t = {}); use CpPll for railed \
             operation",
            self.t
        );
        if let Some(sampler) = &mut self.sampler {
            if self.t >= sampler.next_t {
                let v = k.seg.output(self.x);
                let v_held = self.kernels[slot(PfdOutput::Off)].seg.output(self.x);
                sampler.samples.push(Sample {
                    t: self.t,
                    v_ctrl: v,
                    f_vco_hz: self.vco.frequency_hz(v),
                    phase_cycles: self.vco_phase_cycles,
                    v_held,
                });
                while sampler.next_t <= self.t {
                    sampler.next_t += sampler.interval;
                }
            }
        }
    }

    /// Advances the simulation to absolute time `t_end`.
    ///
    /// # Panics
    ///
    /// Panics if `t_end` is in the past or not finite.
    pub fn advance_to(&mut self, t_end: f64) {
        assert!(
            t_end.is_finite() && t_end >= self.t,
            "t_end must be ahead of the current time"
        );
        // Guard: bound iterations to catch pathological configs in tests.
        let max_iters = ((t_end - self.t) * (self.config.f_vco_hz() * 8.0 + 1e4)) as u64 + 1000;
        let mut iters = 0u64;
        while self.t < t_end {
            iters += 1;
            assert!(
                iters <= max_iters,
                "simulation failed to progress (t = {}, next_ref_edge = {}, \
                 next_fb_target = {}, vco_phase = {}, hold = {}, pfd = {:?})",
                self.t,
                self.next_ref_edge,
                self.next_fb_target,
                self.vco_phase_cycles,
                self.hold,
                self.pfd.output()
            );
            // Segment boundary candidates — same set as the behavioural
            // engine, with the subdivision guard in place of a micro-step.
            let mut tb = (self.t + self.max_segment_dt).min(t_end);
            if let Some(s) = &self.sampler {
                if s.next_t > self.t {
                    tb = tb.min(s.next_t);
                }
            }
            let mut is_ref_edge = false;
            if self.next_ref_edge <= tb {
                tb = self.next_ref_edge;
                is_ref_edge = true;
            }
            if !self.hold && self.pfd.dead_zone() > 0.0 {
                if let Some(armed) = self.pfd.armed_since() {
                    let expiry = armed + self.pfd.dead_zone();
                    if expiry > self.t && expiry < tb {
                        tb = expiry;
                        is_ref_edge = false;
                    }
                }
            }
            let dt_seg = tb - self.t;
            if dt_seg <= 0.0 {
                // Boundary coincides with `t`: process the edge without
                // advancing time.
                if is_ref_edge {
                    self.process_ref_edge();
                }
                continue;
            }
            let k = self.kernels[self.active_slot()];
            let (x_new, integral) = k.seg.state_and_integral(self.x, dt_seg);
            let dphase = k.f0 * dt_seg + k.gdx * integral;
            if self.vco_phase_cycles + dphase >= self.next_fb_target {
                // A feedback edge falls inside the segment: shorten it to
                // the crossing (the segment counts as rejected, mirroring
                // the behavioural engine's work accounting).
                self.stats.step_rejections += 1;
                let target = self.next_fb_target - self.vco_phase_cycles;
                let edge = Self::solve_phase_crossing(k, self.x, target, dt_seg);
                self.commit(k, edge.dt, edge.x_end, edge.dphase);
                self.process_fb_edge();
                continue;
            }
            self.commit(k, dt_seg, x_new, dphase);
            if is_ref_edge {
                self.process_ref_edge();
            }
        }
    }

    /// Convergence tolerance for the edge solver, relative to the
    /// *segment length* (`dt_max`), not the candidate. The distinction
    /// matters in lock: the feedback edge then falls essentially at the
    /// segment start (the remaining target phase is cancellation noise
    /// of the accumulated-cycles subtraction), so the true root sits at
    /// `dt ≈ 1e-18 s` and any candidate-relative threshold collapses
    /// with it — Newton would grind sub-noise bisection for the full
    /// iteration budget chasing precision the target itself doesn't
    /// carry. One part in 10¹³ of a segment is ~1e-16 s on a reference
    /// period: far below edge-time significance (the phase error it
    /// admits is under the target's own rounding noise), reached in a
    /// couple of iterations whether the root is mid-segment or
    /// degenerate at the boundary.
    const EDGE_REL_TOL: f64 = 1e-13;

    /// The `dt ∈ (0, dt_max]` where the closed-form phase advance
    /// reaches `target` (to [`Self::EDGE_REL_TOL`], deterministically):
    /// Newton on the closed-form phase — the derivative is the
    /// instantaneous frequency, also closed form — safeguarded by a
    /// shrinking bracket with bisection fallback. The caller guarantees
    /// the phase at `dt_max` reaches the target.
    fn solve_phase_crossing(k: Kernel, x: f64, target: f64, dt_max: f64) -> Crossing {
        let mut lo = 0.0f64;
        let mut hi = dt_max;
        // The tightest at-or-past-target evaluation seen so far — the
        // fallback if the loop exhausts its budget without converging.
        let mut best: Option<Crossing> = None;
        // Initial guess from the segment-entry frequency.
        let f_entry = k.freq(x);
        let mut cand = if f_entry > 0.0 {
            (target / f_entry).clamp(0.0, dt_max)
        } else {
            0.5 * dt_max
        };
        for _ in 0..64 {
            if cand <= lo || cand >= hi {
                cand = 0.5 * (lo + hi);
                if cand <= lo || cand >= hi {
                    // Bracket collapsed to a ulp: `best` (if any) is the
                    // crossing to machine precision.
                    break;
                }
            }
            // One shared exponential per candidate: the phase residual
            // (via the state integral) and the Newton derivative (the
            // instantaneous frequency at the candidate) come out of the
            // same `exp` evaluation — the entire cost of an iteration.
            let (x_cand, integral) = k.seg.state_and_integral(x, cand);
            let phi = k.f0 * cand + k.gdx * integral;
            let here = Crossing {
                dt: cand,
                x_end: x_cand,
                dphase: phi,
            };
            if phi < target {
                lo = cand;
            } else {
                hi = cand;
                best = Some(here);
            }
            let f = k.f0 + k.gdx * x_cand;
            if f <= 0.0 {
                cand = 0.5 * (lo + hi);
                continue;
            }
            let delta = (target - phi) / f;
            // Converged: the Newton update or the bracket is below the
            // tolerance. The final candidate *is* the edge — committing
            // it directly (state and phase from the same evaluation)
            // keeps edge time, filter state and accumulated phase
            // mutually exact.
            if delta.abs() <= Self::EDGE_REL_TOL * dt_max || hi - lo <= Self::EDGE_REL_TOL * dt_max
            {
                return here;
            }
            cand += delta;
        }
        best.unwrap_or_else(|| {
            // Never bracketed from above within the iteration budget:
            // fall back to the caller-guaranteed crossing at `dt_max`.
            let (x_end, integral) = k.seg.state_and_integral(x, hi);
            Crossing {
                dt: hi,
                x_end,
                dphase: k.f0 * hi + k.gdx * integral,
            }
        })
    }

    fn process_ref_edge(&mut self) {
        // The generation-level jitter is already in `next_ref_edge`.
        let t = self.next_ref_edge;
        self.stats.ref_edges += 1;
        if self.collect_events {
            self.events.push(LoopEvent::RefEdge { t });
        }
        if !self.hold {
            self.pfd.on_reference_edge(t);
        }
        let ideal = self.next_ref_edge_ideal;
        self.schedule_next_ref_edge(ideal);
    }

    fn process_fb_edge(&mut self) {
        let t = self.t;
        let t_obs = match &mut self.noise {
            Some(n) => n.jitter_fb_edge(t),
            None => t,
        };
        self.fb_edge_count += 1;
        self.stats.fb_edges += 1;
        self.next_fb_target += self.config.divider_n as f64;
        if self.collect_events {
            self.events.push(LoopEvent::FbEdge { t: t_obs });
        }
        if !self.hold {
            self.pfd.on_feedback_edge(t_obs);
        }
    }

    /// Snapshots the loop's dynamic state (see
    /// [`EventDrivenCheckpoint`]).
    pub fn checkpoint(&self) -> EventDrivenCheckpoint {
        EventDrivenCheckpoint {
            t: self.t,
            x: self.x,
            pfd: self.pfd,
            stimulus: self.stimulus.clone(),
            vco_phase_cycles: self.vco_phase_cycles,
            fb_edge_count: self.fb_edge_count,
            next_fb_target: self.next_fb_target,
            next_ref_edge: self.next_ref_edge,
            next_ref_edge_ideal: self.next_ref_edge_ideal,
            stim_phase_base: self.stim_phase_base,
            hold: self.hold,
            noise: self.noise.clone(),
            stats: self.stats,
        }
    }

    /// Overwrites the dynamic state with a snapshot taken from a loop
    /// built from the **same configuration** — bit-exact, with
    /// instrumentation reset to off/empty (the engine-wide checkpoint
    /// contract of [`PllEngine::restore`]).
    pub fn restore(&mut self, snapshot: &EventDrivenCheckpoint) {
        self.t = snapshot.t;
        self.x = snapshot.x;
        self.pfd = snapshot.pfd;
        self.stimulus = snapshot.stimulus.clone();
        self.vco_phase_cycles = snapshot.vco_phase_cycles;
        self.fb_edge_count = snapshot.fb_edge_count;
        self.next_fb_target = snapshot.next_fb_target;
        self.next_ref_edge = snapshot.next_ref_edge;
        self.next_ref_edge_ideal = snapshot.next_ref_edge_ideal;
        self.stim_phase_base = snapshot.stim_phase_base;
        self.hold = snapshot.hold;
        self.noise = snapshot.noise.clone();
        self.stats = snapshot.stats;
        self.collect_events = false;
        self.events = Vec::new();
        self.sampler = None;
    }
}

/// A bit-exact snapshot of an [`EventDrivenCpPll`]'s dynamic state.
///
/// Everything static — the kernels, VCO, PFD dead zone, subdivision
/// guard — is a pure function of the [`PllConfig`] and is deliberately
/// *not* stored: [`EventDrivenCpPll::restore`] requires an engine built
/// from the same configuration. The PFD (glitch counter included) and
/// the solver stats ride along so checkpointed and from-scratch runs
/// report identical telemetry.
#[derive(Clone, Debug)]
pub struct EventDrivenCheckpoint {
    t: f64,
    x: f64,
    pfd: BehavioralPfd,
    stimulus: FmStimulus,
    vco_phase_cycles: f64,
    fb_edge_count: u64,
    next_fb_target: f64,
    next_ref_edge: f64,
    next_ref_edge_ideal: f64,
    stim_phase_base: f64,
    hold: bool,
    noise: Option<NoiseSource>,
    stats: SolverStats,
}

impl PllEngine for EventDrivenCpPll {
    type Checkpoint = EventDrivenCheckpoint;

    fn new_locked(config: &PllConfig) -> Self {
        EventDrivenCpPll::new_locked(config)
    }

    fn config(&self) -> &PllConfig {
        self.config()
    }

    fn time(&self) -> f64 {
        self.time()
    }

    fn advance_to(&mut self, t_end: f64) {
        EventDrivenCpPll::advance_to(self, t_end);
    }

    fn control_voltage(&self) -> f64 {
        EventDrivenCpPll::control_voltage(self)
    }

    fn vco_frequency_hz(&self) -> f64 {
        EventDrivenCpPll::vco_frequency_hz(self)
    }

    fn vco_phase_cycles(&self) -> f64 {
        EventDrivenCpPll::vco_phase_cycles(self)
    }

    fn set_stimulus(&mut self, stimulus: FmStimulus) {
        EventDrivenCpPll::set_stimulus(self, stimulus);
    }

    fn set_hold(&mut self, hold: bool) {
        EventDrivenCpPll::set_hold(self, hold);
    }

    fn is_held(&self) -> bool {
        EventDrivenCpPll::is_held(self)
    }

    fn collect_events(&mut self, on: bool) {
        EventDrivenCpPll::collect_events(self, on);
    }

    fn take_events(&mut self) -> Vec<LoopEvent> {
        EventDrivenCpPll::take_events(self)
    }

    fn checkpoint(&self) -> EventDrivenCheckpoint {
        EventDrivenCpPll::checkpoint(self)
    }

    fn restore(&mut self, snapshot: &EventDrivenCheckpoint) {
        EventDrivenCpPll::restore(self, snapshot);
    }

    fn set_step_scale(&mut self, scale: f64) {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "step scale must be positive and finite"
        );
        // The event engine has no free-running integration step to
        // shrink — segments are exact at any length — so the scale
        // tightens the *event-subdivision guard* instead: retries commit
        // more, shorter segments. `1.0 * x == x` exactly in IEEE-754, so
        // scale 1.0 is bitwise neutral as the trait contract requires
        // (and the default guard of 2/f_ref never binds between
        // ~1/f_ref-spaced reference edges anyway).
        self.max_segment_dt = scale * (2.0 / self.config.f_ref_hz);
    }

    fn backend_name() -> &'static str {
        "event_driven"
    }

    fn encode_checkpoint(snapshot: &EventDrivenCheckpoint) -> Option<String> {
        if snapshot.noise.is_some() {
            // The jitter source carries private RNG state; declining
            // keeps the sidecar honest — noisy campaigns re-settle.
            return None;
        }
        let hx = |v: f64| format!("{:016x}", v.to_bits());
        let s = &snapshot.stats;
        Some(format!(
            "ev:{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{},{},{},{},{}",
            hx(snapshot.t),
            hx(snapshot.x),
            snapshot.pfd.state_code(),
            snapshot.stimulus.encode_state(),
            hx(snapshot.vco_phase_cycles),
            snapshot.fb_edge_count,
            hx(snapshot.next_fb_target),
            hx(snapshot.next_ref_edge),
            hx(snapshot.next_ref_edge_ideal),
            hx(snapshot.stim_phase_base),
            u8::from(snapshot.hold),
            s.steps,
            s.step_rejections,
            s.ref_edges,
            s.fb_edges,
            s.hold_engagements,
        ))
    }

    fn decode_checkpoint(token: &str) -> Option<EventDrivenCheckpoint> {
        fn f64_bits(s: &str) -> Option<f64> {
            (s.len() == 16).then(|| u64::from_str_radix(s, 16).ok().map(f64::from_bits))?
        }
        let rest = token.strip_prefix("ev:")?;
        let parts: Vec<&str> = rest.split('|').collect();
        if parts.len() != 12 {
            return None;
        }
        let stats: Vec<u64> = parts[11]
            .split(',')
            .map(|s| s.parse().ok())
            .collect::<Option<_>>()?;
        if stats.len() != 5 {
            return None;
        }
        Some(EventDrivenCheckpoint {
            t: f64_bits(parts[0])?,
            x: f64_bits(parts[1])?,
            pfd: BehavioralPfd::from_state_code(parts[2])?,
            stimulus: FmStimulus::decode_state(parts[3])?,
            vco_phase_cycles: f64_bits(parts[4])?,
            fb_edge_count: parts[5].parse().ok()?,
            next_fb_target: f64_bits(parts[6])?,
            next_ref_edge: f64_bits(parts[7])?,
            next_ref_edge_ideal: f64_bits(parts[8])?,
            stim_phase_base: f64_bits(parts[9])?,
            hold: match parts[10] {
                "0" => false,
                "1" => true,
                _ => return None,
            },
            noise: None,
            stats: SolverStats {
                steps: stats[0],
                step_rejections: stats[1],
                ref_edges: stats[2],
                fb_edges: stats[3],
                hold_engagements: stats[4],
            },
        })
    }

    fn work_stats(&self) -> WorkStats {
        let s = self.solver_stats();
        WorkStats {
            steps: s.steps,
            step_rejections: s.step_rejections,
            ref_edges: s.ref_edges,
            fb_edges: s.fb_edges,
            hold_engagements: s.hold_engagements,
            pfd_glitches: self.pfd_glitch_count(),
            kernel_events: 0,
        }
    }
}

impl crate::engine::AnalogAccess for EventDrivenCpPll {
    fn enable_sampling(&mut self, interval: f64) {
        EventDrivenCpPll::enable_sampling(self, interval);
    }

    fn take_samples(&mut self) -> Vec<Sample> {
        EventDrivenCpPll::take_samples(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavioral::CpPll;

    #[test]
    fn locked_loop_stays_locked() {
        let cfg = PllConfig::paper_table3();
        let mut pll = EventDrivenCpPll::new_locked(&cfg);
        pll.advance_to(0.5);
        let f = pll.average_frequency_hz(0.1);
        assert!((f - 5_000.0).abs() < 2.0, "f = {f}");
        let edges_per_sec = pll.fb_edge_count() as f64 / 0.6;
        assert!((edges_per_sec - 1_000.0).abs() < 5.0);
    }

    #[test]
    fn frequency_step_settles_to_n_times_reference() {
        let cfg = PllConfig::paper_table3();
        let mut pll = EventDrivenCpPll::new_locked(&cfg);
        pll.set_stimulus(FmStimulus::constant(1_000.0, 8.0));
        pll.advance_to(1.5);
        let f = pll.average_frequency_hz(0.1);
        assert!((f - 5_040.0).abs() < 1.0, "f = {f}");
    }

    #[test]
    fn charge_pump_loop_locks_too() {
        let cfg = PllConfig::integer_n_charge_pump();
        let mut pll = EventDrivenCpPll::new_locked(&cfg);
        pll.advance_to(0.2);
        let f = pll.average_frequency_hz(0.02);
        assert!((f - 80_000.0).abs() < 100.0, "f = {f}");
    }

    #[test]
    fn tracks_behavioral_engine_closely() {
        // The tentpole cross-check at engine granularity: same config,
        // same stimulus law, the micro-stepped and the event-driven
        // engines must tell the same physical story (they differ only in
        // rounding and in where feedback edges land within one ulp).
        let cfg = PllConfig::paper_table3();
        let mut ev = EventDrivenCpPll::new_locked(&cfg);
        let mut beh = CpPll::new_locked(&cfg);
        let stim = FmStimulus::pure_sine(1_000.0, 10.0, 8.0);
        ev.set_stimulus(stim.clone());
        beh.set_stimulus(stim);
        for k in 1..=10 {
            let t = k as f64 * 0.1;
            ev.advance_to(t);
            beh.advance_to(t);
            let pe = ev.vco_phase_cycles();
            let pb = beh.vco_phase_cycles();
            assert!(
                (pe - pb).abs() < 1e-4 * pb.abs().max(1.0),
                "t = {t}: event {pe} vs behavioral {pb} cycles"
            );
            let ve = ev.held_control_voltage();
            let vb = beh.held_control_voltage();
            assert!(
                (ve - vb).abs() < 1e-4,
                "t = {t}: held v event {ve} vs behavioral {vb}"
            );
        }
        assert_eq!(ev.fb_edge_count(), beh.fb_edge_count());
    }

    #[test]
    fn event_engine_does_far_less_work() {
        // The reason this engine exists: no micro-steps, no bisection
        // trials. Committed segments stay within a small multiple of the
        // physical event count, where the behavioural engine pays ~5
        // micro-steps per reference period on the paper's loop.
        let cfg = PllConfig::paper_table3();
        let mut ev = EventDrivenCpPll::new_locked(&cfg);
        let mut beh = CpPll::new_locked(&cfg);
        ev.advance_to(0.5);
        beh.advance_to(0.5);
        let se = ev.solver_stats();
        let sb = beh.solver_stats();
        assert!(
            se.steps * 2 < sb.steps,
            "event engine should commit far fewer segments: {} vs {}",
            se.steps,
            sb.steps
        );
    }

    #[test]
    fn hold_freezes_the_vco() {
        let cfg = PllConfig::paper_table3();
        let mut pll = EventDrivenCpPll::new_locked(&cfg);
        pll.set_stimulus(FmStimulus::constant(1_000.0, 6.0));
        pll.advance_to(0.9);
        let f_before = pll.average_frequency_hz(0.1);
        pll.set_hold(true);
        let f_at_hold = pll.vco_frequency_hz();
        assert!(
            (f_at_hold - f_before).abs() < 2.0,
            "{f_before} vs {f_at_hold}"
        );
        pll.set_stimulus(FmStimulus::constant(1_000.0, -6.0));
        pll.advance_to(3.0);
        let f_after = pll.vco_frequency_hz();
        assert!(
            (f_after - f_at_hold).abs() < 1e-6,
            "held: {f_at_hold} → {f_after}"
        );
        pll.set_hold(false);
        pll.advance_to(4.5);
        let f = pll.average_frequency_hz(0.1);
        assert!((f - 5.0 * 994.0).abs() < 2.0, "f = {f}");
    }

    #[test]
    fn hold_droops_with_leakage_fault() {
        use pllbist_analog::fault::Fault;
        let cfg = PllConfig::paper_table3()
            .with_fault(Fault::FilterLeakage(5e6))
            .unwrap();
        let mut pll = EventDrivenCpPll::new_locked(&cfg);
        pll.advance_to(1.0);
        let f0 = pll.vco_frequency_hz();
        pll.set_hold(true);
        pll.advance_to(1.5);
        let f1 = pll.vco_frequency_hz();
        assert!(f0 - f1 > 100.0, "droop {} Hz", f0 - f1);
    }

    #[test]
    fn events_are_ordered_and_interleaved() {
        let cfg = PllConfig::paper_table3();
        let mut pll = EventDrivenCpPll::new_locked(&cfg);
        pll.collect_events(true);
        pll.advance_to(0.05);
        let events = pll.take_events();
        assert!(events.len() > 80, "{} events", events.len());
        for w in events.windows(2) {
            assert!(w[0].time() <= w[1].time());
        }
        let refs = events
            .iter()
            .filter(|e| matches!(e, LoopEvent::RefEdge { .. }))
            .count();
        let fbs = events.len() - refs;
        assert!(
            (refs as i64 - fbs as i64).abs() <= 5,
            "refs {refs} fbs {fbs}"
        );
    }

    #[test]
    fn sine_fm_modulates_the_output() {
        let cfg = PllConfig::paper_table3();
        let mut pll = EventDrivenCpPll::new_locked(&cfg);
        pll.set_stimulus(FmStimulus::pure_sine(1_000.0, 10.0, 1.0));
        pll.advance_to(3.0);
        pll.enable_sampling(5e-3);
        pll.advance_to(5.0);
        let samples = pll.take_samples();
        let boxcar: Vec<f64> = samples
            .windows(2)
            .map(|w| (w[1].phase_cycles - w[0].phase_cycles) / (w[1].t - w[0].t))
            .collect();
        let max = boxcar.iter().copied().fold(f64::MIN, f64::max);
        let min = boxcar.iter().copied().fold(f64::MAX, f64::min);
        assert!((max - 5_050.0).abs() < 6.0, "max {max}");
        assert!((min - 4_950.0).abs() < 6.0, "min {min}");
    }

    #[test]
    fn dead_zone_slows_small_corrections() {
        let mut cfg = PllConfig::paper_table3();
        cfg.pfd_dead_zone = 40e-6;
        let mut pll = EventDrivenCpPll::new_locked(&cfg);
        pll.advance_to(0.5);
        assert!((pll.vco_frequency_hz() - 5_000.0).abs() < 30.0);
    }

    #[test]
    fn sampler_interval_respected() {
        let cfg = PllConfig::paper_table3();
        let mut pll = EventDrivenCpPll::new_locked(&cfg);
        pll.enable_sampling(10e-3);
        pll.advance_to(0.5);
        let s = pll.take_samples();
        assert!((48..=52).contains(&s.len()), "{} samples", s.len());
        assert!(pll.take_samples().is_empty(), "drained");
    }

    #[test]
    fn solver_stats_count_work_and_diff_cleanly() {
        let cfg = PllConfig::paper_table3();
        let mut pll = EventDrivenCpPll::new_locked(&cfg);
        assert_eq!(pll.solver_stats(), SolverStats::default());
        pll.advance_to(0.1);
        let mid = pll.solver_stats();
        assert!(mid.steps > 0, "{mid:?}");
        assert!((90..=110).contains(&mid.ref_edges), "{mid:?}");
        assert!((90..=110).contains(&mid.fb_edges), "{mid:?}");
        assert_eq!(mid.step_rejections, mid.fb_edges, "{mid:?}");
        assert_eq!(mid.hold_engagements, 0);
        pll.set_hold(true);
        pll.set_hold(true); // idempotent: still one engagement
        pll.advance_to(0.2);
        let end = pll.solver_stats();
        let delta = end.since(&mid);
        assert_eq!(delta.hold_engagements, 1);
        assert_eq!(delta.fb_edges, end.fb_edges - mid.fb_edges);
        let mut acc = mid;
        acc.absorb(&delta);
        assert_eq!(acc, end);
    }

    #[test]
    fn checkpoint_restore_resumes_bit_exactly() {
        let cfg = PllConfig::paper_table3();
        let mut a = EventDrivenCpPll::new_locked(&cfg);
        a.set_stimulus(FmStimulus::pure_sine(1_000.0, 10.0, 8.0));
        a.set_noise(Some(crate::noise::NoiseConfig::symmetric(2e-7, 42)));
        a.advance_to(0.7);
        let snap = a.checkpoint();
        let mut b = EventDrivenCpPll::new_locked(&cfg);
        b.restore(&snap);
        a.advance_to(1.3);
        b.advance_to(1.3);
        assert_eq!(
            a.vco_phase_cycles().to_bits(),
            b.vco_phase_cycles().to_bits()
        );
        assert_eq!(a.control_voltage().to_bits(), b.control_voltage().to_bits());
        assert_eq!(a.solver_stats(), b.solver_stats());
        assert_eq!(a.fb_edge_count(), b.fb_edge_count());
        assert_eq!(a.pfd_glitch_count(), b.pfd_glitch_count());
    }

    #[test]
    fn step_scale_one_is_bitwise_neutral() {
        let cfg = PllConfig::paper_table3();
        let mut a = EventDrivenCpPll::new_locked(&cfg);
        let mut b = EventDrivenCpPll::new_locked(&cfg);
        PllEngine::set_step_scale(&mut b, 1.0);
        let stim = FmStimulus::pure_sine(1_000.0, 10.0, 8.0);
        a.set_stimulus(stim.clone());
        b.set_stimulus(stim);
        a.advance_to(0.5);
        b.advance_to(0.5);
        assert_eq!(
            a.vco_phase_cycles().to_bits(),
            b.vco_phase_cycles().to_bits()
        );
        assert_eq!(a.control_voltage().to_bits(), b.control_voltage().to_bits());
        assert_eq!(a.solver_stats(), b.solver_stats());
    }

    #[test]
    fn step_scale_tightens_the_subdivision_guard() {
        // The supervisor's retry ladder must still change something real
        // on this engine: a shrunken scale forces more, shorter committed
        // segments without moving the physics.
        let cfg = PllConfig::paper_table3();
        let mut coarse = EventDrivenCpPll::new_locked(&cfg);
        let mut fine = EventDrivenCpPll::new_locked(&cfg);
        PllEngine::set_step_scale(&mut fine, 0.05);
        coarse.advance_to(0.5);
        fine.advance_to(0.5);
        let sc = coarse.solver_stats();
        let sf = fine.solver_stats();
        assert!(
            sf.steps > 2 * sc.steps,
            "scale 0.05 should subdivide: {} vs {}",
            sf.steps,
            sc.steps
        );
        assert_eq!(sc.ref_edges, sf.ref_edges, "same physical events");
        assert_eq!(sc.fb_edges, sf.fb_edges, "same physical events");
        // Exact segments: subdividing does not move the trajectory beyond
        // rounding.
        assert!(
            (coarse.vco_phase_cycles() - fine.vco_phase_cycles()).abs() < 1e-6,
            "{} vs {}",
            coarse.vco_phase_cycles(),
            fine.vco_phase_cycles()
        );
    }

    #[test]
    #[should_panic(expected = "ahead of the current time")]
    fn cannot_run_backwards() {
        let cfg = PllConfig::paper_table3();
        let mut pll = EventDrivenCpPll::new_locked(&cfg);
        pll.advance_to(0.1);
        pll.advance_to(0.05);
    }

    #[test]
    #[should_panic(expected = "first-order loop filter")]
    fn ripple_capacitor_is_out_of_class() {
        let mut cfg = PllConfig::integer_n_charge_pump();
        if let crate::config::FilterConfig::SeriesRc { ref mut c2, .. } = cfg.filter {
            *c2 = Some(1e-9);
        }
        let _ = EventDrivenCpPll::new_locked(&cfg);
    }

    #[test]
    #[should_panic(expected = "linear VCO tuning curve")]
    fn vco_curvature_is_out_of_class() {
        let mut cfg = PllConfig::paper_table3();
        cfg.vco_curvature = (20.0, 0.0);
        let _ = EventDrivenCpPll::new_locked(&cfg);
    }

    #[test]
    #[should_panic(expected = "unclamped VCO range")]
    fn vco_range_is_out_of_class() {
        let mut cfg = PllConfig::paper_table3();
        cfg.vco_range_hz = Some((4_000.0, 6_000.0));
        let _ = EventDrivenCpPll::new_locked(&cfg);
    }
}
