//! Resumable campaign runs: an append-only JSONL results file with a
//! config digest and a completed-point bitmap.
//!
//! A 10⁶-point (Kd, Kvco, Icp, filter, N) campaign (ROADMAP items 2/5)
//! that dies at point 900 001 must not recompute the first 900 000.
//! This module streams each completed point — healthy *or* quarantined —
//! as one JSONL record to a results file, and on restart loads that file,
//! skips every completed point and recomputes only the rest, such that
//! the **resumed file is byte-identical to an uninterrupted run's**.
//!
//! File format (reusing the telemetry crate's
//! [`pllbist_telemetry::SCHEMA_VERSION`] framing):
//!
//! ```text
//! {"type":"run","bin":"campaign","schema":1}          ← line 1
//! {"type":"campaign","digest":"<16 hex>","points":N}  ← line 2
//! {"type":"result","name":"campaign.point","fields":{"index":0,"ok":true,…}}
//! {"type":"result","name":"campaign.point","fields":{"index":1,"ok":false,"kind":…}}
//! …one line per point, in index order…
//! ```
//!
//! * The **digest** ([`config_digest`]) is an FNV-1a 64 hash over every
//!   result-affecting input (config, grid, measurement settings — *not*
//!   thread count or telemetry, which never change results). A resume
//!   with a different digest or point count is refused with
//!   [`CampaignError::HeaderMismatch`] instead of silently merging
//!   foreign points.
//! * Point payloads store every `f64` as **bit-pattern hex**
//!   ([`bits_hex`]), so decode→encode round-trips exactly and byte
//!   identity survives resume.
//! * Workers complete points out of order under the work-stealing
//!   scheduler; [`CampaignLog::record`] buffers out-of-order results and
//!   flushes to disk **in index order**, one `write+flush` per line, so
//!   a kill leaves at most one truncated trailing line — which the next
//!   resume tolerates and rewrites. Completion is therefore always a
//!   contiguous prefix on disk; [`CampaignLog::completed`] exposes it as
//!   a per-point bitmap.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::config::FaultWiringError;
use crate::error::{CampaignError, SweepPointError};
use pllbist_telemetry::{Fields, Record, Value, SCHEMA_VERSION};

/// The `bin` tag of a campaign results file's `run` header line.
pub const CAMPAIGN_BIN: &str = "campaign";

/// The `name` of every per-point result record.
pub const POINT_RECORD: &str = "campaign.point";

/// Hashes every result-affecting campaign input into the 16-hex-char
/// digest stored in the file header: the config (via its `Debug` form —
/// exhaustive over fields by construction), the modulation grid (exact
/// bit patterns) and a caller-supplied salt for measurement settings.
///
/// Deliberately **excluded**: thread count and telemetry, which never
/// change results — so a campaign may be killed on 16 threads and
/// resumed on 1 and still produce the identical file.
pub fn config_digest(config: &crate::config::PllConfig, f_mod_hz: &[f64], salt: &str) -> String {
    let mut hash = Fnv1a64::new();
    hash.write(format!("{config:?}").as_bytes());
    hash.write(b"|grid|");
    for &f in f_mod_hz {
        hash.write(&f.to_bits().to_le_bytes());
    }
    hash.write(b"|salt|");
    hash.write(salt.as_bytes());
    format!("{:016x}", hash.finish())
}

/// FNV-1a 64 — tiny, dependency-free, stable across platforms.
struct Fnv1a64(u64);

impl Fnv1a64 {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Renders an `f64` as its exact bit pattern (16 lowercase hex chars) —
/// the only encoding that survives a JSON round trip bit-for-bit.
pub fn bits_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Inverse of [`bits_hex`].
pub fn f64_from_bits_hex(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

// The hand-rolled line parsers now live in `pllbist_telemetry::json`
// (the flight recorder and bench ledger parse the same line shapes);
// re-exported here because the campaign file format is their original
// home and external callers import them from this module. Their
// adversarial surface (torn lines, escaped quotes, duplicate keys) is
// pinned by property tests in `tests/campaign_json_props.rs`.
pub use pllbist_telemetry::json::{json_bool_field, json_str_field, json_u64_field};

/// Maps a decoded string back to a `&'static str`, preferring the known
/// interning table (the strings this workspace actually emits) and
/// leaking the rare unknown value — bounded by the results file size,
/// and only on the resume path.
fn as_static(s: String, known: &[&'static str]) -> &'static str {
    known
        .iter()
        .find(|k| **k == s)
        .copied()
        .unwrap_or_else(|| Box::leak(s.into_boxed_str()))
}

/// The divergence-quantity tags the supervisor and bench emit.
const KNOWN_QUANTITIES: &[&str] = &[
    "control_voltage",
    "vco_frequency_hz",
    "vco_phase_cycles",
    "control_voltage_out_of_range",
    "control_voltage_rail_pinned",
    "bench_fit_gain",
];

/// Encodes the payload of a quarantined point (flat keys; every `f64`
/// as bits-hex).
pub fn error_fields(error: &SweepPointError) -> Fields {
    let mut fields: Fields = vec![("kind".to_string(), Value::Str(error.kind().to_string()))];
    let mut push = |key: &str, value: Value| fields.push((key.to_string(), value));
    match error {
        SweepPointError::LockTimeout {
            timeout_secs,
            consecutive_cycles,
            required_cycles,
        } => {
            push("timeout_bits", Value::Str(bits_hex(*timeout_secs)));
            push("cycles", Value::U64(u64::from(*consecutive_cycles)));
            push("required", Value::U64(u64::from(*required_cycles)));
        }
        SweepPointError::NumericalDivergence { t, quantity, value } => {
            push("t_bits", Value::Str(bits_hex(*t)));
            push("value_bits", Value::Str(bits_hex(*value)));
            push("quantity", Value::Str((*quantity).to_string()));
        }
        SweepPointError::StepBudgetExhausted { t, steps, budget } => {
            push("t_bits", Value::Str(bits_hex(*t)));
            push("steps", Value::U64(*steps));
            push("budget", Value::U64(*budget));
        }
        SweepPointError::FaultWiring(wiring) => match wiring {
            FaultWiringError::PumpFaultOnVoltageDrive => {
                push("wiring", Value::Str("pump_on_voltage".to_string()));
            }
            FaultWiringError::FilterElementAbsent { element, filter } => {
                push("wiring", Value::Str("element_absent".to_string()));
                push("element", Value::Str((*element).to_string()));
                push("filter", Value::Str((*filter).to_string()));
            }
        },
        SweepPointError::DegenerateFit { f_mod_hz } => {
            push("f_mod_bits", Value::Str(bits_hex(*f_mod_hz)));
        }
        // Free-text payload last, so tag keys stay first-occurrence-safe.
        SweepPointError::WorkerPanic { message } => {
            push("message", Value::Str(message.clone()));
        }
    }
    fields
}

/// Inverse of [`error_fields`], reading from the encoded line.
pub fn decode_error(line: &str) -> Option<SweepPointError> {
    let kind = json_str_field(line, "kind")?;
    match kind.as_str() {
        "lock_timeout" => Some(SweepPointError::LockTimeout {
            timeout_secs: f64_from_bits_hex(&json_str_field(line, "timeout_bits")?)?,
            consecutive_cycles: u32::try_from(json_u64_field(line, "cycles")?).ok()?,
            required_cycles: u32::try_from(json_u64_field(line, "required")?).ok()?,
        }),
        "numerical_divergence" => Some(SweepPointError::NumericalDivergence {
            t: f64_from_bits_hex(&json_str_field(line, "t_bits")?)?,
            value: f64_from_bits_hex(&json_str_field(line, "value_bits")?)?,
            quantity: as_static(json_str_field(line, "quantity")?, KNOWN_QUANTITIES),
        }),
        "step_budget_exhausted" => Some(SweepPointError::StepBudgetExhausted {
            t: f64_from_bits_hex(&json_str_field(line, "t_bits")?)?,
            steps: json_u64_field(line, "steps")?,
            budget: json_u64_field(line, "budget")?,
        }),
        "fault_wiring" => match json_str_field(line, "wiring")?.as_str() {
            "pump_on_voltage" => Some(SweepPointError::FaultWiring(
                FaultWiringError::PumpFaultOnVoltageDrive,
            )),
            "element_absent" => Some(SweepPointError::FaultWiring(
                FaultWiringError::FilterElementAbsent {
                    element: as_static(
                        json_str_field(line, "element")?,
                        &["R1", "R2", "leakage path"],
                    ),
                    filter: as_static(json_str_field(line, "filter")?, &[]),
                },
            )),
            _ => None,
        },
        "worker_panic" => Some(SweepPointError::WorkerPanic {
            message: json_str_field(line, "message")?,
        }),
        "degenerate_fit" => Some(SweepPointError::DegenerateFit {
            f_mod_hz: f64_from_bits_hex(&json_str_field(line, "f_mod_bits")?)?,
        }),
        _ => None,
    }
}

/// How one point type serialises into (and back out of) a campaign
/// results file.
///
/// `encode` must be injective on the payloads a campaign can produce and
/// `decode(encode(p)) == Some(p)` must hold exactly — the resume
/// machinery's byte-identity guarantee rests on it. Keep free-text
/// fields (if any) *after* fixed tag fields; the line parser matches
/// first occurrences.
pub trait PointCodec: Sync {
    /// The per-point payload.
    type Point: Send;

    /// The payload's fields (appended after `index`/`ok`).
    fn encode(&self, point: &Self::Point) -> Fields;

    /// Rebuilds the payload from an encoded line.
    fn decode(&self, line: &str) -> Option<Self::Point>;
}

/// The codec for plans that never touch a results file: encodes
/// nothing, decodes nothing. [`crate::scenario::run_points`] is generic
/// over a [`PointCodec`] even when no [`CampaignLog`] is attached, so
/// in-memory sweeps pass `NullCodec<P>` to name their point type.
///
/// [`crate::scenario::run_points`]: crate::scenario::Scenario::run_points
#[derive(Clone, Copy, Debug, Default)]
pub struct NullCodec<P>(std::marker::PhantomData<fn() -> P>);

impl<P> NullCodec<P> {
    /// A fresh null codec.
    pub fn new() -> Self {
        Self(std::marker::PhantomData)
    }
}

impl<P: Send> PointCodec for NullCodec<P> {
    type Point = P;

    fn encode(&self, _point: &P) -> Fields {
        Vec::new()
    }

    fn decode(&self, _line: &str) -> Option<P> {
        None
    }
}

/// Serialises one point outcome — `Ok` payload or quarantining error —
/// as its JSONL line (no trailing newline).
pub fn encode_point_line<C: PointCodec>(
    codec: &C,
    index: usize,
    outcome: &Result<C::Point, SweepPointError>,
) -> String {
    let mut fields: Fields = vec![("index".to_string(), Value::U64(index as u64))];
    match outcome {
        Ok(point) => {
            fields.push(("ok".to_string(), Value::Bool(true)));
            fields.extend(codec.encode(point));
        }
        Err(error) => {
            fields.push(("ok".to_string(), Value::Bool(false)));
            fields.extend(error_fields(error));
        }
    }
    Record::Result {
        name: POINT_RECORD.to_string(),
        fields,
    }
    .to_json()
}

/// Inverse of [`encode_point_line`]: `(index, outcome)` from a line.
pub fn decode_point_line<C: PointCodec>(
    codec: &C,
    line: &str,
) -> Option<(usize, Result<C::Point, SweepPointError>)> {
    if !line.contains("\"campaign.point\"") {
        return None;
    }
    let index = usize::try_from(json_u64_field(line, "index")?).ok()?;
    let outcome = if json_bool_field(line, "ok")? {
        Ok(codec.decode(line)?)
    } else {
        Err(decode_error(line)?)
    };
    Some((index, outcome))
}

/// A deterministic I/O fault injected into one [`CampaignLog::record`]
/// flush — the campaign service's torn-write / disk-full fault layer.
pub struct InjectedWriteFault {
    /// How many bytes of the encoded line (trailing newline included)
    /// land on disk before the failure: `0` models disk-full rejecting
    /// the write outright, a partial count models a torn write followed
    /// by a crash.
    pub torn_bytes: usize,
    /// The error latched in the log exactly as a real failure would be
    /// (surfaced by [`CampaignLog::finish`]).
    pub error: std::io::Error,
}

/// Hook consulted once per flushed line, keyed by the point index about
/// to be written. Returning `Some` makes that flush fail.
pub type WriteFaultHook = Box<dyn Fn(usize) -> Option<InjectedWriteFault> + Send + Sync>;

struct Writer {
    file: std::fs::File,
    /// First index not yet flushed to disk.
    next_flush: usize,
    /// Out-of-order completions waiting for their turn (encoded lines).
    pending: BTreeMap<usize, String>,
    /// First I/O error, surfaced at [`CampaignLog::finish`] so a disk
    /// hiccup doesn't unwind sweep workers mid-point.
    io_error: Option<std::io::Error>,
    /// Deterministic fault injection for crash-only testing; `None` in
    /// production.
    fault: Option<WriteFaultHook>,
}

/// An open campaign results file: the loaded completed-point prefix plus
/// the in-order streaming writer for new completions.
///
/// `Sync` — sweep workers under the work-stealing scheduler call
/// [`record`](Self::record) directly as each point completes.
pub struct CampaignLog<C: PointCodec> {
    codec: C,
    path: PathBuf,
    digest: String,
    points: usize,
    loaded: Vec<Option<Result<C::Point, SweepPointError>>>,
    writer: Mutex<Writer>,
}

impl<C: PointCodec> CampaignLog<C> {
    /// Opens (or creates) the results file at `path` for a campaign of
    /// `points` points with the given config `digest`.
    ///
    /// An existing file is validated — header lines must match `digest`
    /// and `points` exactly ([`CampaignError::HeaderMismatch`] otherwise)
    /// — and its contiguous completed prefix is loaded. A truncated
    /// *final* line (what a kill mid-write leaves) is dropped; malformed
    /// records anywhere else fail with [`CampaignError::Malformed`]. The
    /// file is then rewritten as header + loaded prefix, ready for
    /// appends.
    pub fn open(
        path: impl AsRef<Path>,
        codec: C,
        digest: String,
        points: usize,
    ) -> Result<Self, CampaignError> {
        let path = path.as_ref().to_path_buf();
        let run_header = Record::Run {
            bin: CAMPAIGN_BIN.to_string(),
            schema: SCHEMA_VERSION,
        }
        .to_json();
        let campaign_header = Record::Campaign {
            digest: digest.clone(),
            points: points as u64,
        }
        .to_json();

        let mut loaded: Vec<Option<Result<C::Point, SweepPointError>>> =
            (0..points).map(|_| None).collect();
        let mut prefix_lines: Vec<String> = Vec::new();
        if let Ok(existing) = std::fs::read_to_string(&path) {
            let lines: Vec<&str> = existing.lines().collect();
            // A file that died before both header lines landed is
            // treated as empty; with both present they must match.
            if lines.len() >= 2 {
                if lines[0] != run_header || lines[1] != campaign_header {
                    return Err(CampaignError::HeaderMismatch {
                        expected: format!("{run_header} / {campaign_header}"),
                        found: format!("{} / {}", lines[0], lines[1]),
                    });
                }
                let body_ends_clean = existing.ends_with('\n');
                let body = &lines[2..];
                // Accept the longest prefix of in-order records, then
                // treat everything after it as a (possibly multi-line)
                // torn tail: a crash mid-flush — or a filesystem
                // journal replay zeroing trailing blocks — can damage
                // more than one trailing line, and all of it is safely
                // recomputable. The final line additionally only counts
                // when the file ends with its newline; otherwise the
                // kill interrupted the write and even a
                // parseable-looking line is suspect.
                let mut torn_at: Option<usize> = None;
                for (offset, line) in body.iter().enumerate() {
                    let expected_index = prefix_lines.len();
                    let is_last = offset == body.len() - 1;
                    // Only a line that round-trips exactly (decode →
                    // re-encode reproduces the bytes) counts as a
                    // record: a tear can leave a lexically parseable
                    // prefix (e.g. only the closing brace lost) that
                    // would otherwise poison byte-identical resume.
                    let decoded = decode_point_line(&codec, line)
                        .filter(|(index, _)| *index == expected_index && *index < points)
                        .filter(|(index, outcome)| {
                            encode_point_line(&codec, *index, outcome) == *line
                        });
                    match decoded {
                        Some((index, outcome)) if !is_last || body_ends_clean => {
                            loaded[index] = Some(outcome);
                            prefix_lines.push((*line).to_string());
                        }
                        _ => {
                            torn_at = Some(offset);
                            break;
                        }
                    }
                }
                // The torn tail may only contain *incomplete* lines. A
                // record that still round-trips exactly (decode →
                // re-encode reproduces the line) is provably finished
                // work sitting after a hole — structural corruption a
                // recompute would silently discard, so refuse instead.
                if let Some(start) = torn_at {
                    for (offset, line) in body.iter().enumerate().skip(start) {
                        let is_last = offset == body.len() - 1;
                        if is_last && !body_ends_clean {
                            continue;
                        }
                        if let Some((index, outcome)) = decode_point_line(&codec, line) {
                            if index < points && encode_point_line(&codec, index, &outcome) == *line
                            {
                                return Err(CampaignError::Malformed {
                                    line: offset + 3,
                                    reason: format!(
                                        "complete record (index {index}) after a torn tail \
                                         starting at line {}",
                                        start + 3
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }

        // Rewrite header + validated prefix: drops any truncated tail
        // and leaves the file ready for in-order appends.
        let mut file = std::fs::File::create(&path)?;
        let mut head = String::new();
        head.push_str(&run_header);
        head.push('\n');
        head.push_str(&campaign_header);
        head.push('\n');
        for line in &prefix_lines {
            head.push_str(line);
            head.push('\n');
        }
        file.write_all(head.as_bytes())?;
        file.flush()?;

        Ok(Self {
            codec,
            path,
            digest,
            points,
            loaded,
            writer: Mutex::new(Writer {
                file,
                next_flush: prefix_lines.len(),
                pending: BTreeMap::new(),
                io_error: None,
                fault: None,
            }),
        })
    }

    /// The results file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The campaign's config digest (as stored in the header).
    pub fn digest(&self) -> &str {
        &self.digest
    }

    /// Completed-point bitmap: `true` where the loaded file already
    /// holds this point's outcome (healthy or quarantined).
    pub fn completed(&self) -> Vec<bool> {
        self.loaded.iter().map(Option::is_some).collect()
    }

    /// Number of points loaded from the existing file.
    pub fn completed_count(&self) -> usize {
        self.loaded.iter().filter(|p| p.is_some()).count()
    }

    /// Whether point `index` was loaded from the existing file.
    pub fn is_completed(&self, index: usize) -> bool {
        self.loaded.get(index).is_some_and(Option::is_some)
    }

    /// The loaded outcome for `index`, if the file had it.
    pub fn loaded(&self, index: usize) -> Option<&Result<C::Point, SweepPointError>> {
        self.loaded.get(index).and_then(Option::as_ref)
    }

    /// Streams one newly computed point outcome.
    ///
    /// Callable from any worker thread; lines are buffered until every
    /// lower index has been written, then flushed in index order (one
    /// OS write + flush per line, so a kill loses at most the line in
    /// flight). I/O errors are latched and surfaced by
    /// [`finish`](Self::finish), not panicked mid-sweep.
    pub fn record(&self, index: usize, outcome: &Result<C::Point, SweepPointError>) {
        let line = encode_point_line(&self.codec, index, outcome);
        let mut writer = match self.writer.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        writer.pending.insert(index, line);
        let writer = &mut *writer;
        loop {
            let flush_index = writer.next_flush;
            let Some(line) = writer.pending.remove(&flush_index) else {
                break;
            };
            let mut buf = line.into_bytes();
            buf.push(b'\n');
            let wrote = match writer.fault.as_ref().and_then(|hook| hook(flush_index)) {
                Some(injected) => {
                    // Leave exactly the torn prefix on disk, then fail
                    // the flush the way a real short write would.
                    let torn = injected.torn_bytes.min(buf.len());
                    let _ = writer
                        .file
                        .write_all(&buf[..torn])
                        .and_then(|()| writer.file.flush());
                    Err(injected.error)
                }
                None => writer
                    .file
                    .write_all(&buf)
                    .and_then(|()| writer.file.flush()),
            };
            if let Err(e) = wrote {
                if writer.io_error.is_none() {
                    writer.io_error = Some(e);
                }
                return;
            }
            writer.next_flush += 1;
        }
    }

    /// Installs (or clears) the deterministic write-fault hook. Test
    /// and fault-injection infrastructure only; a live fault latches an
    /// I/O error exactly like a real disk failure, so the campaign must
    /// be reopened (crash-only restart) to make further progress.
    pub fn set_write_fault(&self, hook: Option<WriteFaultHook>) {
        let mut writer = match self.writer.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        writer.fault = hook;
    }

    /// Surfaces any latched I/O error and verifies every point landed
    /// (when `expect_complete`).
    pub fn finish(&self, expect_complete: bool) -> Result<(), CampaignError> {
        let mut writer = match self.writer.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(e) = writer.io_error.take() {
            return Err(CampaignError::Io(e));
        }
        if expect_complete && writer.next_flush != self.points {
            return Err(CampaignError::Malformed {
                line: writer.next_flush + 3,
                reason: format!(
                    "campaign incomplete: {}/{} points flushed",
                    writer.next_flush, self.points
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PllConfig;

    /// A minimal codec: the point is one `f64`.
    struct F64Codec;

    impl PointCodec for F64Codec {
        type Point = f64;

        fn encode(&self, point: &f64) -> Fields {
            vec![("value_bits".to_string(), Value::Str(bits_hex(*point)))]
        }

        fn decode(&self, line: &str) -> Option<f64> {
            f64_from_bits_hex(&json_str_field(line, "value_bits")?)
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pllbist_campaign_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        let cfg = PllConfig::paper_table3();
        let tones = [1.0, 8.0];
        let a = config_digest(&cfg, &tones, "salt");
        assert_eq!(a, config_digest(&cfg, &tones, "salt"));
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, config_digest(&cfg, &tones, "other-salt"));
        assert_ne!(a, config_digest(&cfg, &[1.0, 9.0], "salt"));
        let mut other = cfg.clone();
        other.vco_curvature = (0.125, 0.0);
        assert_ne!(a, config_digest(&other, &tones, "salt"));
    }

    #[test]
    fn bits_hex_round_trips_every_shape_of_f64() {
        for v in [
            0.0,
            -0.0,
            1.5,
            -3.25e-9,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let back = f64_from_bits_hex(&bits_hex(v)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        let nan_back = f64_from_bits_hex(&bits_hex(f64::NAN)).unwrap();
        assert_eq!(nan_back.to_bits(), f64::NAN.to_bits());
        assert_eq!(f64_from_bits_hex("xyz"), None);
        assert_eq!(f64_from_bits_hex("00"), None);
    }

    #[test]
    fn every_error_variant_round_trips_through_its_line() {
        let errors = [
            SweepPointError::LockTimeout {
                timeout_secs: 0.125,
                consecutive_cycles: 3,
                required_cycles: 16,
            },
            SweepPointError::NumericalDivergence {
                t: 1.0e-3,
                quantity: "control_voltage_rail_pinned",
                value: f64::NAN,
            },
            SweepPointError::StepBudgetExhausted {
                t: 2.5,
                steps: 1_000_001,
                budget: 1_000_000,
            },
            SweepPointError::FaultWiring(FaultWiringError::PumpFaultOnVoltageDrive),
            SweepPointError::FaultWiring(FaultWiringError::FilterElementAbsent {
                element: "R2",
                filter: "passive-lag",
            }),
            SweepPointError::WorkerPanic {
                message: "tricky \"quoted\" payload with \\ and \n newline".to_string(),
            },
            SweepPointError::DegenerateFit { f_mod_hz: 8.0 },
        ];
        for (i, error) in errors.iter().enumerate() {
            let line = encode_point_line(&F64Codec, i, &Err(error.clone()));
            let (index, outcome) = decode_point_line(&F64Codec, &line).expect(&line);
            assert_eq!(index, i);
            match (&outcome, error) {
                // NaN payloads compare by bits, not PartialEq.
                (
                    Err(SweepPointError::NumericalDivergence { t, quantity, value }),
                    SweepPointError::NumericalDivergence {
                        t: t0,
                        quantity: q0,
                        value: v0,
                    },
                ) => {
                    assert_eq!(t.to_bits(), t0.to_bits());
                    assert_eq!(quantity, q0);
                    assert_eq!(value.to_bits(), v0.to_bits());
                }
                (Err(got), want) => assert_eq!(got, want),
                (Ok(_), _) => panic!("decoded Ok from an Err line"),
            }
            // Re-encoding the decoded outcome reproduces the exact line —
            // the byte-identity guarantee resume depends on.
            assert_eq!(encode_point_line(&F64Codec, i, &outcome), line);
        }
    }

    #[test]
    fn ok_points_round_trip() {
        let outcome: Result<f64, SweepPointError> = Ok(-1.25e-7);
        let line = encode_point_line(&F64Codec, 42, &outcome);
        let (index, back) = decode_point_line(&F64Codec, &line).unwrap();
        assert_eq!(index, 42);
        assert_eq!(back.unwrap().to_bits(), (-1.25e-7f64).to_bits());
    }

    #[test]
    fn fresh_log_streams_out_of_order_records_in_index_order() {
        let path = tmp("fresh.jsonl");
        let _ = std::fs::remove_file(&path);
        let log = CampaignLog::open(&path, F64Codec, "0123456789abcdef".into(), 4).unwrap();
        assert_eq!(log.completed_count(), 0);
        // Workers complete out of order; the file stays in index order.
        log.record(2, &Ok(2.0));
        log.record(0, &Ok(0.5));
        log.record(1, &Err(SweepPointError::DegenerateFit { f_mod_hz: 1.0 }));
        log.record(3, &Ok(3.0));
        log.finish(true).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].contains("\"type\":\"run\""));
        assert!(lines[1].contains("\"digest\":\"0123456789abcdef\",\"points\":4"));
        for (i, line) in lines[2..].iter().enumerate() {
            assert_eq!(json_u64_field(line, "index"), Some(i as u64));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_loads_prefix_and_appends_identically() {
        let path = tmp("resume.jsonl");
        let _ = std::fs::remove_file(&path);
        let digest = "00000000deadbeef".to_string();
        // Uninterrupted reference run.
        let full = CampaignLog::open(&path, F64Codec, digest.clone(), 3).unwrap();
        full.record(0, &Ok(0.5));
        full.record(1, &Ok(1.5));
        full.record(2, &Ok(2.5));
        full.finish(true).unwrap();
        let reference = std::fs::read_to_string(&path).unwrap();

        // Kill after point 0: truncate to header + 1 point + a partial
        // trailing line (mid-write of point 1).
        let mut killed: Vec<&str> = reference.lines().collect();
        killed.truncate(3);
        let mut killed_text = killed.join("\n");
        killed_text.push('\n');
        killed_text.push_str("{\"type\":\"result\",\"name\":\"campaign.po");
        std::fs::write(&path, &killed_text).unwrap();

        let resumed = CampaignLog::open(&path, F64Codec, digest, 3).unwrap();
        assert_eq!(resumed.completed(), vec![true, false, false]);
        assert_eq!(
            resumed.loaded(0).unwrap().as_ref().unwrap().to_bits(),
            0.5f64.to_bits()
        );
        resumed.record(1, &Ok(1.5));
        resumed.record(2, &Ok(2.5));
        resumed.finish(true).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), reference);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_refuses_foreign_files() {
        let path = tmp("foreign.jsonl");
        let _ = std::fs::remove_file(&path);
        let log = CampaignLog::open(&path, F64Codec, "aaaaaaaaaaaaaaaa".into(), 2).unwrap();
        log.record(0, &Ok(1.0));
        drop(log);
        // Different digest → refused.
        let err = CampaignLog::open(&path, F64Codec, "bbbbbbbbbbbbbbbb".to_string(), 2)
            .err()
            .expect("digest mismatch must be refused");
        assert!(matches!(err, CampaignError::HeaderMismatch { .. }), "{err}");
        // Different point count → refused.
        let err = CampaignLog::open(&path, F64Codec, "aaaaaaaaaaaaaaaa".to_string(), 3)
            .err()
            .expect("grid-size mismatch must be refused");
        assert!(matches!(err, CampaignError::HeaderMismatch { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_before_the_tail_is_a_typed_error() {
        let path = tmp("corrupt.jsonl");
        let _ = std::fs::remove_file(&path);
        let log = CampaignLog::open(&path, F64Codec, "cccccccccccccccc".into(), 3).unwrap();
        log.record(0, &Ok(1.0));
        log.record(1, &Ok(2.0));
        drop(log);
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("\"ok\":true", "\"ok\":maybe", 1);
        assert_ne!(corrupted, text);
        std::fs::write(&path, corrupted).unwrap();
        // Record 0 is damaged but record 1 after it still round-trips:
        // that's structural corruption (finished work after a hole),
        // not a torn tail, and must be refused — the complete record is
        // what the error points at.
        let err = CampaignLog::open(&path, F64Codec, "cccccccccccccccc".to_string(), 3)
            .err()
            .expect("mid-file corruption must be refused");
        assert!(
            matches!(err, CampaignError::Malformed { line: 4, .. }),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn multi_record_torn_tail_is_dropped_and_recomputed() {
        let path = tmp("torn_tail.jsonl");
        let _ = std::fs::remove_file(&path);
        let log = CampaignLog::open(&path, F64Codec, "abababababababab".into(), 4).unwrap();
        for (i, v) in [1.0, 2.0, 3.0].iter().enumerate() {
            log.record(i, &Ok(*v));
        }
        drop(log);
        let text = std::fs::read_to_string(&path).unwrap();
        // Damage the last TWO records (journal-replay style): truncate
        // record 2 mid-line and chop record 1 down to a fragment that
        // no longer parses. Only the clean record 0 should survive.
        let lines: Vec<&str> = text.lines().collect();
        let torn = format!(
            "{}\n{}\n{}\n{}\n{}",
            lines[0],
            lines[1],
            lines[2],
            &lines[3][..lines[3].len() / 3],
            &lines[4][..lines[4].len() - 5],
        );
        std::fs::write(&path, torn).unwrap();
        let log = CampaignLog::open(&path, F64Codec, "abababababababab".into(), 4).unwrap();
        assert_eq!(log.completed_count(), 1);
        assert!(log.is_completed(0));
        assert!(!log.is_completed(1));
        // The rewrite leaves a clean file: header + the surviving prefix.
        drop(log);
        let rewritten = std::fs::read_to_string(&path).unwrap();
        assert_eq!(rewritten.lines().count(), 3);
        assert!(rewritten.ends_with('\n'));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_write_fault_tears_the_line_and_latches_the_error() {
        let path = tmp("write_fault.jsonl");
        let _ = std::fs::remove_file(&path);
        let log = CampaignLog::open(&path, F64Codec, "efefefefefefefef".into(), 3).unwrap();
        log.set_write_fault(Some(Box::new(|index| {
            (index == 1).then(|| InjectedWriteFault {
                torn_bytes: 7,
                error: std::io::Error::other("injected disk full"),
            })
        })));
        log.record(0, &Ok(10.0));
        log.record(1, &Ok(20.0));
        // The log is dead after the fault: later records buffer but
        // never land, and finish() surfaces the latched error.
        log.record(2, &Ok(30.0));
        let err = log.finish(true).expect_err("latched fault must surface");
        assert!(matches!(err, CampaignError::Io(_)), "{err}");
        drop(log);
        let text = std::fs::read_to_string(&path).unwrap();
        // On disk: both headers, record 0, then exactly 7 torn bytes.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[3].len(), 7);
        // Crash-only restart recovers record 0 and recomputes the rest.
        let log = CampaignLog::open(&path, F64Codec, "efefefefefefefef".into(), 3).unwrap();
        assert_eq!(log.completed_count(), 1);
        assert!(log.is_completed(0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn headerless_or_empty_files_start_fresh() {
        let path = tmp("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        let log = CampaignLog::open(&path, F64Codec, "dddddddddddddddd".into(), 2).unwrap();
        assert_eq!(log.completed_count(), 0);
        drop(log);
        // A file killed mid-header (single partial line) also restarts.
        std::fs::write(&path, "{\"type\":\"ru").unwrap();
        let log = CampaignLog::open(&path, F64Codec, "dddddddddddddddd".into(), 2).unwrap();
        assert_eq!(log.completed_count(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
