//! Event-driven behavioural closed-loop engine.
//!
//! The loop state advances over **segments** during which the pump drive is
//! constant; the loop filter is stepped *exactly* over each segment (see
//! `pllbist-analog::lti`), the VCO phase is accumulated by trapezoidal
//! integration of the instantaneous frequency (exact when the control
//! voltage is linear in time, ~1e-15-cycle error otherwise), and the times
//! of reference and feedback edges — the only instants anything discrete
//! happens in a CP-PLL — are located by root finding.
//!
//! Segment boundaries are: the next reference edge (from the stimulus's
//! closed-form phase), the next feedback edge (the VCO phase crossing its
//! divider target), the dead-zone expiry of an armed PFD pulse, a micro
//! step bound (numerical insurance for the trapezoid), and the caller's
//! horizon.

use crate::config::{DriveConfig, PllConfig};
use crate::engine::{PllEngine, WorkStats};
use crate::noise::{NoiseConfig, NoiseSource};
use crate::stimulus::FmStimulus;
use pllbist_analog::filter::LoopFilter;
use pllbist_analog::pfd::{BehavioralPfd, PfdOutput};
use pllbist_analog::pump::{ChargePump, PumpOutput, VoltageDriver};
use pllbist_analog::vco::Vco;

/// A discrete event observed at the loop boundary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LoopEvent {
    /// Rising edge of the (modulated) reference input.
    RefEdge {
        /// Event time in seconds.
        t: f64,
    },
    /// Rising edge of the divided VCO (feedback) signal.
    FbEdge {
        /// Event time in seconds.
        t: f64,
    },
}

impl LoopEvent {
    /// The event time in seconds.
    pub fn time(&self) -> f64 {
        match self {
            LoopEvent::RefEdge { t } | LoopEvent::FbEdge { t } => *t,
        }
    }
}

/// One recorded analogue sample.
///
/// `v_ctrl` and `f_vco_hz` are **instantaneous** values: with a tri-state
/// voltage drive they show the correction-pulse ripple (the resistive
/// feed-through of the paper's fig. 9 network, visible in its fig. 8
/// waveforms). `phase_cycles` is the VCO phase accumulator — differencing
/// it between samples gives the ripple-free boxcar-average frequency,
/// exactly what a gated counter measures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Sample time in seconds.
    pub t: f64,
    /// Loop-filter (control) voltage in volts.
    pub v_ctrl: f64,
    /// Instantaneous VCO frequency in Hz.
    pub f_vco_hz: f64,
    /// Accumulated VCO phase in cycles.
    pub phase_cycles: f64,
    /// The **held** control voltage — the filter output with the drive
    /// high-impedance (the capacitor state the hold mechanism freezes).
    /// Free of correction-pulse feed-through; the smooth trajectory.
    pub v_held: f64,
}

/// Cumulative solver work counters, kept as intrinsic plain `u64`s so
/// the hot loop pays no synchronisation cost and stays bit-for-bit
/// deterministic. Telemetry layers poll [`CpPll::solver_stats`] at stage
/// boundaries and emit deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Committed integration segments (ODE steps taken).
    pub steps: u64,
    /// Trial segments shortened because a feedback-edge crossing was
    /// detected inside them (the solver's step-size rejections).
    pub step_rejections: u64,
    /// Reference edges processed.
    pub ref_edges: u64,
    /// Feedback (divided-VCO) edges processed.
    pub fb_edges: u64,
    /// Hold-mechanism engagements (off→on transitions).
    pub hold_engagements: u64,
}

impl SolverStats {
    /// Component-wise `self - earlier`, for turning two cumulative
    /// snapshots into a per-stage delta. Saturates at zero.
    pub fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            steps: self.steps.saturating_sub(earlier.steps),
            step_rejections: self.step_rejections.saturating_sub(earlier.step_rejections),
            ref_edges: self.ref_edges.saturating_sub(earlier.ref_edges),
            fb_edges: self.fb_edges.saturating_sub(earlier.fb_edges),
            hold_engagements: self
                .hold_engagements
                .saturating_sub(earlier.hold_engagements),
        }
    }

    /// Component-wise accumulation of another stats block.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.steps += other.steps;
        self.step_rejections += other.step_rejections;
        self.ref_edges += other.ref_edges;
        self.fb_edges += other.fb_edges;
        self.hold_engagements += other.hold_engagements;
    }
}

#[derive(Clone, Copy, Debug)]
enum DriveStage {
    Voltage(VoltageDriver),
    Charge(ChargePump),
}

impl DriveStage {
    fn of(config: &PllConfig) -> Self {
        match config.drive {
            DriveConfig::Voltage { vdd } => DriveStage::Voltage(VoltageDriver::new(vdd)),
            DriveConfig::Charge { i_pump, mismatch } => {
                DriveStage::Charge(ChargePump::with_mismatch(i_pump, mismatch))
            }
        }
    }

    fn drive(&self, pfd: PfdOutput) -> PumpOutput {
        match self {
            DriveStage::Voltage(d) => d.drive(pfd),
            DriveStage::Charge(p) => p.drive(pfd),
        }
    }
}

/// The behavioural CP-PLL simulator.
///
/// # Example
///
/// Watch the loop re-acquire after a reference frequency step:
///
/// ```
/// use pllbist_sim::config::PllConfig;
/// use pllbist_sim::behavioral::CpPll;
/// use pllbist_sim::stimulus::FmStimulus;
///
/// let cfg = PllConfig::paper_table3();
/// let mut pll = CpPll::new_locked(&cfg);
/// // Step the reference up by 5 Hz and settle.
/// pll.set_stimulus(FmStimulus::constant(1_000.0, 5.0));
/// pll.advance_to(1.0);
/// let f = pll.average_frequency_hz(0.1);
/// assert!((f - 5_025.0).abs() < 1.0, "f = {f}");
/// ```
pub struct CpPll {
    config: PllConfig,
    filter: Box<dyn LoopFilter>,
    filter_state: Vec<f64>,
    pfd: BehavioralPfd,
    vco: Vco,
    drive_stage: DriveStage,
    stimulus: FmStimulus,
    t: f64,
    vco_phase_cycles: f64,
    fb_edge_count: u64,
    next_fb_target: f64,
    next_ref_edge: f64,
    /// The unjittered time of the pending reference edge — the edge
    /// *sequence* advances on the ideal grid; jitter only moves each
    /// edge's emission time.
    next_ref_edge_ideal: f64,
    /// Offset making the reference phase continuous across stimulus
    /// switches: ref_phase(t) = stim_phase_base + stimulus.phase_cycles(t).
    stim_phase_base: f64,
    hold: bool,
    micro_dt: f64,
    collect_events: bool,
    events: Vec<LoopEvent>,
    sampler: Option<Sampler>,
    noise: Option<NoiseSource>,
    stats: SolverStats,
}

struct Sampler {
    interval: f64,
    next_t: f64,
    samples: Vec<Sample>,
}

impl CpPll {
    /// Builds the loop with everything discharged (cold start). The loop
    /// will pull in through its non-linear acquisition transient.
    pub fn new(config: &PllConfig) -> Self {
        let filter = config.build_filter();
        let filter_state = filter.initial_state();
        Self::assemble(config, filter, filter_state)
    }

    /// Builds the loop preset at its lock point: filter output at the
    /// control voltage that yields `N·f_ref`, phases aligned. This is how
    /// every measurement starts (the paper's Table 2 assumes "the PLL is
    /// initially locked").
    pub fn new_locked(config: &PllConfig) -> Self {
        let filter = config.build_filter();
        let mut filter_state = filter.initial_state();
        let vco = config.build_vco();
        let v_lock = vco.control_for_frequency(config.f_vco_hz());
        filter.preset_output(&mut filter_state, v_lock);
        Self::assemble(config, filter, filter_state)
    }

    fn assemble(config: &PllConfig, filter: Box<dyn LoopFilter>, filter_state: Vec<f64>) -> Self {
        let stimulus = FmStimulus::constant(config.f_ref_hz, 0.0);
        let next_ref_edge = stimulus.next_edge_after(0.0);
        Self {
            config: config.clone(),
            filter,
            filter_state,
            pfd: BehavioralPfd::with_dead_zone(config.pfd_dead_zone),
            vco: config.build_vco(),
            drive_stage: DriveStage::of(config),
            stimulus,
            t: 0.0,
            vco_phase_cycles: 0.0,
            fb_edge_count: 0,
            next_fb_target: config.divider_n as f64,
            next_ref_edge,
            next_ref_edge_ideal: next_ref_edge,
            stim_phase_base: 0.0,
            hold: false,
            micro_dt: 0.25 / config.f_ref_hz,
            collect_events: false,
            events: Vec::new(),
            sampler: None,
            noise: None,
            stats: SolverStats::default(),
        }
    }

    /// The configuration this loop was built from.
    pub fn config(&self) -> &PllConfig {
        &self.config
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Current control voltage.
    pub fn control_voltage(&self) -> f64 {
        self.filter.output(&self.filter_state, self.current_drive())
    }

    /// Current instantaneous VCO frequency in Hz.
    pub fn vco_frequency_hz(&self) -> f64 {
        self.vco.frequency_hz(self.control_voltage())
    }

    /// The held control voltage: the filter output with the drive
    /// high-impedance — the smooth capacitor state, free of the
    /// correction-pulse feed-through (what engaging hold would freeze).
    pub fn held_control_voltage(&self) -> f64 {
        let off = self.drive_stage.drive(PfdOutput::Off);
        self.filter.output(&self.filter_state, off)
    }

    /// Accumulated VCO phase in cycles — the ideal-counter readout; the
    /// BIST layer quantises this to model real counters.
    pub fn vco_phase_cycles(&self) -> f64 {
        self.vco_phase_cycles
    }

    /// Advances the simulation by `window` seconds and returns the
    /// **boxcar-average** VCO frequency over that window (what a gated
    /// frequency counter reads — immune to the control-node pulse
    /// ripple that contaminates instantaneous readings).
    ///
    /// # Panics
    ///
    /// Panics if `window` is not positive and finite.
    pub fn average_frequency_hz(&mut self, window: f64) -> f64 {
        assert!(
            window > 0.0 && window.is_finite(),
            "window must be positive"
        );
        let p0 = self.vco_phase_cycles;
        let t0 = self.t;
        self.advance_to(t0 + window);
        (self.vco_phase_cycles - p0) / (self.t - t0)
    }

    /// Number of feedback (divided-VCO) edges so far.
    pub fn fb_edge_count(&self) -> u64 {
        self.fb_edge_count
    }

    /// Cumulative solver work counters since construction. Snapshot at
    /// stage boundaries and diff with [`SolverStats::since`] to attribute
    /// work to a stage.
    pub fn solver_stats(&self) -> SolverStats {
        self.stats
    }

    /// Dead-zone glitches (correction pulses narrower than the PFD dead
    /// zone, hence ineffective) seen by this loop's PFD so far.
    pub fn pfd_glitch_count(&self) -> u64 {
        self.pfd.glitch_count()
    }

    /// The PFD's present output state.
    pub fn pfd_output(&self) -> PfdOutput {
        self.pfd.output()
    }

    /// Replaces the reference stimulus **phase-continuously**: the edge
    /// stream carries on without a phase step, so only the frequency-law
    /// change excites the loop (exactly what reprogramming the DCO mux of
    /// fig. 4 does in hardware).
    pub fn set_stimulus(&mut self, stimulus: FmStimulus) {
        let current = self.reference_phase_cycles();
        self.stimulus = stimulus;
        self.stim_phase_base = current - self.stimulus.phase_cycles(self.t);
        self.schedule_next_ref_edge(self.t);
    }

    /// Accumulated reference phase in cycles (continuous across stimulus
    /// switches).
    pub fn reference_phase_cycles(&self) -> f64 {
        self.stim_phase_base + self.stimulus.phase_cycles(self.t)
    }

    /// Advances the reference edge schedule: the edge *sequence* walks the
    /// ideal (noiseless) grid; source jitter displaces each edge's
    /// emission time by a clamped Gaussian so edges never duplicate,
    /// vanish or reorder.
    fn schedule_next_ref_edge(&mut self, ideal_after: f64) {
        let phase_now = self.stim_phase_base + self.stimulus.phase_cycles(ideal_after);
        let mut target = phase_now.floor() + 1.0;
        // Guard: a phase that lands numerically on (or a hair below) an
        // integer must yield the *following* edge — otherwise the solver
        // returns `ideal_after` itself and the event loop cannot progress.
        // A 1e-9-cycle guard is ~1 ps at the paper's reference rate.
        if target - phase_now < 1e-9 {
            target += 1.0;
        }
        let mut ideal = self
            .stimulus
            .time_at_phase(target - self.stim_phase_base, ideal_after);
        if ideal <= ideal_after {
            // Degenerate rounding fallback: force forward progress by at
            // least one representable step even at large absolute times.
            let bump = (ideal_after.abs() * 4.0 * f64::EPSILON).max(1e-12);
            ideal = ideal_after + bump;
        }
        self.next_ref_edge_ideal = ideal;
        let mut emitted = ideal;
        if let Some(n) = &mut self.noise {
            // Clamp to ±45 % of the nominal period: consecutive clamped
            // extremes still leave emission times strictly increasing.
            let limit = 0.45 / self.config.f_ref_hz;
            let jittered = n.jitter_ref_edge(ideal);
            emitted = jittered.clamp(ideal - limit, ideal + limit);
        }
        self.next_ref_edge = emitted.max(self.t + f64::MIN_POSITIVE);
    }

    /// The current stimulus.
    pub fn stimulus(&self) -> &FmStimulus {
        &self.stimulus
    }

    /// Injects white Gaussian edge jitter (see [`crate::noise`]); `None`
    /// restores the noiseless ideal. Takes effect from the next edge.
    ///
    /// Reference jitter is applied at edge **generation** — it shakes the
    /// loop itself (source jitter). Feedback jitter is applied at the
    /// **observation** point (divider/sampling noise seen by the PFD's
    /// timing and the BIST counters).
    pub fn set_noise(&mut self, config: Option<NoiseConfig>) {
        self.noise = config.map(NoiseSource::new);
    }

    /// Engages or releases the hold mechanism (paper §4, Table 2 stage 3):
    /// the loop PFD's inputs are muxed to one identical signal, so it emits
    /// nothing and the filter holds the control voltage — exactly, unless a
    /// leakage fault is present.
    pub fn set_hold(&mut self, hold: bool) {
        if hold && !self.hold {
            self.pfd.reset();
            self.stats.hold_engagements += 1;
        }
        self.hold = hold;
    }

    /// `true` while the hold mechanism is engaged.
    pub fn is_held(&self) -> bool {
        self.hold
    }

    /// Starts collecting [`LoopEvent`]s (reference/feedback edges).
    pub fn collect_events(&mut self, on: bool) {
        self.collect_events = on;
    }

    /// Drains collected events.
    pub fn take_events(&mut self) -> Vec<LoopEvent> {
        std::mem::take(&mut self.events)
    }

    /// Starts sampling the analogue state every `interval` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive and finite.
    pub fn enable_sampling(&mut self, interval: f64) {
        assert!(
            interval > 0.0 && interval.is_finite(),
            "sampling interval must be positive"
        );
        self.sampler = Some(Sampler {
            interval,
            next_t: self.t,
            samples: Vec::new(),
        });
    }

    /// Drains collected samples.
    pub fn take_samples(&mut self) -> Vec<Sample> {
        self.sampler
            .as_mut()
            .map(|s| std::mem::take(&mut s.samples))
            .unwrap_or_default()
    }

    fn current_drive(&self) -> PumpOutput {
        if self.hold {
            return self.drive_stage.drive(PfdOutput::Off);
        }
        let state = self.pfd.output();
        if state != PfdOutput::Off && self.pfd.dead_zone() > 0.0 {
            if let Some(armed) = self.pfd.armed_since() {
                if self.t - armed < self.pfd.dead_zone() {
                    return self.drive_stage.drive(PfdOutput::Off);
                }
            }
        }
        self.drive_stage.drive(state)
    }

    /// Phase advance (cycles) over `dt` and the filter state afterwards,
    /// without committing.
    fn trial(&mut self, u: PumpOutput, dt: f64) -> (f64, Vec<f64>) {
        let v0 = self.filter.output(&self.filter_state, u);
        let mut state = self.filter_state.clone();
        self.filter.step(&mut state, u, dt);
        let v1 = self.filter.output(&state, u);
        let f0 = self.vco.frequency_hz(v0);
        let f1 = self.vco.frequency_hz(v1);
        (0.5 * (f0 + f1) * dt, state)
    }

    fn commit(&mut self, u: PumpOutput, dt: f64, trial: Option<(f64, Vec<f64>)>) {
        let (dphase, state) = trial.unwrap_or_else(|| {
            // Recompute (no trial available for this dt).
            let v0 = self.filter.output(&self.filter_state, u);
            let mut s = self.filter_state.clone();
            self.filter.step(&mut s, u, dt);
            let v1 = self.filter.output(&s, u);
            let f0 = self.vco.frequency_hz(v0);
            let f1 = self.vco.frequency_hz(v1);
            (0.5 * (f0 + f1) * dt, s)
        });
        self.filter_state = state;
        self.vco_phase_cycles += dphase;
        self.t += dt;
        self.stats.steps += 1;
        if let Some(sampler) = &mut self.sampler {
            if self.t >= sampler.next_t {
                let v = self.filter.output(&self.filter_state, u);
                let off = self.drive_stage.drive(PfdOutput::Off);
                let v_held = self.filter.output(&self.filter_state, off);
                sampler.samples.push(Sample {
                    t: self.t,
                    v_ctrl: v,
                    f_vco_hz: self.vco.frequency_hz(v),
                    phase_cycles: self.vco_phase_cycles,
                    v_held,
                });
                while sampler.next_t <= self.t {
                    sampler.next_t += sampler.interval;
                }
            }
        }
    }

    /// Advances the simulation to absolute time `t_end`.
    ///
    /// # Panics
    ///
    /// Panics if `t_end` is in the past or not finite.
    pub fn advance_to(&mut self, t_end: f64) {
        assert!(
            t_end.is_finite() && t_end >= self.t,
            "t_end must be ahead of the current time"
        );
        // Guard: bound iterations to catch pathological configs in tests.
        let max_iters = ((t_end - self.t) * (self.config.f_vco_hz() * 8.0 + 1e4)) as u64 + 1000;
        let mut iters = 0u64;
        while self.t < t_end {
            iters += 1;
            assert!(
                iters <= max_iters,
                "simulation failed to progress (t = {}, next_ref_edge = {}, \
                 next_fb_target = {}, vco_phase = {}, hold = {}, pfd = {:?})",
                self.t,
                self.next_ref_edge,
                self.next_fb_target,
                self.vco_phase_cycles,
                self.hold,
                self.pfd.output()
            );
            // Segment boundary candidates.
            let mut tb = (self.t + self.micro_dt).min(t_end);
            if let Some(s) = &self.sampler {
                if s.next_t > self.t {
                    tb = tb.min(s.next_t);
                }
            }
            let mut is_ref_edge = false;
            if self.next_ref_edge <= tb {
                tb = self.next_ref_edge;
                is_ref_edge = true;
            }
            if !self.hold && self.pfd.dead_zone() > 0.0 {
                if let Some(armed) = self.pfd.armed_since() {
                    let expiry = armed + self.pfd.dead_zone();
                    if expiry > self.t && expiry < tb {
                        tb = expiry;
                        is_ref_edge = false;
                    }
                }
            }
            let dt_seg = tb - self.t;
            if dt_seg <= 0.0 {
                // Boundary coincides with `t` (e.g. edge exactly at the
                // horizon): process the edge without advancing time.
                if is_ref_edge {
                    self.process_ref_edge();
                }
                continue;
            }
            let u = self.current_drive();
            let trial = self.trial(u, dt_seg);
            let crossing = self.vco_phase_cycles + trial.0 >= self.next_fb_target;
            if crossing {
                // Locate the feedback edge inside the segment: the trial
                // step is rejected and re-taken at the shortened length.
                self.stats.step_rejections += 1;
                let target = self.next_fb_target - self.vco_phase_cycles;
                let dt_edge = self.solve_phase_crossing(u, target, dt_seg);
                self.commit(u, dt_edge, None);
                self.process_fb_edge();
                continue;
            }
            self.commit(u, dt_seg, Some(trial));
            if is_ref_edge {
                self.process_ref_edge();
            }
        }
    }

    fn solve_phase_crossing(&mut self, u: PumpOutput, target_cycles: f64, dt_max: f64) -> f64 {
        // Bisection on the monotone trial-phase function. 60 iterations
        // take dt to ~1e-18·dt_max — far below edge-time significance.
        let mut lo = 0.0f64;
        let mut hi = dt_max;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if mid == lo || mid == hi {
                break;
            }
            let (dphase, _) = self.trial(u, mid);
            if dphase < target_cycles {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    fn process_ref_edge(&mut self) {
        // The generation-level jitter is already in `next_ref_edge`.
        let t = self.next_ref_edge;
        self.stats.ref_edges += 1;
        if self.collect_events {
            self.events.push(LoopEvent::RefEdge { t });
        }
        if !self.hold {
            self.pfd.on_reference_edge(t);
        }
        let ideal = self.next_ref_edge_ideal;
        self.schedule_next_ref_edge(ideal);
    }

    fn process_fb_edge(&mut self) {
        let t = self.t;
        let t_obs = match &mut self.noise {
            Some(n) => n.jitter_fb_edge(t),
            None => t,
        };
        self.fb_edge_count += 1;
        self.stats.fb_edges += 1;
        self.next_fb_target += self.config.divider_n as f64;
        if self.collect_events {
            self.events.push(LoopEvent::FbEdge { t: t_obs });
        }
        if !self.hold {
            self.pfd.on_feedback_edge(t_obs);
        }
    }

    /// Snapshots the loop's dynamic state (see [`CpPllCheckpoint`]).
    pub fn checkpoint(&self) -> CpPllCheckpoint {
        CpPllCheckpoint {
            t: self.t,
            filter_state: self.filter_state.clone(),
            pfd: self.pfd,
            stimulus: self.stimulus.clone(),
            vco_phase_cycles: self.vco_phase_cycles,
            fb_edge_count: self.fb_edge_count,
            next_fb_target: self.next_fb_target,
            next_ref_edge: self.next_ref_edge,
            next_ref_edge_ideal: self.next_ref_edge_ideal,
            stim_phase_base: self.stim_phase_base,
            hold: self.hold,
            noise: self.noise.clone(),
            stats: self.stats,
        }
    }

    /// Overwrites the dynamic state with a snapshot taken from a loop
    /// built from the **same configuration** — bit-exact: the restored
    /// loop continues precisely as the snapshotted one would have (every
    /// filter/VCO/PFD coefficient is derived from the config, so only the
    /// dynamic state needs restoring). Instrumentation (sampler, event
    /// collection) is reset to off/empty.
    pub fn restore(&mut self, snapshot: &CpPllCheckpoint) {
        self.t = snapshot.t;
        self.filter_state.clone_from(&snapshot.filter_state);
        self.pfd = snapshot.pfd;
        self.stimulus = snapshot.stimulus.clone();
        self.vco_phase_cycles = snapshot.vco_phase_cycles;
        self.fb_edge_count = snapshot.fb_edge_count;
        self.next_fb_target = snapshot.next_fb_target;
        self.next_ref_edge = snapshot.next_ref_edge;
        self.next_ref_edge_ideal = snapshot.next_ref_edge_ideal;
        self.stim_phase_base = snapshot.stim_phase_base;
        self.hold = snapshot.hold;
        self.noise = snapshot.noise.clone();
        self.stats = snapshot.stats;
        self.collect_events = false;
        self.events = Vec::new();
        self.sampler = None;
    }
}

/// A bit-exact snapshot of a [`CpPll`]'s dynamic state.
///
/// Everything static — the filter object, VCO, drive stage, micro-step —
/// is a pure function of the [`PllConfig`] and is deliberately *not*
/// stored: [`CpPll::restore`] requires an engine built from the same
/// configuration (restoring across configurations is a contract
/// violation). The PFD (including its glitch counter) and the solver
/// stats ride along so checkpointed and from-scratch runs report
/// identical telemetry.
#[derive(Clone, Debug)]
pub struct CpPllCheckpoint {
    t: f64,
    filter_state: Vec<f64>,
    pfd: BehavioralPfd,
    stimulus: FmStimulus,
    vco_phase_cycles: f64,
    fb_edge_count: u64,
    next_fb_target: f64,
    next_ref_edge: f64,
    next_ref_edge_ideal: f64,
    stim_phase_base: f64,
    hold: bool,
    noise: Option<NoiseSource>,
    stats: SolverStats,
}

impl PllEngine for CpPll {
    type Checkpoint = CpPllCheckpoint;

    fn new_locked(config: &PllConfig) -> Self {
        CpPll::new_locked(config)
    }

    fn config(&self) -> &PllConfig {
        self.config()
    }

    fn time(&self) -> f64 {
        self.time()
    }

    fn advance_to(&mut self, t_end: f64) {
        CpPll::advance_to(self, t_end);
    }

    fn control_voltage(&self) -> f64 {
        CpPll::control_voltage(self)
    }

    fn vco_frequency_hz(&self) -> f64 {
        CpPll::vco_frequency_hz(self)
    }

    fn vco_phase_cycles(&self) -> f64 {
        CpPll::vco_phase_cycles(self)
    }

    fn set_stimulus(&mut self, stimulus: FmStimulus) {
        CpPll::set_stimulus(self, stimulus);
    }

    fn set_hold(&mut self, hold: bool) {
        CpPll::set_hold(self, hold);
    }

    fn is_held(&self) -> bool {
        CpPll::is_held(self)
    }

    fn collect_events(&mut self, on: bool) {
        CpPll::collect_events(self, on);
    }

    fn take_events(&mut self) -> Vec<LoopEvent> {
        CpPll::take_events(self)
    }

    fn checkpoint(&self) -> CpPllCheckpoint {
        CpPll::checkpoint(self)
    }

    fn restore(&mut self, snapshot: &CpPllCheckpoint) {
        CpPll::restore(self, snapshot);
    }

    fn set_step_scale(&mut self, scale: f64) {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "step scale must be positive and finite"
        );
        // `1.0 * x == x` exactly in IEEE-754, so scale 1.0 is bitwise
        // neutral as the trait contract requires.
        self.micro_dt = scale * (0.25 / self.config.f_ref_hz);
    }

    fn backend_name() -> &'static str {
        "cp_pll"
    }

    fn encode_checkpoint(snapshot: &CpPllCheckpoint) -> Option<String> {
        if snapshot.noise.is_some() {
            // The jitter source carries private RNG state; declining
            // keeps the sidecar honest — noisy campaigns re-settle.
            return None;
        }
        let hx = |v: f64| format!("{:016x}", v.to_bits());
        let fs: Vec<String> = snapshot.filter_state.iter().map(|v| hx(*v)).collect();
        let fs = if fs.is_empty() {
            "-".to_string()
        } else {
            fs.join(",")
        };
        let s = &snapshot.stats;
        Some(format!(
            "cp:{}|{fs}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{},{},{},{},{}",
            hx(snapshot.t),
            snapshot.pfd.state_code(),
            snapshot.stimulus.encode_state(),
            hx(snapshot.vco_phase_cycles),
            snapshot.fb_edge_count,
            hx(snapshot.next_fb_target),
            hx(snapshot.next_ref_edge),
            hx(snapshot.next_ref_edge_ideal),
            hx(snapshot.stim_phase_base),
            u8::from(snapshot.hold),
            s.steps,
            s.step_rejections,
            s.ref_edges,
            s.fb_edges,
            s.hold_engagements,
        ))
    }

    fn decode_checkpoint(token: &str) -> Option<CpPllCheckpoint> {
        fn f64_bits(s: &str) -> Option<f64> {
            (s.len() == 16).then(|| u64::from_str_radix(s, 16).ok().map(f64::from_bits))?
        }
        let rest = token.strip_prefix("cp:")?;
        let parts: Vec<&str> = rest.split('|').collect();
        if parts.len() != 12 {
            return None;
        }
        let filter_state = if parts[1] == "-" {
            Vec::new()
        } else {
            parts[1].split(',').map(f64_bits).collect::<Option<_>>()?
        };
        let stats: Vec<u64> = parts[11]
            .split(',')
            .map(|s| s.parse().ok())
            .collect::<Option<_>>()?;
        if stats.len() != 5 {
            return None;
        }
        Some(CpPllCheckpoint {
            t: f64_bits(parts[0])?,
            filter_state,
            pfd: BehavioralPfd::from_state_code(parts[2])?,
            stimulus: FmStimulus::decode_state(parts[3])?,
            vco_phase_cycles: f64_bits(parts[4])?,
            fb_edge_count: parts[5].parse().ok()?,
            next_fb_target: f64_bits(parts[6])?,
            next_ref_edge: f64_bits(parts[7])?,
            next_ref_edge_ideal: f64_bits(parts[8])?,
            stim_phase_base: f64_bits(parts[9])?,
            hold: match parts[10] {
                "0" => false,
                "1" => true,
                _ => return None,
            },
            noise: None,
            stats: SolverStats {
                steps: stats[0],
                step_rejections: stats[1],
                ref_edges: stats[2],
                fb_edges: stats[3],
                hold_engagements: stats[4],
            },
        })
    }

    fn work_stats(&self) -> WorkStats {
        let s = self.solver_stats();
        WorkStats {
            steps: s.steps,
            step_rejections: s.step_rejections,
            ref_edges: s.ref_edges,
            fb_edges: s.fb_edges,
            hold_engagements: s.hold_engagements,
            pfd_glitches: self.pfd_glitch_count(),
            kernel_events: 0,
        }
    }
}

impl crate::engine::AnalogAccess for CpPll {
    fn enable_sampling(&mut self, interval: f64) {
        CpPll::enable_sampling(self, interval);
    }

    fn take_samples(&mut self) -> Vec<Sample> {
        CpPll::take_samples(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::FmStimulus;

    #[test]
    fn locked_loop_stays_locked() {
        let cfg = PllConfig::paper_table3();
        let mut pll = CpPll::new_locked(&cfg);
        pll.advance_to(0.5);
        let f = pll.average_frequency_hz(0.1);
        assert!((f - 5_000.0).abs() < 2.0, "f = {f}");
        // Feedback edges at the reference rate.
        let edges_per_sec = pll.fb_edge_count() as f64 / 0.6;
        assert!((edges_per_sec - 1_000.0).abs() < 5.0);
    }

    #[test]
    fn cold_start_acquires_lock() {
        let cfg = PllConfig::paper_table3();
        let mut pll = CpPll::new(&cfg);
        // Acquisition: slew of the big lag filter plus a few loop time
        // constants.
        pll.advance_to(3.0);
        let f = pll.average_frequency_hz(0.2);
        assert!((f - 5_000.0).abs() < 10.0, "f = {f}");
    }

    #[test]
    fn frequency_step_settles_to_n_times_reference() {
        let cfg = PllConfig::paper_table3();
        let mut pll = CpPll::new_locked(&cfg);
        pll.set_stimulus(FmStimulus::constant(1_000.0, 8.0));
        pll.advance_to(1.5);
        // N = 5 → output deviation 40 Hz.
        let f = pll.average_frequency_hz(0.1);
        assert!((f - 5_040.0).abs() < 1.0, "f = {f}");
    }

    #[test]
    fn charge_pump_loop_locks_too() {
        let cfg = PllConfig::integer_n_charge_pump();
        let mut pll = CpPll::new_locked(&cfg);
        pll.advance_to(0.2);
        let f = pll.average_frequency_hz(0.02);
        assert!((f - 80_000.0).abs() < 100.0, "f = {f}");
    }

    #[test]
    fn step_response_overshoot_matches_damping() {
        // ζ = 0.43 → a clear overshoot on a frequency step.
        let cfg = PllConfig::paper_table3();
        let mut pll = CpPll::new_locked(&cfg);
        pll.advance_to(0.2);
        pll.enable_sampling(5e-3);
        pll.set_stimulus(FmStimulus::constant(1_000.0, 8.0));
        pll.advance_to(1.2);
        let samples = pll.take_samples();
        // Boxcar frequency between samples (ripple-free, counter-style).
        let peak = samples
            .windows(2)
            .map(|w| (w[1].phase_cycles - w[0].phase_cycles) / (w[1].t - w[0].t))
            .fold(f64::MIN, f64::max);
        let overshoot = (peak - 5_040.0) / 40.0;
        // 2nd-order-with-zero step overshoot for ζ=0.43 is roughly 25–60 %.
        assert!(
            overshoot > 0.15 && overshoot < 0.7,
            "overshoot = {overshoot}"
        );
    }

    #[test]
    fn hold_freezes_the_vco() {
        let cfg = PllConfig::paper_table3();
        let mut pll = CpPll::new_locked(&cfg);
        pll.set_stimulus(FmStimulus::constant(1_000.0, 6.0));
        pll.advance_to(0.9);
        let f_before = pll.average_frequency_hz(0.1); // ends at t = 1.0
        pll.set_hold(true);
        let f_at_hold = pll.vco_frequency_hz();
        assert!(
            (f_at_hold - f_before).abs() < 2.0,
            "{f_before} vs {f_at_hold}"
        );
        // Change the reference — held loop must not react.
        pll.set_stimulus(FmStimulus::constant(1_000.0, -6.0));
        pll.advance_to(3.0);
        let f_after = pll.vco_frequency_hz();
        assert!(
            (f_after - f_at_hold).abs() < 1e-6,
            "held: {f_at_hold} → {f_after}"
        );
        // Release: the loop re-acquires the new reference.
        pll.set_hold(false);
        pll.advance_to(4.5);
        let f = pll.average_frequency_hz(0.1);
        assert!((f - 5.0 * 994.0).abs() < 2.0, "f = {f}");
    }

    #[test]
    fn hold_droops_with_leakage_fault() {
        use pllbist_analog::fault::Fault;
        let cfg = PllConfig::paper_table3()
            .with_fault(Fault::FilterLeakage(5e6))
            .unwrap();
        let mut pll = CpPll::new_locked(&cfg);
        pll.advance_to(1.0);
        let f0 = pll.vco_frequency_hz();
        pll.set_hold(true);
        pll.advance_to(1.5); // τ_leak ≈ (R2+Rl)·C ≈ 0.25 s
        let f1 = pll.vco_frequency_hz();
        assert!(f0 - f1 > 100.0, "droop {} Hz", f0 - f1);
    }

    #[test]
    fn events_are_ordered_and_interleaved() {
        let cfg = PllConfig::paper_table3();
        let mut pll = CpPll::new_locked(&cfg);
        pll.collect_events(true);
        pll.advance_to(0.05);
        let events = pll.take_events();
        assert!(events.len() > 80, "{} events", events.len());
        for w in events.windows(2) {
            assert!(w[0].time() <= w[1].time());
        }
        let refs = events
            .iter()
            .filter(|e| matches!(e, LoopEvent::RefEdge { .. }))
            .count();
        let fbs = events.len() - refs;
        assert!(
            (refs as i64 - fbs as i64).abs() <= 5,
            "refs {refs} fbs {fbs}"
        );
    }

    #[test]
    fn sine_fm_modulates_the_output() {
        let cfg = PllConfig::paper_table3();
        let mut pll = CpPll::new_locked(&cfg);
        // Well inside the 8 Hz loop bandwidth: output tracks the input.
        pll.set_stimulus(FmStimulus::pure_sine(1_000.0, 10.0, 1.0));
        pll.advance_to(3.0);
        pll.enable_sampling(5e-3);
        pll.advance_to(5.0);
        let samples = pll.take_samples();
        let boxcar: Vec<f64> = samples
            .windows(2)
            .map(|w| (w[1].phase_cycles - w[0].phase_cycles) / (w[1].t - w[0].t))
            .collect();
        let max = boxcar.iter().copied().fold(f64::MIN, f64::max);
        let min = boxcar.iter().copied().fold(f64::MAX, f64::min);
        // Tracks ±50 Hz at the output (N·10 Hz), within a few percent.
        assert!((max - 5_050.0).abs() < 6.0, "max {max}");
        assert!((min - 4_950.0).abs() < 6.0, "min {min}");
    }

    #[test]
    fn dead_zone_slows_small_corrections() {
        // With a gross dead zone, a small phase error persists.
        let mut cfg = PllConfig::paper_table3();
        cfg.pfd_dead_zone = 40e-6; // 4 % of the reference period
        let mut pll = CpPll::new_locked(&cfg);
        pll.advance_to(0.5);
        // Still roughly locked (the dead zone tolerates small errors).
        assert!((pll.vco_frequency_hz() - 5_000.0).abs() < 30.0);
    }

    #[test]
    fn sampler_interval_respected() {
        let cfg = PllConfig::paper_table3();
        let mut pll = CpPll::new_locked(&cfg);
        pll.enable_sampling(10e-3);
        pll.advance_to(0.5);
        let s = pll.take_samples();
        assert!((48..=52).contains(&s.len()), "{} samples", s.len());
        assert!(pll.take_samples().is_empty(), "drained");
    }

    #[test]
    fn solver_stats_count_work_and_diff_cleanly() {
        let cfg = PllConfig::paper_table3();
        let mut pll = CpPll::new_locked(&cfg);
        assert_eq!(pll.solver_stats(), SolverStats::default());
        pll.advance_to(0.1);
        let mid = pll.solver_stats();
        assert!(mid.steps > 0, "{mid:?}");
        // A locked loop at f_ref = 1 kHz sees ~100 edges of each kind
        // in 0.1 s, and every feedback edge is a shortened (rejected)
        // trial segment.
        assert!((90..=110).contains(&mid.ref_edges), "{mid:?}");
        assert!((90..=110).contains(&mid.fb_edges), "{mid:?}");
        assert_eq!(mid.step_rejections, mid.fb_edges, "{mid:?}");
        assert_eq!(mid.hold_engagements, 0);
        pll.set_hold(true);
        pll.set_hold(true); // idempotent: still one engagement
        pll.advance_to(0.2);
        let end = pll.solver_stats();
        let delta = end.since(&mid);
        assert_eq!(delta.hold_engagements, 1);
        assert_eq!(delta.fb_edges, end.fb_edges - mid.fb_edges);
        let mut acc = mid;
        acc.absorb(&delta);
        assert_eq!(acc, end);
    }

    #[test]
    fn checkpoint_restore_resumes_bit_exactly() {
        let cfg = PllConfig::paper_table3();
        let mut a = CpPll::new_locked(&cfg);
        a.set_stimulus(FmStimulus::pure_sine(1_000.0, 10.0, 8.0));
        a.set_noise(Some(crate::noise::NoiseConfig::symmetric(2e-7, 42)));
        a.advance_to(0.7);
        let snap = a.checkpoint();
        let mut b = CpPll::new_locked(&cfg);
        b.restore(&snap);
        a.advance_to(1.3);
        b.advance_to(1.3);
        assert_eq!(
            a.vco_phase_cycles().to_bits(),
            b.vco_phase_cycles().to_bits()
        );
        assert_eq!(a.control_voltage().to_bits(), b.control_voltage().to_bits());
        assert_eq!(a.solver_stats(), b.solver_stats());
        assert_eq!(a.fb_edge_count(), b.fb_edge_count());
        assert_eq!(a.pfd_glitch_count(), b.pfd_glitch_count());
    }

    #[test]
    #[should_panic(expected = "ahead of the current time")]
    fn cannot_run_backwards() {
        let cfg = PllConfig::paper_table3();
        let mut pll = CpPll::new_locked(&cfg);
        pll.advance_to(0.1);
        pll.advance_to(0.05);
    }
}
