//! A `std::thread`-based parallel sweep executor.
//!
//! The closed-loop |H(jω)| sweep (paper §4–§5) evaluates one independent
//! FM modulation point per step — an embarrassingly parallel shape (the
//! same one batched across parameter grids by the closed-form CP-PLL
//! models of Kuznetsov et al.). This module provides the small,
//! dependency-free executor the sweep paths share: scoped threads, one
//! **contiguous chunk** of work items per worker, results reassembled in
//! input order.
//!
//! Determinism contract: when the per-item function is a pure function of
//! the item (as [`crate::bench_measure::measure_point`] is — it builds a
//! fresh loop per point), the output vector is **bitwise identical** for
//! every thread count, including `1`. Chunking only changes which worker
//! computes an item, never the item's inputs.
//!
//! `threads` convention used across the workspace: `0` means "auto"
//! (use [`available_parallelism`]), `1` forces the serial path (no
//! threads spawned — useful both for debugging and for bit-exact
//! reproduction of historical serial runs in the stateful monitor case),
//! and any other value is an explicit worker count.

/// The host's available parallelism (1 if it cannot be determined).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolves a `threads` knob: `0` → [`available_parallelism`], anything
/// else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        available_parallelism()
    } else {
        threads
    }
}

/// Maps `f` over `items` on up to `threads` workers (`0` = auto),
/// returning results in input order.
///
/// Items are split into at most `threads` contiguous chunks; each worker
/// owns one chunk. With one worker (or one item) no thread is spawned and
/// the map runs inline on the caller's stack.
///
/// # Panics
///
/// Re-raises a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_chunks(items, threads, |chunk| chunk.iter().map(&f).collect())
}

/// Chunk-granular variant of [`par_map`]: `f` receives each worker's
/// whole contiguous chunk and returns that chunk's results (any length).
///
/// Use this when per-item work shares mutable state within a worker —
/// e.g. the BIST monitor, which walks one simulated loop through a chunk
/// of modulation frequencies in sweep order.
pub fn par_map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    par_map_chunks_observed(
        items,
        threads,
        &pllbist_telemetry::Collector::disabled(),
        |_, c| f(c),
    )
}

/// [`par_map_chunks`] with per-worker telemetry: each worker's chunk is
/// wrapped in a `parallel.chunk` span (worker index + item count), chunk
/// wall times feed the `parallel.chunk_wall_secs` histogram, and the
/// whole scope reports `parallel.items`, `parallel.workers` and the
/// busy-vs-idle `parallel.utilization` gauge (1.0 = every worker busy
/// for the full scope).
///
/// `f` additionally receives the worker's chunk index. Telemetry never
/// influences the work: the returned vector is bitwise identical to
/// [`par_map_chunks`] for every thread count and collector state.
pub fn par_map_chunks_observed<T, R, F>(
    items: &[T],
    threads: usize,
    telemetry: &pllbist_telemetry::Collector,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let workers = resolve_threads(threads).max(1).min(items.len().max(1));
    if workers <= 1 {
        let _scope = pllbist_telemetry::span!(telemetry, "parallel.scope", workers = 1u64);
        let start = std::time::Instant::now();
        let out = {
            let _chunk = pllbist_telemetry::span!(
                telemetry,
                "parallel.chunk",
                worker = 0u64,
                items = items.len()
            );
            f(0, items)
        };
        if telemetry.is_enabled() {
            telemetry.observe("parallel.chunk_wall_secs", start.elapsed().as_secs_f64());
            telemetry.add("parallel.items", items.len() as u64);
            telemetry.gauge("parallel.workers", 1.0);
            telemetry.gauge("parallel.utilization", 1.0);
        }
        return out;
    }
    let chunk_len = items.len().div_ceil(workers);
    let scope_start = std::time::Instant::now();
    let _scope = pllbist_telemetry::span!(telemetry, "parallel.scope", workers = workers as u64);
    let f = &f;
    let (out, busy): (Vec<R>, f64) = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(worker, chunk)| {
                let tel = telemetry.clone();
                scope.spawn(move || {
                    let start = std::time::Instant::now();
                    let out = {
                        let _chunk = pllbist_telemetry::span!(
                            tel,
                            "parallel.chunk",
                            worker = worker,
                            items = chunk.len()
                        );
                        f(worker, chunk)
                    };
                    let wall = start.elapsed().as_secs_f64();
                    if tel.is_enabled() {
                        tel.observe("parallel.chunk_wall_secs", wall);
                        tel.add("parallel.items", chunk.len() as u64);
                    }
                    (out, wall)
                })
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        let mut busy = 0.0;
        for h in handles {
            // Re-raise a worker panic with its original payload so a
            // `catch_unwind` upstream (or a `#[should_panic]` test) sees
            // the real message, not a generic join error.
            let (chunk_out, wall) = match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            out.extend(chunk_out);
            busy += wall;
        }
        (out, busy)
    });
    if telemetry.is_enabled() {
        let scope_wall = scope_start.elapsed().as_secs_f64();
        telemetry.gauge("parallel.workers", workers as f64);
        if scope_wall > 0.0 {
            telemetry.gauge("parallel.utilization", busy / (workers as f64 * scope_wall));
        }
    }
    out
}

/// Panic-isolating variant of [`par_map_chunks_observed`] for per-point
/// `Result` pipelines: `f` returns one `Result` per item, and a *panic*
/// anywhere inside a chunk is caught at the chunk boundary and rendered
/// as [`SweepPointError::from_panic`](crate::error::SweepPointError::from_panic)
/// for **every item of that chunk**
/// (the shared worker state is unrecoverable once poisoned) instead of
/// unwinding the sweep.
///
/// The supervisor retries point-by-point *before* work reaches this
/// layer, so a chunk-level `Err` here means a failure escaped per-point
/// containment — it is reported, never re-raised. Output order and the
/// bitwise-determinism contract match [`par_map_chunks_observed`]: on
/// panic-free runs the two are call-for-call identical.
pub fn par_try_map_chunks_observed<T, R, F>(
    items: &[T],
    threads: usize,
    telemetry: &pllbist_telemetry::Collector,
    f: F,
) -> Vec<Result<R, crate::error::SweepPointError>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<Result<R, crate::error::SweepPointError>> + Sync,
{
    par_map_chunks_observed(items, threads, telemetry, |worker, chunk| {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(worker, chunk))) {
            Ok(results) => results,
            Err(payload) => {
                let err = crate::error::SweepPointError::from_panic(payload);
                chunk.iter().map(|_| Err(err.clone())).collect()
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SweepPointError;

    #[test]
    fn resolve_zero_is_auto() {
        assert_eq!(resolve_threads(0), available_parallelism());
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn par_map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            let got = par_map(&items, threads, |&x| x * x);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_degenerate_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[5u32], 4, |&x| x + 1), vec![6]);
    }

    #[test]
    fn chunks_are_contiguous_and_cover_everything() {
        let items: Vec<usize> = (0..10).collect();
        let flat = par_map_chunks(&items, 3, |chunk| {
            // Each worker sees a contiguous ascending run.
            assert!(chunk.windows(2).all(|w| w[1] == w[0] + 1));
            chunk.to_vec()
        });
        assert_eq!(flat, items);
    }

    #[test]
    fn chunk_results_may_differ_in_length() {
        let items: Vec<u32> = (0..9).collect();
        let flat = par_map_chunks(&items, 2, |chunk| {
            chunk.iter().filter(|&&x| x % 2 == 0).copied().collect()
        });
        assert_eq!(flat, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn float_results_are_bitwise_stable_across_thread_counts() {
        // The determinism contract the sweep paths rely on.
        let items: Vec<f64> = (1..=25).map(|k| k as f64 * 0.1).collect();
        let work = |&x: &f64| (x.sin() * x.exp()).sqrt().to_bits();
        let serial = par_map(&items, 1, work);
        for threads in [2, 4, 16] {
            assert_eq!(
                par_map(&items, threads, work),
                serial,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn worker_count_clamps_to_item_count() {
        // More threads than items must not create empty-chunk workers:
        // every spawned chunk carries at least one item, and results are
        // unchanged.
        let items: Vec<u32> = (0..3).collect();
        let tel = pllbist_telemetry::Collector::enabled();
        let got = par_map_chunks_observed(&items, 64, &tel, |_, chunk| {
            assert!(!chunk.is_empty(), "empty-chunk worker spawned");
            chunk.iter().map(|&x| x * 2).collect()
        });
        assert_eq!(got, vec![0, 2, 4]);
        let records = tel.drain();
        let chunk_spans = records
            .iter()
            .filter(|r| {
                matches!(r, pllbist_telemetry::Record::Span { name, .. }
                    if name == "parallel.chunk")
            })
            .count();
        assert!(
            (1..=3).contains(&chunk_spans),
            "{chunk_spans} chunk spans for 3 items"
        );
        assert!(records.iter().any(|r| matches!(
            r,
            pllbist_telemetry::Record::Counter { name, value: 3 } if name == "parallel.items"
        )));
    }

    #[test]
    fn observed_map_is_identical_with_and_without_telemetry() {
        let items: Vec<f64> = (1..=25).map(|k| k as f64 * 0.1).collect();
        let work = |_w: usize, chunk: &[f64]| -> Vec<u64> {
            chunk
                .iter()
                .map(|x| (x.sin() * x.exp()).sqrt().to_bits())
                .collect()
        };
        let quiet =
            par_map_chunks_observed(&items, 1, &pllbist_telemetry::Collector::disabled(), work);
        for threads in [1, 2, 4, 16] {
            let tel = pllbist_telemetry::Collector::enabled();
            let got = par_map_chunks_observed(&items, threads, &tel, work);
            assert_eq!(got, quiet, "threads = {threads}");
            assert!(!tel.drain().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let _ = par_map(&items, 2, |&x| {
            assert!(x < 6, "boom");
            x
        });
    }

    #[test]
    fn try_map_contains_chunk_panics_as_typed_errors() {
        let items: Vec<u32> = (0..8).collect();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let tel = pllbist_telemetry::Collector::disabled();
        let results: Vec<Vec<_>> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                par_try_map_chunks_observed(&items, threads, &tel, |_, chunk| {
                    chunk
                        .iter()
                        .map(|&x| {
                            assert!(x != 6, "poisoned point {x}");
                            Ok(x * 10)
                        })
                        .collect()
                })
            })
            .collect();
        std::panic::set_hook(prev);
        for (result, &threads) in results.iter().zip(&[1usize, 2, 4]) {
            assert_eq!(result.len(), items.len(), "threads = {threads}");
            // The panic happened at item 6: its whole chunk reports the
            // typed panic error, every other chunk is intact.
            assert!(
                result.iter().any(|r| matches!(
                    r,
                    Err(SweepPointError::WorkerPanic { message }) if message.contains("poisoned point 6")
                )),
                "threads = {threads}"
            );
            // With more than one worker the poisoned chunk shrinks and
            // the other chunks' points survive.
            if threads > 1 {
                assert!(
                    result.iter().any(|r| matches!(r, Ok(v) if *v % 10 == 0)),
                    "threads = {threads}"
                );
            }
        }
        // Serial containment too: the caller's stack is never unwound.
        assert!(results[0][6].is_err());
    }

    #[test]
    fn try_map_is_identical_to_map_when_nothing_fails() {
        let items: Vec<f64> = (1..=20).map(|k| k as f64 * 0.3).collect();
        let tel = pllbist_telemetry::Collector::disabled();
        let plain = par_map_chunks_observed(&items, 4, &tel, |_, chunk| {
            chunk.iter().map(|x| x.sin().to_bits()).collect::<Vec<_>>()
        });
        let tried = par_try_map_chunks_observed(&items, 4, &tel, |_, chunk| {
            chunk.iter().map(|x| Ok(x.sin().to_bits())).collect()
        });
        let unwrapped: Vec<u64> = tried
            .into_iter()
            .map(|r| r.expect("no failures injected"))
            .collect();
        assert_eq!(unwrapped, plain);
    }
}
