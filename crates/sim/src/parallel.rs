//! A `std::thread`-based parallel sweep executor.
//!
//! The closed-loop |H(jω)| sweep (paper §4–§5) evaluates one independent
//! FM modulation point per step — an embarrassingly parallel shape (the
//! same one batched across parameter grids by the closed-form CP-PLL
//! models of Kuznetsov et al.). This module provides the small,
//! dependency-free executors the sweep paths share. Two schedules exist:
//!
//! - **Chunked** ([`par_map_chunks`] family): one contiguous chunk of
//!   items per worker, joined at a barrier. Right when per-item work
//!   shares mutable state within a worker (the monitor's serial walk),
//!   but the barrier waits on the slowest chunk — quarantine-and-retry
//!   skew (retried points cost many times a healthy point) idles every
//!   other worker.
//! - **Work-stealing** ([`par_map_points`] family): a shared
//!   atomic work index over the point list; each worker repeatedly
//!   claims the next unclaimed point and writes its result into that
//!   point's pre-sized slot, so a straggler point delays only the worker
//!   that owns it. This is the default schedule for all per-point sweep
//!   paths.
//!
//! Determinism contract: when the per-item function is a pure function of
//! the item (as [`crate::bench_measure::measure_point`] is — it builds a
//! fresh loop per point), the output vector is **bitwise identical** for
//! every thread count, including `1`. Scheduling only changes *which
//! worker* computes an item and *when*, never the item's inputs, and
//! results are reassembled in input order.
//!
//! `threads` convention used across the workspace: `0` means "auto"
//! (use [`available_parallelism`]), `1` forces the serial path (no
//! threads spawned — useful both for debugging and for bit-exact
//! reproduction of historical serial runs in the stateful monitor case),
//! and any other value is an explicit worker count.

/// The host's available parallelism (1 if it cannot be determined).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolves a `threads` knob: `0` → [`available_parallelism`], anything
/// else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        available_parallelism()
    } else {
        threads
    }
}

/// Splits `items` into exactly `workers` contiguous chunks whose lengths
/// differ by at most one (`workers` must be ≤ `items.len()`).
///
/// The previous `div_ceil`-sized chunking could *starve* workers: 9
/// items on 4 threads produced 3 chunks of 3, so only 3 workers were
/// ever spawned while telemetry reported 4. The balanced split hands the
/// first `len % workers` workers one extra item, so the spawned worker
/// count always equals the reported one.
fn balanced_chunks<T>(items: &[T], workers: usize) -> Vec<&[T]> {
    let base = items.len() / workers;
    let rem = items.len() % workers;
    let mut chunks = Vec::with_capacity(workers);
    let mut start = 0;
    for worker in 0..workers {
        let len = base + usize::from(worker < rem);
        chunks.push(&items[start..start + len]);
        start += len;
    }
    debug_assert_eq!(start, items.len());
    chunks
}

/// Maps `f` over `items` on up to `threads` workers (`0` = auto),
/// returning results in input order.
///
/// Items are split into at most `threads` contiguous chunks; each worker
/// owns one chunk. With one worker (or one item) no thread is spawned and
/// the map runs inline on the caller's stack.
///
/// # Panics
///
/// Re-raises a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_chunks(
        items,
        threads,
        &pllbist_telemetry::Collector::disabled(),
        |_, chunk| chunk.iter().map(&f).collect(),
    )
}

/// [`par_map_chunks`] with per-worker telemetry: each worker's chunk is
/// wrapped in a `parallel.chunk` span (worker index + item count), chunk
/// wall times feed the `parallel.chunk_wall_secs` histogram, and the
/// whole scope reports `parallel.items`, `parallel.workers` and the
/// busy-vs-idle `parallel.utilization` gauge (1.0 = every worker busy
/// for the full scope).
///
/// `f` additionally receives the worker's chunk index. Telemetry never
/// influences the work: the returned vector is bitwise identical to
/// [`par_map_chunks`] for every thread count and collector state.
pub fn par_map_chunks<T, R, F>(
    items: &[T],
    threads: usize,
    telemetry: &pllbist_telemetry::Collector,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let workers = resolve_threads(threads).max(1).min(items.len().max(1));
    if workers <= 1 {
        let _scope = pllbist_telemetry::span!(telemetry, "parallel.scope", workers = 1u64);
        let start = std::time::Instant::now();
        let out = {
            let _chunk = pllbist_telemetry::span!(
                telemetry,
                "parallel.chunk",
                worker = 0u64,
                items = items.len()
            );
            f(0, items)
        };
        if telemetry.is_enabled() {
            telemetry.observe("parallel.chunk_wall_secs", start.elapsed().as_secs_f64());
            telemetry.add("parallel.items", items.len() as u64);
            telemetry.gauge("parallel.workers", 1.0);
            telemetry.gauge("parallel.utilization", 1.0);
        }
        return out;
    }
    let scope_start = std::time::Instant::now();
    let _scope = pllbist_telemetry::span!(telemetry, "parallel.scope", workers = workers as u64);
    let f = &f;
    let (out, busy): (Vec<R>, f64) = std::thread::scope(|scope| {
        let handles: Vec<_> = balanced_chunks(items, workers)
            .into_iter()
            .enumerate()
            .map(|(worker, chunk)| {
                let tel = telemetry.clone();
                scope.spawn(move || {
                    let start = std::time::Instant::now();
                    let out = {
                        let _chunk = pllbist_telemetry::span!(
                            tel,
                            "parallel.chunk",
                            worker = worker,
                            items = chunk.len()
                        );
                        f(worker, chunk)
                    };
                    let wall = start.elapsed().as_secs_f64();
                    if tel.is_enabled() {
                        tel.observe("parallel.chunk_wall_secs", wall);
                        tel.add("parallel.items", chunk.len() as u64);
                    }
                    (out, wall)
                })
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        let mut busy = 0.0;
        for h in handles {
            // Re-raise a worker panic with its original payload so a
            // `catch_unwind` upstream (or a `#[should_panic]` test) sees
            // the real message, not a generic join error.
            let (chunk_out, wall) = match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            out.extend(chunk_out);
            busy += wall;
        }
        (out, busy)
    });
    if telemetry.is_enabled() {
        let scope_wall = scope_start.elapsed().as_secs_f64();
        telemetry.gauge("parallel.workers", workers as f64);
        if scope_wall > 0.0 {
            telemetry.gauge("parallel.utilization", busy / (workers as f64 * scope_wall));
        }
    }
    out
}

/// Work-stealing per-point map: `f` is applied to every `(index, item)`
/// pair by up to `threads` workers pulling from a **shared atomic work
/// index**, and results are written into a pre-sized slot vector so the
/// output is in input order regardless of which worker computed what.
///
/// Unlike the chunk-barrier executors above, a straggler point (e.g. a
/// quarantine-and-retry cascade costing many times a healthy point)
/// delays only the worker that claimed it — the remaining workers keep
/// draining the point list. When `f` is a pure function of
/// `(index, item)`, output is **bitwise identical** at every thread
/// count.
///
/// Telemetry (replacing the chunk spans of the chunked executors): one
/// `parallel.worker` span per worker, per-worker wall times in the
/// `parallel.worker_wall_secs` histogram, per-worker claimed-point
/// counts in `parallel.points` and `parallel.worker.<w>.points`, plus
/// the scope-level `parallel.workers` / `parallel.utilization` gauges
/// (the worker count reported is the count actually spawned).
///
/// # Panics
///
/// Re-raises a panic from `f` (the scope joins all workers first). For
/// typed per-point containment use [`par_try_map_points`].
pub fn par_map_points<T, R, F>(
    items: &[T],
    threads: usize,
    telemetry: &pllbist_telemetry::Collector,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_points_worker(items, threads, telemetry, |_, i, item| f(i, item))
}

/// Worker-aware variant of [`par_map_points`]: `f` additionally
/// receives the index of the worker executing the point, so observers
/// (e.g. the campaign progress board's per-worker utilization and
/// heartbeat cells) can attribute work without thread-locals.
///
/// The worker index is **observational only** — a pure `f` must not let
/// it influence the result, or the bitwise-determinism contract across
/// thread counts breaks (the same point lands on different workers on
/// different runs). All other semantics match
/// [`par_map_points`], which delegates here.
pub fn par_map_points_worker<T, R, F>(
    items: &[T],
    threads: usize,
    telemetry: &pllbist_telemetry::Collector,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &T) -> R + Sync,
{
    let workers = resolve_threads(threads).max(1).min(items.len().max(1));
    if workers <= 1 {
        let _scope = pllbist_telemetry::span!(telemetry, "parallel.scope", workers = 1u64);
        let start = std::time::Instant::now();
        let out: Vec<R> = {
            let _worker = pllbist_telemetry::span!(telemetry, "parallel.worker", worker = 0u64);
            items
                .iter()
                .enumerate()
                .map(|(i, item)| f(0, i, item))
                .collect()
        };
        if telemetry.is_enabled() {
            telemetry.observe("parallel.worker_wall_secs", start.elapsed().as_secs_f64());
            telemetry.add("parallel.points", items.len() as u64);
            telemetry.add("parallel.worker.0.points", items.len() as u64);
            telemetry.gauge("parallel.workers", 1.0);
            telemetry.gauge("parallel.utilization", 1.0);
        }
        return out;
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let scope_start = std::time::Instant::now();
    let _scope = pllbist_telemetry::span!(telemetry, "parallel.scope", workers = workers as u64);
    let f = &f;
    let next = &next;
    let (mut slots, busy): (Vec<Option<R>>, f64) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let tel = telemetry.clone();
                scope.spawn(move || {
                    let start = std::time::Instant::now();
                    let mut claimed: Vec<(usize, R)> = Vec::new();
                    {
                        let _span =
                            pllbist_telemetry::span!(tel, "parallel.worker", worker = worker);
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            let result = f(worker, i, &items[i]);
                            claimed.push((i, result));
                        }
                    }
                    let wall = start.elapsed().as_secs_f64();
                    if tel.is_enabled() {
                        tel.observe("parallel.worker_wall_secs", wall);
                        tel.add("parallel.points", claimed.len() as u64);
                        tel.add(
                            &format!("parallel.worker.{worker}.points"),
                            claimed.len() as u64,
                        );
                    }
                    (claimed, wall)
                })
            })
            .collect();
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        let mut busy = 0.0;
        for h in handles {
            // Re-raise a worker panic with its original payload so a
            // `catch_unwind` upstream (or a `#[should_panic]` test) sees
            // the real message, not a generic join error.
            let (claimed, wall) = match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (i, result) in claimed {
                debug_assert!(slots[i].is_none(), "point {i} claimed twice");
                slots[i] = Some(result);
            }
            busy += wall;
        }
        (slots, busy)
    });
    if telemetry.is_enabled() {
        let scope_wall = scope_start.elapsed().as_secs_f64();
        telemetry.gauge("parallel.workers", workers as f64);
        if scope_wall > 0.0 {
            telemetry.gauge("parallel.utilization", busy / (workers as f64 * scope_wall));
        }
    }
    slots
        .iter_mut()
        .enumerate()
        .map(|(i, slot)| match slot.take() {
            Some(r) => r,
            // Unreachable: the atomic index hands every i in 0..len to
            // exactly one worker, and a panicking worker re-raised above.
            None => unreachable!("point {i} was never claimed"),
        })
        .collect()
}

/// Panic-isolating variant of [`par_map_points`] for per-point
/// `Result` pipelines: each point runs inside its own `catch_unwind`, so
/// a panic is rendered as
/// [`SweepPointError::from_panic`](crate::error::SweepPointError::from_panic)
/// for **that point alone** — an improvement over the chunked executor,
/// which had to poison a panicking worker's whole chunk.
///
/// Output order and the bitwise-determinism contract match
/// [`par_map_points`]: on panic-free runs the two are
/// call-for-call identical.
pub fn par_try_map_points<T, R, F>(
    items: &[T],
    threads: usize,
    telemetry: &pllbist_telemetry::Collector,
    f: F,
) -> Vec<Result<R, crate::error::SweepPointError>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R, crate::error::SweepPointError> + Sync,
{
    par_try_map_points_worker(items, threads, telemetry, |_, i, item| f(i, item))
}

/// Worker-aware variant of [`par_try_map_points`] (see
/// [`par_map_points_worker`] for the worker-index contract):
/// per-point `catch_unwind` containment plus the executing worker's
/// index for observers.
pub fn par_try_map_points_worker<T, R, F>(
    items: &[T],
    threads: usize,
    telemetry: &pllbist_telemetry::Collector,
    f: F,
) -> Vec<Result<R, crate::error::SweepPointError>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &T) -> Result<R, crate::error::SweepPointError> + Sync,
{
    par_map_points_worker(items, threads, telemetry, |worker, i, item| {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(worker, i, item))) {
            Ok(result) => result,
            // An injected SIGKILL-equivalent must *not* be contained as a
            // per-point failure: it re-raises here and unwinds the whole
            // sweep, exactly as a real process kill would end it.
            Err(payload) => Err(crate::error::SweepPointError::from_panic(
                crate::error::rethrow_if_kill(payload),
            )),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SweepPointError;
    use pllbist_telemetry::Collector;

    #[test]
    fn resolve_zero_is_auto() {
        assert_eq!(resolve_threads(0), available_parallelism());
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn par_map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            let got = par_map(&items, threads, |&x| x * x);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_degenerate_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[5u32], 4, |&x| x + 1), vec![6]);
    }

    #[test]
    fn chunks_are_contiguous_and_cover_everything() {
        let items: Vec<usize> = (0..10).collect();
        let flat = par_map_chunks(&items, 3, &Collector::disabled(), |_, chunk| {
            // Each worker sees a contiguous ascending run.
            assert!(chunk.windows(2).all(|w| w[1] == w[0] + 1));
            chunk.to_vec()
        });
        assert_eq!(flat, items);
    }

    #[test]
    fn chunk_results_may_differ_in_length() {
        let items: Vec<u32> = (0..9).collect();
        let flat = par_map_chunks(&items, 2, &Collector::disabled(), |_, chunk| {
            chunk.iter().filter(|&&x| x % 2 == 0).copied().collect()
        });
        assert_eq!(flat, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn float_results_are_bitwise_stable_across_thread_counts() {
        // The determinism contract the sweep paths rely on.
        let items: Vec<f64> = (1..=25).map(|k| k as f64 * 0.1).collect();
        let work = |&x: &f64| (x.sin() * x.exp()).sqrt().to_bits();
        let serial = par_map(&items, 1, work);
        for threads in [2, 4, 16] {
            assert_eq!(
                par_map(&items, threads, work),
                serial,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn worker_count_clamps_to_item_count() {
        // More threads than items must not create empty-chunk workers:
        // every spawned chunk carries at least one item, and results are
        // unchanged.
        let items: Vec<u32> = (0..3).collect();
        let tel = pllbist_telemetry::Collector::enabled();
        let got = par_map_chunks(&items, 64, &tel, |_, chunk| {
            assert!(!chunk.is_empty(), "empty-chunk worker spawned");
            chunk.iter().map(|&x| x * 2).collect()
        });
        assert_eq!(got, vec![0, 2, 4]);
        let records = tel.drain();
        let chunk_spans = records
            .iter()
            .filter(|r| {
                matches!(r, pllbist_telemetry::Record::Span { name, .. }
                    if name == "parallel.chunk")
            })
            .count();
        assert!(
            (1..=3).contains(&chunk_spans),
            "{chunk_spans} chunk spans for 3 items"
        );
        assert!(records.iter().any(|r| matches!(
            r,
            pllbist_telemetry::Record::Counter { name, value: 3 } if name == "parallel.items"
        )));
    }

    #[test]
    fn observed_map_is_identical_with_and_without_telemetry() {
        let items: Vec<f64> = (1..=25).map(|k| k as f64 * 0.1).collect();
        let work = |_w: usize, chunk: &[f64]| -> Vec<u64> {
            chunk
                .iter()
                .map(|x| (x.sin() * x.exp()).sqrt().to_bits())
                .collect()
        };
        let quiet = par_map_chunks(&items, 1, &pllbist_telemetry::Collector::disabled(), work);
        for threads in [1, 2, 4, 16] {
            let tel = pllbist_telemetry::Collector::enabled();
            let got = par_map_chunks(&items, threads, &tel, work);
            assert_eq!(got, quiet, "threads = {threads}");
            assert!(!tel.drain().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let _ = par_map(&items, 2, |&x| {
            assert!(x < 6, "boom");
            x
        });
    }

    #[test]
    fn balanced_chunks_spawn_every_requested_worker() {
        // The regression from the issue: 9 items / 4 threads used to
        // produce ceil(9/4)=3 chunks of 3, starving the fourth worker
        // while telemetry reported workers=4.
        let items: Vec<u32> = (0..9).collect();
        let chunks = balanced_chunks(&items, 4);
        assert_eq!(chunks.len(), 4);
        let lens: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert_eq!(lens, vec![3, 2, 2, 2]);
        let flat: Vec<u32> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(flat, items);
        // Exhaustive small-space check: every split is a contiguous
        // cover with exactly `workers` non-empty, near-equal chunks.
        for len in 1usize..=12 {
            let items: Vec<usize> = (0..len).collect();
            for workers in 1..=len {
                let chunks = balanced_chunks(&items, workers);
                assert_eq!(chunks.len(), workers, "len {len} workers {workers}");
                let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
                let (min, max) = (sizes.iter().min().copied(), sizes.iter().max().copied());
                assert!(
                    min.unwrap() >= 1,
                    "len {len} workers {workers}: empty chunk"
                );
                assert!(
                    max.unwrap() - min.unwrap() <= 1,
                    "len {len} workers {workers}: unbalanced {sizes:?}"
                );
                let flat: Vec<usize> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
                assert_eq!(flat, items, "len {len} workers {workers}");
            }
        }
    }

    #[test]
    fn chunked_map_runs_every_worker_it_reports() {
        // Observable spawn-count check through the public API: with 9
        // items on 4 threads all four chunk spans must appear.
        let items: Vec<u32> = (0..9).collect();
        let tel = pllbist_telemetry::Collector::enabled();
        let got = par_map_chunks(&items, 4, &tel, |_, chunk| {
            chunk.iter().map(|&x| x + 1).collect()
        });
        assert_eq!(got, (1..=9).collect::<Vec<u32>>());
        let records = tel.drain();
        let chunk_workers: std::collections::BTreeSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                pllbist_telemetry::Record::Span { name, fields, .. }
                    if name == "parallel.chunk" =>
                {
                    fields.iter().find_map(|(k, v)| match v {
                        pllbist_telemetry::Value::U64(w) if *k == "worker" => Some(*w),
                        _ => None,
                    })
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            chunk_workers,
            (0..4).collect(),
            "every reported worker must actually run a chunk"
        );
    }

    #[test]
    fn stealing_map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        let tel = pllbist_telemetry::Collector::disabled();
        for threads in [1, 2, 3, 4, 8, 16, 64] {
            let got = par_map_points(&items, threads, &tel, |_, &x| x * x);
            assert_eq!(got, expect, "threads = {threads}");
        }
        let empty: Vec<u64> = Vec::new();
        assert!(par_map_points(&empty, 4, &tel, |_, &x| x).is_empty());
    }

    #[test]
    fn stealing_map_is_bitwise_stable_across_thread_counts() {
        let items: Vec<f64> = (1..=41).map(|k| k as f64 * 0.07).collect();
        let work = |i: usize, x: &f64| (x.sin() * (x + i as f64).exp()).sqrt().to_bits();
        let tel = pllbist_telemetry::Collector::disabled();
        let serial = par_map_points(&items, 1, &tel, work);
        for threads in [2, 4, 16] {
            let tel_on = pllbist_telemetry::Collector::enabled();
            let got = par_map_points(&items, threads, &tel_on, work);
            assert_eq!(got, serial, "threads = {threads}");
            let records = tel_on.drain();
            // Per-worker telemetry: claimed points sum to the item count.
            let total: u64 = records
                .iter()
                .filter_map(|r| match r {
                    pllbist_telemetry::Record::Counter { name, value }
                        if name == "parallel.points" =>
                    {
                        Some(*value)
                    }
                    _ => None,
                })
                .sum();
            assert_eq!(total, items.len() as u64, "threads = {threads}");
        }
    }

    #[test]
    fn stealing_try_map_contains_panics_per_point() {
        let items: Vec<u32> = (0..8).collect();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let tel = pllbist_telemetry::Collector::disabled();
        let results: Vec<Vec<_>> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                par_try_map_points(&items, threads, &tel, |_, &x| {
                    assert!(x != 6, "poisoned point {x}");
                    Ok(x * 10)
                })
            })
            .collect();
        std::panic::set_hook(prev);
        for (result, &threads) in results.iter().zip(&[1usize, 2, 4]) {
            assert_eq!(result.len(), items.len(), "threads = {threads}");
            // Exactly ONE point fails — per-point containment, unlike
            // the chunked executor's whole-chunk poisoning.
            for (i, r) in result.iter().enumerate() {
                if i == 6 {
                    assert!(
                        matches!(
                            r,
                            Err(SweepPointError::WorkerPanic { message })
                                if message.contains("poisoned point 6")
                        ),
                        "threads = {threads}"
                    );
                } else {
                    assert_eq!(
                        r.as_ref().ok(),
                        Some(&(i as u32 * 10)),
                        "threads = {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn worker_aware_map_reports_valid_workers_and_identical_results() {
        let items: Vec<f64> = (1..=33).map(|k| k as f64 * 0.11).collect();
        let tel = pllbist_telemetry::Collector::disabled();
        let work = |i: usize, x: &f64| (x.cos() + i as f64).to_bits();
        let plain = par_map_points(&items, 1, &tel, work);
        for threads in [1, 2, 4, 16] {
            let seen = std::sync::Mutex::new(std::collections::BTreeSet::new());
            let got = par_map_points_worker(&items, threads, &tel, |worker, i, x| {
                assert!(worker < threads, "worker {worker} out of range");
                if let Ok(mut set) = seen.lock() {
                    set.insert(worker);
                }
                work(i, x)
            });
            assert_eq!(got, plain, "threads = {threads}");
            let seen = seen.into_inner().unwrap_or_default();
            assert!(!seen.is_empty());
        }
        // Typed variant matches too when nothing fails.
        let tried = par_try_map_points_worker(&items, 4, &tel, |_, i, x| Ok(work(i, x)));
        let unwrapped: Vec<u64> = tried.into_iter().map(|r| r.unwrap_or(0)).collect();
        assert_eq!(unwrapped, plain);
    }

    #[test]
    #[should_panic(expected = "stealing boom")]
    fn stealing_map_propagates_uncontained_panics() {
        let items: Vec<u32> = (0..8).collect();
        let tel = pllbist_telemetry::Collector::disabled();
        let _ = par_map_points(&items, 2, &tel, |_, &x| {
            assert!(x < 6, "stealing boom");
            x
        });
    }
}
