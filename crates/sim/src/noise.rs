//! Edge-jitter injection.
//!
//! Real reference sources and VCOs jitter; a BIST that only works on a
//! noiseless device is useless. [`NoiseConfig`] adds white Gaussian
//! **edge jitter** at the two observation points of the loop — the
//! reference input and the divided VCO output — which is how period
//! jitter presents to the PFD and to every BIST block downstream of it.
//! The generator is the workspace's deterministic PRNG
//! ([`pllbist_testkit::rng::TestRng`]: SplitMix64-seeded xorshift128+
//! with Box–Muller Gaussian sampling), so noisy runs are exactly
//! reproducible from a seed — on every platform, forever: the generator
//! is frozen in-tree rather than borrowed from a library that may change
//! its stream between versions.

use pllbist_testkit::rng::TestRng;

/// White Gaussian edge-jitter magnitudes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseConfig {
    /// RMS jitter of observed reference edges, seconds.
    pub ref_edge_jitter_rms: f64,
    /// RMS jitter of observed feedback (divided VCO) edges, seconds.
    pub fb_edge_jitter_rms: f64,
    /// PRNG seed (same seed ⇒ identical run).
    pub seed: u64,
}

impl NoiseConfig {
    /// A convenience constructor with equal jitter on both inputs.
    ///
    /// # Panics
    ///
    /// Panics if `rms` is negative or not finite.
    pub fn symmetric(rms: f64, seed: u64) -> Self {
        assert!(rms >= 0.0 && rms.is_finite(), "jitter must be non-negative");
        Self {
            ref_edge_jitter_rms: rms,
            fb_edge_jitter_rms: rms,
            seed,
        }
    }
}

/// The stateful jitter source used by the engine.
#[derive(Clone, Debug)]
pub struct NoiseSource {
    config: NoiseConfig,
    rng: TestRng,
}

impl NoiseSource {
    /// Creates a source from its configuration.
    pub fn new(config: NoiseConfig) -> Self {
        Self {
            config,
            rng: TestRng::seed_from_u64(config.seed),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// Jitters an observed reference-edge time.
    pub fn jitter_ref_edge(&mut self, t: f64) -> f64 {
        if self.config.ref_edge_jitter_rms == 0.0 {
            return t;
        }
        t + self.rng.gaussian() * self.config.ref_edge_jitter_rms
    }

    /// Jitters an observed feedback-edge time.
    pub fn jitter_fb_edge(&mut self, t: f64) -> f64 {
        if self.config.fb_edge_jitter_rms == 0.0 {
            return t;
        }
        t + self.rng.gaussian() * self.config.fb_edge_jitter_rms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_jitter_is_transparent() {
        let mut src = NoiseSource::new(NoiseConfig::symmetric(0.0, 7));
        for k in 0..20 {
            let t = k as f64;
            assert_eq!(src.jitter_ref_edge(t), t);
            assert_eq!(src.jitter_fb_edge(t), t);
        }
    }

    #[test]
    fn jitter_statistics_match_config() {
        let rms = 5e-6;
        let mut src = NoiseSource::new(NoiseConfig::symmetric(rms, 42));
        let n = 20_000;
        let devs: Vec<f64> = (0..n).map(|_| src.jitter_ref_edge(0.0)).collect();
        let mean = devs.iter().sum::<f64>() / n as f64;
        let var = devs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05 * rms, "mean {mean}");
        assert!((var.sqrt() - rms).abs() < 0.05 * rms, "rms {}", var.sqrt());
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let a: Vec<f64> = {
            let mut s = NoiseSource::new(NoiseConfig::symmetric(1e-6, 99));
            (0..50).map(|_| s.jitter_fb_edge(1.0)).collect()
        };
        let b: Vec<f64> = {
            let mut s = NoiseSource::new(NoiseConfig::symmetric(1e-6, 99));
            (0..50).map(|_| s.jitter_fb_edge(1.0)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<f64> = {
            let mut s = NoiseSource::new(NoiseConfig::symmetric(1e-6, 100));
            (0..50).map(|_| s.jitter_fb_edge(1.0)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn jitter_sequence_is_pinned_to_the_documented_generator() {
        // Regression: the jitter stream is a frozen function of the seed
        // (xorshift128+ + Box–Muller as documented above). If this test
        // fails, a PRNG change silently broke reproducibility of every
        // recorded noisy experiment.
        let mut src = NoiseSource::new(NoiseConfig::symmetric(1.0, 2003));
        let got: Vec<f64> = (0..4).map(|_| src.jitter_ref_edge(0.0)).collect();
        let mut rng = TestRng::seed_from_u64(2003);
        let want: Vec<f64> = (0..4).map(|_| rng.gaussian()).collect();
        assert_eq!(got, want);
        // And the first deviate is byte-for-byte what it was when this
        // test was written.
        assert_eq!(got[0].to_bits(), EXPECTED_FIRST_DEVIATE_BITS);
    }

    /// `TestRng::seed_from_u64(2003).gaussian()`, captured at the time the
    /// in-tree generator was introduced.
    const EXPECTED_FIRST_DEVIATE_BITS: u64 = 0x3FCC_4DAF_EF15_0FB0;

    #[test]
    fn asymmetric_config() {
        let mut src = NoiseSource::new(NoiseConfig {
            ref_edge_jitter_rms: 0.0,
            fb_edge_jitter_rms: 1e-6,
            seed: 1,
        });
        assert_eq!(src.jitter_ref_edge(2.0), 2.0);
        assert_ne!(src.jitter_fb_edge(2.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "jitter must be non-negative")]
    fn negative_rms_rejected() {
        let _ = NoiseConfig::symmetric(-1.0, 0);
    }
}
