#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Mixed-signal closed-loop CP-PLL simulation.
//!
//! Three engines share one component catalogue (`pllbist-analog`,
//! `pllbist-digital`):
//!
//! * [`behavioral`] — the general fast path: the PFD is an edge state
//!   machine, the loop filter is stepped **exactly** over constant-drive
//!   segments, and reference/feedback edges are located by root finding.
//!   Handles every configuration (ripple capacitors, VCO curvature and
//!   clamping, cold-start acquisition).
//! * [`event_driven`] — the per-event closed-form path
//!   (Kuznetsov–Yuldashev style): between PFD switching events the loop
//!   collapses to a scalar affine ODE with closed-form state, output and
//!   phase integral, so one evaluation replaces a run of micro-steps.
//!   Order-of-magnitude faster on the first-order/linear configuration
//!   class the BIST campaigns actually sweep.
//! * [`cosim`] — gate-level co-simulation: the digital side (DCO, dividers,
//!   PFDs, counters, the paper's fig. 7 peak detector) runs in the
//!   `pllbist-digital` event kernel with real propagation delays while the
//!   analogue loop integrates between events. Used to validate the fast
//!   path and to regenerate the waveform-level figures.
//!
//! All of them (plus the closed-form reference adapter) implement the
//! [`engine::PllEngine`] trait, so the BIST monitor and every sweep
//! drive them interchangeably; [`scenario`] owns the shared
//! settle→stimulate→capture pipeline with lock-state checkpointing.
//!
//! Supporting modules: [`config`] (the PLL description and fault
//! injection), [`linear`] (closed-loop transfer function, eq. 4/5/6 of the
//! paper), [`stimulus`] (sine FM, two-tone and multi-tone FSK — fig. 4),
//! [`bench_measure`] (the fig. 3 bench-style measurement baseline that
//! needs analogue node access), [`parallel`] (the scoped-thread sweep
//! executor behind the `threads` knobs — each modulation point is
//! independent, so sweeps scale with cores), and the robustness layer:
//! [`error`] (the typed per-point failure taxonomy) plus [`supervisor`]
//! (guardrails, panic isolation and deterministic quarantine-and-retry
//! over the scenario pipeline).
//!
//! # Example
//!
//! Lock the paper's PLL and check it stays at the lock frequency:
//!
//! ```
//! use pllbist_sim::config::PllConfig;
//! use pllbist_sim::behavioral::CpPll;
//!
//! let config = PllConfig::paper_table3();
//! let mut pll = CpPll::new_locked(&config);
//! pll.advance_to(0.1); // run 100 ms at lock
//! let f = pll.average_frequency_hz(0.05); // counter-style readout
//! assert!((f - 5_000.0).abs() < 5.0, "still at lock: {f}");
//! ```

pub mod behavioral;
pub mod bench_measure;
pub mod campaign;
pub mod config;
pub mod cosim;
pub mod engine;
pub mod error;
pub mod event_driven;
pub mod linear;
pub mod lock;
pub mod noise;
pub mod observe;
pub mod parallel;
pub mod plan;
pub mod scenario;
pub mod server;
pub mod service;
pub mod sidecar;
pub mod stimulus;
pub mod supervisor;
pub mod transient;

pub use behavioral::CpPll;
pub use campaign::{CampaignLog, NullCodec, PointCodec};
pub use config::PllConfig;
pub use engine::{AnalogAccess, ClosedFormPll, PllEngine, WorkStats};
pub use error::{CampaignError, SweepPointError, ERROR_KINDS};
pub use event_driven::EventDrivenCpPll;
pub use linear::LoopAnalysis;
pub use observe::{CampaignObserver, ObservatoryConfig};
pub use plan::{CampaignPlan, Scheduler};
pub use scenario::{run_plan, PlanOutcome, Scenario, SupervisedPoints};
pub use server::{http_get, http_get_with_retries, http_post, HttpError, StatusServer};
pub use service::{
    submission_body, CampaignService, CrashFault, FaultPlan, JobSpec, ServiceConfig, VoltsCodec,
};
pub use sidecar::{LockSidecar, SidecarOutcome};
pub use supervisor::{Incident, IncidentAction, Supervised, SupervisorPolicy};
