//! Bench-style transfer-function measurement (the paper's fig. 3).
//!
//! This is the **conventional laboratory method** the BIST replaces: apply
//! sinusoidal FM to the reference, *probe the analogue loop-filter node
//! directly* (or, equivalently, the VCO instantaneous frequency), and
//! extract gain and phase at the modulation frequency by least-squares sine
//! fitting. It requires exactly the analogue access an embedded PLL does
//! not have — which is why it serves as the accuracy baseline the on-chip
//! monitor is compared against (ablation abl06).
//!
//! The sweep executes a [`CampaignPlan`] on the single
//! [`crate::scenario::run_plan`] runner: the loop locks and settles once
//! per configuration (checkpointed by default), then each modulation
//! point restores the snapshot, programs its tone, waits out the
//! modulation transient and captures. Engine choice, supervision,
//! scheduling, campaign-file resume and observation are all plan options
//! — this module only contributes the capture physics
//! ([`BenchSettings`]) and the [`BenchPointCodec`] that makes campaign
//! files round-trip measurements bit-for-bit.
//!
//! [`crate::scenario::run_plan`]: crate::scenario::run_plan

use crate::campaign::{bits_hex, f64_from_bits_hex, json_str_field, PointCodec};
use crate::config::PllConfig;
use crate::engine::{AnalogAccess, PllEngine, WorkStats};
use crate::error::{CampaignError, SweepPointError};
use crate::plan::CampaignPlan;
use crate::scenario::{run_plan, Scenario};
use crate::stimulus::FmStimulus;
use crate::supervisor::Incident;
use pllbist_numeric::bode::{BodePlot, BodePoint};
use pllbist_numeric::fit::sine_fit;
use pllbist_telemetry::{span, Record};
use pllbist_telemetry::{Fields, Value};
use std::f64::consts::{FRAC_PI_2, TAU};

/// One bench measurement at a single modulation frequency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchPoint {
    /// Modulation frequency in Hz.
    pub f_mod_hz: f64,
    /// Measured feedback-referred gain `|H(jω)|/N` (linear).
    pub gain: f64,
    /// Measured phase of the response in radians (negative = output lags).
    pub phase: f64,
}

/// The physics of one bench capture — what to stimulate and how long to
/// sample. Execution policy (engine, threads, checkpointing, supervision,
/// resume, telemetry) lives on the [`CampaignPlan`], not here: these
/// fields all change the measured numbers, plan options never do.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSettings {
    /// Peak reference deviation in Hz.
    pub deviation_hz: f64,
    /// Modulation periods to discard after the tone is programmed (on top
    /// of the loop's own lock-settle wait, [`crate::scenario::settle_time`]).
    pub settle_periods: f64,
    /// Modulation periods to fit over.
    pub measure_periods: f64,
    /// Samples per modulation period.
    pub samples_per_period: usize,
}

impl Default for BenchSettings {
    fn default() -> Self {
        Self {
            deviation_hz: 10.0,
            settle_periods: 3.0,
            measure_periods: 4.0,
            samples_per_period: 64,
        }
    }
}

/// Measures one point of the closed-loop response with full analogue
/// access on engine backend `E` (any [`AnalogAccess`] implementor — the
/// behavioural [`crate::behavioral::CpPll`] or the event-driven
/// [`crate::event_driven::EventDrivenCpPll`]).
///
/// The loop is settled at lock (the [`crate::scenario::settle_time`]
/// heuristic), driven with pure sinusoidal FM at `f_mod_hz`, allowed
/// `settle_periods` modulation periods for the tone's own transient, and
/// then the VCO instantaneous frequency is sine-fitted against the known
/// stimulus.
///
/// # Errors
///
/// [`SweepPointError::DegenerateFit`] when the captured record cannot
/// support a sine fit, [`SweepPointError::NumericalDivergence`] when the
/// fitted gain/phase comes out non-finite.
///
/// # Panics
///
/// Panics if `f_mod_hz` is not positive or the settings are degenerate.
pub fn measure_point<E: AnalogAccess>(
    config: &PllConfig,
    f_mod_hz: f64,
    settings: &BenchSettings,
) -> Result<BenchPoint, SweepPointError> {
    Ok(measure_point_with_stats::<E>(config, f_mod_hz, settings)?.0)
}

/// [`measure_point`] plus the solver work it cost ([`WorkStats`]),
/// for telemetry attribution. The measured point is identical.
///
/// # Errors
///
/// Same as [`measure_point`].
pub fn measure_point_with_stats<E: AnalogAccess>(
    config: &PllConfig,
    f_mod_hz: f64,
    settings: &BenchSettings,
) -> Result<(BenchPoint, WorkStats), SweepPointError> {
    let scenario = Scenario::new(config);
    let mut pll: E = scenario.settle_fresh();
    capture_point(&mut pll, f_mod_hz, settings)
}

/// The capture stage of the pipeline: `pll` arrives already settled at
/// lock; this programs the tone, waits out its transient, samples the VCO
/// frequency over whole reference periods and sine-fits gain and phase.
///
/// Returns the point plus the work done *by this point* (a clean delta
/// even when `pll` was restored from a checkpoint that already carries
/// the settle work).
///
/// Generic over [`AnalogAccess`] so the same capture runs bare or under
/// a [`crate::supervisor::Supervised`] wrapper.
fn capture_point<E: AnalogAccess>(
    pll: &mut E,
    f_mod_hz: f64,
    settings: &BenchSettings,
) -> Result<(BenchPoint, WorkStats), SweepPointError> {
    assert!(f_mod_hz > 0.0, "modulation frequency must be positive");
    assert!(
        settings.measure_periods >= 1.0 && settings.samples_per_period >= 8,
        "measurement window too small"
    );
    let config = PllEngine::config(pll);
    let (f_ref_hz, f_vco_hz, divider_n) = (config.f_ref_hz, config.f_vco_hz(), config.divider_n);
    let before = PllEngine::work_stats(pll);
    let t_mod = 1.0 / f_mod_hz;
    Scenario::stimulate(
        pll,
        FmStimulus::pure_sine(f_ref_hz, settings.deviation_hz, f_mod_hz),
        settings.settle_periods * t_mod,
    );

    // Sample on a grid commensurate with the reference period: the
    // control-node correction-pulse ripple is (quasi-)periodic at f_ref,
    // so a boxcar over whole reference periods rejects it exactly —
    // the same reason the paper's frequency counter gates over whole
    // cycles. The frequency estimate between samples is the phase
    // difference over the interval (a gated-counter readout with the
    // quantisation removed; the BIST layer adds the quantisation back).
    let t_ref = 1.0 / f_ref_hz;
    let periods_per_sample = (t_mod / (settings.samples_per_period as f64 * t_ref))
        .round()
        .max(1.0);
    let sample_dt = periods_per_sample * t_ref;
    pll.enable_sampling(sample_dt);
    let t = pll.time();
    pll.advance_to(t + settings.measure_periods * t_mod);
    let samples = pll.take_samples();

    let omega = TAU * f_mod_hz;
    let pairs: Vec<(f64, f64)> = samples
        .windows(2)
        .map(|w| {
            let f = (w[1].phase_cycles - w[0].phase_cycles) / (w[1].t - w[0].t);
            (0.5 * (w[0].t + w[1].t), f - f_vco_hz)
        })
        .collect();
    let fit = sine_fit(&pairs, omega).ok_or(SweepPointError::DegenerateFit { f_mod_hz })?;

    // The boxcar attenuates the modulation tone by sinc(π·f_mod·dt);
    // compensate so the gain is unbiased even at coarse sampling.
    let x = std::f64::consts::PI * f_mod_hz * sample_dt;
    let sinc = if x.abs() < 1e-12 { 1.0 } else { x.sin() / x };

    // The stimulus deviation is Δf·sin(ωt) = Δf·cos(ωt − π/2); the fit
    // reports A·cos(ωt + φ_out). Output-referred gain is A/(N·Δf).
    let n = divider_n as f64;
    let gain = fit.amplitude() / sinc / (n * settings.deviation_hz);
    let mut phase = fit.phase() + FRAC_PI_2;
    // Normalise to (−π, π].
    while phase > std::f64::consts::PI {
        phase -= TAU;
    }
    while phase <= -std::f64::consts::PI {
        phase += TAU;
    }
    if !gain.is_finite() || !phase.is_finite() {
        return Err(SweepPointError::NumericalDivergence {
            t: pll.time(),
            quantity: "bench_fit_gain",
            value: gain,
        });
    }
    Ok((
        BenchPoint {
            f_mod_hz,
            gain,
            phase,
        },
        PllEngine::work_stats(pll).since(&before),
    ))
}

/// A completed bench sweep: per-point outcomes (quarantined points stay
/// in place as typed errors), the incident log, and the drained
/// telemetry (empty when the plan's telemetry is off).
#[derive(Clone, Debug)]
pub struct SupervisedSweepRun {
    /// One outcome per requested frequency, in input order.
    pub points: Vec<Result<BenchPoint, SweepPointError>>,
    /// Every retry/quarantine incident the supervisor logged.
    pub incidents: Vec<Incident>,
    /// Drained telemetry (includes `supervisor.*` records when the plan
    /// is supervised).
    pub telemetry: Vec<Record>,
}

impl SupervisedSweepRun {
    /// The surviving (non-quarantined) points, in sweep order.
    pub fn ok_points(&self) -> Vec<BenchPoint> {
        self.points.iter().filter_map(|p| p.clone().ok()).collect()
    }

    /// Number of quarantined points.
    pub fn quarantined_count(&self) -> usize {
        self.points.iter().filter(|p| p.is_err()).count()
    }

    /// Bode plot over the surviving points (phases unwrapped).
    ///
    /// # Errors
    ///
    /// [`SweepPointError::DegenerateFit`] (with the device-level
    /// sentinel `f_mod_hz = 0.0`) when **every** point was quarantined —
    /// downstream fitting tolerates gaps but cannot conjure a curve from
    /// nothing, and an empty plot silently accepted by a fitter is
    /// exactly the kind of false "pass" the BIST exists to prevent.
    pub fn to_bode(&self) -> Result<BodePlot, SweepPointError> {
        let ok = self.ok_points();
        if ok.is_empty() {
            return Err(SweepPointError::DegenerateFit { f_mod_hz: 0.0 });
        }
        let mut plot: BodePlot = ok
            .into_iter()
            .map(|p| BodePoint {
                omega: TAU * p.f_mod_hz,
                magnitude: p.gain,
                phase: p.phase,
            })
            .collect();
        plot.unwrap_phase();
        Ok(plot)
    }
}

/// The bench workload's digest salt: the capture physics that determine
/// the measured numbers. The plan folds in the backend tag, lock-settle
/// override and supervision policy ([`CampaignPlan::digest`]); scheduling
/// knobs never enter.
fn bench_salt(settings: &BenchSettings) -> String {
    format!(
        "bench|dev:{}|settle:{}|measure:{}|spp:{}",
        bits_hex(settings.deviation_hz),
        bits_hex(settings.settle_periods),
        bits_hex(settings.measure_periods),
        settings.samples_per_period,
    )
}

/// The campaign digest a bench sweep stamps into its results file:
/// everything that determines the measured numbers — backend, config,
/// grid, capture settings, supervision policy — but **not** threads,
/// checkpointing, observation or telemetry, which never change results.
/// A campaign killed on 16 threads may therefore resume on 1 and still
/// produce the byte-identical file.
pub fn campaign_digest<E: PllEngine>(
    plan: &CampaignPlan<E>,
    f_mod_hz: &[f64],
    settings: &BenchSettings,
) -> String {
    plan.digest(f_mod_hz, &bench_salt(settings))
}

/// **The** bench sweep: executes `plan` over the modulation grid with the
/// capture physics in `settings`, composing every plan option — engine,
/// checkpointing, supervision, scheduling, campaign-file resume,
/// observation, telemetry — on the single [`run_plan`] pipeline.
///
/// On a healthy device the measured points are bitwise identical for
/// every thread count, checkpoint setting, telemetry state and
/// supervision policy; options change wall-clock time and fault
/// containment, never results. With supervision, a sick point
/// quarantines in place (typed error in `points`) instead of aborting
/// the sweep; without it, each point still gets exactly one contained
/// attempt.
///
/// # Errors
///
/// [`CampaignError`] when the plan's results file belongs to a different
/// campaign ([`CampaignError::HeaderMismatch`]), is corrupted before its
/// final line, or the filesystem fails. Plans without
/// [`CampaignPlan::resume_from`] cannot fail this way.
pub fn run_sweep<E: AnalogAccess>(
    plan: &CampaignPlan<E>,
    f_mod_hz: &[f64],
    settings: &BenchSettings,
) -> Result<SupervisedSweepRun, CampaignError> {
    let outcome = run_plan(
        plan,
        f_mod_hz,
        BenchPointCodec,
        &bench_salt(settings),
        |pll, fm, tel| {
            let _point = span!(tel, "bench.point", f_mod_hz = fm);
            let (point, stats) = capture_point(pll, fm, settings)?;
            if tel.is_enabled() {
                tel.add("sim.steps", stats.steps);
                tel.add("sim.step_rejections", stats.step_rejections);
                tel.add("sim.ref_edges", stats.ref_edges);
                tel.add("sim.fb_edges", stats.fb_edges);
            }
            Ok(point)
        },
    )?;
    Ok(SupervisedSweepRun {
        points: outcome.points,
        incidents: outcome.incidents,
        telemetry: outcome.telemetry,
    })
}

/// Fail-fast sweep: [`run_sweep`] unwrapped to plain [`BenchPoint`]s in
/// input order — the historical bench contract where any failed point
/// aborts the sweep.
///
/// # Panics
///
/// Panics on the first quarantined point (`"bench point at … Hz
/// failed"`) or on a campaign-file error. Route through [`run_sweep`]
/// with a supervised plan to get per-point quarantine instead.
pub fn measure_sweep_points<E: AnalogAccess>(
    plan: &CampaignPlan<E>,
    f_mod_hz: &[f64],
    settings: &BenchSettings,
) -> Vec<BenchPoint> {
    let run = match run_sweep(plan, f_mod_hz, settings) {
        Ok(run) => run,
        Err(e) => panic!("bench campaign failed: {e}"),
    };
    run.points
        .into_iter()
        .zip(f_mod_hz)
        .map(|(p, fm)| match p {
            Ok(point) => point,
            Err(e) => panic!("bench point at {fm} Hz failed: {e}"),
        })
        .collect()
}

/// Fail-fast sweep assembled into a Bode plot (phases unwrapped across
/// the sweep).
///
/// # Panics
///
/// Same as [`measure_sweep_points`].
pub fn measure_sweep<E: AnalogAccess>(
    plan: &CampaignPlan<E>,
    f_mod_hz: &[f64],
    settings: &BenchSettings,
) -> BodePlot {
    let mut plot: BodePlot = measure_sweep_points(plan, f_mod_hz, settings)
        .into_iter()
        .map(|p| BodePoint {
            omega: TAU * p.f_mod_hz,
            magnitude: p.gain,
            phase: p.phase,
        })
        .collect();
    plot.unwrap_phase();
    plot
}

/// The [`PointCodec`] for bench sweep results: every `f64` of a
/// [`BenchPoint`] stored as its exact bit pattern, so the campaign file
/// round-trips measurements bit-for-bit.
#[derive(Clone, Copy, Debug, Default)]
pub struct BenchPointCodec;

impl PointCodec for BenchPointCodec {
    type Point = BenchPoint;

    fn encode(&self, point: &BenchPoint) -> Fields {
        vec![
            (
                "f_mod_bits".to_string(),
                Value::Str(bits_hex(point.f_mod_hz)),
            ),
            ("gain_bits".to_string(), Value::Str(bits_hex(point.gain))),
            ("phase_bits".to_string(), Value::Str(bits_hex(point.phase))),
        ]
    }

    fn decode(&self, line: &str) -> Option<BenchPoint> {
        Some(BenchPoint {
            f_mod_hz: f64_from_bits_hex(&json_str_field(line, "f_mod_bits")?)?,
            gain: f64_from_bits_hex(&json_str_field(line, "gain_bits")?)?,
            phase: f64_from_bits_hex(&json_str_field(line, "phase_bits")?)?,
        })
    }
}

/// Log-spaced modulation frequencies for a sweep (helper shared with the
/// BIST monitor so baseline and monitor measure the same points).
///
/// # Panics
///
/// Panics if the bounds are not `0 < lo < hi` or `n < 2`.
pub fn log_spaced(lo_hz: f64, hi_hz: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && lo_hz > 0.0 && hi_hz > lo_hz, "invalid sweep spec");
    let ratio = (hi_hz / lo_hz).ln();
    (0..n)
        .map(|i| lo_hz * (ratio * i as f64 / (n - 1) as f64).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavioral::CpPll;
    use crate::event_driven::EventDrivenCpPll;
    use crate::plan::Scheduler;
    use crate::supervisor::SupervisorPolicy;
    use pllbist_telemetry::TelemetryConfig;

    fn quick() -> BenchSettings {
        BenchSettings {
            deviation_hz: 10.0,
            settle_periods: 3.0,
            measure_periods: 3.0,
            samples_per_period: 32,
        }
    }

    fn serial_plan(cfg: &PllConfig) -> CampaignPlan {
        CampaignPlan::new(cfg.clone()).scheduler(Scheduler::Serial)
    }

    #[test]
    fn sweep_run_telemetry_observes_without_steering() {
        let cfg = PllConfig::paper_table3();
        let freqs = [2.0, 8.0, 20.0];
        let quiet = measure_sweep_points(&serial_plan(&cfg), &freqs, &quick());
        let loud = serial_plan(&cfg).telemetry(TelemetryConfig::enabled());
        let run = run_sweep(&loud, &freqs, &quick()).expect("in-memory sweep");
        assert_eq!(run.ok_points(), quiet, "telemetry must not change results");
        let point_spans = run
            .telemetry
            .iter()
            .filter(|r| matches!(r, Record::Span { name, .. } if name == "bench.point"))
            .count();
        assert_eq!(point_spans, 3);
        assert!(run.telemetry.iter().any(
            |r| matches!(r, Record::Counter { name, value } if name == "sim.steps" && *value > 0)
        ));
        // Disabled telemetry yields no records at all.
        let silent = run_sweep(&serial_plan(&cfg), &freqs, &quick()).expect("in-memory sweep");
        assert!(silent.telemetry.is_empty());
        assert_eq!(silent.ok_points(), quiet);
    }

    #[test]
    fn checkpointed_sweep_is_bitwise_identical_to_fresh() {
        let cfg = PllConfig::paper_table3();
        let freqs = [2.0, 8.0, 20.0];
        let fresh = measure_sweep_points(&serial_plan(&cfg).checkpoint(false), &freqs, &quick());
        let ckpt = measure_sweep_points(&serial_plan(&cfg), &freqs, &quick());
        assert_eq!(ckpt, fresh, "checkpointing must not change results");
    }

    #[test]
    fn in_band_point_has_unity_gain_and_small_lag() {
        let cfg = PllConfig::paper_table3();
        let p = measure_point::<CpPll>(&cfg, 1.0, &quick()).expect("bench point");
        assert!((p.gain - 1.0).abs() < 0.05, "gain {}", p.gain);
        assert!(p.phase.abs() < 0.25, "phase {}", p.phase);
    }

    #[test]
    fn resonance_point_matches_linear_model() {
        let cfg = PllConfig::paper_table3();
        let a = cfg.analysis();
        let h = a.feedback_transfer();
        let p = measure_point::<CpPll>(&cfg, 8.0, &quick()).expect("bench point");
        let want = h.eval_jw(TAU * 8.0);
        assert!(
            (p.gain - want.abs()).abs() / want.abs() < 0.05,
            "gain {} vs {}",
            p.gain,
            want.abs()
        );
        assert!(
            (p.phase - want.arg()).abs() < 0.12,
            "phase {} vs {}",
            p.phase,
            want.arg()
        );
    }

    #[test]
    fn out_of_band_point_rolls_off() {
        let cfg = PllConfig::paper_table3();
        let p = measure_point::<CpPll>(&cfg, 60.0, &quick()).expect("bench point");
        let want = cfg.analysis().feedback_transfer().eval_jw(TAU * 60.0);
        assert!(p.gain < 0.5, "rolled off: {}", p.gain);
        assert!((p.gain - want.abs()).abs() / want.abs() < 0.15);
    }

    #[test]
    fn sweep_produces_unwrapped_monotone_plot() {
        let cfg = PllConfig::paper_table3();
        let freqs = log_spaced(1.0, 40.0, 6);
        let plot = measure_sweep(&serial_plan(&cfg), &freqs, &quick());
        assert_eq!(plot.len(), 6);
        for w in plot.points().windows(2) {
            assert!(w[1].phase <= w[0].phase + 0.2, "phase roughly decreasing");
        }
    }

    #[test]
    fn supervised_sweep_matches_legacy_on_healthy_device() {
        let cfg = PllConfig::paper_table3();
        let freqs = [2.0, 8.0, 20.0];
        let legacy = measure_sweep_points(&serial_plan(&cfg), &freqs, &quick());
        for threads in [1usize, 4] {
            let plan = CampaignPlan::new(cfg.clone())
                .supervised(SupervisorPolicy::default())
                .scheduler(Scheduler::WorkStealing { threads })
                .telemetry(TelemetryConfig::enabled());
            let run = run_sweep(&plan, &freqs, &quick()).expect("in-memory sweep");
            assert_eq!(run.quarantined_count(), 0, "threads = {threads}");
            assert!(run.incidents.is_empty());
            assert_eq!(run.ok_points(), legacy, "threads = {threads}");
            let bode = run.to_bode().expect("healthy sweep has a curve");
            assert_eq!(bode.len(), freqs.len());
        }
    }

    #[test]
    fn bench_codec_round_trips_points_exactly() {
        use crate::campaign::{decode_point_line, encode_point_line};
        let p = BenchPoint {
            f_mod_hz: 8.0,
            gain: 0.987_654_321,
            phase: -0.123_456_789,
        };
        let line = encode_point_line(&BenchPointCodec, 5, &Ok(p));
        let (index, back) = decode_point_line(&BenchPointCodec, &line).expect("decodes");
        assert_eq!(index, 5);
        assert_eq!(back.expect("ok point"), p);
        // Re-encoding the decoded point reproduces the exact line — the
        // byte-identity guarantee resume depends on.
        assert_eq!(encode_point_line(&BenchPointCodec, 5, &Ok(p)), line);
    }

    #[test]
    fn bench_digest_ignores_scheduling_but_not_settings() {
        let cfg = PllConfig::paper_table3();
        let freqs = [2.0, 8.0];
        let base = CampaignPlan::new(cfg.clone()).supervised(SupervisorPolicy::default());
        let a = campaign_digest(&base, &freqs, &quick());
        // Thread count, checkpointing and telemetry never change results,
        // so they must not change the digest (resume across thread counts).
        let rescheduled = CampaignPlan::new(cfg.clone())
            .supervised(SupervisorPolicy::default())
            .scheduler(Scheduler::WorkStealing { threads: 16 })
            .checkpoint(false)
            .telemetry(TelemetryConfig::enabled());
        assert_eq!(a, campaign_digest(&rescheduled, &freqs, &quick()));
        // Anything result-affecting must.
        let detuned = BenchSettings {
            deviation_hz: 11.0,
            ..quick()
        };
        assert_ne!(a, campaign_digest(&base, &freqs, &detuned));
        let lax = CampaignPlan::new(cfg.clone()).supervised(SupervisorPolicy {
            max_retries: SupervisorPolicy::default().max_retries + 1,
            ..SupervisorPolicy::default()
        });
        assert_ne!(a, campaign_digest(&lax, &freqs, &quick()));
        // Dropping supervision entirely is also a different campaign.
        assert_ne!(
            a,
            campaign_digest(&CampaignPlan::new(cfg.clone()), &freqs, &quick())
        );
    }

    #[test]
    fn resumable_sweep_matches_in_memory_and_reloads_from_file() {
        let cfg = PllConfig::paper_table3();
        let freqs = [2.0, 8.0, 20.0];
        let path = std::env::temp_dir().join("pllbist_bench_resumable_inline.jsonl");
        let _ = std::fs::remove_file(&path);
        let resumable = serial_plan(&cfg)
            .supervised(SupervisorPolicy::default())
            .resume_from(&path);
        let run = run_sweep(&resumable, &freqs, &quick()).expect("resumable");
        let plain = run_sweep(
            &serial_plan(&cfg).supervised(SupervisorPolicy::default()),
            &freqs,
            &quick(),
        )
        .expect("in-memory sweep");
        assert_eq!(run.points, plain.points);
        let first = std::fs::read_to_string(&path).expect("results file");
        // A second run over the completed file recomputes nothing: every
        // outcome loads from disk and the file is untouched.
        let again = run_sweep(&resumable, &freqs, &quick()).expect("resume");
        assert_eq!(again.points, run.points);
        assert_eq!(std::fs::read_to_string(&path).expect("results file"), first);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn event_driven_backend_measures_the_same_response() {
        let cfg = PllConfig::paper_table3();
        let freqs = [2.0, 8.0, 20.0];
        let beh = measure_sweep_points(&serial_plan(&cfg), &freqs, &quick());
        let ev = measure_sweep_points(
            &serial_plan(&cfg).engine::<EventDrivenCpPll>(),
            &freqs,
            &quick(),
        );
        for (a, b) in ev.iter().zip(&beh) {
            assert!(
                (a.gain - b.gain).abs() / b.gain < 0.02,
                "gain at {} Hz: {} vs {}",
                a.f_mod_hz,
                a.gain,
                b.gain
            );
            assert!(
                (a.phase - b.phase).abs() < 0.05,
                "phase at {} Hz: {} vs {}",
                a.f_mod_hz,
                a.phase,
                b.phase
            );
        }
    }

    #[test]
    fn resumable_file_refuses_a_different_backend() {
        let cfg = PllConfig::paper_table3();
        let freqs = [2.0, 8.0];
        let path = std::env::temp_dir().join("pllbist_bench_cross_engine.jsonl");
        let _ = std::fs::remove_file(&path);
        let ev_plan = serial_plan(&cfg)
            .engine::<EventDrivenCpPll>()
            .supervised(SupervisorPolicy::default())
            .resume_from(&path);
        run_sweep(&ev_plan, &freqs, &quick()).expect("event-driven campaign");
        // The same grid on the behavioural backend must refuse the file:
        // the engines agree physically but not bit for bit, and a resume
        // that mixed their rounding would break byte-identity.
        let beh_plan = serial_plan(&cfg)
            .supervised(SupervisorPolicy::default())
            .resume_from(&path);
        let err = run_sweep(&beh_plan, &freqs, &quick())
            .expect_err("cross-engine resume must be refused");
        assert!(matches!(err, CampaignError::HeaderMismatch { .. }), "{err}");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn log_spacing_endpoints() {
        let f = log_spaced(1.0, 100.0, 5);
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f[4] - 100.0).abs() < 1e-9);
        assert!((f[2] - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid sweep spec")]
    fn bad_sweep_rejected() {
        let _ = log_spaced(10.0, 1.0, 5);
    }
}
