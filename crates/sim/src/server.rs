//! Zero-dependency HTTP status server over a running campaign — the
//! first brick of the ROADMAP item-2 campaign service front door.
//!
//! A [`StatusServer`] binds a `std::net::TcpListener` (typically on
//! `127.0.0.1:0` for an ephemeral port), spawns one accept-loop thread
//! and serves read-only JSON snapshots of a [`CampaignObserver`]:
//!
//! | endpoint     | body                                              |
//! |--------------|---------------------------------------------------|
//! | `/`          | endpoint index                                    |
//! | `/progress`  | [`CampaignProgress::to_json`] + stall status      |
//! | `/workers`   | [`CampaignProgress::workers_json`]                |
//! | `/incidents` | [`CampaignProgress::incidents_json`]              |
//!
//! Serving a snapshot takes relaxed atomic loads only — the campaign's
//! workers are never blocked, and the server cannot steer the run (the
//! same no-steering contract as the observer itself). Requests are
//! handled one at a time on the accept thread; responses close the
//! connection (`Connection: close`), which is all a poller or a `curl`
//! loop needs.
//!
//! [`CampaignProgress::to_json`]: pllbist_telemetry::CampaignProgress::to_json
//! [`CampaignProgress::workers_json`]: pllbist_telemetry::CampaignProgress::workers_json
//! [`CampaignProgress::incidents_json`]: pllbist_telemetry::CampaignProgress::incidents_json

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::observe::CampaignObserver;

/// Typed failure of an HTTP exchange ([`http_get`] / [`http_post`]).
///
/// The split matters for retry policy: [`Timeout`](Self::Timeout) and
/// [`Io`](Self::Io) are transport faults worth retrying (the server may
/// be restarting — the crash-only service does exactly that), while
/// [`Status`](Self::Status) and [`Malformed`](Self::Malformed) are
/// answers: the server spoke, retrying verbatim gets the same reply
/// (except `429`/`503` backpressure, which
/// [`http_get_with_retries`] handles explicitly).
#[derive(Debug)]
pub enum HttpError {
    /// The overall request deadline elapsed (connect, write or read).
    Timeout,
    /// Transport failure below HTTP (connect refused, reset, …).
    Io(std::io::Error),
    /// The peer's bytes were not a parseable HTTP/1.1 response.
    Malformed(String),
    /// A complete non-2xx response.
    Status {
        /// HTTP status code (e.g. `404`, `429`, `503`).
        code: u16,
        /// Response body (the servers here answer JSON).
        body: String,
    },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Timeout => write!(f, "http request timed out"),
            HttpError::Io(e) => write!(f, "http transport error: {e}"),
            HttpError::Malformed(reason) => write!(f, "malformed http response: {reason}"),
            HttpError::Status { code, body } => write!(f, "http status {code}: {body}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            HttpError::Timeout
        } else {
            HttpError::Io(e)
        }
    }
}

impl HttpError {
    /// Whether a verbatim retry can possibly succeed: transport faults
    /// and explicit backpressure (`429`, `503`), but never other
    /// complete answers.
    pub fn is_retryable(&self) -> bool {
        match self {
            HttpError::Timeout | HttpError::Io(_) => true,
            HttpError::Status { code, .. } => matches!(code, 429 | 503),
            HttpError::Malformed(_) => false,
        }
    }
}

/// A running status server; shuts down on [`Self::shutdown`] or drop.
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StatusServer {
    /// Binds `bind` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `observer` snapshots.
    pub fn start(observer: Arc<CampaignObserver>, bind: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pllbist-status".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(mut stream) = conn {
                        let _ = serve_connection(&mut stream, &observer);
                    }
                }
            })?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (use `addr().port()` after an ephemeral bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); a self-connection wakes it
        // so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_connection(stream: &mut TcpStream, observer: &CampaignObserver) -> std::io::Result<()> {
    let request = match read_http_request(stream, Duration::from_secs(2)) {
        Some(request) if request.method == "GET" => request,
        // Torn request, slow-loris, non-GET or shutdown self-connect.
        _ => return Ok(()),
    };
    let (status, body) = route(&request.path, observer);
    write_http_response(stream, status, &body)
}

/// Writes one `Connection: close` JSON response.
pub(crate) fn write_http_response(
    stream: &mut TcpStream,
    status: &str,
    body: &str,
) -> std::io::Result<()> {
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// One parsed inbound request: method, path (query string stripped) and
/// the body promised by `Content-Length`.
pub(crate) struct HttpRequest {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// Reads one HTTP/1.1 request under an **overall** deadline.
///
/// The per-read socket timeout alone is not enough: a client trickling
/// one byte per timeout window (slow loris) would hold the accept
/// thread forever while every individual `read` "succeeds". Here the
/// whole request — head and body — must arrive within `deadline`, or
/// the connection is dropped (`None`). Also `None` for unparsable
/// requests and bodies larger than the head's `Content-Length` cap.
pub(crate) fn read_http_request(stream: &mut TcpStream, deadline: Duration) -> Option<HttpRequest> {
    const MAX_HEAD: usize = 8 * 1024;
    const MAX_BODY: usize = 4 * 1024 * 1024;
    let started = Instant::now();
    let mut buf = Vec::with_capacity(2048);
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() >= MAX_HEAD {
            return None;
        }
        let remaining = deadline.checked_sub(started.elapsed())?;
        stream
            .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
            .ok()?;
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    };
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    // Strip any query string; endpoints take no parameters.
    let path = target.split('?').next().unwrap_or(target).to_string();
    let content_length = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse::<usize>().ok())?
        })
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return None;
    }
    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        let remaining = deadline.checked_sub(started.elapsed())?;
        stream
            .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
            .ok()?;
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    body.truncate(content_length);
    Some(HttpRequest { method, path, body })
}

fn route(path: &str, observer: &CampaignObserver) -> (&'static str, String) {
    let snap = observer.snapshot();
    match path {
        "/" => (
            "200 OK",
            "{\"endpoints\":[\"/progress\",\"/workers\",\"/incidents\"]}".to_string(),
        ),
        "/progress" => {
            // Splice the stall status into the snapshot object so one
            // poll answers "how far along" and "is it healthy".
            let mut body = snap.to_json();
            body.pop(); // trailing '}'
            body.push_str(&format!(
                ",\"stall_timeout_secs\":{:.6},\"heartbeat_age_secs\":{:.6}}}",
                observer.stall_timeout_secs(),
                observer.board().last_heartbeat_age_secs(),
            ));
            ("200 OK", body)
        }
        "/workers" => ("200 OK", snap.workers_json()),
        "/incidents" => ("200 OK", snap.incidents_json()),
        _ => (
            "404 Not Found",
            format!(
                "{{\"error\":\"unknown endpoint\",\"path\":{:?}}}",
                path.replace(['"', '\\'], "_")
            ),
        ),
    }
}

/// Minimal blocking HTTP GET against a [`StatusServer`] or the campaign
/// service: returns the 2xx response body, or a typed [`HttpError`].
/// This is the client half used by the offline verify smoke and the
/// `abl13_campaign_observatory` poller.
///
/// # Errors
///
/// [`HttpError::Timeout`] when the 5-second overall deadline elapses
/// (connect included — no wedged poller threads), [`HttpError::Io`] on
/// transport failure, [`HttpError::Malformed`] on unparsable bytes, and
/// [`HttpError::Status`] for complete non-2xx answers.
pub fn http_get(addr: SocketAddr, path: &str) -> Result<String, HttpError> {
    http_exchange(addr, "GET", path, None, Duration::from_secs(5))
}

/// Blocking HTTP POST of a JSON body; same contract as [`http_get`].
///
/// # Errors
///
/// Same taxonomy as [`http_get`].
pub fn http_post(addr: SocketAddr, path: &str, body: &str) -> Result<String, HttpError> {
    http_exchange(addr, "POST", path, Some(body), Duration::from_secs(5))
}

/// [`http_get`] with bounded exponential backoff over transient faults.
///
/// Retries [`HttpError::is_retryable`] failures (transport faults and
/// `429`/`503` backpressure) up to `attempts` times total, sleeping
/// `base_backoff × 2^attempt` between tries, capped at one second.
/// Definitive answers (other statuses, malformed bytes) return
/// immediately. This is the client loop a crash-only server demands:
/// the server dying mid-request is indistinguishable from slowness, so
/// the client retries idempotent reads until the restarted process
/// answers.
///
/// # Errors
///
/// The last failure, when every attempt failed.
pub fn http_get_with_retries(
    addr: SocketAddr,
    path: &str,
    attempts: u32,
    base_backoff: Duration,
) -> Result<String, HttpError> {
    let mut last = HttpError::Timeout;
    for attempt in 0..attempts.max(1) {
        match http_get(addr, path) {
            Ok(body) => return Ok(body),
            Err(e) if e.is_retryable() && attempt + 1 < attempts.max(1) => {
                let backoff = base_backoff
                    .saturating_mul(1u32 << attempt.min(10))
                    .min(Duration::from_secs(1));
                std::thread::sleep(backoff);
                last = e;
            }
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

fn http_exchange(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    deadline: Duration,
) -> Result<String, HttpError> {
    let started = Instant::now();
    let mut stream = TcpStream::connect_timeout(&addr, deadline)?;
    stream.set_write_timeout(Some(deadline))?;
    let request = match body {
        Some(body) => format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
        None => format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    };
    stream.write_all(request.as_bytes())?;
    // Chunked reads under the *overall* deadline: a peer trickling
    // bytes cannot hold this thread past it.
    const MAX_RESPONSE: usize = 64 * 1024 * 1024;
    let mut response = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        let remaining = deadline
            .checked_sub(started.elapsed())
            .ok_or(HttpError::Timeout)?;
        stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                response.extend_from_slice(&chunk[..n]);
                if response.len() > MAX_RESPONSE {
                    return Err(HttpError::Malformed("response too large".to_string()));
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    let text = String::from_utf8(response)
        .map_err(|_| HttpError::Malformed("response is not UTF-8".to_string()))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| HttpError::Malformed("no header/body separator".to_string()))?;
    let status_line = head
        .lines()
        .next()
        .ok_or_else(|| HttpError::Malformed("empty response head".to_string()))?;
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("unparsable status line {status_line:?}")))?;
    if !(200..300).contains(&code) {
        return Err(HttpError::Status {
            code,
            body: body.to_string(),
        });
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::ObservatoryConfig;
    use pllbist_telemetry::json::{json_str_field, json_u64_field};

    #[test]
    fn serves_all_endpoints_and_404() {
        let observer = Arc::new(CampaignObserver::new(5, 2, ObservatoryConfig::default()));
        observer.on_claim(0, 0);
        observer.on_outcome(
            0,
            0,
            &crate::supervisor::PointOutcome::<u64> {
                result: Ok(1),
                incidents: vec![],
            },
            0.001,
        );
        let server = StatusServer::start(Arc::clone(&observer), "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let index = http_get(addr, "/").unwrap();
        assert!(index.contains("/progress"));

        let progress = http_get(addr, "/progress").unwrap();
        assert_eq!(json_u64_field(&progress, "total"), Some(5));
        assert_eq!(json_u64_field(&progress, "done"), Some(1));
        assert!(progress.contains("\"stall_timeout_secs\""));
        assert!(progress.contains("\"heartbeat_age_secs\""));

        let workers = http_get(addr, "/workers").unwrap();
        assert_eq!(json_str_field(&workers, "type").as_deref(), Some("workers"));
        assert_eq!(json_u64_field(&workers, "done"), Some(1));

        let incidents = http_get(addr, "/incidents").unwrap();
        assert_eq!(
            json_str_field(&incidents, "type").as_deref(),
            Some("incidents")
        );
        assert!(incidents.contains("\"lock_timeout\":0"));

        // A 404 is a complete answer → typed status error, not a body.
        match http_get(addr, "/nope") {
            Err(HttpError::Status { code: 404, body }) => {
                assert!(body.contains("unknown endpoint"));
            }
            other => panic!("expected 404 status error, got {other:?}"),
        }

        // Query strings are tolerated.
        let q = http_get(addr, "/progress?pretty=1").unwrap();
        assert_eq!(json_u64_field(&q, "total"), Some(5));

        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_under_drop() {
        let observer = Arc::new(CampaignObserver::new(1, 1, ObservatoryConfig::default()));
        let server = StatusServer::start(observer, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        drop(server);
        // The port is released: connecting either fails or yields no
        // HTTP response.
        assert!(http_get(addr, "/progress").is_err() || TcpStream::connect(addr).is_err());
    }

    #[test]
    fn non_get_requests_are_dropped() {
        let observer = Arc::new(CampaignObserver::new(1, 1, ObservatoryConfig::default()));
        let server = StatusServer::start(observer, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /progress HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(out.is_empty(), "non-GET must not be served: {out}");
        // The server stays healthy for subsequent GETs.
        assert!(http_get(server.addr(), "/progress").is_ok());
        server.shutdown();
    }

    #[test]
    fn slow_loris_requests_hit_the_overall_deadline() {
        // A client trickling bytes must be cut off by the *overall*
        // request deadline even though every individual read succeeds.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            for _ in 0..20 {
                if stream.write_all(b"G").is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let (mut conn, _) = listener.accept().unwrap();
        let started = Instant::now();
        let request = read_http_request(&mut conn, Duration::from_millis(100));
        assert!(request.is_none(), "a trickled request must not parse");
        assert!(
            started.elapsed() < Duration::from_millis(900),
            "the reader must give up at the deadline, not at EOF"
        );
        drop(conn);
        writer.join().unwrap();
    }

    #[test]
    fn post_bodies_are_read_to_content_length() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let request = read_http_request(&mut conn, Duration::from_secs(2)).unwrap();
            write_http_response(&mut conn, "200 OK", "{\"ok\":true}").unwrap();
            request
        });
        let body = http_post(addr, "/jobs", "{\"points\":3}").unwrap();
        assert_eq!(body, "{\"ok\":true}");
        let request = server.join().unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/jobs");
        assert_eq!(request.body, b"{\"points\":3}");
    }

    #[test]
    fn retry_wrapper_classifies_and_backs_off() {
        // Connection refused is retryable; all attempts burn, quickly.
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let started = Instant::now();
        let err = http_get_with_retries(dead, "/", 3, Duration::from_millis(5)).unwrap_err();
        assert!(err.is_retryable(), "transport fault: {err:?}");
        assert!(
            started.elapsed() >= Duration::from_millis(15),
            "5+10 ms backoff"
        );
        // A definitive 404 returns immediately, no retries.
        let observer = Arc::new(CampaignObserver::new(1, 1, ObservatoryConfig::default()));
        let server = StatusServer::start(observer, "127.0.0.1:0").unwrap();
        let err =
            http_get_with_retries(server.addr(), "/nope", 3, Duration::from_secs(10)).unwrap_err();
        assert!(matches!(err, HttpError::Status { code: 404, .. }));
        assert!(!err.is_retryable());
        // Backpressure statuses are retryable.
        assert!(HttpError::Status {
            code: 429,
            body: String::new()
        }
        .is_retryable());
        assert!(!HttpError::Malformed("x".into()).is_retryable());
        server.shutdown();
    }
}
