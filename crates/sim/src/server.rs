//! Zero-dependency HTTP status server over a running campaign — the
//! first brick of the ROADMAP item-2 campaign service front door.
//!
//! A [`StatusServer`] binds a `std::net::TcpListener` (typically on
//! `127.0.0.1:0` for an ephemeral port), spawns one accept-loop thread
//! and serves read-only JSON snapshots of a [`CampaignObserver`]:
//!
//! | endpoint     | body                                              |
//! |--------------|---------------------------------------------------|
//! | `/`          | endpoint index                                    |
//! | `/progress`  | [`CampaignProgress::to_json`] + stall status      |
//! | `/workers`   | [`CampaignProgress::workers_json`]                |
//! | `/incidents` | [`CampaignProgress::incidents_json`]              |
//!
//! Serving a snapshot takes relaxed atomic loads only — the campaign's
//! workers are never blocked, and the server cannot steer the run (the
//! same no-steering contract as the observer itself). Requests are
//! handled one at a time on the accept thread; responses close the
//! connection (`Connection: close`), which is all a poller or a `curl`
//! loop needs.
//!
//! [`CampaignProgress::to_json`]: pllbist_telemetry::CampaignProgress::to_json
//! [`CampaignProgress::workers_json`]: pllbist_telemetry::CampaignProgress::workers_json
//! [`CampaignProgress::incidents_json`]: pllbist_telemetry::CampaignProgress::incidents_json

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::observe::CampaignObserver;

/// A running status server; shuts down on [`Self::shutdown`] or drop.
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StatusServer {
    /// Binds `bind` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `observer` snapshots.
    pub fn start(observer: Arc<CampaignObserver>, bind: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pllbist-status".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(mut stream) = conn {
                        let _ = serve_connection(&mut stream, &observer);
                    }
                }
            })?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (use `addr().port()` after an ephemeral bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); a self-connection wakes it
        // so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_connection(stream: &mut TcpStream, observer: &CampaignObserver) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let path = match read_request_path(stream) {
        Some(path) => path,
        None => return Ok(()), // torn request or shutdown self-connect
    };
    let (status, body) = route(&path, observer);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Reads the request head (up to a small cap) and extracts the path of
/// the request line. `None` for anything that is not a parseable `GET`.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = [0u8; 2048];
    let mut filled = 0;
    loop {
        let n = stream.read(&mut buf[filled..]).ok()?;
        if n == 0 {
            break;
        }
        filled += n;
        if buf[..filled].windows(4).any(|w| w == b"\r\n\r\n") || filled == buf.len() {
            break;
        }
    }
    let head = std::str::from_utf8(&buf[..filled]).ok()?;
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let target = parts.next()?;
    // Strip any query string; endpoints take no parameters.
    Some(target.split('?').next().unwrap_or(target).to_string())
}

fn route(path: &str, observer: &CampaignObserver) -> (&'static str, String) {
    let snap = observer.snapshot();
    match path {
        "/" => (
            "200 OK",
            "{\"endpoints\":[\"/progress\",\"/workers\",\"/incidents\"]}".to_string(),
        ),
        "/progress" => {
            // Splice the stall status into the snapshot object so one
            // poll answers "how far along" and "is it healthy".
            let mut body = snap.to_json();
            body.pop(); // trailing '}'
            body.push_str(&format!(
                ",\"stall_timeout_secs\":{:.6},\"heartbeat_age_secs\":{:.6}}}",
                observer.stall_timeout_secs(),
                observer.board().last_heartbeat_age_secs(),
            ));
            ("200 OK", body)
        }
        "/workers" => ("200 OK", snap.workers_json()),
        "/incidents" => ("200 OK", snap.incidents_json()),
        _ => (
            "404 Not Found",
            format!(
                "{{\"error\":\"unknown endpoint\",\"path\":{:?}}}",
                path.replace(['"', '\\'], "_")
            ),
        ),
    }
}

/// Minimal blocking HTTP GET against a [`StatusServer`] (or anything
/// speaking `Connection: close` HTTP/1.1): returns the response body.
/// This is the client half used by the offline verify smoke and the
/// `abl13_campaign_observatory` poller.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "no header/body separator in HTTP response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::ObservatoryConfig;
    use pllbist_telemetry::json::{json_str_field, json_u64_field};

    #[test]
    fn serves_all_endpoints_and_404() {
        let observer = Arc::new(CampaignObserver::new(5, 2, ObservatoryConfig::default()));
        observer.on_claim(0, 0);
        observer.on_outcome(
            0,
            0,
            &crate::supervisor::PointOutcome::<u64> {
                result: Ok(1),
                incidents: vec![],
            },
            0.001,
        );
        let server = StatusServer::start(Arc::clone(&observer), "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let index = http_get(addr, "/").unwrap();
        assert!(index.contains("/progress"));

        let progress = http_get(addr, "/progress").unwrap();
        assert_eq!(json_u64_field(&progress, "total"), Some(5));
        assert_eq!(json_u64_field(&progress, "done"), Some(1));
        assert!(progress.contains("\"stall_timeout_secs\""));
        assert!(progress.contains("\"heartbeat_age_secs\""));

        let workers = http_get(addr, "/workers").unwrap();
        assert_eq!(json_str_field(&workers, "type").as_deref(), Some("workers"));
        assert_eq!(json_u64_field(&workers, "done"), Some(1));

        let incidents = http_get(addr, "/incidents").unwrap();
        assert_eq!(
            json_str_field(&incidents, "type").as_deref(),
            Some("incidents")
        );
        assert!(incidents.contains("\"lock_timeout\":0"));

        let missing = http_get(addr, "/nope").unwrap();
        assert!(missing.contains("unknown endpoint"));

        // Query strings are tolerated.
        let q = http_get(addr, "/progress?pretty=1").unwrap();
        assert_eq!(json_u64_field(&q, "total"), Some(5));

        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_under_drop() {
        let observer = Arc::new(CampaignObserver::new(1, 1, ObservatoryConfig::default()));
        let server = StatusServer::start(observer, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        drop(server);
        // The port is released: connecting either fails or yields no
        // HTTP response.
        assert!(http_get(addr, "/progress").is_err() || TcpStream::connect(addr).is_err());
    }

    #[test]
    fn non_get_requests_are_dropped() {
        let observer = Arc::new(CampaignObserver::new(1, 1, ObservatoryConfig::default()));
        let server = StatusServer::start(observer, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /progress HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(out.is_empty(), "non-GET must not be served: {out}");
        // The server stays healthy for subsequent GETs.
        assert!(http_get(server.addr(), "/progress").is_ok());
        server.shutdown();
    }
}
