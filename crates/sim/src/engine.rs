//! The backend-generic closed-loop engine abstraction.
//!
//! The paper's central claim (§5, Table 2) is that one digital BIST
//! sequence characterises the closed loop *regardless of how the loop is
//! realised*. [`PllEngine`] is that claim as a trait: everything the
//! Table 2 sequencer, the counters and the sweep pipeline need from a
//! loop — time, stimulus programming, the hold mechanism, edge events,
//! counter-style phase readout — with four implementations:
//!
//! * [`crate::behavioral::CpPll`] — the micro-stepped behavioural engine,
//!   the general path (ripple capacitors, VCO curvature/clamping, cold
//!   start);
//! * [`crate::event_driven::EventDrivenCpPll`] — the per-event
//!   closed-form engine: exact scalar propagation between PFD switching
//!   events, an order of magnitude faster on the first-order/linear
//!   configuration class the campaigns sweep;
//! * [`crate::cosim::MixedSignalPll`] — the gate-level co-simulation;
//! * [`ClosedFormPll`] (here) — a thin adapter over
//!   [`crate::linear::LoopAnalysis`] producing the closed-form
//!   steady-state response, the analytic reference curve the others
//!   are judged against.
//!
//! Each engine also exposes **lock-state checkpointing**
//! ([`PllEngine::checkpoint`] / [`PllEngine::restore`]): a snapshot of
//! the settled loop that sweeps clone per point instead of re-locking —
//! see [`crate::scenario`]. Restoring is bit-exact: a restored engine
//! continues precisely as the snapshotted one would have.

use crate::behavioral::LoopEvent;
use crate::config::PllConfig;
use crate::stimulus::FmStimulus;
use pllbist_numeric::tf::TransferFunction;
use std::f64::consts::TAU;

/// Backend-agnostic work counters, the engine-generic superset of
/// [`crate::behavioral::SolverStats`] and [`crate::cosim::CosimStats`].
/// Plain `u64`s, polled at stage boundaries and diffed with
/// [`WorkStats::since`] so telemetry observes without steering.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Committed integration segments (or closed-form evaluations).
    pub steps: u64,
    /// Trial segments shortened because an edge fell inside them.
    pub step_rejections: u64,
    /// Reference edges processed.
    pub ref_edges: u64,
    /// Feedback (divided-output) edges processed.
    pub fb_edges: u64,
    /// Hold-mechanism engagements (off→on transitions).
    pub hold_engagements: u64,
    /// PFD dead-zone glitches (behavioural engine only; zero elsewhere).
    pub pfd_glitches: u64,
    /// Digital-kernel events dispatched (gate-level engine only; zero
    /// elsewhere).
    pub kernel_events: u64,
}

impl WorkStats {
    /// Component-wise `self − earlier` (saturating), turning two
    /// cumulative snapshots into a per-stage delta.
    pub fn since(&self, earlier: &WorkStats) -> WorkStats {
        WorkStats {
            steps: self.steps.saturating_sub(earlier.steps),
            step_rejections: self.step_rejections.saturating_sub(earlier.step_rejections),
            ref_edges: self.ref_edges.saturating_sub(earlier.ref_edges),
            fb_edges: self.fb_edges.saturating_sub(earlier.fb_edges),
            hold_engagements: self
                .hold_engagements
                .saturating_sub(earlier.hold_engagements),
            pfd_glitches: self.pfd_glitches.saturating_sub(earlier.pfd_glitches),
            kernel_events: self.kernel_events.saturating_sub(earlier.kernel_events),
        }
    }

    /// Component-wise accumulation of another stats block.
    pub fn absorb(&mut self, other: &WorkStats) {
        self.steps += other.steps;
        self.step_rejections += other.step_rejections;
        self.ref_edges += other.ref_edges;
        self.fb_edges += other.fb_edges;
        self.hold_engagements += other.hold_engagements;
        self.pfd_glitches += other.pfd_glitches;
        self.kernel_events += other.kernel_events;
    }
}

/// A closed-loop PLL engine the BIST pipeline can drive.
///
/// The contract mirrors what the on-chip monitor of figs. 4/6 can
/// actually do to an embedded loop: program the FM stimulus (the DCO
/// mux), engage the loop-break hold, observe reference/feedback edges,
/// and read the accumulated output phase (what the gated counters
/// quantise). No method grants analogue node access beyond
/// [`control_voltage`](Self::control_voltage), which exists for
/// bench-style baselines and assertions, not for the BIST itself.
///
/// # Checkpointing
///
/// [`checkpoint`](Self::checkpoint) captures the full dynamic state;
/// [`restore`](Self::restore) overwrites an engine **built from the same
/// configuration** with it, bit for bit — the restored engine continues
/// precisely as the snapshotted one would have, work counters included
/// (so checkpointed and from-scratch sweeps report identical telemetry).
/// Event collection and engine-specific instrumentation (samplers,
/// transcripts) are *not* part of a checkpoint: a restored engine starts
/// with collection off and empty buffers. Restoring a checkpoint into an
/// engine built from a different configuration is a contract violation
/// (the result is unspecified but memory-safe).
pub trait PllEngine {
    /// A cloneable snapshot of the engine's dynamic state.
    type Checkpoint: Clone + Send + Sync;

    /// Builds the loop preset at its lock point (the paper's Table 2
    /// sequence assumes "the PLL is initially locked").
    fn new_locked(config: &PllConfig) -> Self
    where
        Self: Sized;

    /// The configuration this loop was built from.
    fn config(&self) -> &PllConfig;

    /// Current simulation time in seconds.
    fn time(&self) -> f64;

    /// Advances the simulation to absolute time `t_end`.
    ///
    /// # Panics
    ///
    /// Panics if `t_end` is in the past or not finite.
    fn advance_to(&mut self, t_end: f64);

    /// Current control (loop-filter output) voltage.
    fn control_voltage(&self) -> f64;

    /// Current instantaneous VCO frequency in Hz.
    fn vco_frequency_hz(&self) -> f64;

    /// Accumulated VCO phase in cycles — the ideal-counter readout the
    /// BIST layer quantises.
    fn vco_phase_cycles(&self) -> f64;

    /// Replaces the reference stimulus **phase-continuously**: the edge
    /// stream carries on without a phase step, exactly what reprogramming
    /// the DCO mux of fig. 4 does in hardware.
    fn set_stimulus(&mut self, stimulus: FmStimulus);

    /// Engages or releases the hold mechanism (paper §4, Table 2 stage
    /// 3): the loop stops correcting and the control state freezes.
    fn set_hold(&mut self, hold: bool);

    /// `true` while the hold mechanism is engaged.
    fn is_held(&self) -> bool;

    /// Starts or stops collecting [`LoopEvent`]s (reference/feedback
    /// edges — the peak detector's diet).
    fn collect_events(&mut self, on: bool);

    /// Drains collected events (time-ordered).
    fn take_events(&mut self) -> Vec<LoopEvent>;

    /// Snapshots the engine's dynamic state.
    fn checkpoint(&self) -> Self::Checkpoint;

    /// Overwrites this engine's dynamic state with a snapshot taken from
    /// an engine of the same configuration (see the trait docs for the
    /// exactness contract).
    fn restore(&mut self, snapshot: &Self::Checkpoint);

    /// Rescales the engine's internal work granularity to `scale ×` its
    /// configuration default, so the supervisor's retry ladder always
    /// tightens *something real*:
    ///
    /// * micro-stepped engines shrink their free-running integration
    ///   step;
    /// * event-exact engines shrink their **event-subdivision guard**
    ///   (the longest segment they will commit between events) —
    ///   physics is unchanged, but re-attempts commit more, shorter
    ///   segments;
    /// * the closed-form adapter has no work granularity at all and
    ///   ignores it (the default).
    ///
    /// A `scale` of exactly `1.0` must be a no-op bit for bit.
    fn set_step_scale(&mut self, _scale: f64) {}

    /// Stable, human-readable backend tag (`"cp_pll"`,
    /// `"event_driven"`, …). Campaign digests fold it in so a resumable
    /// results file produced by one backend is never silently resumed by
    /// another (backends agree physically but not bit for bit).
    fn backend_name() -> &'static str
    where
        Self: Sized;

    /// Serialises a checkpoint as a compact single-line token (floats
    /// as bit hex; no quotes, braces or backslashes) for the on-disk
    /// lock-state sidecar, or `None` when this backend's state cannot
    /// be persisted bit-exactly (the default — sweeps then re-settle as
    /// before). [`decode_checkpoint`](Self::decode_checkpoint) must be
    /// the exact inverse of every `Some` this returns.
    fn encode_checkpoint(_snapshot: &Self::Checkpoint) -> Option<String>
    where
        Self: Sized,
    {
        None
    }

    /// Rebuilds a checkpoint from
    /// [`encode_checkpoint`](Self::encode_checkpoint) output.
    /// `None` on malformed/torn input
    /// *or* when the backend does not support persistence — callers
    /// fall back to re-settling, never error.
    fn decode_checkpoint(_token: &str) -> Option<Self::Checkpoint>
    where
        Self: Sized,
    {
        None
    }

    /// Cumulative work counters since construction.
    ///
    /// `steps` counts the engine's own unit of committed work — ODE
    /// micro-steps on [`crate::behavioral::CpPll`], closed-form segments
    /// (effectively *events*) on
    /// [`crate::event_driven::EventDrivenCpPll`] — so a supervisor step
    /// budget is an engine-appropriate work budget on every backend.
    fn work_stats(&self) -> WorkStats;
}

/// Analogue-node access beyond what [`PllEngine`] grants: the sampled
/// control-voltage/VCO trace the fig. 3 *bench-style* baseline fits its
/// sine to. Only engines with a real analogue state implement it (the
/// behavioural [`crate::behavioral::CpPll`] does; supervision wrappers
/// forward it), which is what lets [`crate::bench_measure`] run under
/// the supervisor without widening the BIST-visible surface.
pub trait AnalogAccess: PllEngine {
    /// Starts sampling the analogue state every `interval` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive and finite.
    fn enable_sampling(&mut self, interval: f64);

    /// Drains collected samples.
    fn take_samples(&mut self) -> Vec<crate::behavioral::Sample>;
}

/// First-harmonic steady-state response of one transfer function to the
/// current stimulus: `dev(t) = dc + amp·sin(ω·t + phase)`, output-referred
/// Hz.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct HarmonicResponse {
    omega: f64,
    amp_hz: f64,
    phase: f64,
    dc_hz: f64,
}

impl HarmonicResponse {
    /// Output-referred frequency deviation at time `t`, in Hz.
    fn deviation_at(&self, t: f64) -> f64 {
        if self.omega == 0.0 || self.amp_hz == 0.0 {
            self.dc_hz
        } else {
            self.dc_hz + self.amp_hz * (self.omega * t + self.phase).sin()
        }
    }

    /// Exact integral of [`deviation_at`](Self::deviation_at) over
    /// `[t, t + dt]`, in cycles.
    fn phase_cycles_over(&self, t: f64, dt: f64) -> f64 {
        if self.omega == 0.0 || self.amp_hz == 0.0 {
            return self.dc_hz * dt;
        }
        let w = self.omega;
        self.dc_hz * dt
            - self.amp_hz / w * ((w * (t + dt) + self.phase).cos() - (w * t + self.phase).cos())
    }
}

/// Quadrature points used to project a stimulus onto its fundamental.
/// Fixed (never adaptive) so the projection is a pure deterministic
/// function of the stimulus alone.
const PROJECTION_POINTS: usize = 512;

/// Projects `stimulus.deviation_at` onto `dc + a1·sin(ωt) + b1·cos(ωt)`
/// over one modulation period (midpoint quadrature — exact to rounding
/// for [`FmStimulus::pure_sine`], a well-converged Fourier projection
/// for the staircase and multi-tone kinds).
fn fundamental_of(stimulus: &FmStimulus) -> (f64, f64, f64) {
    let f_mod = stimulus.f_mod_hz();
    let omega = TAU * f_mod;
    let n = PROJECTION_POINTS;
    let (mut dc, mut a1, mut b1) = (0.0f64, 0.0f64, 0.0f64);
    for j in 0..n {
        let t = (j as f64 + 0.5) / (n as f64 * f_mod);
        let d = stimulus.deviation_at(t);
        dc += d;
        a1 += d * (omega * t).sin();
        b1 += d * (omega * t).cos();
    }
    let scale = 1.0 / n as f64;
    (dc * scale, 2.0 * a1 * scale, 2.0 * b1 * scale)
}

/// The closed-form reference engine: a [`PllEngine`] whose output is the
/// *analytic steady-state* response of the linearised loop
/// ([`crate::linear::LoopAnalysis`]), with reference and feedback edges
/// synthesised from the closed-form phases.
///
/// Two transfer functions drive it:
///
/// * the **full** feedback-referred response `H(jω)/N` shapes the live
///   output frequency (and therefore the feedback edges and the MFREQ
///   peak timing);
/// * the **hold-referred** response (no feed-through zero) supplies the
///   frozen value when [`set_hold`](PllEngine::set_hold) engages —
///   mirroring the physics of the hold capacitor, which never carried
///   the resistive feed-through path.
///
/// Transients are *not* modelled: a stimulus change switches the output
/// to the new steady state instantly (settle waits are physically free),
/// which is exactly what makes this the accuracy reference — whatever
/// the BIST measures on it should match the model curves to counter
/// resolution.
#[derive(Clone)]
pub struct ClosedFormPll {
    config: PllConfig,
    /// Full feedback-referred closed-loop response `H(jω)/N`.
    h_full: TransferFunction,
    /// Hold-referred response (what the hold capacitor state follows).
    h_hold: TransferFunction,
    f_center_hz: f64,
    divider_n: f64,
    stimulus: FmStimulus,
    stim_phase_base: f64,
    /// Steady-state output deviation under the current stimulus.
    resp_full: HarmonicResponse,
    resp_hold: HarmonicResponse,
    t: f64,
    out_phase_cycles: f64,
    hold: bool,
    /// Output frequency frozen at hold engagement, in Hz.
    held_freq_hz: f64,
    collect: bool,
    events: Vec<LoopEvent>,
    /// Next reference-phase integer target (cycles, incl. base); valid
    /// while collecting.
    next_ref_target: f64,
    /// Next feedback-edge output-phase target (multiples of N); valid
    /// while collecting.
    next_fb_target: f64,
    stats: WorkStats,
}

impl ClosedFormPll {
    /// Builds the reference engine for `config`, already at its lock
    /// point (steady state is instantaneous here).
    pub fn new(config: &PllConfig) -> Self {
        let analysis = config.analysis();
        let stimulus = FmStimulus::constant(config.f_ref_hz, 0.0);
        let mut engine = Self {
            config: config.clone(),
            h_full: analysis.feedback_transfer(),
            h_hold: analysis.hold_referred_transfer(),
            f_center_hz: config.f_vco_hz(),
            divider_n: config.divider_n as f64,
            stimulus,
            stim_phase_base: 0.0,
            resp_full: HarmonicResponse::default(),
            resp_hold: HarmonicResponse::default(),
            t: 0.0,
            out_phase_cycles: 0.0,
            hold: false,
            held_freq_hz: config.f_vco_hz(),
            collect: false,
            events: Vec::new(),
            next_ref_target: 1.0,
            next_fb_target: config.divider_n as f64,
            stats: WorkStats::default(),
        };
        engine.project_responses();
        engine
    }

    /// Recomputes both steady-state responses for the current stimulus.
    fn project_responses(&mut self) {
        let (dc_in, a1, b1) = fundamental_of(&self.stimulus);
        let omega = TAU * self.stimulus.f_mod_hz();
        let amp_in = (a1 * a1 + b1 * b1).sqrt();
        let phi_in = b1.atan2(a1);
        let n = self.divider_n;
        let project = |h: &TransferFunction| {
            let h0 = h.eval_jw(0.0);
            let hw = h.eval_jw(omega);
            HarmonicResponse {
                omega,
                amp_hz: n * amp_in * hw.abs(),
                phase: phi_in + hw.arg(),
                dc_hz: n * dc_in * h0.re,
            }
        };
        self.resp_full = project(&self.h_full);
        self.resp_hold = project(&self.h_hold);
    }

    /// Continuous reference phase in cycles (base + stimulus phase).
    fn reference_phase_cycles_at(&self, t: f64) -> f64 {
        self.stim_phase_base + self.stimulus.phase_cycles(t)
    }

    /// Output frequency at time `t` in the current regime, in Hz.
    fn output_frequency_at(&self, t: f64) -> f64 {
        if self.hold {
            self.held_freq_hz
        } else {
            self.f_center_hz + self.resp_full.deviation_at(t)
        }
    }

    /// Output-phase advance over `[self.t, self.t + dt]`, in cycles
    /// (closed form; valid while the regime does not change).
    fn out_phase_advance(&self, dt: f64) -> f64 {
        if self.hold {
            self.held_freq_hz * dt
        } else {
            self.f_center_hz * dt + self.resp_full.phase_cycles_over(self.t, dt)
        }
    }

    /// Earliest `dt ∈ (0, dt_max]` at which the output phase has advanced
    /// by `target` cycles (bisection on the monotone closed form), or
    /// `None` if it does not get there within `dt_max`.
    fn dt_at_out_phase(&self, target: f64, dt_max: f64) -> Option<f64> {
        if self.out_phase_advance(dt_max) < target {
            return None;
        }
        let mut lo = 0.0f64;
        let mut hi = dt_max;
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if mid <= lo || mid >= hi {
                break;
            }
            if self.out_phase_advance(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(hi)
    }

    /// Re-aims the edge targets at the first edges strictly after the
    /// current time (with a small guard so an edge exactly "now" is not
    /// re-emitted).
    fn rearm_edge_targets(&mut self) {
        let ref_phase = self.reference_phase_cycles_at(self.t);
        self.next_ref_target = ref_phase.floor() + 1.0;
        if self.next_ref_target - ref_phase < 1e-9 {
            self.next_ref_target += 1.0;
        }
        let fb_index = (self.out_phase_cycles / self.divider_n).floor() + 1.0;
        self.next_fb_target = fb_index * self.divider_n;
        if self.next_fb_target - self.out_phase_cycles < 1e-9 * self.divider_n {
            self.next_fb_target += self.divider_n;
        }
    }

    /// Advances to `t_end` emitting [`LoopEvent`]s in time order.
    fn advance_collecting(&mut self, t_end: f64) {
        while self.t < t_end {
            let t_ref = self
                .stimulus
                .time_at_phase(self.next_ref_target - self.stim_phase_base, self.t);
            let next_ref = (t_ref <= t_end).then_some(t_ref);
            let next_fb = self
                .dt_at_out_phase(self.next_fb_target - self.out_phase_cycles, t_end - self.t)
                .map(|dt| self.t + dt);
            match (next_ref, next_fb) {
                (Some(tr), Some(tf)) if tr <= tf => self.step_to_ref_edge(tr),
                (_, Some(tf)) => self.step_to_fb_edge(tf),
                (Some(tr), None) => self.step_to_ref_edge(tr),
                (None, None) => {
                    self.commit_to(t_end);
                    break;
                }
            }
        }
    }

    /// Commits the closed-form phase advance up to `t_new`.
    fn commit_to(&mut self, t_new: f64) {
        let dt = t_new - self.t;
        if dt > 0.0 {
            self.out_phase_cycles += self.out_phase_advance(dt);
            self.t = t_new;
            self.stats.steps += 1;
        }
    }

    fn step_to_ref_edge(&mut self, t_edge: f64) {
        self.commit_to(t_edge.max(self.t));
        self.events.push(LoopEvent::RefEdge { t: t_edge });
        self.stats.ref_edges += 1;
        self.next_ref_target += 1.0;
    }

    fn step_to_fb_edge(&mut self, t_edge: f64) {
        self.commit_to(t_edge.max(self.t));
        // Land exactly on the divider target (the bisection is within one
        // ulp of it) so successive targets never smear.
        self.out_phase_cycles = self.next_fb_target;
        self.events.push(LoopEvent::FbEdge { t: t_edge });
        self.stats.fb_edges += 1;
        self.next_fb_target += self.divider_n;
    }
}

impl PllEngine for ClosedFormPll {
    /// The engine is plain data, so the checkpoint is the engine itself
    /// (with the event buffer cleared and collection off).
    type Checkpoint = ClosedFormPll;

    fn new_locked(config: &PllConfig) -> Self {
        Self::new(config)
    }

    fn config(&self) -> &PllConfig {
        &self.config
    }

    fn time(&self) -> f64 {
        self.t
    }

    fn advance_to(&mut self, t_end: f64) {
        assert!(
            t_end.is_finite() && t_end >= self.t,
            "t_end must be ahead of the current time"
        );
        if self.collect {
            self.advance_collecting(t_end);
        } else {
            // Closed form: account edge counts by phase bookkeeping only.
            let ref0 = self.reference_phase_cycles_at(self.t).floor();
            let fb0 = (self.out_phase_cycles / self.divider_n).floor();
            self.commit_to(t_end);
            let ref1 = self.reference_phase_cycles_at(self.t).floor();
            let fb1 = (self.out_phase_cycles / self.divider_n).floor();
            self.stats.ref_edges += (ref1 - ref0).max(0.0) as u64;
            self.stats.fb_edges += (fb1 - fb0).max(0.0) as u64;
        }
    }

    fn control_voltage(&self) -> f64 {
        self.config
            .build_vco()
            .control_for_frequency(self.vco_frequency_hz())
    }

    fn vco_frequency_hz(&self) -> f64 {
        self.output_frequency_at(self.t)
    }

    fn vco_phase_cycles(&self) -> f64 {
        self.out_phase_cycles
    }

    fn set_stimulus(&mut self, stimulus: FmStimulus) {
        let current = self.reference_phase_cycles_at(self.t);
        self.stimulus = stimulus;
        self.stim_phase_base = current - self.stimulus.phase_cycles(self.t);
        self.project_responses();
        if self.collect {
            self.rearm_edge_targets();
        }
    }

    fn set_hold(&mut self, hold: bool) {
        if hold && !self.hold {
            // Freeze at the *hold-referred* response value: the hold
            // capacitor never carried the feed-through zero.
            self.held_freq_hz = self.f_center_hz + self.resp_hold.deviation_at(self.t);
            self.stats.hold_engagements += 1;
        }
        self.hold = hold;
    }

    fn is_held(&self) -> bool {
        self.hold
    }

    fn collect_events(&mut self, on: bool) {
        if on && !self.collect {
            self.rearm_edge_targets();
        }
        self.collect = on;
    }

    fn take_events(&mut self) -> Vec<LoopEvent> {
        std::mem::take(&mut self.events)
    }

    fn checkpoint(&self) -> ClosedFormPll {
        let mut snap = self.clone();
        snap.events = Vec::new();
        snap.collect = false;
        snap
    }

    fn restore(&mut self, snapshot: &ClosedFormPll) {
        *self = snapshot.clone();
    }

    fn backend_name() -> &'static str {
        "closed_form"
    }

    fn work_stats(&self) -> WorkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_tracks_in_band_modulation() {
        let cfg = PllConfig::paper_table3();
        let mut pll = ClosedFormPll::new_locked(&cfg);
        pll.set_stimulus(FmStimulus::pure_sine(1_000.0, 10.0, 1.0));
        // Steady state immediately: the output swings ±N·|H(jω)|·10 Hz.
        let h = cfg.analysis().feedback_transfer().magnitude(TAU * 1.0);
        let mut max = f64::MIN;
        for k in 0..200 {
            pll.advance_to(k as f64 * 0.005);
            max = max.max(pll.vco_frequency_hz());
        }
        let want = 5_000.0 + 5.0 * 10.0 * h;
        assert!((max - want).abs() < 1.0, "max {max} want {want}");
    }

    #[test]
    fn phase_is_integral_of_frequency() {
        let cfg = PllConfig::paper_table3();
        let mut pll = ClosedFormPll::new_locked(&cfg);
        pll.set_stimulus(FmStimulus::pure_sine(1_000.0, 10.0, 4.0));
        let mut numeric = 0.0;
        let dt = 1e-4;
        for k in 0..5_000 {
            numeric += pll.output_frequency_at(k as f64 * dt + 0.5 * dt) * dt;
        }
        pll.advance_to(0.5);
        assert!(
            (pll.vco_phase_cycles() - numeric).abs() < 1e-3,
            "{} vs {numeric}",
            pll.vco_phase_cycles()
        );
    }

    #[test]
    fn events_interleave_in_time_order() {
        let cfg = PllConfig::paper_table3();
        let mut pll = ClosedFormPll::new_locked(&cfg);
        pll.set_stimulus(FmStimulus::pure_sine(1_000.0, 10.0, 8.0));
        pll.advance_to(0.2);
        pll.collect_events(true);
        pll.advance_to(0.3);
        let events = pll.take_events();
        // 0.1 s at ~1 kHz on each stream → ~200 events total.
        assert!(events.len() > 150, "{} events", events.len());
        for w in events.windows(2) {
            assert!(w[0].time() <= w[1].time());
        }
        let refs = events
            .iter()
            .filter(|e| matches!(e, LoopEvent::RefEdge { .. }))
            .count();
        let fbs = events.len() - refs;
        assert!(
            (refs as i64 - fbs as i64).abs() <= 3,
            "refs {refs} fbs {fbs}"
        );
    }

    #[test]
    fn hold_freezes_at_hold_referred_value() {
        let cfg = PllConfig::paper_table3();
        let mut pll = ClosedFormPll::new_locked(&cfg);
        let f_mod = 8.0;
        pll.set_stimulus(FmStimulus::pure_sine(1_000.0, 10.0, f_mod));
        // Advance to the hold-referred response's own peak and engage.
        let t_peak = (0.25 * TAU - pll.resp_hold.phase).rem_euclid(TAU) / (TAU * f_mod);
        pll.advance_to(1.0 + t_peak);
        pll.set_hold(true);
        let frozen = pll.vco_frequency_hz();
        let want = 5_000.0 + pll.resp_hold.amp_hz;
        assert!((frozen - want).abs() < 1e-6, "{frozen} vs {want}");
        pll.advance_to(2.0);
        assert_eq!(pll.vco_frequency_hz(), frozen, "held value drifted");
        assert_eq!(pll.work_stats().hold_engagements, 1);
        pll.set_hold(false);
        assert!(!pll.is_held());
    }

    #[test]
    fn checkpoint_restore_is_bit_exact() {
        let cfg = PllConfig::paper_table3();
        let mut a = ClosedFormPll::new_locked(&cfg);
        a.set_stimulus(FmStimulus::pure_sine(1_000.0, 10.0, 8.0));
        a.advance_to(0.35);
        let snap = a.checkpoint();
        let mut b = ClosedFormPll::new_locked(&cfg);
        b.restore(&snap);
        a.advance_to(0.9);
        b.advance_to(0.9);
        assert_eq!(
            a.vco_phase_cycles().to_bits(),
            b.vco_phase_cycles().to_bits()
        );
        assert_eq!(
            a.vco_frequency_hz().to_bits(),
            b.vco_frequency_hz().to_bits()
        );
        assert_eq!(a.work_stats(), b.work_stats());
    }

    #[test]
    fn work_stats_diff_cleanly() {
        let mut a = WorkStats {
            steps: 10,
            ref_edges: 4,
            ..WorkStats::default()
        };
        let b = WorkStats {
            steps: 25,
            ref_edges: 9,
            fb_edges: 3,
            ..WorkStats::default()
        };
        let d = b.since(&a);
        assert_eq!(d.steps, 15);
        assert_eq!(d.ref_edges, 5);
        a.absorb(&d);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.fb_edges, b.fb_edges);
    }
}
