//! Time-domain characterisation: step and ramp responses.
//!
//! The paper's premise (§1/§2) is that the transfer-function parameters
//! "relate directly to the time domain response of the PLL" — these
//! utilities make that relation checkable: a reference frequency **step**
//! yields overshoot/settling metrics predicted by ζ and ωn, and a
//! frequency **ramp** exercises the tracking limit (the ramp-based test of
//! the authors' earlier work — reference 12 of the paper — probes the
//! same corner). Both run on the behavioural engine with counter-style boxcar
//! readouts.

use crate::behavioral::CpPll;
use crate::config::PllConfig;
use crate::stimulus::FmStimulus;

/// Step-response metrics at the (VCO) output.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepMetrics {
    /// Commanded output frequency step in Hz (`N · Δf_ref`).
    pub step_hz: f64,
    /// Peak overshoot as a fraction of the step (0.0 = none).
    pub overshoot: f64,
    /// Time of the overshoot peak after the step, seconds.
    pub peak_time: f64,
    /// First time the response stays within `tolerance` of the final
    /// value, seconds after the step.
    pub settling_time: f64,
}

/// Applies a reference frequency step of `delta_f_hz` to a locked loop
/// and extracts the output-frequency step metrics.
///
/// `tolerance` is the settling band as a fraction of the step (e.g. 0.05
/// for 5 %).
///
/// # Panics
///
/// Panics if `delta_f_hz` is zero/non-finite or `tolerance` is not in
/// `(0, 1)`.
pub fn step_response(config: &PllConfig, delta_f_hz: f64, tolerance: f64) -> StepMetrics {
    assert!(
        delta_f_hz != 0.0 && delta_f_hz.is_finite(),
        "step must be nonzero"
    );
    assert!(
        tolerance > 0.0 && tolerance < 1.0,
        "tolerance must be a fraction in (0,1)"
    );
    let mut pll = CpPll::new_locked(config);
    // Confirm lock first.
    pll.advance_to(0.3);
    let n = config.divider_n as f64;
    let step_hz = n * delta_f_hz;
    let f_final = config.f_vco_hz() + step_hz;

    // 2.5× the workspace settle heuristic (e⁻⁸ residual) so even the
    // slow tolerance bands have closed well before the horizon.
    let horizon = 2.5 * crate::scenario::settle_time(config);
    let sample_dt = 1.0 / config.f_ref_hz; // whole-period boxcar
    let t0 = pll.time();
    pll.enable_sampling(sample_dt);
    pll.set_stimulus(FmStimulus::constant(config.f_ref_hz, delta_f_hz));
    pll.advance_to(t0 + horizon);
    let samples = pll.take_samples();

    // The smooth (held/capacitor) output-frequency trajectory — free of
    // the correction-pulse feed-through that the boxcar would pick up
    // during the transient on voltage-driven loops.
    let vco = config.build_vco();
    let traj: Vec<(f64, f64)> = samples
        .iter()
        .map(|s| (s.t - t0, vco.frequency_hz(s.v_held)))
        .collect();

    let sign = step_hz.signum();
    let (mut peak_time, mut peak_val) = (0.0, f64::MIN);
    for &(t, f) in &traj {
        let excess = sign * (f - f_final);
        if excess > peak_val {
            peak_val = excess;
            peak_time = t;
        }
    }
    let overshoot = (peak_val / step_hz.abs()).max(0.0);

    let band = tolerance * step_hz.abs();
    let mut settling_time = horizon;
    for (i, &(t, _)) in traj.iter().enumerate() {
        if traj[i..].iter().all(|&(_, f)| (f - f_final).abs() <= band) {
            settling_time = t;
            break;
        }
    }
    StepMetrics {
        step_hz,
        overshoot,
        peak_time,
        settling_time,
    }
}

/// Result of a frequency-ramp tracking run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RampMetrics {
    /// Applied reference ramp rate in Hz/s.
    pub ramp_rate_hz_per_s: f64,
    /// Peak phase error observed during the ramp, in cycles.
    pub peak_phase_error_cycles: f64,
    /// `true` if the loop slipped at least one cycle.
    pub slipped: bool,
}

/// Ramps the reference frequency by `total_dev_hz` over `ramp_secs`
/// (approximated as a fine staircase — exactly how a DCO would apply it)
/// and reports the tracking stress.
///
/// The classic result: a type-2-like loop tracks a ramp with a steady
/// phase error `Δφ ≈ ramp_rate/(ωn²·f_scale)`; ramps past the pull-out
/// limit slip cycles.
///
/// # Panics
///
/// Panics if the durations or deviations are not positive and finite.
pub fn ramp_response(config: &PllConfig, total_dev_hz: f64, ramp_secs: f64) -> RampMetrics {
    assert!(
        total_dev_hz > 0.0 && total_dev_hz.is_finite(),
        "deviation must be positive"
    );
    assert!(
        ramp_secs > 0.0 && ramp_secs.is_finite(),
        "ramp time must be positive"
    );
    let mut pll = CpPll::new_locked(config);
    pll.advance_to(0.3);
    let t0 = pll.time();
    let steps = 64usize;
    let n = config.divider_n as f64;

    let mut peak_err: f64 = 0.0;
    for k in 1..=steps {
        let dev = total_dev_hz * k as f64 / steps as f64;
        pll.set_stimulus(FmStimulus::constant(config.f_ref_hz, dev));
        pll.advance_to(t0 + ramp_secs * k as f64 / steps as f64);
        let err = pll.reference_phase_cycles() - pll.vco_phase_cycles() / n;
        peak_err = peak_err.max(err.abs());
    }
    // Settle out and measure the residual: a slipped loop relocks offset
    // by whole cycles.
    pll.advance_to(t0 + ramp_secs + 1.0);
    let residual = pll.reference_phase_cycles() - pll.vco_phase_cycles() / n;
    RampMetrics {
        ramp_rate_hz_per_s: total_dev_hz / ramp_secs,
        peak_phase_error_cycles: peak_err,
        slipped: residual.abs() > 0.6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_metrics_match_second_order_theory() {
        let cfg = PllConfig::paper_table3();
        let m = step_response(&cfg, 8.0, 0.05);
        assert!((m.step_hz - 40.0).abs() < 1e-9);
        // ζ = 0.43 with the zero: overshoot ~25–55 %.
        assert!(
            m.overshoot > 0.15 && m.overshoot < 0.7,
            "overshoot {}",
            m.overshoot
        );
        // Peak time scales as ~π/(ωn√(1−ζ²)) = 69 ms.
        assert!(
            m.peak_time > 0.02 && m.peak_time < 0.2,
            "tp {}",
            m.peak_time
        );
        // 5 % settling within a few 1/(ζωn) = 46 ms units.
        assert!(
            m.settling_time > m.peak_time && m.settling_time < 0.6,
            "ts {}",
            m.settling_time
        );
    }

    #[test]
    fn step_direction_symmetry() {
        let cfg = PllConfig::paper_table3();
        let up = step_response(&cfg, 6.0, 0.05);
        let down = step_response(&cfg, -6.0, 0.05);
        assert!((up.overshoot - down.overshoot).abs() < 0.15);
        assert!(down.step_hz < 0.0);
    }

    #[test]
    fn gentle_ramp_tracks_without_slip() {
        let cfg = PllConfig::paper_table3();
        let m = ramp_response(&cfg, 8.0, 2.0); // 4 Hz/s at the reference
        assert!(!m.slipped, "peak err {}", m.peak_phase_error_cycles);
        assert!(m.peak_phase_error_cycles < 0.3);
    }

    #[test]
    fn violent_ramp_stresses_the_loop() {
        let cfg = PllConfig::paper_table3();
        let gentle = ramp_response(&cfg, 8.0, 2.0);
        let violent = ramp_response(&cfg, 60.0, 0.15); // 400 Hz/s
        assert!(
            violent.peak_phase_error_cycles > 3.0 * gentle.peak_phase_error_cycles,
            "gentle {} vs violent {}",
            gentle.peak_phase_error_cycles,
            violent.peak_phase_error_cycles
        );
    }

    #[test]
    #[should_panic(expected = "step must be nonzero")]
    fn zero_step_rejected() {
        let _ = step_response(&PllConfig::paper_table3(), 0.0, 0.05);
    }
}
