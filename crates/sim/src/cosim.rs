//! Gate-level mixed-signal co-simulation.
//!
//! The digital half of the testbench — reference source (clock or DCO),
//! dividers, the loop PFD, and whatever BIST circuitry the caller wires in
//! — runs in the `pllbist-digital` event kernel with real propagation
//! delays. The analogue half (drive stage, loop filter, VCO) integrates
//! exactly between the kernel's event times. The two meet at:
//!
//! * the **VCO output net**, poked by the analogue side each half period
//!   (edge times located by root finding on the phase accumulator), and
//! * the **PFD UP/DN nets**, sampled by the analogue side at every
//!   boundary to set the pump drive for the next segment.
//!
//! Because gate delays are honoured, the PFD reset glitches, the fig. 7
//! dead-zone-clocked sampling flip-flop and the mux-based hold circuit all
//! behave as they would in silicon.

use crate::config::{DriveConfig, PllConfig};
use pllbist_analog::filter::LoopFilter;
use pllbist_analog::pump::{ChargePump, PumpOutput, VoltageDriver};
use pllbist_analog::vco::Vco;
use pllbist_digital::kernel::{Circuit, NetId};
use pllbist_digital::logic::Logic;
use pllbist_digital::time::SimTime;

/// Cumulative co-simulation work counters (same philosophy as
/// [`crate::behavioral::SolverStats`]: plain `u64`s, polled by telemetry
/// at stage boundaries, never synchronised in the hot loop).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CosimStats {
    /// Committed analogue integration segments.
    pub steps: u64,
    /// Trial segments shortened by a VCO output toggle inside them.
    pub step_rejections: u64,
    /// VCO output-net toggles poked into the digital kernel.
    pub vco_toggles: u64,
    /// Gate-level events dispatched by the digital kernel (see
    /// [`Circuit::events_dispatched`]).
    pub kernel_events: u64,
}

/// The nets through which the analogue loop meets the digital circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopNets {
    /// Input net the analogue VCO drives with its square output.
    pub vco_out: NetId,
    /// The loop PFD's UP output.
    pub pfd_up: NetId,
    /// The loop PFD's DN output.
    pub pfd_dn: NetId,
}

/// Builds the classic gate-level tri-state PFD (two D flip-flops with D
/// tied high and an AND reset path) on `circuit`; returns `(up, dn)`.
///
/// `delay` is the per-gate propagation delay — the reset path makes the
/// dead-zone glitches of the paper's fig. 5 roughly `2·delay` wide.
pub fn build_gate_pfd(
    circuit: &mut Circuit,
    reference: NetId,
    feedback: NetId,
    delay: SimTime,
) -> (NetId, NetId) {
    let vdd = circuit.constant("pfd_vdd", Logic::High);
    let up = circuit.dff("pfd_up", vdd, reference, None, delay);
    let dn = circuit.dff("pfd_dn", vdd, feedback, None, delay);
    let rst = circuit.and("pfd_rst", &[up, dn], delay);
    circuit.rewire_dff_reset(up, rst);
    circuit.rewire_dff_reset(dn, rst);
    (up, dn)
}

enum DriveStage {
    Voltage(VoltageDriver),
    Charge(ChargePump),
}

impl DriveStage {
    fn drive(&self, up: Logic, dn: Logic) -> PumpOutput {
        match self {
            DriveStage::Voltage(d) => match (up.is_high(), dn.is_high()) {
                (true, false) => PumpOutput::Voltage(d.v_high()),
                (false, true) => PumpOutput::Voltage(d.v_low()),
                // Both active only inside the reset glitch: contention is
                // modelled as no net drive. Both idle: tri-state.
                _ => PumpOutput::HighZ,
            },
            DriveStage::Charge(p) => {
                let mut i = 0.0;
                if up.is_high() {
                    i += p.i_up();
                }
                if dn.is_high() {
                    i -= p.i_down();
                }
                PumpOutput::Current(i)
            }
        }
    }
}

/// A gate-level PLL co-simulation.
///
/// # Example
///
/// A complete gate-level loop locking onto a digital clock reference:
///
/// ```
/// use pllbist_sim::config::PllConfig;
/// use pllbist_sim::cosim::MixedSignalPll;
///
/// let cfg = PllConfig::paper_table3();
/// let mut pll = MixedSignalPll::with_clock_reference(&cfg);
/// pll.advance_to(0.2);
/// assert!((pll.vco_frequency_hz() - 5_000.0).abs() < 10.0);
/// ```
pub struct MixedSignalPll {
    config: PllConfig,
    circuit: Circuit,
    nets: LoopNets,
    filter: Box<dyn LoopFilter>,
    filter_state: Vec<f64>,
    vco: Vco,
    drive_stage: DriveStage,
    t: f64,
    vco_phase_cycles: f64,
    /// Next half-cycle boundary (in units of half cycles) at which the VCO
    /// output net toggles.
    next_half: f64,
    vco_level: bool,
    micro_dt: f64,
    steps: u64,
    step_rejections: u64,
    vco_toggles: u64,
}

impl MixedSignalPll {
    /// Assembles a co-simulation around a caller-built circuit. The caller
    /// provides the reference/stimulus source, feedback divider and PFD
    /// inside `circuit` and points `nets` at the seam.
    ///
    /// The analogue side starts at the lock preset (filter output at the
    /// `N·f_ref` control voltage).
    pub fn new(config: &PllConfig, circuit: Circuit, nets: LoopNets) -> Self {
        let filter = config.build_filter();
        let mut filter_state = filter.initial_state();
        let vco = config.build_vco();
        filter.preset_output(
            &mut filter_state,
            vco.control_for_frequency(config.f_vco_hz()),
        );
        let micro_dt = 0.125 / config.f_vco_hz();
        Self {
            config: config.clone(),
            circuit,
            nets,
            filter,
            filter_state,
            vco,
            drive_stage: match config.drive {
                DriveConfig::Voltage { vdd } => DriveStage::Voltage(VoltageDriver::new(vdd)),
                DriveConfig::Charge { i_pump, mismatch } => {
                    DriveStage::Charge(ChargePump::with_mismatch(i_pump, mismatch))
                }
            },
            t: 0.0,
            vco_phase_cycles: 0.0,
            next_half: 1.0,
            vco_level: false,
            micro_dt,
            steps: 0,
            step_rejections: 0,
            vco_toggles: 0,
        }
    }

    /// Builds the standard loop with a plain digital clock as reference:
    /// clock → PFD ← ÷N ← VCO. Gate delays default to 2 ns.
    pub fn with_clock_reference(config: &PllConfig) -> Self {
        let mut circuit = Circuit::new();
        let half = SimTime::from_secs_f64(0.5 / config.f_ref_hz);
        let reference = circuit.clock("refclk", half);
        let vco_out = circuit.input("vco_out", Logic::Low);
        let fb = circuit.pulse_divider("fbdiv", vco_out, config.divider_n as u64);
        let (pfd_up, pfd_dn) = build_gate_pfd(&mut circuit, reference, fb, SimTime::from_nanos(2));
        Self::new(
            config,
            circuit,
            LoopNets {
                vco_out,
                pfd_up,
                pfd_dn,
            },
        )
    }

    /// The configuration in use.
    pub fn config(&self) -> &PllConfig {
        &self.config
    }

    /// Mutable access to the digital circuit (for attaching probes or BIST
    /// structures between runs).
    pub fn circuit_mut(&mut self) -> &mut Circuit {
        &mut self.circuit
    }

    /// Read-only access to the digital circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The seam nets.
    pub fn nets(&self) -> LoopNets {
        self.nets
    }

    /// Cumulative co-simulation work counters since construction.
    pub fn stats(&self) -> CosimStats {
        CosimStats {
            steps: self.steps,
            step_rejections: self.step_rejections,
            vco_toggles: self.vco_toggles,
            kernel_events: self.circuit.events_dispatched(),
        }
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Current control voltage.
    pub fn control_voltage(&self) -> f64 {
        self.filter.output(&self.filter_state, self.current_drive())
    }

    /// Current instantaneous VCO frequency in Hz.
    pub fn vco_frequency_hz(&self) -> f64 {
        self.vco.frequency_hz(self.control_voltage())
    }

    /// Accumulated VCO phase in cycles.
    pub fn vco_phase_cycles(&self) -> f64 {
        self.vco_phase_cycles
    }

    fn current_drive(&self) -> PumpOutput {
        self.drive_stage.drive(
            self.circuit.value(self.nets.pfd_up),
            self.circuit.value(self.nets.pfd_dn),
        )
    }

    fn trial(&mut self, u: PumpOutput, dt: f64) -> (f64, Vec<f64>) {
        let v0 = self.filter.output(&self.filter_state, u);
        let mut state = self.filter_state.clone();
        self.filter.step(&mut state, u, dt);
        let v1 = self.filter.output(&state, u);
        let f0 = self.vco.frequency_hz(v0);
        let f1 = self.vco.frequency_hz(v1);
        (0.5 * (f0 + f1) * dt, state)
    }

    fn commit(&mut self, u: PumpOutput, dt: f64) {
        let (dphase, state) = self.trial(u, dt);
        self.filter_state = state;
        self.vco_phase_cycles += dphase;
        self.t += dt;
        self.steps += 1;
    }

    /// Advances both domains to absolute time `t_end` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `t_end` is behind the current time or not finite.
    pub fn advance_to(&mut self, t_end: f64) {
        assert!(
            t_end.is_finite() && t_end >= self.t,
            "t_end must be ahead of the current time"
        );
        while self.t < t_end {
            let mut tb = (self.t + self.micro_dt).min(t_end);
            if let Some(te) = self.circuit.next_event_time() {
                let te = te.as_secs_f64();
                if te > self.t && te < tb {
                    tb = te;
                }
            }
            let dt_seg = tb - self.t;
            let u = self.current_drive();
            let (dphase, _) = self.trial(u, dt_seg);
            let target = self.next_half * 0.5; // in cycles
            if self.vco_phase_cycles + dphase >= target {
                // VCO output toggles inside the segment: reject the trial
                // and re-take it shortened to the toggle instant.
                self.step_rejections += 1;
                let need = target - self.vco_phase_cycles;
                let dt_edge = self.solve_phase_crossing(u, need, dt_seg);
                self.commit(u, dt_edge);
                self.toggle_vco_output();
                continue;
            }
            self.commit(u, dt_seg);
            // Let the digital side catch up to the boundary.
            let tb_ps = SimTime::from_secs_f64(self.t);
            if tb_ps > self.circuit.now() {
                self.circuit.run_until(tb_ps);
            }
        }
    }

    fn toggle_vco_output(&mut self) {
        self.vco_level = !self.vco_level;
        self.next_half += 1.0;
        self.vco_toggles += 1;
        let at = SimTime::from_secs_f64(self.t).max(self.circuit.now());
        self.circuit
            .poke(self.nets.vco_out, Logic::from(self.vco_level), at);
        self.circuit.run_until(at);
    }

    fn solve_phase_crossing(&mut self, u: PumpOutput, target_cycles: f64, dt_max: f64) -> f64 {
        let mut lo = 0.0f64;
        let mut hi = dt_max;
        for _ in 0..50 {
            let mid = 0.5 * (lo + hi);
            if mid == lo || mid == hi {
                break;
            }
            let (dphase, _) = self.trial(u, mid);
            if dphase < target_cycles {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_level_loop_holds_lock() {
        let cfg = PllConfig::paper_table3();
        let mut pll = MixedSignalPll::with_clock_reference(&cfg);
        pll.advance_to(0.3);
        assert!(
            (pll.vco_frequency_hz() - 5_000.0).abs() < 10.0,
            "f = {}",
            pll.vco_frequency_hz()
        );
    }

    #[test]
    fn feedback_divider_runs_at_reference_rate() {
        let cfg = PllConfig::paper_table3();
        let mut pll = MixedSignalPll::with_clock_reference(&cfg);
        pll.advance_to(0.5);
        let nets = pll.nets();
        // The divided VCO net toggles near 1 kHz after lock.
        let fb_edges = pll.circuit().rising_edge_count(
            // feedback net is the divider output; recover it via the PFD dn
            // clock — we kept no handle, so count VCO edges instead.
            nets.vco_out,
        );
        let expected = 0.5 * 5_000.0;
        assert!(
            (fb_edges as f64 - expected).abs() < 0.02 * expected,
            "vco edges {fb_edges} vs {expected}"
        );
    }

    #[test]
    fn pfd_activity_shrinks_at_lock() {
        let cfg = PllConfig::paper_table3();
        let mut pll = MixedSignalPll::with_clock_reference(&cfg);
        let up = pll.nets().pfd_up;
        let dn = pll.nets().pfd_dn;
        pll.circuit_mut().trace_net(up);
        pll.circuit_mut().trace_net(dn);
        pll.advance_to(1.0);
        // In the locked steady state both outputs show only glitches; total
        // high time is a tiny fraction of the run.
        let up_high = pll.circuit().trace().total_high_time(up).as_secs_f64();
        let dn_high = pll.circuit().trace().total_high_time(dn).as_secs_f64();
        // Allow for the acquisition transient at the start.
        assert!(up_high + dn_high < 0.2, "up {up_high} dn {dn_high}");
    }

    #[test]
    fn cosim_stats_count_both_domains() {
        let cfg = PllConfig::paper_table3();
        let mut pll = MixedSignalPll::with_clock_reference(&cfg);
        assert_eq!(pll.stats(), CosimStats::default());
        pll.advance_to(0.05);
        let s = pll.stats();
        // 0.05 s at 5 kHz VCO: 500 half-period toggles, each a rejected
        // (shortened) trial; the kernel sees at least those pokes plus
        // reference clock and divider activity.
        assert!((495..=505).contains(&s.vco_toggles), "{s:?}");
        assert!(s.step_rejections >= s.vco_toggles, "{s:?}");
        assert!(s.steps > s.vco_toggles, "{s:?}");
        assert!(s.kernel_events > 500, "{s:?}");
    }

    #[test]
    fn gate_level_agrees_with_behavioral_engine() {
        use crate::behavioral::CpPll;
        let cfg = PllConfig::paper_table3();
        let mut gate = MixedSignalPll::with_clock_reference(&cfg);
        let mut beh = CpPll::new_locked(&cfg);
        gate.advance_to(0.4);
        beh.advance_to(0.4);
        let fg = gate.vco_frequency_hz();
        let fb = beh.vco_frequency_hz();
        assert!((fg - fb).abs() < 10.0, "gate {fg} vs behavioral {fb}");
        // Accumulated phase agrees within a cycle or two over 2000 cycles.
        let pg = gate.vco_phase_cycles();
        let pb = beh.vco_phase_cycles();
        assert!((pg - pb).abs() < 5.0, "phase {pg} vs {pb}");
    }
}
