//! Gate-level mixed-signal co-simulation.
//!
//! The digital half of the testbench — reference source (clock or DCO),
//! dividers, the loop PFD, and whatever BIST circuitry the caller wires in
//! — runs in the `pllbist-digital` event kernel with real propagation
//! delays. The analogue half (drive stage, loop filter, VCO) integrates
//! exactly between the kernel's event times. The two meet at:
//!
//! * the **VCO output net**, poked by the analogue side each half period
//!   (edge times located by root finding on the phase accumulator), and
//! * the **PFD UP/DN nets**, sampled by the analogue side at every
//!   boundary to set the pump drive for the next segment.
//!
//! Because gate delays are honoured, the PFD reset glitches, the fig. 7
//! dead-zone-clocked sampling flip-flop and the mux-based hold circuit all
//! behave as they would in silicon.

use crate::behavioral::LoopEvent;
use crate::config::{DriveConfig, PllConfig};
use crate::engine::{PllEngine, WorkStats};
use crate::stimulus::FmStimulus;
use pllbist_analog::filter::LoopFilter;
use pllbist_analog::pump::{ChargePump, PumpOutput, VoltageDriver};
use pllbist_analog::vco::Vco;
use pllbist_digital::kernel::{Circuit, NetId};
use pllbist_digital::logic::Logic;
use pllbist_digital::time::SimTime;

/// Cumulative co-simulation work counters (same philosophy as
/// [`crate::behavioral::SolverStats`]: plain `u64`s, polled by telemetry
/// at stage boundaries, never synchronised in the hot loop).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CosimStats {
    /// Committed analogue integration segments.
    pub steps: u64,
    /// Trial segments shortened by a VCO output toggle inside them.
    pub step_rejections: u64,
    /// VCO output-net toggles poked into the digital kernel.
    pub vco_toggles: u64,
    /// Gate-level events dispatched by the digital kernel (see
    /// [`Circuit::events_dispatched`]).
    pub kernel_events: u64,
}

/// The nets through which the analogue loop meets the digital circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopNets {
    /// Input net the analogue VCO drives with its square output.
    pub vco_out: NetId,
    /// The loop PFD's UP output.
    pub pfd_up: NetId,
    /// The loop PFD's DN output.
    pub pfd_dn: NetId,
    /// The (modulated) reference the loop PFD compares against.
    pub reference: NetId,
    /// The divided-VCO feedback net at the loop PFD.
    pub fb: NetId,
}

/// How the reference net is driven.
///
/// A caller-built circuit (clock, DCO, fig. 8 testbench) drives its own
/// reference — `External`. The engine-driven variant synthesises the
/// reference square wave from an [`FmStimulus`]'s closed-form phase, the
/// same edge law the behavioural engine uses, which is what lets
/// [`PllEngine::set_stimulus`] reprogram the gate-level loop
/// phase-continuously.
#[derive(Clone, Debug)]
enum ReferenceSource {
    /// The reference net is driven by circuitry the caller built; the
    /// stimulus mux is absent.
    External,
    /// The engine pokes the reference net from the stimulus phase:
    /// rising edges at integer phase, falling at half-integer.
    Stimulated {
        stimulus: FmStimulus,
        /// Offset making the reference phase continuous across stimulus
        /// switches.
        stim_phase_base: f64,
        /// Next toggle target in cycles (multiples of 0.5; integer =
        /// rising).
        next_toggle_phase: f64,
        level: bool,
    },
}

/// Builds the classic gate-level tri-state PFD (two D flip-flops with D
/// tied high and an AND reset path) on `circuit`; returns `(up, dn)`.
///
/// `delay` is the per-gate propagation delay — the reset path makes the
/// dead-zone glitches of the paper's fig. 5 roughly `2·delay` wide.
pub fn build_gate_pfd(
    circuit: &mut Circuit,
    reference: NetId,
    feedback: NetId,
    delay: SimTime,
) -> (NetId, NetId) {
    let vdd = circuit.constant("pfd_vdd", Logic::High);
    let up = circuit.dff("pfd_up", vdd, reference, None, delay);
    let dn = circuit.dff("pfd_dn", vdd, feedback, None, delay);
    let rst = circuit.and("pfd_rst", &[up, dn], delay);
    circuit.rewire_dff_reset(up, rst);
    circuit.rewire_dff_reset(dn, rst);
    (up, dn)
}

enum DriveStage {
    Voltage(VoltageDriver),
    Charge(ChargePump),
}

impl DriveStage {
    fn drive(&self, up: Logic, dn: Logic) -> PumpOutput {
        match self {
            DriveStage::Voltage(d) => match (up.is_high(), dn.is_high()) {
                (true, false) => PumpOutput::Voltage(d.v_high()),
                (false, true) => PumpOutput::Voltage(d.v_low()),
                // Both active only inside the reset glitch: contention is
                // modelled as no net drive. Both idle: tri-state.
                _ => PumpOutput::HighZ,
            },
            DriveStage::Charge(p) => {
                let mut i = 0.0;
                if up.is_high() {
                    i += p.i_up();
                }
                if dn.is_high() {
                    i -= p.i_down();
                }
                PumpOutput::Current(i)
            }
        }
    }
}

/// A gate-level PLL co-simulation.
///
/// # Example
///
/// A complete gate-level loop locking onto a digital clock reference:
///
/// ```
/// use pllbist_sim::config::PllConfig;
/// use pllbist_sim::cosim::MixedSignalPll;
///
/// let cfg = PllConfig::paper_table3();
/// let mut pll = MixedSignalPll::with_clock_reference(&cfg);
/// pll.advance_to(0.2);
/// assert!((pll.vco_frequency_hz() - 5_000.0).abs() < 10.0);
/// ```
pub struct MixedSignalPll {
    config: PllConfig,
    circuit: Circuit,
    nets: LoopNets,
    filter: Box<dyn LoopFilter>,
    filter_state: Vec<f64>,
    vco: Vco,
    drive_stage: DriveStage,
    source: ReferenceSource,
    t: f64,
    vco_phase_cycles: f64,
    /// Next half-cycle boundary (in units of half cycles) at which the VCO
    /// output net toggles.
    next_half: f64,
    vco_level: bool,
    micro_dt: f64,
    hold: bool,
    collect: bool,
    events: Vec<LoopEvent>,
    /// Rising-edge counts already harvested into `events`.
    seen_ref_edges: u64,
    seen_fb_edges: u64,
    steps: u64,
    step_rejections: u64,
    vco_toggles: u64,
    hold_engagements: u64,
}

impl MixedSignalPll {
    /// Assembles a co-simulation around a caller-built circuit. The caller
    /// provides the reference/stimulus source, feedback divider and PFD
    /// inside `circuit` and points `nets` at the seam.
    ///
    /// The analogue side starts at the lock preset (filter output at the
    /// `N·f_ref` control voltage).
    pub fn new(config: &PllConfig, circuit: Circuit, nets: LoopNets) -> Self {
        let filter = config.build_filter();
        let mut filter_state = filter.initial_state();
        let vco = config.build_vco();
        filter.preset_output(
            &mut filter_state,
            vco.control_for_frequency(config.f_vco_hz()),
        );
        let micro_dt = 0.125 / config.f_vco_hz();
        Self {
            config: config.clone(),
            circuit,
            nets,
            filter,
            filter_state,
            vco,
            drive_stage: match config.drive {
                DriveConfig::Voltage { vdd } => DriveStage::Voltage(VoltageDriver::new(vdd)),
                DriveConfig::Charge { i_pump, mismatch } => {
                    DriveStage::Charge(ChargePump::with_mismatch(i_pump, mismatch))
                }
            },
            source: ReferenceSource::External,
            t: 0.0,
            vco_phase_cycles: 0.0,
            next_half: 1.0,
            vco_level: false,
            micro_dt,
            hold: false,
            collect: false,
            events: Vec::new(),
            seen_ref_edges: 0,
            seen_fb_edges: 0,
            steps: 0,
            step_rejections: 0,
            vco_toggles: 0,
            hold_engagements: 0,
        }
    }

    /// Builds the standard loop with a plain digital clock as reference:
    /// clock → PFD ← ÷N ← VCO. Gate delays default to 2 ns.
    ///
    /// The clock is circuit-driven (an external reference), so
    /// [`PllEngine::set_stimulus`] is unavailable on this build; use
    /// [`with_stimulated_reference`](Self::with_stimulated_reference)
    /// (what [`PllEngine::new_locked`] builds) when the BIST needs to
    /// modulate the reference.
    pub fn with_clock_reference(config: &PllConfig) -> Self {
        let mut circuit = Circuit::new();
        let half = SimTime::from_secs_f64(0.5 / config.f_ref_hz);
        let reference = circuit.clock("refclk", half);
        let vco_out = circuit.input("vco_out", Logic::Low);
        let fb = circuit.pulse_divider("fbdiv", vco_out, config.divider_n as u64);
        let (pfd_up, pfd_dn) = build_gate_pfd(&mut circuit, reference, fb, SimTime::from_nanos(2));
        Self::new(
            config,
            circuit,
            LoopNets {
                vco_out,
                pfd_up,
                pfd_dn,
                reference,
                fb,
            },
        )
    }

    /// Builds the standard loop with an **engine-driven** reference: the
    /// reference net is an input poked from an [`FmStimulus`]'s
    /// closed-form phase (initially the unmodulated `f_ref` carrier), so
    /// the full Table 2 BIST sequence — stimulus mux included — can
    /// drive the gate-level loop. This is what
    /// [`PllEngine::new_locked`] returns for this engine.
    pub fn with_stimulated_reference(config: &PllConfig) -> Self {
        let mut circuit = Circuit::new();
        let reference = circuit.input("refin", Logic::Low);
        let vco_out = circuit.input("vco_out", Logic::Low);
        let fb = circuit.pulse_divider("fbdiv", vco_out, config.divider_n as u64);
        let (pfd_up, pfd_dn) = build_gate_pfd(&mut circuit, reference, fb, SimTime::from_nanos(2));
        let mut pll = Self::new(
            config,
            circuit,
            LoopNets {
                vco_out,
                pfd_up,
                pfd_dn,
                reference,
                fb,
            },
        );
        pll.source = ReferenceSource::Stimulated {
            stimulus: FmStimulus::constant(config.f_ref_hz, 0.0),
            stim_phase_base: 0.0,
            next_toggle_phase: 1.0,
            level: false,
        };
        pll
    }

    /// The configuration in use.
    pub fn config(&self) -> &PllConfig {
        &self.config
    }

    /// Mutable access to the digital circuit (for attaching probes or BIST
    /// structures between runs).
    pub fn circuit_mut(&mut self) -> &mut Circuit {
        &mut self.circuit
    }

    /// Read-only access to the digital circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The seam nets.
    pub fn nets(&self) -> LoopNets {
        self.nets
    }

    /// Cumulative co-simulation work counters since construction.
    pub fn stats(&self) -> CosimStats {
        CosimStats {
            steps: self.steps,
            step_rejections: self.step_rejections,
            vco_toggles: self.vco_toggles,
            kernel_events: self.circuit.events_dispatched(),
        }
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Current control voltage.
    pub fn control_voltage(&self) -> f64 {
        self.filter.output(&self.filter_state, self.current_drive())
    }

    /// Current instantaneous VCO frequency in Hz.
    pub fn vco_frequency_hz(&self) -> f64 {
        self.vco.frequency_hz(self.control_voltage())
    }

    /// Accumulated VCO phase in cycles.
    pub fn vco_phase_cycles(&self) -> f64 {
        self.vco_phase_cycles
    }

    fn current_drive(&self) -> PumpOutput {
        if self.hold {
            // The hold mux starves the drive stage: tri-state (voltage
            // drive) / zero current (charge pump), so the filter coasts on
            // its capacitor state.
            return self.drive_stage.drive(Logic::Low, Logic::Low);
        }
        self.drive_stage.drive(
            self.circuit.value(self.nets.pfd_up),
            self.circuit.value(self.nets.pfd_dn),
        )
    }

    fn trial(&mut self, u: PumpOutput, dt: f64) -> (f64, Vec<f64>) {
        let v0 = self.filter.output(&self.filter_state, u);
        let mut state = self.filter_state.clone();
        self.filter.step(&mut state, u, dt);
        let v1 = self.filter.output(&state, u);
        let f0 = self.vco.frequency_hz(v0);
        let f1 = self.vco.frequency_hz(v1);
        (0.5 * (f0 + f1) * dt, state)
    }

    fn commit(&mut self, u: PumpOutput, dt: f64) {
        let (dphase, state) = self.trial(u, dt);
        self.filter_state = state;
        self.vco_phase_cycles += dphase;
        self.t += dt;
        self.steps += 1;
    }

    /// Advances both domains to absolute time `t_end` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `t_end` is behind the current time or not finite.
    pub fn advance_to(&mut self, t_end: f64) {
        assert!(
            t_end.is_finite() && t_end >= self.t,
            "t_end must be ahead of the current time"
        );
        while self.t < t_end {
            let mut tb = (self.t + self.micro_dt).min(t_end);
            let mut is_ref_toggle = false;
            if let Some(tr) = self.next_ref_toggle_time() {
                if tr <= tb {
                    tb = tr;
                    is_ref_toggle = true;
                }
            }
            if let Some(te) = self.circuit.next_event_time() {
                let te = te.as_secs_f64();
                if te > self.t && te < tb {
                    tb = te;
                    is_ref_toggle = false;
                }
            }
            let dt_seg = tb - self.t;
            if dt_seg <= 0.0 {
                // A reference toggle lands exactly on the current time
                // (e.g. right at the horizon): process it without
                // advancing the analogue state.
                if is_ref_toggle {
                    self.toggle_reference();
                    self.harvest_edges();
                }
                continue;
            }
            let u = self.current_drive();
            let (dphase, _) = self.trial(u, dt_seg);
            let target = self.next_half * 0.5; // in cycles
            if self.vco_phase_cycles + dphase >= target {
                // VCO output toggles inside the segment: reject the trial
                // and re-take it shortened to the toggle instant.
                self.step_rejections += 1;
                let need = target - self.vco_phase_cycles;
                let dt_edge = self.solve_phase_crossing(u, need, dt_seg);
                self.commit(u, dt_edge);
                self.toggle_vco_output();
                self.harvest_edges();
                continue;
            }
            self.commit(u, dt_seg);
            if is_ref_toggle {
                self.toggle_reference();
            }
            // Let the digital side catch up to the boundary.
            let tb_ps = SimTime::from_secs_f64(self.t);
            if tb_ps > self.circuit.now() {
                self.circuit.run_until(tb_ps);
            }
            self.harvest_edges();
        }
    }

    /// The time of the next stimulated-reference toggle, if the engine
    /// drives the reference itself (a pure function of the stimulus — the
    /// analogue state plays no part).
    fn next_ref_toggle_time(&self) -> Option<f64> {
        match &self.source {
            ReferenceSource::External => None,
            ReferenceSource::Stimulated {
                stimulus,
                stim_phase_base,
                next_toggle_phase,
                ..
            } => Some(stimulus.time_at_phase(next_toggle_phase - stim_phase_base, self.t)),
        }
    }

    /// Pokes the next reference level into the kernel and advances the
    /// toggle target by half a cycle.
    fn toggle_reference(&mut self) {
        let lv = {
            let ReferenceSource::Stimulated {
                next_toggle_phase,
                level,
                ..
            } = &mut self.source
            else {
                return;
            };
            *level = !*level;
            *next_toggle_phase += 0.5;
            Logic::from(*level)
        };
        let at = SimTime::from_secs_f64(self.t).max(self.circuit.now());
        self.circuit.poke(self.nets.reference, lv, at);
        self.circuit.run_until(at);
    }

    /// Turns newly-dispatched kernel rising edges on the reference and
    /// feedback nets into [`LoopEvent`]s. Segments are ≤ 1/8 of a VCO
    /// period, so each harvest sees at most one new edge per stream;
    /// kernel dispatch order makes the combined stream time-ordered.
    fn harvest_edges(&mut self) {
        if !self.collect {
            return;
        }
        let rc = self.circuit.rising_edge_count(self.nets.reference);
        let fc = self.circuit.rising_edge_count(self.nets.fb);
        if rc == self.seen_ref_edges && fc == self.seen_fb_edges {
            return;
        }
        let t_ref = self
            .circuit
            .last_rising_edge(self.nets.reference)
            .map_or(self.t, |t| t.as_secs_f64());
        let t_fb = self
            .circuit
            .last_rising_edge(self.nets.fb)
            .map_or(self.t, |t| t.as_secs_f64());
        let mut pending: Vec<LoopEvent> = Vec::new();
        for _ in self.seen_ref_edges..rc {
            pending.push(LoopEvent::RefEdge { t: t_ref });
        }
        for _ in self.seen_fb_edges..fc {
            pending.push(LoopEvent::FbEdge { t: t_fb });
        }
        pending.sort_by(|a, b| a.time().total_cmp(&b.time()));
        self.events.extend(pending);
        self.seen_ref_edges = rc;
        self.seen_fb_edges = fc;
    }

    fn toggle_vco_output(&mut self) {
        self.vco_level = !self.vco_level;
        self.next_half += 1.0;
        self.vco_toggles += 1;
        let at = SimTime::from_secs_f64(self.t).max(self.circuit.now());
        self.circuit
            .poke(self.nets.vco_out, Logic::from(self.vco_level), at);
        self.circuit.run_until(at);
    }

    fn solve_phase_crossing(&mut self, u: PumpOutput, target_cycles: f64, dt_max: f64) -> f64 {
        let mut lo = 0.0f64;
        let mut hi = dt_max;
        for _ in 0..50 {
            let mid = 0.5 * (lo + hi);
            if mid == lo || mid == hi {
                break;
            }
            let (dphase, _) = self.trial(u, mid);
            if dphase < target_cycles {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    /// Snapshots both domains (see [`CosimCheckpoint`]).
    pub fn checkpoint(&self) -> CosimCheckpoint {
        CosimCheckpoint {
            circuit: self.circuit.clone(),
            filter_state: self.filter_state.clone(),
            source: self.source.clone(),
            t: self.t,
            vco_phase_cycles: self.vco_phase_cycles,
            next_half: self.next_half,
            vco_level: self.vco_level,
            hold: self.hold,
            steps: self.steps,
            step_rejections: self.step_rejections,
            vco_toggles: self.vco_toggles,
            hold_engagements: self.hold_engagements,
        }
    }

    /// Overwrites the dynamic state of both domains with a snapshot taken
    /// from an engine built from the **same configuration** — bit-exact,
    /// including the whole digital circuit (event queue and all).
    /// Instrumentation (event collection) is reset to off/empty.
    pub fn restore(&mut self, snapshot: &CosimCheckpoint) {
        self.circuit = snapshot.circuit.clone();
        self.filter_state.clone_from(&snapshot.filter_state);
        self.source = snapshot.source.clone();
        self.t = snapshot.t;
        self.vco_phase_cycles = snapshot.vco_phase_cycles;
        self.next_half = snapshot.next_half;
        self.vco_level = snapshot.vco_level;
        self.hold = snapshot.hold;
        self.steps = snapshot.steps;
        self.step_rejections = snapshot.step_rejections;
        self.vco_toggles = snapshot.vco_toggles;
        self.hold_engagements = snapshot.hold_engagements;
        self.collect = false;
        self.events = Vec::new();
        self.seen_ref_edges = self.circuit.rising_edge_count(self.nets.reference);
        self.seen_fb_edges = self.circuit.rising_edge_count(self.nets.fb);
    }
}

/// A bit-exact snapshot of a [`MixedSignalPll`]'s dynamic state.
///
/// The digital domain is captured by cloning the whole [`Circuit`] —
/// every net value, flip-flop, counter and pending event — which is what
/// makes replay from a restore event-for-event identical. Static pieces
/// (the filter object, VCO, drive stage, net ids, micro-step) derive
/// from the [`PllConfig`]/build and are not stored; restoring into an
/// engine built from a different configuration or circuit topology is a
/// contract violation.
#[derive(Clone)]
pub struct CosimCheckpoint {
    circuit: Circuit,
    filter_state: Vec<f64>,
    source: ReferenceSource,
    t: f64,
    vco_phase_cycles: f64,
    next_half: f64,
    vco_level: bool,
    hold: bool,
    steps: u64,
    step_rejections: u64,
    vco_toggles: u64,
    hold_engagements: u64,
}

impl PllEngine for MixedSignalPll {
    type Checkpoint = CosimCheckpoint;

    /// Builds [`with_stimulated_reference`](MixedSignalPll::with_stimulated_reference)
    /// — the full-BIST-capable gate-level loop.
    fn new_locked(config: &PllConfig) -> Self {
        MixedSignalPll::with_stimulated_reference(config)
    }

    fn config(&self) -> &PllConfig {
        self.config()
    }

    fn time(&self) -> f64 {
        self.time()
    }

    fn advance_to(&mut self, t_end: f64) {
        MixedSignalPll::advance_to(self, t_end);
    }

    fn control_voltage(&self) -> f64 {
        MixedSignalPll::control_voltage(self)
    }

    fn vco_frequency_hz(&self) -> f64 {
        MixedSignalPll::vco_frequency_hz(self)
    }

    fn vco_phase_cycles(&self) -> f64 {
        MixedSignalPll::vco_phase_cycles(self)
    }

    /// # Panics
    ///
    /// Panics if this engine was built around a caller-driven reference
    /// ([`MixedSignalPll::with_clock_reference`] or a custom circuit):
    /// the stimulus mux only exists on the
    /// [`with_stimulated_reference`](MixedSignalPll::with_stimulated_reference)
    /// build.
    fn set_stimulus(&mut self, stimulus: FmStimulus) {
        match &mut self.source {
            ReferenceSource::External => panic!(
                "this gate-level loop has a circuit-driven reference; build it with \
                 MixedSignalPll::with_stimulated_reference (PllEngine::new_locked) to \
                 program stimuli"
            ),
            ReferenceSource::Stimulated {
                stimulus: current,
                stim_phase_base,
                ..
            } => {
                // Phase continuity: the new law takes over at the current
                // reference phase, so the toggle targets stay valid.
                let phase_now = *stim_phase_base + current.phase_cycles(self.t);
                *stim_phase_base = phase_now - stimulus.phase_cycles(self.t);
                *current = stimulus;
            }
        }
    }

    fn set_hold(&mut self, hold: bool) {
        if hold && !self.hold {
            self.hold_engagements += 1;
        }
        self.hold = hold;
    }

    fn is_held(&self) -> bool {
        self.hold
    }

    fn collect_events(&mut self, on: bool) {
        if on && !self.collect {
            // Only edges from now on are reported.
            self.seen_ref_edges = self.circuit.rising_edge_count(self.nets.reference);
            self.seen_fb_edges = self.circuit.rising_edge_count(self.nets.fb);
        }
        self.collect = on;
    }

    fn take_events(&mut self) -> Vec<LoopEvent> {
        std::mem::take(&mut self.events)
    }

    fn checkpoint(&self) -> CosimCheckpoint {
        MixedSignalPll::checkpoint(self)
    }

    fn restore(&mut self, snapshot: &CosimCheckpoint) {
        MixedSignalPll::restore(self, snapshot);
    }

    fn backend_name() -> &'static str {
        "mixed_signal"
    }

    fn work_stats(&self) -> WorkStats {
        WorkStats {
            steps: self.steps,
            step_rejections: self.step_rejections,
            ref_edges: self.circuit.rising_edge_count(self.nets.reference),
            fb_edges: self.circuit.rising_edge_count(self.nets.fb),
            hold_engagements: self.hold_engagements,
            pfd_glitches: 0,
            kernel_events: self.circuit.events_dispatched(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_level_loop_holds_lock() {
        let cfg = PllConfig::paper_table3();
        let mut pll = MixedSignalPll::with_clock_reference(&cfg);
        pll.advance_to(0.3);
        assert!(
            (pll.vco_frequency_hz() - 5_000.0).abs() < 10.0,
            "f = {}",
            pll.vco_frequency_hz()
        );
    }

    #[test]
    fn feedback_divider_runs_at_reference_rate() {
        let cfg = PllConfig::paper_table3();
        let mut pll = MixedSignalPll::with_clock_reference(&cfg);
        pll.advance_to(0.5);
        let nets = pll.nets();
        // The divided VCO net toggles near 1 kHz after lock.
        let fb_edges = pll.circuit().rising_edge_count(
            // feedback net is the divider output; recover it via the PFD dn
            // clock — we kept no handle, so count VCO edges instead.
            nets.vco_out,
        );
        let expected = 0.5 * 5_000.0;
        assert!(
            (fb_edges as f64 - expected).abs() < 0.02 * expected,
            "vco edges {fb_edges} vs {expected}"
        );
    }

    #[test]
    fn pfd_activity_shrinks_at_lock() {
        let cfg = PllConfig::paper_table3();
        let mut pll = MixedSignalPll::with_clock_reference(&cfg);
        let up = pll.nets().pfd_up;
        let dn = pll.nets().pfd_dn;
        pll.circuit_mut().trace_net(up);
        pll.circuit_mut().trace_net(dn);
        pll.advance_to(1.0);
        // In the locked steady state both outputs show only glitches; total
        // high time is a tiny fraction of the run.
        let up_high = pll.circuit().trace().total_high_time(up).as_secs_f64();
        let dn_high = pll.circuit().trace().total_high_time(dn).as_secs_f64();
        // Allow for the acquisition transient at the start.
        assert!(up_high + dn_high < 0.2, "up {up_high} dn {dn_high}");
    }

    #[test]
    fn cosim_stats_count_both_domains() {
        let cfg = PllConfig::paper_table3();
        let mut pll = MixedSignalPll::with_clock_reference(&cfg);
        assert_eq!(pll.stats(), CosimStats::default());
        pll.advance_to(0.05);
        let s = pll.stats();
        // 0.05 s at 5 kHz VCO: 500 half-period toggles, each a rejected
        // (shortened) trial; the kernel sees at least those pokes plus
        // reference clock and divider activity.
        assert!((495..=505).contains(&s.vco_toggles), "{s:?}");
        assert!(s.step_rejections >= s.vco_toggles, "{s:?}");
        assert!(s.steps > s.vco_toggles, "{s:?}");
        assert!(s.kernel_events > 500, "{s:?}");
    }

    #[test]
    fn stimulated_reference_locks_too() {
        let cfg = PllConfig::paper_table3();
        let mut pll = MixedSignalPll::with_stimulated_reference(&cfg);
        pll.advance_to(0.3);
        assert!(
            (pll.vco_frequency_hz() - 5_000.0).abs() < 10.0,
            "f = {}",
            pll.vco_frequency_hz()
        );
        // Both PFD inputs run at the reference rate once locked.
        let s = pll.work_stats();
        assert!((s.ref_edges as i64 - 300).abs() < 10, "{s:?}");
        assert!((s.fb_edges as i64 - 300).abs() < 15, "{s:?}");
        assert!(s.kernel_events > 500, "{s:?}");
    }

    #[test]
    fn stimulated_reference_tracks_in_band_fm() {
        let cfg = PllConfig::paper_table3();
        let mut pll = MixedSignalPll::with_stimulated_reference(&cfg);
        pll.advance_to(0.5);
        pll.set_stimulus(FmStimulus::pure_sine(1_000.0, 10.0, 2.0));
        pll.advance_to(1.5); // modulation steady state
        let mut prev_phase = pll.vco_phase_cycles();
        let mut prev_t = pll.time();
        let (mut max, mut min) = (f64::MIN, f64::MAX);
        for k in 1..=100 {
            pll.advance_to(1.5 + k as f64 * 0.01);
            let f = (pll.vco_phase_cycles() - prev_phase) / (pll.time() - prev_t);
            max = max.max(f);
            min = min.min(f);
            prev_phase = pll.vco_phase_cycles();
            prev_t = pll.time();
        }
        // 2 Hz is well inside the 8 Hz loop: the output swings close to
        // ±N·10 Hz (boxcar sampling shaves a little off the peaks).
        assert!(max - min > 85.0 && max - min < 125.0, "swing {}", max - min);
        assert!((0.5 * (max + min) - 5_000.0).abs() < 5.0, "centre drifted");
    }

    #[test]
    fn hold_freezes_gate_level_loop() {
        let cfg = PllConfig::paper_table3();
        let mut pll = MixedSignalPll::with_stimulated_reference(&cfg);
        pll.advance_to(0.4);
        pll.set_hold(true);
        let frozen = pll.vco_frequency_hz();
        pll.advance_to(0.7);
        assert!(
            (pll.vco_frequency_hz() - frozen).abs() < 1e-6,
            "held {frozen} → {}",
            pll.vco_frequency_hz()
        );
        assert_eq!(pll.work_stats().hold_engagements, 1);
        pll.set_hold(false);
        pll.advance_to(1.0);
        assert!((pll.vco_frequency_hz() - 5_000.0).abs() < 10.0, "re-locks");
    }

    #[test]
    fn events_match_kernel_edge_streams() {
        let cfg = PllConfig::paper_table3();
        let mut pll = MixedSignalPll::with_stimulated_reference(&cfg);
        pll.advance_to(0.3);
        pll.collect_events(true);
        pll.advance_to(0.4);
        let events = pll.take_events();
        for w in events.windows(2) {
            assert!(w[0].time() <= w[1].time());
        }
        let refs = events
            .iter()
            .filter(|e| matches!(e, LoopEvent::RefEdge { .. }))
            .count();
        let fbs = events.len() - refs;
        // 0.1 s at 1 kHz on each stream.
        assert!((95..=105).contains(&refs), "refs {refs}");
        assert!((95..=105).contains(&fbs), "fbs {fbs}");
    }

    #[test]
    fn checkpoint_restore_replays_bit_exactly() {
        let cfg = PllConfig::paper_table3();
        let mut a = MixedSignalPll::with_stimulated_reference(&cfg);
        a.advance_to(0.3);
        a.set_stimulus(FmStimulus::pure_sine(1_000.0, 10.0, 8.0));
        a.advance_to(0.35);
        let snap = a.checkpoint();
        let mut b = MixedSignalPll::with_stimulated_reference(&cfg);
        b.restore(&snap);
        a.advance_to(0.6);
        b.advance_to(0.6);
        assert_eq!(
            a.vco_phase_cycles().to_bits(),
            b.vco_phase_cycles().to_bits()
        );
        assert_eq!(a.control_voltage().to_bits(), b.control_voltage().to_bits());
        assert_eq!(a.work_stats(), b.work_stats());
    }

    #[test]
    #[should_panic(expected = "circuit-driven reference")]
    fn external_reference_rejects_stimulus() {
        let cfg = PllConfig::paper_table3();
        let mut pll = MixedSignalPll::with_clock_reference(&cfg);
        pll.set_stimulus(FmStimulus::pure_sine(1_000.0, 10.0, 8.0));
    }

    #[test]
    fn gate_level_agrees_with_behavioral_engine() {
        use crate::behavioral::CpPll;
        let cfg = PllConfig::paper_table3();
        let mut gate = MixedSignalPll::with_clock_reference(&cfg);
        let mut beh = CpPll::new_locked(&cfg);
        gate.advance_to(0.4);
        beh.advance_to(0.4);
        let fg = gate.vco_frequency_hz();
        let fb = beh.vco_frequency_hz();
        assert!((fg - fb).abs() < 10.0, "gate {fg} vs behavioral {fb}");
        // Accumulated phase agrees within a cycle or two over 2000 cycles.
        let pg = gate.vco_phase_cycles();
        let pb = beh.vco_phase_cycles();
        assert!((pg - pb).abs() < 5.0, "phase {pg} vs {pb}");
    }
}
