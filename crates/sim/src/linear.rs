//! Closed-loop linear analysis (the paper's §2, eqs. 1 and 4–6).
//!
//! The loop of fig. 2 has forward path `Kd·F(s)·K0/s` and feedback `1/N`;
//! the phase transfer function is
//!
//! ```text
//! H(s) = θo(s)/θi(s) = Kd·F(s)·K0/s / (1 + Kd·F(s)·K0/(N·s))      (eq. 1)
//! ```
//!
//! with `H(0) = N`. The paper measures at the divided output, so all plots
//! use the **feedback-referred** response `H(s)/N` whose low-frequency
//! asymptote is 0 dB (fig. 1).

use crate::config::PllConfig;
use pllbist_numeric::bode::BodePlot;
use pllbist_numeric::tf::TransferFunction;
use pllbist_numeric::units::Hertz;

/// Second-order loop parameters (eqs. 5–6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SecondOrderParams {
    /// Natural angular frequency ωn in rad/s.
    pub omega_n: f64,
    /// Damping factor ζ.
    pub damping: f64,
}

impl SecondOrderParams {
    /// Natural frequency in Hz.
    pub fn natural_frequency_hz(&self) -> f64 {
        Hertz::new(self.omega_n / std::f64::consts::TAU).value()
    }

    /// Gardner's one-sided 3 dB bandwidth of the high-gain second-order
    /// loop (paper §2, ω3dB):
    /// `ω3dB = ωn·sqrt(1 + 2ζ² + sqrt((1+2ζ²)² + 1))`.
    pub fn omega_3db(&self) -> f64 {
        let a = 1.0 + 2.0 * self.damping * self.damping;
        self.omega_n * (a + (a * a + 1.0).sqrt()).sqrt()
    }
}

/// Linear analysis of one PLL configuration.
///
/// # Example
///
/// ```
/// use pllbist_sim::config::PllConfig;
///
/// let a = PllConfig::paper_table3().analysis();
/// // The 0 dB asymptote: feedback-referred DC gain is exactly 1.
/// assert!((a.feedback_transfer().dc_gain() - 1.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct LoopAnalysis {
    h_phase: TransferFunction,
    filter: TransferFunction,
    filter_hold: TransferFunction,
    divider_n: f64,
}

impl LoopAnalysis {
    /// Builds the analysis from a configuration.
    pub fn of(config: &PllConfig) -> Self {
        let n = config.divider_n as f64;
        let kd = config.detector_gain();
        let k0 = config.effective_k0();
        let built = config.build_filter();
        let f = built.transfer_function();
        let f_hold = built.hold_transfer_function();
        let forward = TransferFunction::gain(kd)
            .series(&f)
            .series(&TransferFunction::integrator(k0));
        let h_phase = forward.feedback(&TransferFunction::gain(1.0 / n));
        Self {
            h_phase,
            filter: f,
            filter_hold: f_hold,
            divider_n: n,
        }
    }

    /// The phase transfer function `θo/θi` (eq. 1/4); `H(0) = N` for a
    /// type-2 loop.
    pub fn phase_transfer(&self) -> TransferFunction {
        self.h_phase.clone()
    }

    /// The feedback-referred response `H(s)/N` (what the divided-output
    /// measurement sees; 0 dB asymptote).
    pub fn feedback_transfer(&self) -> TransferFunction {
        self.h_phase.scale(1.0 / self.divider_n)
    }

    /// The loop-error transfer function `θe/θi = 1 − H/N` (useful for
    /// tracking studies).
    pub fn error_transfer(&self) -> TransferFunction {
        TransferFunction::gain(1.0).parallel(&self.feedback_transfer().scale(-1.0))
    }

    /// The **hold-referred** feedback response: what the hold-and-count
    /// BIST of the paper actually reads. Engaging the loop-break hold
    /// freezes the filter's *capacitor* state and removes the resistive
    /// feed-through, so the readout path is the filter's hold transfer
    /// function rather than its full one:
    ///
    /// ```text
    /// H_hold(s) = (H(s)/N) · F_hold(s) / F(s)
    /// ```
    ///
    /// For the high-gain lag loop this cancels the stabilising zero
    /// exactly, leaving the canonical no-zero second order
    /// `ωn²/(s² + 2ζωn·s + ωn²)` — a genuine, quantified bias of the
    /// measurement technique on feed-through topologies (see
    /// EXPERIMENTS.md).
    pub fn hold_referred_transfer(&self) -> TransferFunction {
        self.feedback_transfer()
            .series(&self.filter_hold)
            .series(&self.filter.inv())
    }

    /// Second-order parameters from the characteristic polynomial, when
    /// the loop is second order (eqs. 5–6 generalised to any F(s) of first
    /// order). Returns `None` for higher-order loops.
    pub fn second_order(&self) -> Option<SecondOrderParams> {
        let den = self.h_phase.den();
        if den.degree() != 2 {
            return None;
        }
        let c = den.coeffs();
        // Normalise: s² + 2ζωn·s + ωn².
        let a2 = c[2];
        let omega_n = (c[0] / a2).sqrt();
        let damping = c[1] / a2 / (2.0 * omega_n);
        Some(SecondOrderParams { omega_n, damping })
    }

    /// Dominant (slowest-decaying) pole pair as `(ωn, ζ)` equivalents for
    /// loops of any order — falls back to [`LoopAnalysis::second_order`]
    /// for second-order loops.
    pub fn dominant_params(&self) -> SecondOrderParams {
        if let Some(p) = self.second_order() {
            return p;
        }
        let poles = self.h_phase.poles();
        let dominant = poles
            .iter()
            .filter(|p| p.im >= 0.0)
            .max_by(|a, b| a.re.total_cmp(&b.re))
            .copied()
            .unwrap_or_else(|| poles[0]);
        let omega_n = dominant.abs();
        let damping = -dominant.re / omega_n;
        SecondOrderParams { omega_n, damping }
    }

    /// The theoretical feedback-referred Bode plot over `[f_lo, f_hi]` Hz
    /// (the paper's fig. 10).
    ///
    /// # Panics
    ///
    /// Panics on invalid sweep bounds (see [`BodePlot::sweep_log`]).
    pub fn bode(&self, f_lo_hz: f64, f_hi_hz: f64, points: usize) -> BodePlot {
        BodePlot::sweep_log(
            &self.feedback_transfer(),
            f_lo_hz * std::f64::consts::TAU,
            f_hi_hz * std::f64::consts::TAU,
            points,
        )
    }

    /// Verifies eq. 5/6 in their textbook form for the passive-lag loop:
    /// `ωn = sqrt(K/(N(τ1+τ2)))`, `ζ = (ωn/2)(τ2 + N/K)`.
    pub fn textbook_passive_lag_params(
        kd: f64,
        k0: f64,
        n: f64,
        tau1: f64,
        tau2: f64,
    ) -> SecondOrderParams {
        let k = kd * k0;
        let omega_n = (k / (n * (tau1 + tau2))).sqrt();
        let damping = omega_n / 2.0 * (tau2 + n / k);
        SecondOrderParams { omega_n, damping }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DriveConfig, FilterConfig};

    fn paper() -> LoopAnalysis {
        PllConfig::paper_table3().analysis()
    }

    #[test]
    fn eq4_denominator_matches_textbook_formulas() {
        let a = paper();
        let got = a.second_order().unwrap();
        let cfg = PllConfig::paper_table3();
        let (t1, t2) = match cfg.filter {
            FilterConfig::PassiveLag { r1, r2, c, .. } => (r1 * c, r2 * c),
            _ => unreachable!(),
        };
        let want = LoopAnalysis::textbook_passive_lag_params(
            cfg.detector_gain(),
            cfg.vco_k0,
            cfg.divider_n as f64,
            t1,
            t2,
        );
        assert!((got.omega_n - want.omega_n).abs() / want.omega_n < 1e-9);
        assert!((got.damping - want.damping).abs() < 1e-9);
    }

    #[test]
    fn dc_gains() {
        let a = paper();
        assert!((a.phase_transfer().dc_gain() - 5.0).abs() < 1e-9);
        assert!((a.feedback_transfer().dc_gain() - 1.0).abs() < 1e-9);
        assert!(a.error_transfer().dc_gain().abs() < 1e-9);
    }

    #[test]
    fn phase_at_natural_frequency_matches_fig12_annotation() {
        // Paper fig. 12 annotates the *measured* phase at fn as −46°. The
        // analytic phase of the type-2-like high-gain loop at ωn is exactly
        // atan(ωn·τ2) − 90° ≈ −50°; the paper attributes its residual
        // theory/measurement gap to pump and filter non-linearity.
        let a = paper();
        let p = a.second_order().unwrap();
        let phase_deg = a.feedback_transfer().phase(p.omega_n).to_degrees();
        assert!((-56.0..=-44.0).contains(&phase_deg), "phase {phase_deg}°");
    }

    #[test]
    fn peak_magnitude_is_a_few_db() {
        // For ζ = 0.43 the resonant peak of the type-2 response is ~2–3 dB.
        let a = paper();
        let bode = a.bode(0.5, 100.0, 600);
        let peak = bode.peak().unwrap();
        let db = peak.magnitude_db().value();
        assert!(db > 1.5 && db < 4.0, "peak {db} dB");
        assert!((peak.frequency().value() - 8.0).abs() < 1.5);
    }

    #[test]
    fn bandwidth_formula_matches_sweep() {
        // Gardner's ω3dB formula assumes the canonical zero at ωn/2ζ; the
        // real lag-filter loop's zero sits slightly higher, so allow a
        // modest spread — the sweep value is the ground truth.
        let a = paper();
        let p = a.second_order().unwrap();
        let sweep_bw = a.bode(0.5, 200.0, 2000).bandwidth_3db().unwrap();
        assert!(
            (sweep_bw - p.omega_3db()).abs() / p.omega_3db() < 0.15,
            "sweep {sweep_bw}, formula {}",
            p.omega_3db()
        );
        // Exact bandwidth from the true transfer function.
        let h = a.feedback_transfer();
        let target = h.magnitude(1e-3) / 2f64.sqrt();
        let exact = pllbist_numeric::rootfind::brent(
            |w| h.magnitude(w) - target,
            p.omega_n,
            30.0 * p.omega_n,
            1e-9,
            200,
        )
        .expect("bandwidth bracketed");
        assert!(
            (sweep_bw - exact).abs() / exact < 0.01,
            "{sweep_bw} vs {exact}"
        );
    }

    #[test]
    fn error_transfer_complements_feedback_transfer() {
        let a = paper();
        let e = a.error_transfer();
        let h = a.feedback_transfer();
        for w in [1.0, 10.0, 50.0, 300.0] {
            let sum = e.eval_jw(w) + h.eval_jw(w);
            assert!((sum.re - 1.0).abs() < 1e-9 && sum.im.abs() < 1e-9);
        }
    }

    #[test]
    fn charge_pump_loop_is_second_order_without_ripple_cap() {
        let cfg = PllConfig::integer_n_charge_pump();
        let a = cfg.analysis();
        assert!(a.second_order().is_some());
        // Adding C2 raises the order.
        let mut cfg3 = cfg.clone();
        if let FilterConfig::SeriesRc { c2, .. } = &mut cfg3.filter {
            *c2 = Some(5e-9);
        }
        let a3 = cfg3.analysis();
        assert!(a3.second_order().is_none());
        let dom = a3.dominant_params();
        assert!(dom.omega_n > 0.0 && dom.damping > 0.0);
    }

    #[test]
    fn hold_referred_transfer_cancels_the_zero() {
        // High-gain lag loop: H_hold should be (nearly) the canonical
        // no-zero second order.
        let a = paper();
        let p = a.second_order().unwrap();
        let h_hold = a.hold_referred_transfer();
        let canonical = TransferFunction::new(
            [p.omega_n * p.omega_n],
            [p.omega_n * p.omega_n, 2.0 * p.damping * p.omega_n, 1.0],
        );
        for w in [1.0, 10.0, p.omega_n, 150.0, 500.0] {
            let got = h_hold.eval_jw(w);
            let want = canonical.eval_jw(w);
            assert!(
                (got - want).abs() / want.abs() < 0.02,
                "w={w}: {got} vs {want}"
            );
        }
        // Phase at ωn is −90° for the no-zero response.
        let ph = h_hold.phase(p.omega_n).to_degrees();
        assert!((ph + 90.0).abs() < 2.0, "phase {ph}");
    }

    #[test]
    fn hold_referred_rolls_off_faster_than_full() {
        let a = paper();
        let w = 40.0 * std::f64::consts::TAU; // well past the zero
        assert!(a.hold_referred_transfer().magnitude(w) < 0.5 * a.feedback_transfer().magnitude(w));
    }

    #[test]
    fn higher_vdd_stiffens_the_loop() {
        let mut cfg = PllConfig::paper_table3();
        cfg.drive = DriveConfig::Voltage { vdd: 10.0 };
        let hi = cfg.analysis().second_order().unwrap();
        let lo = paper().second_order().unwrap();
        assert!(hi.omega_n > lo.omega_n * 1.3);
    }
}
