//! The workspace-wide sweep error taxonomy.
//!
//! The paper's BIST runs unattended on possibly faulty silicon (§4–§5,
//! Table 3): a device that never locks, a solver step that produces
//! NaN, or a poisoned worker must degrade into a *diagnosable per-point
//! result*, not abort the campaign. [`SweepPointError`] is the single
//! typed channel every failure along the measure path flows through —
//! lock qualification ([`crate::lock::wait_for_lock`]), the per-point
//! guardrails of [`crate::supervisor::Supervised`], fault wiring
//! ([`crate::config::FaultWiringError`]) and worker panics caught by
//! [`crate::parallel::par_try_map_points`].

use crate::config::FaultWiringError;

/// Why one sweep point failed.
///
/// Every variant carries enough context to diagnose the incident from a
/// JSONL report alone; [`kind`](Self::kind) gives the stable
/// machine-readable tag and [`is_retryable`](Self::is_retryable) drives
/// the supervisor's deterministic quarantine-and-retry policy.
#[derive(Clone, Debug, PartialEq)]
pub enum SweepPointError {
    /// The lock detector never qualified the loop within the timeout.
    LockTimeout {
        /// The timeout that expired, in seconds.
        timeout_secs: f64,
        /// Consecutive in-window cycles when the timeout hit.
        consecutive_cycles: u32,
        /// Cycles the detector requires to declare lock.
        required_cycles: u32,
    },
    /// A watched quantity left the representable/physical range (NaN,
    /// ±∞, or pinned at a supply rail for too long).
    NumericalDivergence {
        /// Simulation time when the divergence was detected.
        t: f64,
        /// Which quantity diverged (e.g. `"control_voltage"`,
        /// `"vco_frequency_hz"`, `"control_voltage_rail_pinned"`).
        quantity: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The point burned through its solver step budget without
    /// completing — the watchdog against silently stiff configurations.
    StepBudgetExhausted {
        /// Simulation time when the budget ran out.
        t: f64,
        /// Steps spent on this point so far.
        steps: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The requested fault cannot be wired into the device topology
    /// (constructor-time failure, before any simulation ran).
    FaultWiring(FaultWiringError),
    /// A worker panicked; the payload was caught at the point boundary.
    WorkerPanic {
        /// The panic payload, rendered as text.
        message: String,
    },
    /// The captured record was too degenerate to fit (e.g. a
    /// rank-deficient sine fit from a dead output).
    DegenerateFit {
        /// Modulation frequency of the failed point, in Hz.
        f_mod_hz: f64,
    },
}

/// Every stable [`SweepPointError::kind`] tag, in declaration order.
///
/// Observability consumers (the campaign progress board's incident
/// tallies, dashboards parsing `/incidents`) register these up front so
/// per-incident accounting stays allocation-free. Adding an error
/// variant requires extending this list — a test pins the
/// correspondence.
pub const ERROR_KINDS: &[&str] = &[
    "lock_timeout",
    "numerical_divergence",
    "step_budget_exhausted",
    "fault_wiring",
    "worker_panic",
    "degenerate_fit",
];

/// Panic payload modelling a **SIGKILL-equivalent process death** for
/// the crash-only campaign service's deterministic fault injection
/// ([`crate::service::FaultPlan`]).
///
/// Ordinary panics are *contained* per point (caught at the point
/// boundary and rendered as [`SweepPointError::WorkerPanic`], so one
/// sick point quarantines instead of unwinding the sweep). An injected
/// kill must do the opposite: a real `SIGKILL` takes the whole process
/// with it, completed prefix on disk, in-flight point lost. Every
/// containment site therefore checks the payload with
/// [`rethrow_if_kill`] and **re-raises** this marker instead of
/// recording it — the unwind propagates through the worker scope to the
/// job boundary, where the service catches it, marks the job
/// interrupted and resumes from the on-disk prefix. The killed point is
/// never written, so the resumed file stays byte-identical to an
/// uninterrupted run's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedKill {
    /// Which scheduled kill fired (index into the fault plan), for
    /// journals and post-mortems.
    pub sequence: u32,
}

/// Re-raises `payload` when it is an [`InjectedKill`]; otherwise hands
/// it back for normal per-point containment. Call this first inside
/// every `catch_unwind` recovery path on the sweep execution path.
pub fn rethrow_if_kill(payload: Box<dyn std::any::Any + Send>) -> Box<dyn std::any::Any + Send> {
    if payload.downcast_ref::<InjectedKill>().is_some() {
        std::panic::resume_unwind(payload);
    }
    payload
}

impl SweepPointError {
    /// Stable machine-readable tag for telemetry records.
    pub fn kind(&self) -> &'static str {
        match self {
            SweepPointError::LockTimeout { .. } => "lock_timeout",
            SweepPointError::NumericalDivergence { .. } => "numerical_divergence",
            SweepPointError::StepBudgetExhausted { .. } => "step_budget_exhausted",
            SweepPointError::FaultWiring(_) => "fault_wiring",
            SweepPointError::WorkerPanic { .. } => "worker_panic",
            SweepPointError::DegenerateFit { .. } => "degenerate_fit",
        }
    }

    /// Whether the supervisor's retry policy may re-attempt the point.
    ///
    /// Transient/numerical failures retry (a halved step or a longer
    /// settle can rescue them); wiring errors are deterministic facts
    /// about the topology and panics are treated as non-retryable bugs.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SweepPointError::LockTimeout { .. }
                | SweepPointError::NumericalDivergence { .. }
                | SweepPointError::StepBudgetExhausted { .. }
                | SweepPointError::DegenerateFit { .. }
        )
    }

    /// Renders a caught panic payload into a [`SweepPointError`].
    ///
    /// Supervisor guardrails abort a point via
    /// [`std::panic::panic_any`] with a `SweepPointError` payload, which
    /// this recovers *typed*; plain `&str`/`String` panics become
    /// [`WorkerPanic`](Self::WorkerPanic).
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> Self {
        match payload.downcast::<SweepPointError>() {
            Ok(err) => *err,
            Err(payload) => {
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                SweepPointError::WorkerPanic { message }
            }
        }
    }
}

impl std::fmt::Display for SweepPointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepPointError::LockTimeout {
                timeout_secs,
                consecutive_cycles,
                required_cycles,
            } => write!(
                f,
                "lock timeout after {timeout_secs} s \
                 ({consecutive_cycles}/{required_cycles} qualifying cycles)"
            ),
            SweepPointError::NumericalDivergence { t, quantity, value } => {
                write!(f, "numerical divergence at t = {t} s: {quantity} = {value}")
            }
            SweepPointError::StepBudgetExhausted { t, steps, budget } => write!(
                f,
                "step budget exhausted at t = {t} s ({steps} steps, budget {budget})"
            ),
            SweepPointError::FaultWiring(e) => write!(f, "fault wiring: {e}"),
            SweepPointError::WorkerPanic { message } => {
                write!(f, "worker panicked: {message}")
            }
            SweepPointError::DegenerateFit { f_mod_hz } => {
                write!(f, "degenerate fit at f_mod = {f_mod_hz} Hz")
            }
        }
    }
}

impl std::error::Error for SweepPointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepPointError::FaultWiring(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultWiringError> for SweepPointError {
    fn from(e: FaultWiringError) -> Self {
        SweepPointError::FaultWiring(e)
    }
}

/// Why a resumable campaign results file could not be used.
///
/// Produced by [`crate::campaign::CampaignLog`]: a resume must *refuse*
/// a file it cannot prove belongs to this exact run (config digest +
/// grid size) rather than silently merging foreign points into the
/// output — the whole value of the results file is that a resumed run
/// is byte-identical to an uninterrupted one.
#[derive(Debug)]
pub enum CampaignError {
    /// Filesystem failure on the results file.
    Io(std::io::Error),
    /// The file's campaign header does not match this run (different
    /// config digest or point count) — likely a stale file from an
    /// earlier grid definition.
    HeaderMismatch {
        /// Digest/points expected by the resuming run.
        expected: String,
        /// Digest/points found in the file.
        found: String,
    },
    /// A non-trailing line could not be parsed as a campaign record
    /// (a truncated *final* line is tolerated — that is what a kill
    /// mid-write leaves behind — but corruption anywhere else is not).
    Malformed {
        /// One-based line number of the offending record.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "campaign file I/O: {e}"),
            CampaignError::HeaderMismatch { expected, found } => write!(
                f,
                "campaign header mismatch: expected {expected}, found {found}"
            ),
            CampaignError::Malformed { line, reason } => {
                write!(f, "malformed campaign record at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pllbist_analog::fault::Fault;

    #[test]
    fn kinds_are_stable_tags() {
        let errs = [
            SweepPointError::LockTimeout {
                timeout_secs: 0.1,
                consecutive_cycles: 3,
                required_cycles: 16,
            },
            SweepPointError::NumericalDivergence {
                t: 1.0,
                quantity: "control_voltage",
                value: f64::NAN,
            },
            SweepPointError::StepBudgetExhausted {
                t: 1.0,
                steps: 10,
                budget: 5,
            },
            SweepPointError::WorkerPanic {
                message: "boom".into(),
            },
            SweepPointError::DegenerateFit { f_mod_hz: 8.0 },
        ];
        let kinds: Vec<_> = errs.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            [
                "lock_timeout",
                "numerical_divergence",
                "step_budget_exhausted",
                "worker_panic",
                "degenerate_fit"
            ]
        );
        for e in &errs {
            assert!(!e.to_string().is_empty());
            assert!(
                ERROR_KINDS.contains(&e.kind()),
                "{} not registered",
                e.kind()
            );
        }
        assert!(ERROR_KINDS.contains(&"fault_wiring"));
        assert_eq!(ERROR_KINDS.len(), 6);
    }

    #[test]
    fn error_kinds_stays_in_sync_with_the_variant_set() {
        // One representative per variant, tagged through a
        // **wildcard-free** match: adding a `SweepPointError` variant
        // fails to compile this test until a representative (and its
        // tag) is added here — and the assertions below then force the
        // same extension onto `ERROR_KINDS`, in declaration order.
        let wiring = crate::config::PllConfig::paper_table3()
            .with_fault(Fault::PumpMismatch(1.2))
            .map(|_| ())
            .unwrap_err();
        let representatives = [
            SweepPointError::LockTimeout {
                timeout_secs: 0.1,
                consecutive_cycles: 3,
                required_cycles: 16,
            },
            SweepPointError::NumericalDivergence {
                t: 1.0,
                quantity: "control_voltage",
                value: f64::NAN,
            },
            SweepPointError::StepBudgetExhausted {
                t: 1.0,
                steps: 10,
                budget: 5,
            },
            SweepPointError::FaultWiring(wiring),
            SweepPointError::WorkerPanic {
                message: "boom".into(),
            },
            SweepPointError::DegenerateFit { f_mod_hz: 8.0 },
        ];
        let tags: Vec<&'static str> = representatives
            .iter()
            .map(|e| match e {
                SweepPointError::LockTimeout { .. } => "lock_timeout",
                SweepPointError::NumericalDivergence { .. } => "numerical_divergence",
                SweepPointError::StepBudgetExhausted { .. } => "step_budget_exhausted",
                SweepPointError::FaultWiring(_) => "fault_wiring",
                SweepPointError::WorkerPanic { .. } => "worker_panic",
                SweepPointError::DegenerateFit { .. } => "degenerate_fit",
            })
            .collect();
        // Every variant is represented exactly once, and the registry
        // lists exactly these tags in declaration order.
        assert_eq!(tags, ERROR_KINDS, "ERROR_KINDS out of sync");
        for (e, tag) in representatives.iter().zip(&tags) {
            assert_eq!(e.kind(), *tag, "kind() disagrees with the registry");
        }
        let mut deduped = tags.clone();
        deduped.dedup();
        assert_eq!(deduped.len(), representatives.len(), "duplicate tag");
    }

    #[test]
    fn retry_policy_splits_transient_from_structural() {
        assert!(SweepPointError::LockTimeout {
            timeout_secs: 0.1,
            consecutive_cycles: 0,
            required_cycles: 16,
        }
        .is_retryable());
        assert!(SweepPointError::DegenerateFit { f_mod_hz: 1.0 }.is_retryable());
        assert!(!SweepPointError::WorkerPanic {
            message: "x".into()
        }
        .is_retryable());
        let wiring = crate::config::PllConfig::paper_table3()
            .with_fault(Fault::PumpMismatch(1.2))
            .map(|_| ())
            .unwrap_err();
        let err: SweepPointError = wiring.into();
        assert_eq!(err.kind(), "fault_wiring");
        assert!(!err.is_retryable());
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn panic_payloads_round_trip() {
        let typed = std::panic::catch_unwind(|| {
            std::panic::panic_any(SweepPointError::DegenerateFit { f_mod_hz: 4.0 })
        })
        .unwrap_err();
        assert_eq!(
            SweepPointError::from_panic(typed),
            SweepPointError::DegenerateFit { f_mod_hz: 4.0 }
        );
        let s = std::panic::catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(
            SweepPointError::from_panic(s),
            SweepPointError::WorkerPanic {
                message: "boom 7".into()
            }
        );
    }
}
