//! PLL description, the paper's Table 3 parameter set, and fault
//! injection.

use pllbist_analog::fault::Fault;
use pllbist_analog::filter::{ActivePi, LoopFilter, PassiveLag, SeriesRc};
use pllbist_analog::pump::{ChargePump, VoltageDriver};
use pllbist_analog::vco::Vco;

/// The drive stage between PFD and filter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DriveConfig {
    /// 4046-style tri-state voltage comparator on the given supply.
    Voltage {
        /// Supply rail in volts.
        vdd: f64,
    },
    /// Current-steering charge pump.
    Charge {
        /// Nominal pump current in amperes.
        i_pump: f64,
        /// Sink/source ratio (1.0 = balanced).
        mismatch: f64,
    },
}

/// The loop-filter network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FilterConfig {
    /// The paper's passive lag (fig. 9): τ1 = R1·C, τ2 = R2·C.
    PassiveLag {
        /// Series resistance from the comparator output.
        r1: f64,
        /// Zero-setting resistance in series with the capacitor.
        r2: f64,
        /// Filter capacitance.
        c: f64,
        /// Optional leakage resistance to ground (fault).
        r_leak: Option<f64>,
    },
    /// Charge-pump series R–C (optional ripple capacitor).
    SeriesRc {
        /// Zero-setting resistance.
        r: f64,
        /// Main integration capacitance.
        c1: f64,
        /// Optional ripple capacitor.
        c2: Option<f64>,
        /// Optional leakage resistance to ground (fault).
        r_leak: Option<f64>,
    },
    /// Active PI: `F(s) = (1+s·τ2)/(s·τ1)`.
    ActivePi {
        /// Integrator time constant.
        tau1: f64,
        /// Zero time constant.
        tau2: f64,
    },
}

/// A complete CP-PLL description: every number needed to build both the
/// simulation and the linear model.
///
/// # Example
///
/// ```
/// use pllbist_sim::config::PllConfig;
///
/// let cfg = PllConfig::paper_table3();
/// let params = cfg.analysis().second_order().expect("2nd-order loop");
/// assert!((params.natural_frequency_hz() - 8.0).abs() < 0.1);
/// assert!((params.damping - 0.43).abs() < 0.01);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PllConfig {
    /// Nominal reference frequency in Hz.
    pub f_ref_hz: f64,
    /// Feedback divider modulus N.
    pub divider_n: u32,
    /// Drive stage.
    pub drive: DriveConfig,
    /// Loop filter.
    pub filter: FilterConfig,
    /// VCO gain K0 in rad/s per volt.
    pub vco_k0: f64,
    /// VCO gain multiplier (fault knob; 1.0 nominal).
    pub vco_gain_scale: f64,
    /// VCO tuning-curve curvature (Hz/V², Hz/V³) around the lock point.
    pub vco_curvature: (f64, f64),
    /// VCO tuning range as (min, max) in Hz; `None` = unlimited.
    pub vco_range_hz: Option<(f64, f64)>,
    /// PFD dead zone in seconds (0 = ideal).
    pub pfd_dead_zone: f64,
}

impl PllConfig {
    /// The reconstructed Table 3 set-up: 1 kHz reference, ÷5 feedback,
    /// 5 V 4046-style drive (Kd = 5/4π ≈ 0.4 V/rad), passive lag
    /// R1 = 1.573 MΩ / R2 = 35.29 kΩ / C = 470 nF, K0 = 24 krad/s/V
    /// (≈ 3.82 kHz/V) — a **high-gain** loop (K ≫ N) giving fn = 8 Hz and
    /// ζ = 0.43 exactly as annotated on the paper's figs. 11/12, with the
    /// theoretical phase at fn ≈ −50° against the measured −46° (the paper
    /// itself reports a theory/measurement discrepancy it attributes to
    /// pump/filter non-linearity). See DESIGN.md for the digit-recovery
    /// audit of the OCR-damaged table.
    pub fn paper_table3() -> Self {
        Self {
            f_ref_hz: 1_000.0,
            divider_n: 5,
            drive: DriveConfig::Voltage { vdd: 5.0 },
            filter: FilterConfig::PassiveLag {
                r1: 1.5730e6,
                r2: 35.288e3,
                c: 470e-9,
                r_leak: None,
            },
            vco_k0: 24_000.0,
            vco_gain_scale: 1.0,
            vco_curvature: (0.0, 0.0),
            vco_range_hz: None,
            pfd_dead_zone: 0.0,
        }
    }

    /// A representative integrated charge-pump PLL (for the examples and
    /// the charge-pump test coverage): 10 kHz reference, ÷8, 100 µA pump,
    /// series-RC filter — fn ≈ 195 Hz, ζ ≈ 0.71 at N = 8 (textbook
    /// critically-peaked design; ζ scales as 1/√N with eq. 6).
    pub fn integer_n_charge_pump() -> Self {
        Self {
            f_ref_hz: 10_000.0,
            divider_n: 8,
            drive: DriveConfig::Charge {
                i_pump: 100e-6,
                mismatch: 1.0,
            },
            filter: FilterConfig::SeriesRc {
                r: 35.2e3,
                c1: 33e-9,
                c2: None,
                r_leak: None,
            },
            vco_k0: 25_000.0,
            vco_gain_scale: 1.0,
            vco_curvature: (0.0, 0.0),
            vco_range_hz: None,
            pfd_dead_zone: 0.0,
        }
    }

    /// Nominal VCO output frequency `N·f_ref` in Hz.
    pub fn f_vco_hz(&self) -> f64 {
        self.f_ref_hz * self.divider_n as f64
    }

    /// Phase-detector gain in V/rad (voltage drive) or A/rad (charge
    /// pump) — the `Kd` of eq. 1.
    pub fn detector_gain(&self) -> f64 {
        match self.drive {
            DriveConfig::Voltage { vdd } => VoltageDriver::new(vdd).gain_volts_per_radian(),
            DriveConfig::Charge { i_pump, mismatch } => {
                ChargePump::with_mismatch(i_pump, mismatch).gain_amps_per_radian()
            }
        }
    }

    /// Effective VCO gain K0 in rad/s/V including the gain-scale fault.
    pub fn effective_k0(&self) -> f64 {
        self.vco_k0 * self.vco_gain_scale
    }

    /// Builds the loop-filter model.
    pub fn build_filter(&self) -> Box<dyn LoopFilter> {
        match self.filter {
            FilterConfig::PassiveLag { r1, r2, c, r_leak } => {
                Box::new(PassiveLag::with_leakage(r1, r2, c, r_leak))
            }
            FilterConfig::SeriesRc { r, c1, c2, r_leak } => {
                Box::new(SeriesRc::with_options(r, c1, c2, r_leak))
            }
            FilterConfig::ActivePi { tau1, tau2 } => Box::new(ActivePi::new(tau1, tau2)),
        }
    }

    /// Builds the VCO model centred on the lock point: `N·f_ref` at the
    /// mid-supply control voltage.
    pub fn build_vco(&self) -> Vco {
        let v_center = match self.drive {
            DriveConfig::Voltage { vdd } => vdd / 2.0,
            DriveConfig::Charge { .. } => 2.5,
        };
        let mut vco = Vco::new(self.f_vco_hz(), self.effective_k0(), v_center)
            .with_curvature(self.vco_curvature.0, self.vco_curvature.1);
        if let Some((lo, hi)) = self.vco_range_hz {
            vco = vco.with_range(lo, hi);
        }
        vco
    }

    /// The loop's linear analysis (transfer functions and second-order
    /// parameters).
    pub fn analysis(&self) -> crate::linear::LoopAnalysis {
        crate::linear::LoopAnalysis::of(self)
    }

    /// Returns a copy with a fault injected (the abl05 campaign driver).
    ///
    /// A fault that does not apply to this configuration (e.g. a
    /// pump-mismatch fault on a voltage-driven loop, or an R1 fault on an
    /// active-PI filter) is reported as a [`FaultWiringError`] so a sweep
    /// can skip it gracefully instead of aborting.
    ///
    /// # Errors
    ///
    /// Returns [`FaultWiringError`] when the fault names a circuit
    /// element the configured topology does not have.
    pub fn with_fault(&self, fault: Fault) -> Result<Self, FaultWiringError> {
        let mut cfg = self.clone();
        match fault {
            Fault::VcoGainScale(k) => cfg.vco_gain_scale *= k,
            Fault::PfdDeadZone(w) => cfg.pfd_dead_zone = w,
            Fault::DividerModulus(n) => cfg.divider_n = n,
            Fault::PumpMismatch(m) => match &mut cfg.drive {
                DriveConfig::Charge { mismatch, .. } => *mismatch = m,
                DriveConfig::Voltage { .. } => {
                    return Err(FaultWiringError::PumpFaultOnVoltageDrive)
                }
            },
            Fault::FilterR1Scale(k) => match &mut cfg.filter {
                FilterConfig::PassiveLag { r1, .. } => *r1 *= k,
                _ => {
                    return Err(FaultWiringError::FilterElementAbsent {
                        element: "R1",
                        filter: cfg.filter_topology_name(),
                    })
                }
            },
            Fault::FilterR2Scale(k) => match &mut cfg.filter {
                FilterConfig::PassiveLag { r2, .. } => *r2 *= k,
                FilterConfig::SeriesRc { r, .. } => *r *= k,
                FilterConfig::ActivePi { .. } => {
                    return Err(FaultWiringError::FilterElementAbsent {
                        element: "R2",
                        filter: cfg.filter_topology_name(),
                    })
                }
            },
            Fault::FilterCapScale(k) => match &mut cfg.filter {
                FilterConfig::PassiveLag { c, .. } => *c *= k,
                FilterConfig::SeriesRc { c1, .. } => *c1 *= k,
                FilterConfig::ActivePi { tau1, tau2 } => {
                    *tau1 *= k;
                    *tau2 *= k;
                }
            },
            Fault::FilterLeakage(r) => match &mut cfg.filter {
                FilterConfig::PassiveLag { r_leak, .. } | FilterConfig::SeriesRc { r_leak, .. } => {
                    *r_leak = Some(r)
                }
                FilterConfig::ActivePi { .. } => {
                    return Err(FaultWiringError::FilterElementAbsent {
                        element: "leakage path",
                        filter: cfg.filter_topology_name(),
                    })
                }
            },
        }
        Ok(cfg)
    }

    /// Short human name of the configured filter topology (error text).
    fn filter_topology_name(&self) -> &'static str {
        match self.filter {
            FilterConfig::PassiveLag { .. } => "passive-lag",
            FilterConfig::SeriesRc { .. } => "series-RC",
            FilterConfig::ActivePi { .. } => "active-PI",
        }
    }
}

/// A fault that cannot be wired into the configured loop topology.
///
/// Produced by [`PllConfig::with_fault`]; carrying this as a value (rather
/// than panicking at the injection site) lets a fault-coverage sweep note
/// the skip and keep going — an ill-matched fault/filter combination is a
/// campaign-definition issue, not a simulator failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultWiringError {
    /// A charge-pump mismatch fault was applied to a voltage-driven loop,
    /// which has no current pump.
    PumpFaultOnVoltageDrive,
    /// A filter fault names an element the configured topology lacks.
    FilterElementAbsent {
        /// The element the fault targets (e.g. `"R1"`).
        element: &'static str,
        /// The filter topology actually configured.
        filter: &'static str,
    },
}

impl std::fmt::Display for FaultWiringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::PumpFaultOnVoltageDrive => {
                write!(f, "pump mismatch does not apply to a voltage-driven loop")
            }
            Self::FilterElementAbsent { element, filter } => {
                write!(f, "{filter} filter has no {element} to fault")
            }
        }
    }
}

impl std::error::Error for FaultWiringError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reconstruction_hits_target_parameters() {
        let cfg = PllConfig::paper_table3();
        assert_eq!(cfg.f_vco_hz(), 5_000.0);
        // Kd = VDD/4π ≈ 0.398 — the paper's "0.4 V/rad".
        assert!((cfg.detector_gain() - 0.4).abs() < 0.005);
        let p = cfg.analysis().second_order().unwrap();
        assert!(
            (p.natural_frequency_hz() - 8.0).abs() < 0.05,
            "fn = {}",
            p.natural_frequency_hz()
        );
        assert!((p.damping - 0.43).abs() < 0.005, "zeta = {}", p.damping);
    }

    #[test]
    fn charge_pump_config_is_stable() {
        let cfg = PllConfig::integer_n_charge_pump();
        let h = cfg.analysis().phase_transfer();
        assert!(h.is_stable(1e-9));
    }

    #[test]
    fn vco_builder_centres_on_lock() {
        let cfg = PllConfig::paper_table3();
        let vco = cfg.build_vco();
        assert!((vco.frequency_hz(2.5) - 5_000.0).abs() < 1e-9);
    }

    #[test]
    fn fault_injection_moves_parameters() {
        use pllbist_analog::fault::Fault;
        let cfg = PllConfig::paper_table3();
        let nominal = cfg.analysis().second_order().unwrap();

        let weak_vco = cfg.with_fault(Fault::VcoGainScale(0.5)).unwrap();
        let p = weak_vco.analysis().second_order().unwrap();
        // ωn scales with sqrt(K): 1/√2.
        assert!((p.omega_n / nominal.omega_n - 0.5f64.sqrt()).abs() < 0.01);

        let small_r2 = cfg.with_fault(Fault::FilterR2Scale(0.1)).unwrap();
        let p2 = small_r2.analysis().second_order().unwrap();
        assert!(
            p2.damping < 0.6 * nominal.damping,
            "zero weakened: {}",
            p2.damping
        );
    }

    #[test]
    fn leakage_fault_registers() {
        use pllbist_analog::fault::Fault;
        let cfg = PllConfig::paper_table3()
            .with_fault(Fault::FilterLeakage(1e6))
            .unwrap();
        match cfg.filter {
            FilterConfig::PassiveLag { r_leak, .. } => assert_eq!(r_leak, Some(1e6)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn inapplicable_fault_is_a_typed_error() {
        use pllbist_analog::fault::Fault;
        let err = PllConfig::paper_table3()
            .with_fault(Fault::PumpMismatch(1.2))
            .unwrap_err();
        assert_eq!(err, FaultWiringError::PumpFaultOnVoltageDrive);
        assert!(err.to_string().contains("voltage-driven"));

        let mut active = PllConfig::paper_table3();
        active.filter = FilterConfig::ActivePi {
            tau1: 1e-3,
            tau2: 1e-4,
        };
        let err = active.with_fault(Fault::FilterR2Scale(0.5)).unwrap_err();
        assert_eq!(
            err,
            FaultWiringError::FilterElementAbsent {
                element: "R2",
                filter: "active-PI",
            }
        );
        assert!(err.to_string().contains("active-PI"), "{err}");
    }

    #[test]
    fn campaign_applies_cleanly_to_paper_config() {
        use pllbist_analog::fault::Fault;
        for fault in Fault::standard_campaign() {
            match PllConfig::paper_table3().with_fault(fault) {
                Ok(cfg) => {
                    assert!(cfg.analysis().phase_transfer().is_stable(1e-12), "{fault}")
                }
                // The voltage-driven paper loop has no current pump.
                Err(e) => assert_eq!(e, FaultWiringError::PumpFaultOnVoltageDrive, "{fault}"),
            }
        }
    }
}
