//! The shared settle→stimulate→capture sweep pipeline.
//!
//! Every transfer-function measurement in this workspace — the Table 2
//! BIST monitor, the bench-style baseline, the fault campaigns — walks
//! the same skeleton: build a locked loop, let the lock transient die
//! out, program a stimulus, wait for the modulation steady state, then
//! capture. This module owns that skeleton once, for any
//! [`PllEngine`] backend, with **lock-state checkpointing**: the settle
//! phase runs once per configuration and each sweep point restores the
//! snapshot instead of re-locking from scratch.
//!
//! Checkpointing never changes results: [`PllEngine::restore`] is
//! bit-exact, so a checkpointed sweep is bitwise identical to a
//! from-scratch sweep at any thread count (the workspace's
//! `checkpoint_determinism` integration test pins this).

use crate::campaign::{CampaignLog, PointCodec};
use crate::config::PllConfig;
use crate::engine::PllEngine;
use crate::error::SweepPointError;
use crate::observe::CampaignObserver;
use crate::parallel::{
    par_map_chunks_observed, par_map_points_observed, par_try_map_chunks_observed,
    par_try_map_points_observed, par_try_map_points_worker_observed,
};
use crate::stimulus::FmStimulus;
use crate::supervisor::{
    emit_incident, supervised_point, Incident, IncidentAction, PointOutcome, Supervised,
    SupervisorPolicy,
};
use pllbist_telemetry::Collector;

/// The loop-settle-time heuristic, in seconds — the **single** workspace
/// definition (bench, monitor and transient-horizon logic all derive
/// from here).
///
/// A second-order loop's envelope decays as `exp(−ζ·ωn·t)`; after
/// `8/(ζ·ωn)` the lock transient is at `e⁻⁸ ≈ 3×10⁻⁴` of its initial
/// amplitude, comfortably below the BIST counters' quantisation floor.
/// The `max(1e-9)` guard keeps degenerate (near-undamped) configurations
/// finite rather than dividing by zero.
pub fn settle_time(config: &PllConfig) -> f64 {
    let params = config.analysis().dominant_params();
    8.0 / (params.damping * params.omega_n).max(1e-9)
}

/// One measurement scenario: a configuration plus the lock-settle wait
/// its engines start from.
///
/// `Scenario` is the factory the sweep paths share. It builds engines at
/// their *settled* lock point — either from scratch
/// ([`settle_fresh`](Self::settle_fresh)) or by restoring a
/// [`lock_checkpoint`](Self::lock_checkpoint) — and fans sweeps out over
/// threads with the workspace's bitwise-determinism contract intact.
#[derive(Clone, Copy, Debug)]
pub struct Scenario<'a> {
    config: &'a PllConfig,
    lock_settle_secs: f64,
}

impl<'a> Scenario<'a> {
    /// A scenario whose lock-settle wait is the documented
    /// [`settle_time`] heuristic.
    pub fn new(config: &'a PllConfig) -> Self {
        Self {
            config,
            lock_settle_secs: settle_time(config),
        }
    }

    /// A scenario with an explicit lock-settle wait (the monitor's
    /// `loop_settle_secs` knob).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn with_lock_settle(config: &'a PllConfig, secs: f64) -> Self {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "lock settle must be non-negative"
        );
        Self {
            config,
            lock_settle_secs: secs,
        }
    }

    /// The configuration this scenario measures.
    pub fn config(&self) -> &'a PllConfig {
        self.config
    }

    /// The lock-settle wait in seconds.
    pub fn lock_settle_secs(&self) -> f64 {
        self.lock_settle_secs
    }

    /// Builds a locked engine and runs the lock-settle wait from scratch.
    pub fn settle_fresh<E: PllEngine>(&self) -> E {
        let mut pll = E::new_locked(self.config);
        let t0 = pll.time();
        pll.advance_to(t0 + self.lock_settle_secs);
        pll
    }

    /// Settles one engine from scratch and snapshots it — the per-config
    /// cost a checkpointed sweep pays exactly once.
    pub fn lock_checkpoint<E: PllEngine>(&self, telemetry: &Collector) -> E::Checkpoint {
        let _span = pllbist_telemetry::span!(telemetry, "scenario.checkpoint");
        self.settle_fresh::<E>().checkpoint()
    }

    /// An engine ready for one sweep point: restored from `snapshot` when
    /// one is given, settled from scratch otherwise. Both paths yield
    /// bit-identical state.
    pub fn point_engine<E: PllEngine>(&self, snapshot: Option<&E::Checkpoint>) -> E {
        match snapshot {
            Some(snap) => {
                let mut pll = E::new_locked(self.config);
                pll.restore(snap);
                pll
            }
            None => self.settle_fresh(),
        }
    }

    /// The stimulate stage: programs `stimulus` phase-continuously and
    /// waits `settle_secs` for the modulation steady state.
    pub fn stimulate<E: PllEngine>(pll: &mut E, stimulus: FmStimulus, settle_secs: f64) {
        pll.set_stimulus(stimulus);
        let t = pll.time();
        pll.advance_to(t + settle_secs);
    }

    /// Fans `capture` out over `f_mod_hz` with one fresh-or-restored
    /// engine **per point** (the bench shape: every point independent),
    /// scheduled by the work-stealing executor
    /// ([`par_map_points_observed`]) so a slow point never idles the
    /// other workers behind a chunk barrier.
    ///
    /// With `use_checkpoint` the settle runs once and each point restores
    /// the snapshot; without it each point settles from scratch. Results
    /// are bitwise identical either way, for any `threads` value.
    pub fn sweep_points<E, R, F>(
        &self,
        f_mod_hz: &[f64],
        threads: usize,
        use_checkpoint: bool,
        telemetry: &Collector,
        capture: F,
    ) -> Vec<R>
    where
        E: PllEngine,
        R: Send,
        F: Fn(&mut E, f64) -> R + Sync,
    {
        let snapshot = use_checkpoint.then(|| self.lock_checkpoint::<E>(telemetry));
        par_map_points_observed(f_mod_hz, threads, telemetry, |_, &f_mod| {
            let mut pll = self.point_engine::<E>(snapshot.as_ref());
            capture(&mut pll, f_mod)
        })
    }

    /// Settles one supervised engine and snapshots it, containing a
    /// divergent settle: on failure the snapshot is dropped and each
    /// point settles (and fails, and is quarantined) individually.
    fn supervised_snapshot<E: PllEngine>(
        &self,
        policy: &SupervisorPolicy,
        telemetry: &Collector,
    ) -> Option<E::Checkpoint> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = pllbist_telemetry::span!(telemetry, "scenario.checkpoint");
            let mut pll = Supervised::new(E::new_locked(self.config), policy);
            let t0 = pll.time();
            pll.advance_to(t0 + self.lock_settle_secs);
            pll.checkpoint()
        }))
        .ok()
    }

    /// Supervised variant of [`sweep_points`](Self::sweep_points): every
    /// point runs under [`supervised_point`] — guardrails, panic
    /// isolation, the deterministic quarantine-and-retry policy — and
    /// the sweep returns per-point `Result`s plus the incident log
    /// instead of aborting on the first sick point.
    ///
    /// Points are scheduled by the work-stealing executor
    /// ([`par_try_map_points_observed`]), so a retry cascade on one sick
    /// point keeps every other worker busy instead of idling them at a
    /// chunk barrier — the schedule that makes retry-heavy campaigns
    /// scale (see `abl12_work_stealing_campaign`).
    ///
    /// On a healthy device the capture sequence (and therefore every
    /// result bit) is identical to [`sweep_points`](Self::sweep_points)
    /// with `use_checkpoint` at any thread count; the wrapper's checks
    /// are read-only. The shared settle itself runs under guardrails
    /// too: if it diverges, the snapshot is dropped and each point
    /// settles (and fails, and is quarantined) individually.
    pub fn sweep_points_supervised<E, R, F>(
        &self,
        f_mod_hz: &[f64],
        threads: usize,
        policy: &SupervisorPolicy,
        telemetry: &Collector,
        capture: F,
    ) -> SupervisedPoints<R>
    where
        E: PllEngine,
        R: Send,
        F: Fn(&mut Supervised<E>, f64) -> Result<R, SweepPointError> + Sync,
    {
        let snapshot = self.supervised_snapshot::<E>(policy, telemetry);
        let outcomes = par_try_map_points_observed(f_mod_hz, threads, telemetry, |_, &f_mod| {
            Ok(supervised_point::<E, _, _>(
                self,
                snapshot.as_ref(),
                policy,
                f_mod,
                telemetry,
                |pll| capture(pll, f_mod),
            ))
        });
        Self::merge_outcomes(f_mod_hz, outcomes, telemetry)
    }

    /// The pre-work-stealing supervised sweep: contiguous chunks joined
    /// at a barrier, kept as a migration aid and as the baseline the
    /// `abl12_work_stealing_campaign` ablation measures against.
    ///
    /// Semantics differ from [`sweep_points_supervised`](Self::sweep_points_supervised)
    /// in one way only: a failure that escapes per-point containment
    /// poisons its **whole worker chunk** (every point of the chunk is
    /// quarantined), where the work-stealing schedule quarantines just
    /// the offending point. Healthy results are bitwise identical
    /// between the two at every thread count.
    pub fn sweep_points_supervised_chunked<E, R, F>(
        &self,
        f_mod_hz: &[f64],
        threads: usize,
        policy: &SupervisorPolicy,
        telemetry: &Collector,
        capture: F,
    ) -> SupervisedPoints<R>
    where
        E: PllEngine,
        R: Send,
        F: Fn(&mut Supervised<E>, f64) -> Result<R, SweepPointError> + Sync,
    {
        let snapshot = self.supervised_snapshot::<E>(policy, telemetry);
        let outcomes = par_try_map_chunks_observed(f_mod_hz, threads, telemetry, |_, chunk| {
            chunk
                .iter()
                .map(|&f_mod| {
                    Ok(supervised_point::<E, _, _>(
                        self,
                        snapshot.as_ref(),
                        policy,
                        f_mod,
                        telemetry,
                        |pll| capture(pll, f_mod),
                    ))
                })
                .collect()
        });
        Self::merge_outcomes(f_mod_hz, outcomes, telemetry)
    }

    /// Resumable variant of
    /// [`sweep_points_supervised`](Self::sweep_points_supervised): points
    /// already present in `log` (loaded from its results file) are
    /// **skipped** — their outcomes are returned as-is — and every newly
    /// computed point is streamed to the file as it completes, so a
    /// killed campaign restarts where it left off and the resumed file
    /// is byte-identical to an uninterrupted run's.
    ///
    /// The incident log covers newly computed points only (incidents of
    /// previously completed points lived in the killed run). Skipped
    /// points are counted in the `campaign.points_skipped` telemetry
    /// counter.
    pub fn sweep_points_supervised_resumed<E, C, F>(
        &self,
        f_mod_hz: &[f64],
        threads: usize,
        policy: &SupervisorPolicy,
        telemetry: &Collector,
        log: &CampaignLog<C>,
        capture: F,
    ) -> SupervisedPoints<C::Point>
    where
        E: PllEngine,
        C: PointCodec,
        C::Point: Clone + Sync,
        F: Fn(&mut Supervised<E>, f64) -> Result<C::Point, SweepPointError> + Sync,
    {
        self.sweep_points_supervised_resumed_observed(
            f_mod_hz, threads, policy, telemetry, log, None, capture,
        )
    }

    /// [`sweep_points_supervised_resumed`](Self::sweep_points_supervised_resumed)
    /// with an optional [`CampaignObserver`] attached: the sweep reports
    /// claims, outcomes (with wall times and incident trails), log
    /// flushes and skipped points into the observer as they happen, so a
    /// status server or `--progress` line can watch the run live.
    ///
    /// The observer is **read-only** — its hooks are relaxed atomic
    /// increments and flight-ring pushes plus wall-clock reads, none of
    /// which feed back into scheduling, retries or physics. A healthy
    /// run's results file is therefore byte-identical with and without
    /// an observer, at every thread count (pinned by
    /// `tests/campaign_observatory.rs`). Passing `None` is exactly the
    /// unobserved sweep.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_points_supervised_resumed_observed<E, C, F>(
        &self,
        f_mod_hz: &[f64],
        threads: usize,
        policy: &SupervisorPolicy,
        telemetry: &Collector,
        log: &CampaignLog<C>,
        observer: Option<&CampaignObserver>,
        capture: F,
    ) -> SupervisedPoints<C::Point>
    where
        E: PllEngine,
        C: PointCodec,
        C::Point: Clone + Sync,
        F: Fn(&mut Supervised<E>, f64) -> Result<C::Point, SweepPointError> + Sync,
    {
        let missing: Vec<usize> = (0..f_mod_hz.len())
            .filter(|&i| !log.is_completed(i))
            .collect();
        if telemetry.is_enabled() {
            telemetry.add(
                "campaign.points_skipped",
                (f_mod_hz.len() - missing.len()) as u64,
            );
        }
        if let Some(obs) = observer {
            obs.on_skipped(f_mod_hz.len() - missing.len());
        }
        let snapshot = if missing.is_empty() {
            None
        } else {
            self.supervised_snapshot::<E>(policy, telemetry)
        };
        let computed = par_try_map_points_worker_observed(
            &missing,
            threads,
            telemetry,
            |worker, _, &index| {
                let f_mod = f_mod_hz[index];
                if let Some(obs) = observer {
                    obs.on_claim(worker, index);
                }
                let point_start = std::time::Instant::now();
                let outcome = supervised_point::<E, _, _>(
                    self,
                    snapshot.as_ref(),
                    policy,
                    f_mod,
                    telemetry,
                    |pll| capture(pll, f_mod),
                );
                log.record(index, &outcome.result);
                if let Some(obs) = observer {
                    obs.on_outcome(worker, index, &outcome, point_start.elapsed().as_secs_f64());
                    obs.on_flush(worker, index);
                }
                Ok(outcome)
            },
        );
        let mut fresh: std::collections::BTreeMap<
            usize,
            Result<PointOutcome<C::Point>, SweepPointError>,
        > = missing.iter().copied().zip(computed).collect();
        let mut points = Vec::with_capacity(f_mod_hz.len());
        let mut incidents = Vec::new();
        for (index, &f_mod) in f_mod_hz.iter().enumerate() {
            if let Some(loaded) = log.loaded(index) {
                points.push(loaded.clone());
                continue;
            }
            match fresh.remove(&index) {
                Some(Ok(point)) => {
                    incidents.extend(point.incidents);
                    points.push(point.result);
                }
                // A failure that escaped per-point containment: the
                // point never reached `log.record`, so write its
                // quarantined outcome here to keep the file's in-order
                // flusher moving.
                Some(Err(error)) => {
                    let incident = Incident {
                        f_mod_hz: f_mod,
                        attempt: 0,
                        action: IncidentAction::Quarantined,
                        error: error.clone(),
                    };
                    emit_incident(telemetry, &incident);
                    incidents.push(incident);
                    log.record(index, &Err(error.clone()));
                    if let Some(obs) = observer {
                        obs.on_escaped_quarantine(index, &error);
                        obs.on_flush(0, index);
                    }
                    points.push(Err(error));
                }
                None => unreachable!("index {index} neither loaded nor computed"),
            }
        }
        SupervisedPoints { points, incidents }
    }

    /// Folds per-point executor outcomes into a [`SupervisedPoints`],
    /// quarantining any failure that escaped per-point containment.
    fn merge_outcomes<R>(
        f_mod_hz: &[f64],
        outcomes: Vec<Result<PointOutcome<R>, SweepPointError>>,
        telemetry: &Collector,
    ) -> SupervisedPoints<R> {
        let mut points = Vec::with_capacity(f_mod_hz.len());
        let mut incidents = Vec::new();
        for (outcome, &f_mod) in outcomes.into_iter().zip(f_mod_hz) {
            match outcome {
                Ok(point) => {
                    incidents.extend(point.incidents);
                    points.push(point.result);
                }
                Err(error) => {
                    let incident = Incident {
                        f_mod_hz: f_mod,
                        attempt: 0,
                        action: IncidentAction::Quarantined,
                        error: error.clone(),
                    };
                    emit_incident(telemetry, &incident);
                    incidents.push(incident);
                    points.push(Err(error));
                }
            }
        }
        SupervisedPoints { points, incidents }
    }

    /// Fans `walk` out over contiguous chunks of `f_mod_hz` with one
    /// fresh-or-restored engine **per worker** (the serial-walk shape:
    /// a worker walks its chunk of tones on one simulated loop).
    ///
    /// `walk` receives the worker's engine, its chunk index, and its
    /// chunk of modulation frequencies, and returns that chunk's
    /// results.
    pub fn sweep_chunks<E, R, F>(
        &self,
        f_mod_hz: &[f64],
        threads: usize,
        snapshot: Option<&E::Checkpoint>,
        telemetry: &Collector,
        walk: F,
    ) -> Vec<R>
    where
        E: PllEngine,
        R: Send,
        F: Fn(&mut E, usize, &[f64]) -> Vec<R> + Sync,
    {
        par_map_chunks_observed(f_mod_hz, threads, telemetry, |worker, chunk| {
            let mut pll = self.point_engine::<E>(snapshot);
            walk(&mut pll, worker, chunk)
        })
    }
}

/// A supervised sweep's output: one `Result` per requested point (input
/// order) plus the full incident log.
#[derive(Clone, Debug)]
pub struct SupervisedPoints<R> {
    /// Per-point outcomes, aligned with the requested `f_mod_hz`.
    pub points: Vec<Result<R, SweepPointError>>,
    /// Every retry/quarantine incident, in occurrence order per point.
    pub incidents: Vec<Incident>,
}

impl<R> SupervisedPoints<R> {
    /// Number of healthy points.
    pub fn ok_count(&self) -> usize {
        self.points.iter().filter(|p| p.is_ok()).count()
    }

    /// Number of quarantined points.
    pub fn quarantined_count(&self) -> usize {
        self.points.len() - self.ok_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavioral::CpPll;
    use crate::engine::ClosedFormPll;

    #[test]
    fn settle_time_matches_dominant_pole_heuristic() {
        let cfg = PllConfig::paper_table3();
        let params = cfg.analysis().dominant_params();
        let t = settle_time(&cfg);
        assert!((t * params.damping * params.omega_n - 8.0).abs() < 1e-12);
        // fn = 8 Hz, ζ = 0.43 → ≈ 0.37 s.
        assert!(t > 0.2 && t < 0.6, "settle {t}");
    }

    #[test]
    fn point_engine_paths_are_bit_identical() {
        let cfg = PllConfig::paper_table3();
        let scenario = Scenario::with_lock_settle(&cfg, 0.3);
        let tel = Collector::disabled();
        let snap = scenario.lock_checkpoint::<CpPll>(&tel);
        let mut fresh: CpPll = scenario.settle_fresh();
        let mut restored: CpPll = scenario.point_engine(Some(&snap));
        assert_eq!(
            PllEngine::time(&fresh).to_bits(),
            PllEngine::time(&restored).to_bits()
        );
        Scenario::stimulate(&mut fresh, FmStimulus::pure_sine(1_000.0, 10.0, 8.0), 0.4);
        Scenario::stimulate(
            &mut restored,
            FmStimulus::pure_sine(1_000.0, 10.0, 8.0),
            0.4,
        );
        assert_eq!(
            fresh.vco_phase_cycles().to_bits(),
            restored.vco_phase_cycles().to_bits()
        );
        assert_eq!(
            fresh.control_voltage().to_bits(),
            restored.control_voltage().to_bits()
        );
    }

    #[test]
    fn sweep_points_checkpoint_and_threads_invariant() {
        let cfg = PllConfig::paper_table3();
        let scenario = Scenario::with_lock_settle(&cfg, 0.05);
        let tones = [1.0, 4.0, 8.0, 12.0, 20.0];
        let tel = Collector::disabled();
        let capture = |pll: &mut ClosedFormPll, f_mod: f64| -> u64 {
            Scenario::stimulate(pll, FmStimulus::pure_sine(1_000.0, 10.0, f_mod), 0.1);
            let t = pll.time();
            pll.advance_to(t + 1.0 / f_mod);
            pll.vco_phase_cycles().to_bits()
        };
        let baseline =
            scenario.sweep_points::<ClosedFormPll, _, _>(&tones, 1, false, &tel, capture);
        for (threads, use_ckpt) in [(1, true), (4, false), (4, true)] {
            let got = scenario
                .sweep_points::<ClosedFormPll, _, _>(&tones, threads, use_ckpt, &tel, capture);
            assert_eq!(got, baseline, "threads {threads}, checkpoint {use_ckpt}");
        }
    }

    #[test]
    fn supervised_sweep_matches_unsupervised_on_healthy_points() {
        let cfg = PllConfig::paper_table3();
        let scenario = Scenario::with_lock_settle(&cfg, 0.05);
        let tones = [1.0, 4.0, 8.0, 12.0, 20.0];
        let tel = Collector::disabled();
        let capture = |pll: &mut ClosedFormPll, f_mod: f64| -> u64 {
            Scenario::stimulate(pll, FmStimulus::pure_sine(1_000.0, 10.0, f_mod), 0.1);
            let t = pll.time();
            pll.advance_to(t + 1.0 / f_mod);
            pll.vco_phase_cycles().to_bits()
        };
        let baseline = scenario.sweep_points::<ClosedFormPll, _, _>(&tones, 1, true, &tel, capture);
        let policy = SupervisorPolicy::default();
        for threads in [1usize, 4] {
            let supervised = scenario.sweep_points_supervised::<ClosedFormPll, _, _>(
                &tones,
                threads,
                &policy,
                &tel,
                |pll, f_mod| {
                    Scenario::stimulate(pll, FmStimulus::pure_sine(1_000.0, 10.0, f_mod), 0.1);
                    let t = pll.time();
                    pll.advance_to(t + 1.0 / f_mod);
                    Ok(pll.vco_phase_cycles().to_bits())
                },
            );
            assert!(supervised.incidents.is_empty(), "threads = {threads}");
            assert_eq!(supervised.quarantined_count(), 0);
            let got: Vec<u64> = supervised
                .points
                .into_iter()
                .map(|p| p.expect("healthy point"))
                .collect();
            assert_eq!(got, baseline, "threads = {threads}");
        }
    }

    #[test]
    fn supervised_sweep_quarantines_sick_points_only() {
        let cfg = PllConfig::paper_table3();
        let scenario = Scenario::with_lock_settle(&cfg, 0.01);
        let tones = [1.0, 4.0, 8.0];
        let tel = Collector::enabled();
        let policy = SupervisorPolicy {
            max_retries: 1,
            ..SupervisorPolicy::default()
        };
        let out = scenario.sweep_points_supervised::<ClosedFormPll, _, _>(
            &tones,
            2,
            &policy,
            &tel,
            |pll, f_mod| {
                if f_mod == 4.0 {
                    return Err(SweepPointError::DegenerateFit { f_mod_hz: f_mod });
                }
                let t = pll.time();
                pll.advance_to(t + 0.01);
                Ok(f_mod)
            },
        );
        assert_eq!(out.ok_count(), 2);
        assert_eq!(out.quarantined_count(), 1);
        assert!(out.points[1].is_err());
        // One retry then quarantine, both logged.
        assert_eq!(out.incidents.len(), 2);
        assert!(out
            .incidents
            .iter()
            .all(|i| i.f_mod_hz == 4.0 && i.error.kind() == "degenerate_fit"));
        let records = tel.drain();
        assert!(records.iter().any(|r| matches!(
            r,
            pllbist_telemetry::Record::Counter { name, .. } if name == "supervisor.quarantined"
        )));
    }

    #[test]
    fn sweep_chunks_covers_all_points_in_order() {
        let cfg = PllConfig::paper_table3();
        let scenario = Scenario::with_lock_settle(&cfg, 0.0);
        let tones = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let tel = Collector::disabled();
        let snap = scenario.lock_checkpoint::<ClosedFormPll>(&tel);
        let got = scenario.sweep_chunks::<ClosedFormPll, _, _>(
            &tones,
            3,
            Some(&snap),
            &tel,
            |_pll, _worker, chunk| chunk.to_vec(),
        );
        assert_eq!(got, tones.to_vec());
    }
}
