//! The shared settle→stimulate→capture sweep pipeline and the **single**
//! campaign runner every plan combination lowers onto.
//!
//! Every transfer-function measurement in this workspace — the Table 2
//! BIST monitor, the bench-style baseline, the fault campaigns — walks
//! the same skeleton: build a locked loop, let the lock transient die
//! out, program a stimulus, wait for the modulation steady state, then
//! capture. This module owns that skeleton once, for any
//! [`PllEngine`] backend, with **lock-state checkpointing**: the settle
//! phase runs once per configuration and each sweep point restores the
//! snapshot instead of re-locking from scratch.
//!
//! Since the [`crate::plan`] refactor there is exactly **one** execution
//! path: [`Scenario::run_points`] composes checkpointing, supervision,
//! work-stealing scheduling, campaign-log resume and observer wiring
//! from its arguments, and [`run_plan`] lowers a
//! [`CampaignPlan`] onto it. Feature combinations are options, not
//! separate functions, so they cannot diverge.
//!
//! None of the options change results on a healthy grid:
//! [`PllEngine::restore`] is bit-exact, supervision guardrails are
//! read-only, observers and telemetry only watch, and scheduling only
//! picks *which worker* computes a point. A run with every option
//! enabled is bitwise identical to the serial unsupervised baseline at
//! any thread count (pinned by `crates/sim/tests/plan_matrix.rs` and the
//! workspace's `checkpoint_determinism` test).

use crate::campaign::{CampaignLog, PointCodec};
use crate::config::PllConfig;
use crate::engine::PllEngine;
use crate::error::{CampaignError, SweepPointError};
use crate::observe::CampaignObserver;
use crate::parallel::par_try_map_points_worker;
use crate::plan::CampaignPlan;
use crate::sidecar::{LockSidecar, SidecarOutcome};
use crate::stimulus::FmStimulus;
use crate::supervisor::{
    emit_incident, supervised_point, Incident, IncidentAction, PointOutcome, Supervised,
    SupervisorPolicy,
};
use pllbist_telemetry::{Collector, Record};

/// The loop-settle-time heuristic, in seconds — the **single** workspace
/// definition (bench, monitor and transient-horizon logic all derive
/// from here).
///
/// A second-order loop's envelope decays as `exp(−ζ·ωn·t)`; after
/// `8/(ζ·ωn)` the lock transient is at `e⁻⁸ ≈ 3×10⁻⁴` of its initial
/// amplitude, comfortably below the BIST counters' quantisation floor.
/// The `max(1e-9)` guard keeps degenerate (near-undamped) configurations
/// finite rather than dividing by zero.
pub fn settle_time(config: &PllConfig) -> f64 {
    let params = config.analysis().dominant_params();
    8.0 / (params.damping * params.omega_n).max(1e-9)
}

/// One measurement scenario: a configuration plus the lock-settle wait
/// its engines start from.
///
/// `Scenario` is the factory the sweep paths share. It builds engines at
/// their *settled* lock point — either from scratch
/// ([`settle_fresh`](Self::settle_fresh)) or by restoring a
/// [`lock_checkpoint`](Self::lock_checkpoint) — and fans sweeps out over
/// threads with the workspace's bitwise-determinism contract intact.
#[derive(Clone, Copy, Debug)]
pub struct Scenario<'a> {
    config: &'a PllConfig,
    lock_settle_secs: f64,
}

impl<'a> Scenario<'a> {
    /// A scenario whose lock-settle wait is the documented
    /// [`settle_time`] heuristic.
    pub fn new(config: &'a PllConfig) -> Self {
        Self {
            config,
            lock_settle_secs: settle_time(config),
        }
    }

    /// A scenario with an explicit lock-settle wait (the monitor's
    /// `loop_settle_secs` knob).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn with_lock_settle(config: &'a PllConfig, secs: f64) -> Self {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "lock settle must be non-negative"
        );
        Self {
            config,
            lock_settle_secs: secs,
        }
    }

    /// The configuration this scenario measures.
    pub fn config(&self) -> &'a PllConfig {
        self.config
    }

    /// The lock-settle wait in seconds.
    pub fn lock_settle_secs(&self) -> f64 {
        self.lock_settle_secs
    }

    /// Builds a locked engine and runs the lock-settle wait from scratch.
    pub fn settle_fresh<E: PllEngine>(&self) -> E {
        let mut pll = E::new_locked(self.config);
        let t0 = pll.time();
        pll.advance_to(t0 + self.lock_settle_secs);
        pll
    }

    /// Settles one engine from scratch and snapshots it — the per-config
    /// cost a checkpointed sweep pays exactly once.
    pub fn lock_checkpoint<E: PllEngine>(&self, telemetry: &Collector) -> E::Checkpoint {
        let _span = pllbist_telemetry::span!(telemetry, "scenario.checkpoint");
        self.settle_fresh::<E>().checkpoint()
    }

    /// An engine ready for one sweep point: restored from `snapshot` when
    /// one is given, settled from scratch otherwise. Both paths yield
    /// bit-identical state.
    pub fn point_engine<E: PllEngine>(&self, snapshot: Option<&E::Checkpoint>) -> E {
        match snapshot {
            Some(snap) => {
                let mut pll = E::new_locked(self.config);
                pll.restore(snap);
                pll
            }
            None => self.settle_fresh(),
        }
    }

    /// The stimulate stage: programs `stimulus` phase-continuously and
    /// waits `settle_secs` for the modulation steady state.
    pub fn stimulate<E: PllEngine>(pll: &mut E, stimulus: FmStimulus, settle_secs: f64) {
        pll.set_stimulus(stimulus);
        let t = pll.time();
        pll.advance_to(t + settle_secs);
    }

    /// Settles one engine and snapshots it, containing a divergent
    /// settle: on failure the snapshot is dropped and each point settles
    /// (and fails, and is quarantined) individually. The wrapper carries
    /// `policy`'s guardrails when supervision is on and is a plain
    /// pass-through otherwise — bit-identical state either way on a
    /// healthy configuration.
    fn guarded_snapshot<E: PllEngine>(
        &self,
        policy: Option<&SupervisorPolicy>,
        telemetry: &Collector,
    ) -> Option<E::Checkpoint> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = pllbist_telemetry::span!(telemetry, "scenario.checkpoint");
            let mut pll = match policy {
                Some(policy) => Supervised::new(E::new_locked(self.config), policy),
                None => Supervised::unsupervised(E::new_locked(self.config)),
            };
            let t0 = pll.time();
            pll.advance_to(t0 + self.lock_settle_secs);
            pll.checkpoint()
        }))
        .map_err(crate::error::rethrow_if_kill)
        .ok()
    }

    /// **The** campaign runner: every sweep in the workspace — bench,
    /// monitor grid, fault campaigns, every ablation — executes here,
    /// with each orthogonal feature composed from an argument instead of
    /// a dedicated entry point:
    ///
    /// * `threads` — work-stealing point schedule
    ///   ([`par_try_map_points_worker`]): a shared atomic work index, so
    ///   a straggler (e.g. a retry cascade) delays only the worker that
    ///   claimed it. `1` is the serial baseline schedule.
    /// * `checkpoint` — settle once and restore per point ([`restore`]
    ///   is bit-exact) vs settle every point from scratch.
    /// * `policy` — `Some`: guardrails, panic isolation and the
    ///   deterministic quarantine-and-retry ladder per point
    ///   ([`supervised_point`]); `None`: one attempt per point on an
    ///   unguarded engine (panic isolation still applies, so a sick
    ///   point quarantines instead of unwinding the sweep).
    /// * `log` — campaign-file resume: completed points load from the
    ///   file (counted in `campaign.points_skipped`), new points stream
    ///   to it in index order as they land.
    /// * `sidecar` — persisted lock-state cache: when checkpointing, a
    ///   valid sidecar replaces the settle transient entirely
    ///   (`campaign.sidecar_hits`), a missing or rejected one
    ///   (`campaign.sidecar_rejects`) falls back to settling — and the
    ///   fresh snapshot is stored for the next restart. Restores are
    ///   bit-exact, so the sidecar never changes results.
    /// * `observer` — live claims/outcomes/flushes for a status server
    ///   or progress line; read-only by construction.
    ///
    /// On a healthy grid the capture sequence — and therefore every
    /// result bit — is identical across **all** combinations at every
    /// thread count; the options differ only in scheduling, fault
    /// containment and what gets recorded on the side.
    ///
    /// [`restore`]: PllEngine::restore
    #[allow(clippy::too_many_arguments)]
    pub fn run_points<E, C, F>(
        &self,
        f_mod_hz: &[f64],
        threads: usize,
        checkpoint: bool,
        policy: Option<&SupervisorPolicy>,
        telemetry: &Collector,
        log: Option<&CampaignLog<C>>,
        sidecar: Option<&LockSidecar>,
        observer: Option<&CampaignObserver>,
        capture: F,
    ) -> SupervisedPoints<C::Point>
    where
        E: PllEngine,
        C: PointCodec,
        C::Point: Clone + Sync,
        F: Fn(&mut Supervised<E>, f64) -> Result<C::Point, SweepPointError> + Sync,
    {
        let missing: Vec<usize> = match log {
            Some(log) => (0..f_mod_hz.len())
                .filter(|&i| !log.is_completed(i))
                .collect(),
            None => (0..f_mod_hz.len()).collect(),
        };
        let skipped = f_mod_hz.len() - missing.len();
        if log.is_some() && telemetry.is_enabled() {
            telemetry.add("campaign.points_skipped", skipped as u64);
        }
        if let Some(obs) = observer {
            obs.on_skipped(skipped);
        }
        let snapshot = if missing.is_empty() || !checkpoint {
            None
        } else {
            let cached = sidecar.and_then(|sc| match sc.load::<E>() {
                SidecarOutcome::Hit(snap) => {
                    if telemetry.is_enabled() {
                        telemetry.add("campaign.sidecar_hits", 1);
                    }
                    if let Some(obs) = observer {
                        obs.note("sidecar hit: settle skipped");
                    }
                    Some(snap)
                }
                SidecarOutcome::Rejected(reason) => {
                    if telemetry.is_enabled() {
                        telemetry.add("campaign.sidecar_rejects", 1);
                    }
                    if let Some(obs) = observer {
                        obs.note(&format!("sidecar rejected: {reason}"));
                    }
                    None
                }
                SidecarOutcome::Absent => None,
            });
            match cached {
                Some(snap) => Some(snap),
                None => {
                    let snap = self.guarded_snapshot::<E>(policy, telemetry);
                    if let (Some(sc), Some(snap)) = (sidecar, snap.as_ref()) {
                        // Best-effort cache write: an IO failure here
                        // costs the next restart a settle, nothing more.
                        let _ = sc.store::<E>(snap);
                    }
                    snap
                }
            }
        };
        let computed =
            par_try_map_points_worker(&missing, threads, telemetry, |worker, _, &index| {
                let f_mod = f_mod_hz[index];
                if let Some(obs) = observer {
                    obs.on_claim(worker, index);
                }
                let point_start = std::time::Instant::now();
                let outcome = supervised_point::<E, _, _>(
                    self,
                    snapshot.as_ref(),
                    policy,
                    f_mod,
                    telemetry,
                    |pll| capture(pll, f_mod),
                );
                if let Some(log) = log {
                    log.record(index, &outcome.result);
                }
                if let Some(obs) = observer {
                    obs.on_outcome(worker, index, &outcome, point_start.elapsed().as_secs_f64());
                    if log.is_some() {
                        obs.on_flush(worker, index);
                    }
                }
                Ok(outcome)
            });
        let mut fresh: std::collections::BTreeMap<
            usize,
            Result<PointOutcome<C::Point>, SweepPointError>,
        > = missing.iter().copied().zip(computed).collect();
        let mut points = Vec::with_capacity(f_mod_hz.len());
        let mut incidents = Vec::new();
        for (index, &f_mod) in f_mod_hz.iter().enumerate() {
            if let Some(loaded) = log.and_then(|log| log.loaded(index)) {
                points.push(loaded.clone());
                continue;
            }
            match fresh.remove(&index) {
                Some(Ok(point)) => {
                    incidents.extend(point.incidents);
                    points.push(point.result);
                }
                // A failure that escaped per-point containment: the
                // point never reached `log.record`, so write its
                // quarantined outcome here to keep the file's in-order
                // flusher moving.
                Some(Err(error)) => {
                    let incident = Incident {
                        f_mod_hz: f_mod,
                        attempt: 0,
                        action: IncidentAction::Quarantined,
                        error: error.clone(),
                    };
                    if policy.is_some() {
                        emit_incident(telemetry, &incident);
                    }
                    incidents.push(incident);
                    if let Some(log) = log {
                        log.record(index, &Err(error.clone()));
                    }
                    if let Some(obs) = observer {
                        obs.on_escaped_quarantine(index, &error);
                        if log.is_some() {
                            obs.on_flush(0, index);
                        }
                    }
                    points.push(Err(error));
                }
                None => unreachable!("index {index} neither loaded nor computed"),
            }
        }
        SupervisedPoints { points, incidents }
    }
}

/// A completed plan run: per-point outcomes in input order, the incident
/// log, and the drained telemetry.
#[derive(Clone, Debug)]
pub struct PlanOutcome<R> {
    /// Per-point outcomes, aligned with the requested `f_mod_hz`.
    pub points: Vec<Result<R, SweepPointError>>,
    /// Every retry/quarantine incident, in occurrence order per point.
    pub incidents: Vec<Incident>,
    /// Drained telemetry (empty when the plan's telemetry is off).
    pub telemetry: Vec<Record>,
}

/// Lowers a [`CampaignPlan`] onto [`Scenario::run_points`]: builds the
/// telemetry collector, opens the resumable campaign log when the plan
/// names one (digest = [`CampaignPlan::digest`] over `workload_salt`),
/// runs the sweep with every plan option composed in, and closes the log.
///
/// `capture` receives the per-point engine, the point's modulation
/// frequency and the run's collector (for measurement-layer spans and
/// counters — e.g. `bench.point`).
///
/// # Errors
///
/// [`CampaignError`] when the plan's results file belongs to a different
/// campaign ([`CampaignError::HeaderMismatch`]), is corrupted before its
/// final line, or the filesystem fails. Plans without a resume file
/// cannot fail this way.
pub fn run_plan<E, C, F>(
    plan: &CampaignPlan<E>,
    f_mod_hz: &[f64],
    codec: C,
    workload_salt: &str,
    capture: F,
) -> Result<PlanOutcome<C::Point>, CampaignError>
where
    E: PllEngine,
    C: PointCodec,
    C::Point: Clone + Sync,
    F: Fn(&mut Supervised<E>, f64, &Collector) -> Result<C::Point, SweepPointError> + Sync,
{
    let telemetry = Collector::from_config(plan.telemetry_config());
    let digest = plan.digest(f_mod_hz, workload_salt);
    let log = match plan.resume_path() {
        Some(path) => Some(CampaignLog::open(
            path,
            codec,
            digest.clone(),
            f_mod_hz.len(),
        )?),
        None => None,
    };
    let sidecar = match plan.resume_path() {
        Some(path) if plan.sidecar_enabled() => Some(LockSidecar::for_results_file(path, digest)),
        _ => None,
    };
    let scenario = plan.scenario();
    let swept = scenario.run_points::<E, C, _>(
        f_mod_hz,
        plan.schedule().threads(),
        plan.checkpoint_enabled(),
        plan.supervision(),
        &telemetry,
        log.as_ref(),
        sidecar.as_ref(),
        plan.observer(),
        |pll, f_mod| capture(pll, f_mod, &telemetry),
    );
    if let Some(log) = &log {
        log.finish(true)?;
    }
    Ok(PlanOutcome {
        points: swept.points,
        incidents: swept.incidents,
        telemetry: telemetry.drain(),
    })
}

/// A supervised sweep's output: one `Result` per requested point (input
/// order) plus the full incident log.
#[derive(Clone, Debug)]
pub struct SupervisedPoints<R> {
    /// Per-point outcomes, aligned with the requested `f_mod_hz`.
    pub points: Vec<Result<R, SweepPointError>>,
    /// Every retry/quarantine incident, in occurrence order per point.
    pub incidents: Vec<Incident>,
}

impl<R> SupervisedPoints<R> {
    /// Number of healthy points.
    pub fn ok_count(&self) -> usize {
        self.points.iter().filter(|p| p.is_ok()).count()
    }

    /// Number of quarantined points.
    pub fn quarantined_count(&self) -> usize {
        self.points.len() - self.ok_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavioral::CpPll;
    use crate::campaign::NullCodec;
    use crate::engine::ClosedFormPll;

    #[test]
    fn settle_time_matches_dominant_pole_heuristic() {
        let cfg = PllConfig::paper_table3();
        let params = cfg.analysis().dominant_params();
        let t = settle_time(&cfg);
        assert!((t * params.damping * params.omega_n - 8.0).abs() < 1e-12);
        // fn = 8 Hz, ζ = 0.43 → ≈ 0.37 s.
        assert!(t > 0.2 && t < 0.6, "settle {t}");
    }

    #[test]
    fn point_engine_paths_are_bit_identical() {
        let cfg = PllConfig::paper_table3();
        let scenario = Scenario::with_lock_settle(&cfg, 0.3);
        let tel = Collector::disabled();
        let snap = scenario.lock_checkpoint::<CpPll>(&tel);
        let mut fresh: CpPll = scenario.settle_fresh();
        let mut restored: CpPll = scenario.point_engine(Some(&snap));
        assert_eq!(
            PllEngine::time(&fresh).to_bits(),
            PllEngine::time(&restored).to_bits()
        );
        Scenario::stimulate(&mut fresh, FmStimulus::pure_sine(1_000.0, 10.0, 8.0), 0.4);
        Scenario::stimulate(
            &mut restored,
            FmStimulus::pure_sine(1_000.0, 10.0, 8.0),
            0.4,
        );
        assert_eq!(
            fresh.vco_phase_cycles().to_bits(),
            restored.vco_phase_cycles().to_bits()
        );
        assert_eq!(
            fresh.control_voltage().to_bits(),
            restored.control_voltage().to_bits()
        );
    }

    fn capture_bits(
        pll: &mut Supervised<ClosedFormPll>,
        f_mod: f64,
    ) -> Result<u64, SweepPointError> {
        Scenario::stimulate(pll, FmStimulus::pure_sine(1_000.0, 10.0, f_mod), 0.1);
        let t = pll.time();
        pll.advance_to(t + 1.0 / f_mod);
        Ok(pll.vco_phase_cycles().to_bits())
    }

    #[test]
    fn runner_checkpoint_and_threads_invariant() {
        let cfg = PllConfig::paper_table3();
        let scenario = Scenario::with_lock_settle(&cfg, 0.05);
        let tones = [1.0, 4.0, 8.0, 12.0, 20.0];
        let tel = Collector::disabled();
        let baseline = scenario
            .run_points::<ClosedFormPll, NullCodec<u64>, _>(
                &tones,
                1,
                false,
                None,
                &tel,
                None,
                None,
                None,
                capture_bits,
            )
            .points;
        for (threads, use_ckpt) in [(1, true), (4, false), (4, true)] {
            let got = scenario
                .run_points::<ClosedFormPll, NullCodec<u64>, _>(
                    &tones,
                    threads,
                    use_ckpt,
                    None,
                    &tel,
                    None,
                    None,
                    None,
                    capture_bits,
                )
                .points;
            assert_eq!(got, baseline, "threads {threads}, checkpoint {use_ckpt}");
        }
    }

    #[test]
    fn supervised_runner_matches_unsupervised_on_healthy_points() {
        let cfg = PllConfig::paper_table3();
        let scenario = Scenario::with_lock_settle(&cfg, 0.05);
        let tones = [1.0, 4.0, 8.0, 12.0, 20.0];
        let tel = Collector::disabled();
        let baseline = scenario
            .run_points::<ClosedFormPll, NullCodec<u64>, _>(
                &tones,
                1,
                true,
                None,
                &tel,
                None,
                None,
                None,
                capture_bits,
            )
            .points;
        let policy = SupervisorPolicy::default();
        for threads in [1usize, 4] {
            let supervised = scenario.run_points::<ClosedFormPll, NullCodec<u64>, _>(
                &tones,
                threads,
                true,
                Some(&policy),
                &tel,
                None,
                None,
                None,
                capture_bits,
            );
            assert!(supervised.incidents.is_empty(), "threads = {threads}");
            assert_eq!(supervised.quarantined_count(), 0);
            assert_eq!(supervised.points, baseline, "threads = {threads}");
        }
    }

    #[test]
    fn supervised_runner_quarantines_sick_points_only() {
        let cfg = PllConfig::paper_table3();
        let scenario = Scenario::with_lock_settle(&cfg, 0.01);
        let tones = [1.0, 4.0, 8.0];
        let tel = Collector::enabled();
        let policy = SupervisorPolicy {
            max_retries: 1,
            ..SupervisorPolicy::default()
        };
        let out = scenario.run_points::<ClosedFormPll, NullCodec<f64>, _>(
            &tones,
            2,
            true,
            Some(&policy),
            &tel,
            None,
            None,
            None,
            |pll, f_mod| {
                if f_mod == 4.0 {
                    return Err(SweepPointError::DegenerateFit { f_mod_hz: f_mod });
                }
                let t = pll.time();
                pll.advance_to(t + 0.01);
                Ok(f_mod)
            },
        );
        assert_eq!(out.ok_count(), 2);
        assert_eq!(out.quarantined_count(), 1);
        assert!(out.points[1].is_err());
        // One retry then quarantine, both logged.
        assert_eq!(out.incidents.len(), 2);
        assert!(out
            .incidents
            .iter()
            .all(|i| i.f_mod_hz == 4.0 && i.error.kind() == "degenerate_fit"));
        let records = tel.drain();
        assert!(records.iter().any(|r| matches!(
            r,
            pllbist_telemetry::Record::Counter { name, .. } if name == "supervisor.quarantined"
        )));
    }

    #[test]
    fn unsupervised_runner_contains_failures_without_supervisor_noise() {
        // policy: None still gets panic isolation and typed quarantine,
        // but exactly one attempt and no supervisor.* telemetry.
        let cfg = PllConfig::paper_table3();
        let scenario = Scenario::with_lock_settle(&cfg, 0.01);
        let tones = [1.0, 4.0];
        let tel = Collector::enabled();
        let out = scenario.run_points::<ClosedFormPll, NullCodec<f64>, _>(
            &tones,
            1,
            true,
            None,
            &tel,
            None,
            None,
            None,
            |pll, f_mod| {
                if f_mod == 4.0 {
                    return Err(SweepPointError::DegenerateFit { f_mod_hz: f_mod });
                }
                let t = pll.time();
                pll.advance_to(t + 0.01);
                Ok(f_mod)
            },
        );
        assert_eq!(out.ok_count(), 1);
        assert_eq!(out.quarantined_count(), 1);
        // The failure is reported in the incident log…
        assert_eq!(out.incidents.len(), 1);
        assert_eq!(out.incidents[0].action, IncidentAction::Quarantined);
        // …but no retries happen and no supervisor telemetry is emitted
        // (the unsupervised baseline stays clean).
        let records = tel.drain();
        assert!(!records.iter().any(|r| matches!(
            r,
            pllbist_telemetry::Record::Counter { name, .. } if name.starts_with("supervisor.")
        )));
    }
}
