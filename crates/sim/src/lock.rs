//! Lock detection.
//!
//! The paper's test sequence presumes "the PLL is initially locked"
//! (Table 2). Real BIST hardware gates the measurement on a **lock
//! detector**: a window counter that watches the reference/feedback edge
//! skew and declares lock after `m` consecutive cycles inside a phase
//! window — exactly the structure modelled by [`LockDetector`]. The
//! monitor can use it to qualify the device before sweeping.

use crate::behavioral::LoopEvent;
use crate::engine::PllEngine;
use crate::error::SweepPointError;

/// Edge-skew based lock detector (window comparator + consecutive-cycle
/// counter).
///
/// # Example
///
/// ```
/// use pllbist_sim::lock::LockDetector;
/// use pllbist_sim::behavioral::LoopEvent;
///
/// let mut det = LockDetector::new(100e-6, 8);
/// for k in 0..10 {
///     let t = k as f64 * 1e-3;
///     det.on_event(LoopEvent::RefEdge { t });
///     det.on_event(LoopEvent::FbEdge { t: t + 20e-6 }); // 20 µs skew
/// }
/// assert!(det.is_locked());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LockDetector {
    window_secs: f64,
    required_cycles: u32,
    consecutive: u32,
    armed: Option<(f64, bool)>, // (time, is_ref)
    locked: bool,
}

impl LockDetector {
    /// Creates a detector that declares lock after `required_cycles`
    /// consecutive edge pairs with |skew| ≤ `window_secs`.
    ///
    /// # Panics
    ///
    /// Panics unless the window is positive/finite and at least one cycle
    /// is required.
    pub fn new(window_secs: f64, required_cycles: u32) -> Self {
        assert!(
            window_secs > 0.0 && window_secs.is_finite(),
            "lock window must be positive"
        );
        assert!(
            required_cycles >= 1,
            "at least one qualifying cycle required"
        );
        Self {
            window_secs,
            required_cycles,
            consecutive: 0,
            armed: None,
            locked: false,
        }
    }

    /// The phase window in seconds.
    pub fn window_secs(&self) -> f64 {
        self.window_secs
    }

    /// `true` once lock has been declared (sticky until [`LockDetector::reset`]
    /// or an out-of-window cycle).
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Consecutive in-window cycles so far.
    pub fn consecutive_cycles(&self) -> u32 {
        self.consecutive
    }

    /// Consecutive in-window cycles needed to declare lock.
    pub fn required_cycles(&self) -> u32 {
        self.required_cycles
    }

    /// Feeds one loop event; returns `true` exactly when lock is first
    /// declared.
    pub fn on_event(&mut self, event: LoopEvent) -> bool {
        let (t, is_ref) = match event {
            LoopEvent::RefEdge { t } => (t, true),
            LoopEvent::FbEdge { t } => (t, false),
        };
        match self.armed {
            None => {
                self.armed = Some((t, is_ref));
                false
            }
            Some((t0, was_ref)) if was_ref != is_ref => {
                // Completed a ref/fb pair: judge the skew.
                self.armed = None;
                if (t - t0).abs() <= self.window_secs {
                    self.consecutive = self.consecutive.saturating_add(1);
                    if self.consecutive >= self.required_cycles && !self.locked {
                        self.locked = true;
                        return true;
                    }
                } else {
                    self.consecutive = 0;
                    self.locked = false;
                }
                false
            }
            Some(_) => {
                // Same-input edge twice (cycle slip): definitely not locked.
                self.armed = Some((t, is_ref));
                self.consecutive = 0;
                self.locked = false;
                false
            }
        }
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.consecutive = 0;
        self.armed = None;
        self.locked = false;
    }
}

/// Runs the loop until the lock detector declares lock, or `timeout`
/// seconds elapse. Returns the lock time.
///
/// Generic over [`PllEngine`], so the qualification runs identically on
/// the behavioural engine, the gate-level co-simulation, and supervised
/// wrappers.
///
/// # Errors
///
/// [`SweepPointError::LockTimeout`] when the timeout expires without
/// lock, carrying the detector's progress (consecutive vs. required
/// qualifying cycles) for the incident record.
pub fn wait_for_lock<E: PllEngine>(
    pll: &mut E,
    detector: &mut LockDetector,
    timeout: f64,
) -> Result<f64, SweepPointError> {
    let t_end = pll.time() + timeout;
    let chunk = 10.0 / pll.config().f_ref_hz;
    pll.collect_events(true);
    while pll.time() < t_end {
        pll.advance_to((pll.time() + chunk).min(t_end));
        for e in pll.take_events() {
            if detector.on_event(e) {
                pll.collect_events(false);
                pll.take_events();
                return Ok(pll.time());
            }
        }
    }
    pll.collect_events(false);
    pll.take_events();
    Err(SweepPointError::LockTimeout {
        timeout_secs: timeout,
        consecutive_cycles: detector.consecutive_cycles(),
        required_cycles: detector.required_cycles(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PllConfig;
    use crate::stimulus::FmStimulus;

    #[test]
    fn declares_lock_on_consistent_small_skew() {
        let mut det = LockDetector::new(50e-6, 5);
        let mut declared_at = None;
        for k in 0..8 {
            let t = k as f64 * 1e-3;
            det.on_event(LoopEvent::RefEdge { t });
            if det.on_event(LoopEvent::FbEdge { t: t + 10e-6 }) {
                declared_at = Some(k);
            }
        }
        assert!(det.is_locked());
        assert_eq!(declared_at, Some(4), "after the 5th qualifying pair");
    }

    #[test]
    fn large_skew_resets_the_count() {
        let mut det = LockDetector::new(50e-6, 3);
        for k in 0..2 {
            let t = k as f64 * 1e-3;
            det.on_event(LoopEvent::RefEdge { t });
            det.on_event(LoopEvent::FbEdge { t: t + 10e-6 });
        }
        assert_eq!(det.consecutive_cycles(), 2);
        // One bad cycle.
        det.on_event(LoopEvent::RefEdge { t: 2e-3 });
        det.on_event(LoopEvent::FbEdge { t: 2e-3 + 400e-6 });
        assert_eq!(det.consecutive_cycles(), 0);
        assert!(!det.is_locked());
    }

    #[test]
    fn cycle_slip_unlocks() {
        let mut det = LockDetector::new(50e-6, 2);
        det.on_event(LoopEvent::RefEdge { t: 0.0 });
        det.on_event(LoopEvent::FbEdge { t: 1e-6 });
        det.on_event(LoopEvent::RefEdge { t: 1e-3 });
        det.on_event(LoopEvent::FbEdge { t: 1e-3 + 1e-6 });
        assert!(det.is_locked());
        // Two reference edges in a row: slip.
        det.on_event(LoopEvent::RefEdge { t: 2e-3 });
        det.on_event(LoopEvent::RefEdge { t: 3e-3 });
        assert!(!det.is_locked());
    }

    #[test]
    fn preset_loop_locks_quickly() {
        let cfg = PllConfig::paper_table3();
        let mut pll = crate::behavioral::CpPll::new_locked(&cfg);
        let mut det = LockDetector::new(100e-6, 16);
        let t = wait_for_lock(&mut pll, &mut det, 1.0).expect("preset loop locks");
        assert!(t < 0.2, "locked at {t}");
    }

    #[test]
    fn cold_loop_locks_within_acquisition_time() {
        let cfg = PllConfig::paper_table3();
        let mut pll = crate::behavioral::CpPll::new(&cfg);
        let mut det = LockDetector::new(100e-6, 16);
        let t = wait_for_lock(&mut pll, &mut det, 5.0).expect("acquires");
        assert!(t > 0.05, "cold start is not instant: {t}");
    }

    #[test]
    fn detuned_loop_does_not_lock_within_timeout() {
        // Reference far outside anything the loop can follow quickly.
        let cfg = PllConfig::paper_table3();
        let mut pll = crate::behavioral::CpPll::new_locked(&cfg);
        pll.set_stimulus(FmStimulus::constant(1_000.0, 150.0));
        let mut det = LockDetector::new(20e-6, 64);
        let err = wait_for_lock(&mut pll, &mut det, 0.05).expect_err("cannot lock");
        match &err {
            SweepPointError::LockTimeout {
                timeout_secs,
                consecutive_cycles,
                required_cycles,
            } => {
                assert_eq!(*timeout_secs, 0.05);
                assert_eq!(*required_cycles, 64);
                assert!(*consecutive_cycles < 64);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.is_retryable(), "lock timeouts retry with longer settle");
    }

    #[test]
    #[should_panic(expected = "lock window must be positive")]
    fn bad_window_rejected() {
        let _ = LockDetector::new(0.0, 4);
    }
}
