//! The composable campaign description: one [`CampaignPlan`] instead of
//! a combinatorial family of suffixed entry points.
//!
//! Eight growth steps (engines, checkpointing, supervision,
//! work-stealing, resume, observation) each used to multiply the sweep
//! API surface by two (`sweep_points_supervised_resumed_observed`,
//! `measure_sweep_resumable_on`, …). The feature axes are genuinely
//! orthogonal — the engine axis is the closed-form-vs-micro-stepped
//! model split, the supervision axis types the never-locking regimes as
//! outcomes — so they are expressed here as **options on one plan**:
//!
//! ```no_run
//! use pllbist_sim::config::PllConfig;
//! use pllbist_sim::event_driven::EventDrivenCpPll;
//! use pllbist_sim::plan::{CampaignPlan, Scheduler};
//! use pllbist_sim::supervisor::SupervisorPolicy;
//!
//! let plan = CampaignPlan::new(PllConfig::paper_table3())
//!     .engine::<EventDrivenCpPll>()
//!     .checkpoint(true)
//!     .supervised(SupervisorPolicy::default())
//!     .scheduler(Scheduler::WorkStealing { threads: 8 })
//!     .resume_from("campaign.jsonl");
//! ```
//!
//! Every combination lowers onto the **single** runner
//! ([`crate::scenario::run_plan`] /
//! [`crate::scenario::Scenario::run_points`]); there is no per-feature
//! code path left to diverge. The standing invariant carries over: on a
//! healthy grid, every plan combination is bitwise identical to the
//! serial unsupervised baseline at every thread count (pinned by
//! `crates/sim/tests/plan_matrix.rs`).
//!
//! A plan is also the **submission payload** of the future campaign
//! service (ROADMAP item 2): [`CampaignPlan::header_line`] serialises
//! everything result-affecting — config digest, grid size, engine
//! backend, supervision policy — into a campaign-shaped JSONL header,
//! and [`CampaignPlan::from_header`] round-trips it, refusing backend or
//! digest mismatches exactly like a resumed results file. Scheduling
//! knobs (threads, checkpoint reuse, telemetry, observers) are
//! deliberately **excluded from the digest**: they never change results,
//! so a campaign killed on 16 threads may resume on 1.

use crate::behavioral::CpPll;
use crate::campaign::{
    bits_hex, config_digest, f64_from_bits_hex, json_bool_field, json_str_field, json_u64_field,
};
use crate::config::PllConfig;
use crate::engine::PllEngine;
use crate::error::CampaignError;
use crate::observe::CampaignObserver;
use crate::scenario::Scenario;
use crate::supervisor::SupervisorPolicy;
use pllbist_telemetry::TelemetryConfig;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// How sweep points are distributed over workers.
///
/// Both variants run the same work-stealing executor
/// ([`crate::parallel::par_map_points_worker`]); `Serial` is exactly the
/// one-worker schedule (no threads spawned, points claimed in input
/// order), kept as a named variant because serial runs are the
/// bit-exactness baseline every parallel schedule is compared against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// One worker on the caller's thread.
    Serial,
    /// Work-stealing over `threads` workers (`0` = one per core).
    WorkStealing {
        /// Worker threads: `0` = auto ([`crate::parallel::available_parallelism`]).
        threads: usize,
    },
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::WorkStealing { threads: 0 }
    }
}

impl Scheduler {
    /// The `threads` knob this schedule lowers to (`Serial` = 1).
    pub fn threads(self) -> usize {
        match self {
            Scheduler::Serial => 1,
            Scheduler::WorkStealing { threads } => threads,
        }
    }
}

/// A complete, self-contained description of one sweep campaign:
/// engine backend, configuration, lock-settle wait, checkpoint reuse,
/// supervision, scheduling, resume file and observer.
///
/// Construct with [`CampaignPlan::new`] and chain the builder methods;
/// execute by handing the plan to [`crate::scenario::run_plan`], the
/// bench layer ([`crate::bench_measure::run_sweep`]) or the monitor
/// (`TransferFunctionMonitor::measure`). See the [module docs](self)
/// for the digest/serialisation contract.
pub struct CampaignPlan<E: PllEngine = CpPll> {
    config: PllConfig,
    lock_settle_secs: Option<f64>,
    checkpoint: bool,
    sidecar: bool,
    supervision: Option<SupervisorPolicy>,
    scheduler: Scheduler,
    resume_path: Option<PathBuf>,
    observer: Option<Arc<CampaignObserver>>,
    telemetry: TelemetryConfig,
    _engine: PhantomData<fn() -> E>,
}

impl<E: PllEngine> Clone for CampaignPlan<E> {
    fn clone(&self) -> Self {
        Self {
            config: self.config.clone(),
            lock_settle_secs: self.lock_settle_secs,
            checkpoint: self.checkpoint,
            sidecar: self.sidecar,
            supervision: self.supervision.clone(),
            scheduler: self.scheduler,
            resume_path: self.resume_path.clone(),
            observer: self.observer.clone(),
            telemetry: self.telemetry.clone(),
            _engine: PhantomData,
        }
    }
}

impl<E: PllEngine> std::fmt::Debug for CampaignPlan<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignPlan")
            .field("backend", &E::backend_name())
            .field("lock_settle_secs", &self.lock_settle_secs)
            .field("checkpoint", &self.checkpoint)
            .field("sidecar", &self.sidecar)
            .field("supervision", &self.supervision)
            .field("scheduler", &self.scheduler)
            .field("resume_path", &self.resume_path)
            .field("observed", &self.observer.is_some())
            .field("telemetry", &self.telemetry)
            .finish_non_exhaustive()
    }
}

impl CampaignPlan<CpPll> {
    /// A plan with the defaults every legacy entry point assumed: the
    /// behavioural [`CpPll`] backend, auto lock settle
    /// ([`crate::scenario::settle_time`]), checkpoint reuse on, no
    /// supervision, auto-threaded work stealing, no resume file, no
    /// observer, telemetry off.
    pub fn new(config: PllConfig) -> Self {
        Self {
            config,
            lock_settle_secs: None,
            checkpoint: true,
            sidecar: false,
            supervision: None,
            scheduler: Scheduler::default(),
            resume_path: None,
            observer: None,
            telemetry: TelemetryConfig::disabled(),
            _engine: PhantomData,
        }
    }
}

impl<E: PllEngine> CampaignPlan<E> {
    /// Re-types the plan onto engine backend `E2`, keeping every option.
    ///
    /// The backend is part of the digest: engines agree physically but
    /// not bit for bit, so results produced by one must never be resumed
    /// by another.
    pub fn engine<E2: PllEngine>(self) -> CampaignPlan<E2> {
        CampaignPlan {
            config: self.config,
            lock_settle_secs: self.lock_settle_secs,
            checkpoint: self.checkpoint,
            sidecar: self.sidecar,
            supervision: self.supervision,
            scheduler: self.scheduler,
            resume_path: self.resume_path,
            observer: self.observer,
            telemetry: self.telemetry,
            _engine: PhantomData,
        }
    }

    /// Overrides the lock-settle wait (the monitor's `loop_settle_secs`
    /// knob). Result-affecting: part of the digest.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite (same contract as
    /// [`Scenario::with_lock_settle`]).
    pub fn lock_settle(mut self, secs: f64) -> Self {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "lock settle must be non-negative"
        );
        self.lock_settle_secs = Some(secs);
        self
    }

    /// Reuse one settled lock snapshot across the sweep (default `true`).
    /// [`PllEngine::restore`] is bit-exact, so this changes wall-clock
    /// time only, never results — and is therefore *not* in the digest.
    pub fn checkpoint(mut self, on: bool) -> Self {
        self.checkpoint = on;
        self
    }

    /// Persist the settled lock snapshot to a checkpoint sidecar next to
    /// the resume file (`campaign.jsonl` → `campaign.ckpt`), so a
    /// resumed run skips the settle transient entirely (default
    /// `false`). Requires both [`checkpoint`](Self::checkpoint) and
    /// [`resume_from`](Self::resume_from); a missing, foreign or torn
    /// sidecar silently falls back to re-settling. Restores are
    /// bit-exact, so this changes wall-clock time only, never results —
    /// and is therefore *not* in the digest.
    pub fn sidecar(mut self, on: bool) -> Self {
        self.sidecar = on;
        self
    }

    /// Runs every point under the sweep supervisor: guardrails, panic
    /// isolation, deterministic quarantine-and-retry per `policy`.
    /// Result-affecting on sick devices (retries are part of the
    /// outcome), so the policy is part of the digest.
    pub fn supervised(mut self, policy: SupervisorPolicy) -> Self {
        self.supervision = Some(policy);
        self
    }

    /// Removes supervision (the default): a point failure is returned
    /// as-is with no retries, and guardrails are off.
    pub fn unsupervised(mut self) -> Self {
        self.supervision = None;
        self
    }

    /// Picks the point schedule (default: auto-threaded work stealing).
    /// Never result-affecting; excluded from the digest.
    pub fn scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Attaches a resumable results file: completed points load from
    /// `path` and newly computed points stream to it, so a killed
    /// campaign restarts where it left off (see [`crate::campaign`]).
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_path = Some(path.into());
        self
    }

    /// Attaches a [`CampaignObserver`]: claims, outcomes, incidents and
    /// log flushes are reported live. Observers are read-only — results
    /// are byte-identical with and without one.
    pub fn observed(mut self, observer: Arc<CampaignObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Telemetry for the run (default off). Telemetry observes, never
    /// steers; excluded from the digest.
    pub fn telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = config;
        self
    }

    /// The configuration this plan measures.
    pub fn config(&self) -> &PllConfig {
        &self.config
    }

    /// The engine backend's stable tag ([`PllEngine::backend_name`]).
    pub fn backend(&self) -> &'static str {
        E::backend_name()
    }

    /// The explicit lock-settle override, if any (`None` = the
    /// [`crate::scenario::settle_time`] heuristic).
    pub fn lock_settle_override(&self) -> Option<f64> {
        self.lock_settle_secs
    }

    /// Whether the sweep reuses one settled lock snapshot.
    pub fn checkpoint_enabled(&self) -> bool {
        self.checkpoint
    }

    /// Whether the settled lock snapshot is persisted to (and resumed
    /// from) a checkpoint sidecar.
    pub fn sidecar_enabled(&self) -> bool {
        self.sidecar
    }

    /// The supervision policy, if supervision is on.
    pub fn supervision(&self) -> Option<&SupervisorPolicy> {
        self.supervision.as_ref()
    }

    /// The point schedule.
    pub fn schedule(&self) -> Scheduler {
        self.scheduler
    }

    /// The resumable results file, if one is attached.
    pub fn resume_path(&self) -> Option<&Path> {
        self.resume_path.as_deref()
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&CampaignObserver> {
        self.observer.as_deref()
    }

    /// The telemetry configuration.
    pub fn telemetry_config(&self) -> &TelemetryConfig {
        &self.telemetry
    }

    /// The [`Scenario`] this plan's runs start from: the config plus the
    /// effective lock-settle wait.
    pub fn scenario(&self) -> Scenario<'_> {
        match self.lock_settle_secs {
            Some(secs) => Scenario::with_lock_settle(&self.config, secs),
            None => Scenario::new(&self.config),
        }
    }

    /// The part of the digest salt the plan itself contributes: engine
    /// backend, lock-settle override and supervision policy. Scheduling
    /// knobs (threads, checkpoint, telemetry, observer, resume path) are
    /// deliberately absent — they never change results.
    fn digest_salt(&self, workload_salt: &str) -> String {
        let settle = self
            .lock_settle_secs
            .map_or_else(|| "auto".to_string(), bits_hex);
        let policy = self
            .supervision
            .as_ref()
            .map_or_else(|| "none".to_string(), |p| format!("{p:?}"));
        format!(
            "plan|{workload_salt}|engine:{}|settle:{settle}|policy:{policy}",
            E::backend_name()
        )
    }

    /// The campaign config digest of this plan over `f_mod_hz`:
    /// [`config_digest`] over the config, the grid and the plan's
    /// result-affecting options plus the caller's `workload_salt`
    /// (measurement settings the plan does not know about).
    pub fn digest(&self, f_mod_hz: &[f64], workload_salt: &str) -> String {
        config_digest(&self.config, f_mod_hz, &self.digest_salt(workload_salt))
    }

    /// Serialises the plan as one campaign-shaped JSONL header line: the
    /// existing `{"type":"campaign","digest":…,"points":…}` shape
    /// extended with the backend tag and every result-affecting plan
    /// option, each `f64` as its exact bit pattern. This is the
    /// submission payload the campaign service front door will accept.
    pub fn header_line(&self, f_mod_hz: &[f64], workload_salt: &str) -> String {
        let mut line = format!(
            "{{\"type\":\"campaign\",\"digest\":\"{}\",\"points\":{},\"backend\":\"{}\",\"checkpoint\":{}",
            self.digest(f_mod_hz, workload_salt),
            f_mod_hz.len(),
            E::backend_name(),
            self.checkpoint,
        );
        if let Some(settle) = self.lock_settle_secs {
            line.push_str(&format!(",\"lock_settle_bits\":\"{}\"", bits_hex(settle)));
        }
        match &self.supervision {
            None => line.push_str(",\"supervised\":false"),
            Some(p) => {
                line.push_str(&format!(
                    ",\"supervised\":true,\"max_retries\":{},\"retry_step_scale_bits\":\"{}\",\
                     \"retry_settle_scale_bits\":\"{}\",\"step_budget\":{},\
                     \"rail_margin_bits\":\"{}\",\"rail_overshoot_bits\":\"{}\",\
                     \"rail_streak_limit\":{}",
                    p.max_retries,
                    bits_hex(p.retry_step_scale),
                    bits_hex(p.retry_settle_scale),
                    p.step_budget,
                    bits_hex(p.rail_margin_fraction),
                    bits_hex(p.rail_overshoot_fraction),
                    p.rail_streak_limit,
                ));
                if let Some((lo, hi)) = p.control_rails {
                    line.push_str(&format!(
                        ",\"rails_lo_bits\":\"{}\",\"rails_hi_bits\":\"{}\"",
                        bits_hex(lo),
                        bits_hex(hi)
                    ));
                }
            }
        }
        line.push('}');
        line
    }

    /// Rebuilds a plan from a [`header_line`](Self::header_line) (the
    /// digest round trip the campaign service depends on). The caller
    /// supplies the config, grid and workload salt the header was
    /// written against; the header contributes the result-affecting plan
    /// options. Scheduling knobs come back at their defaults — they were
    /// never serialised.
    ///
    /// # Errors
    ///
    /// * [`CampaignError::HeaderMismatch`] when the header's backend tag
    ///   is not `E`'s, its point count is not the grid's, or its digest
    ///   does not match the one recomputed from the rebuilt plan — the
    ///   same refusal a foreign results file gets.
    /// * [`CampaignError::Malformed`] when required fields are missing
    ///   or unparsable.
    pub fn from_header(
        line: &str,
        config: PllConfig,
        f_mod_hz: &[f64],
        workload_salt: &str,
    ) -> Result<Self, CampaignError> {
        let malformed = |reason: &str| CampaignError::Malformed {
            line: 1,
            reason: reason.to_string(),
        };
        let digest = json_str_field(line, "digest").ok_or_else(|| malformed("missing digest"))?;
        let points = json_u64_field(line, "points").ok_or_else(|| malformed("missing points"))?;
        let backend =
            json_str_field(line, "backend").ok_or_else(|| malformed("missing backend"))?;
        if backend != E::backend_name() {
            return Err(CampaignError::HeaderMismatch {
                expected: format!("backend \"{}\"", E::backend_name()),
                found: format!("backend \"{backend}\""),
            });
        }
        if points != f_mod_hz.len() as u64 {
            return Err(CampaignError::HeaderMismatch {
                expected: format!("points {}", f_mod_hz.len()),
                found: format!("points {points}"),
            });
        }
        let checkpoint =
            json_bool_field(line, "checkpoint").ok_or_else(|| malformed("missing checkpoint"))?;
        let hex_field = |key: &str| -> Result<f64, CampaignError> {
            json_str_field(line, key)
                .as_deref()
                .and_then(f64_from_bits_hex)
                .ok_or_else(|| malformed(&format!("missing or invalid {key}")))
        };
        let lock_settle_secs = match json_str_field(line, "lock_settle_bits") {
            Some(bits) => Some(
                f64_from_bits_hex(&bits).ok_or_else(|| malformed("invalid lock_settle_bits"))?,
            ),
            None => None,
        };
        let supervised =
            json_bool_field(line, "supervised").ok_or_else(|| malformed("missing supervised"))?;
        let supervision = if supervised {
            let max_retries = json_u64_field(line, "max_retries")
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| malformed("missing or invalid max_retries"))?;
            let rail_streak_limit = json_u64_field(line, "rail_streak_limit")
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| malformed("missing or invalid rail_streak_limit"))?;
            let control_rails = match json_str_field(line, "rails_lo_bits") {
                Some(_) => Some((hex_field("rails_lo_bits")?, hex_field("rails_hi_bits")?)),
                None => None,
            };
            Some(SupervisorPolicy {
                max_retries,
                retry_step_scale: hex_field("retry_step_scale_bits")?,
                retry_settle_scale: hex_field("retry_settle_scale_bits")?,
                step_budget: json_u64_field(line, "step_budget")
                    .ok_or_else(|| malformed("missing step_budget"))?,
                control_rails,
                rail_margin_fraction: hex_field("rail_margin_bits")?,
                rail_overshoot_fraction: hex_field("rail_overshoot_bits")?,
                rail_streak_limit,
            })
        } else {
            None
        };
        let plan = Self {
            config,
            lock_settle_secs,
            checkpoint,
            sidecar: false,
            supervision,
            scheduler: Scheduler::default(),
            resume_path: None,
            observer: None,
            telemetry: TelemetryConfig::disabled(),
            _engine: PhantomData,
        };
        let recomputed = plan.digest(f_mod_hz, workload_salt);
        if recomputed != digest {
            return Err(CampaignError::HeaderMismatch {
                expected: format!("digest {recomputed}"),
                found: format!("digest {digest}"),
            });
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ClosedFormPll;
    use crate::event_driven::EventDrivenCpPll;

    #[test]
    fn builder_lowers_options_onto_fields() {
        let policy = SupervisorPolicy {
            max_retries: 1,
            ..SupervisorPolicy::default()
        };
        let plan = CampaignPlan::new(PllConfig::paper_table3())
            .engine::<EventDrivenCpPll>()
            .checkpoint(false)
            .sidecar(true)
            .supervised(policy.clone())
            .scheduler(Scheduler::WorkStealing { threads: 8 })
            .resume_from("campaign.jsonl")
            .lock_settle(0.25)
            .telemetry(TelemetryConfig::enabled());
        assert_eq!(plan.backend(), "event_driven");
        assert!(!plan.checkpoint_enabled());
        assert!(plan.sidecar_enabled());
        assert_eq!(plan.supervision(), Some(&policy));
        assert_eq!(plan.schedule().threads(), 8);
        assert_eq!(
            plan.resume_path(),
            Some(std::path::Path::new("campaign.jsonl"))
        );
        assert_eq!(plan.lock_settle_override(), Some(0.25));
        assert_eq!(plan.telemetry_config(), &TelemetryConfig::enabled());
        assert_eq!(plan.scenario().lock_settle_secs(), 0.25);
        // Defaults.
        let plain = CampaignPlan::new(PllConfig::paper_table3());
        assert_eq!(plain.backend(), "cp_pll");
        assert!(plain.checkpoint_enabled());
        assert!(!plain.sidecar_enabled());
        assert!(plain.supervision().is_none());
        assert_eq!(plain.schedule(), Scheduler::WorkStealing { threads: 0 });
        assert_eq!(Scheduler::Serial.threads(), 1);
    }

    #[test]
    fn digest_excludes_scheduling_but_not_results_inputs() {
        let cfg = PllConfig::paper_table3();
        let grid = [2.0, 8.0, 20.0];
        let base = CampaignPlan::new(cfg.clone()).digest(&grid, "w");
        // Scheduling knobs never change results → never change the digest.
        let rescheduled = CampaignPlan::new(cfg.clone())
            .checkpoint(false)
            .sidecar(true)
            .scheduler(Scheduler::Serial)
            .telemetry(TelemetryConfig::enabled())
            .resume_from("x.jsonl")
            .digest(&grid, "w");
        assert_eq!(base, rescheduled);
        // Result-affecting inputs must change it.
        assert_ne!(
            base,
            CampaignPlan::new(cfg.clone())
                .engine::<ClosedFormPll>()
                .digest(&grid, "w")
        );
        assert_ne!(
            base,
            CampaignPlan::new(cfg.clone())
                .supervised(SupervisorPolicy::default())
                .digest(&grid, "w")
        );
        assert_ne!(
            base,
            CampaignPlan::new(cfg.clone())
                .lock_settle(0.1)
                .digest(&grid, "w")
        );
        assert_ne!(base, CampaignPlan::new(cfg.clone()).digest(&grid, "other"));
        assert_ne!(base, CampaignPlan::new(cfg).digest(&grid[..2], "w"));
    }
}
