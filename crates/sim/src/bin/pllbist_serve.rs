//! `pllbist_serve` — the crash-only campaign service as a process.
//!
//! ```text
//! pllbist_serve [--root DIR] [--bind ADDR]
//! ```
//!
//! Prints one JSON line with the bound address, then serves until stdin
//! closes or a `drain` line arrives (graceful path). The crash-only
//! stop is `kill -9`: on the next start the service rescans `--root`
//! and resumes every interrupted campaign byte-identically.

use std::io::BufRead;

use pllbist_sim::service::{CampaignService, ServiceConfig};

fn main() {
    let mut config = ServiceConfig::rooted("campaign-service");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(root) => config.root = root.into(),
                None => return usage("--root needs a directory"),
            },
            "--bind" => match args.next() {
                Some(bind) => config.bind = bind,
                None => return usage("--bind needs an address"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let root = config.root.display().to_string();
    let service = match CampaignService::start(config) {
        Ok(service) => service,
        Err(error) => {
            eprintln!("pllbist_serve: start failed: {error}");
            std::process::exit(1);
        }
    };
    println!(
        "{{\"type\":\"serve\",\"addr\":\"{}\",\"root\":\"{}\"}}",
        service.addr(),
        root
    );
    // Block on stdin: EOF or an explicit `drain` line starts the
    // graceful drain; anything else is ignored. `pllbist_serve
    // </dev/null` therefore processes the rescanned backlog and exits.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(line) if line.trim() == "drain" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    service.shutdown();
}

fn usage(reason: &str) {
    eprintln!("pllbist_serve: {reason}");
    eprintln!("usage: pllbist_serve [--root DIR] [--bind ADDR]");
    std::process::exit(2);
}
