//! Crash-only campaign service: the durable front door for sweep jobs.
//!
//! A [`CampaignService`] accepts campaign submissions over plain HTTP
//! (`std::net`, no dependencies), runs them through the existing
//! work-stealing resumable pipeline
//! ([`crate::scenario::Scenario::run_points`]) and streams results and
//! progress back out. The design is **crash-only**: there is no
//! distinction between a crash and a normal stop. Every state
//! transition lands in an append-only fsynced journal *before* the work
//! it describes, the campaign results file is the same
//! torn-write-tolerant [`CampaignLog`] JSONL the batch runner uses, and
//! on start the service rescans its root directory and resumes every
//! job whose journal does not end in `done`/`failed`. Killing the
//! process with SIGKILL at any instant therefore loses at most the
//! in-flight point — never completed work, and never byte-identity of
//! the final results file.
//!
//! # Job directory layout
//!
//! Each job lives in `<root>/job-<digest>/`:
//!
//! | file                    | contents                                    |
//! |-------------------------|---------------------------------------------|
//! | `submit.jsonl`          | the submission, persisted temp+rename       |
//! | `job.jsonl`             | append-only lifecycle journal (fsynced)     |
//! | `campaign.jsonl`        | the [`CampaignLog`] results file            |
//! | `campaign.flight.jsonl` | flight-recorder dump sidecar                |
//! | `campaign.ckpt`         | [`LockSidecar`] settled-lock checkpoint     |
//!
//! # Deterministic fault injection
//!
//! Robustness claims are enforced, not hoped for: a submission carries
//! a [`FaultPlan`] (derived from the seeded testkit PRNG) that injects
//! worker panics, retryable point failures, torn and rejected writes on
//! the results file, torn journal appends and mid-sweep process kills
//! ([`crate::error::InjectedKill`]) at exact, reproducible places. The
//! `abl15_crash_only_service` ablation drives the service through those
//! faults plus real process kills and asserts every campaign completes
//! with a results file byte-identical to an uninterrupted serial
//! reference.

use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::behavioral::CpPll;
use crate::campaign::{bits_hex, f64_from_bits_hex, CampaignLog, InjectedWriteFault, PointCodec};
use crate::config::{DriveConfig, FilterConfig, PllConfig};
use crate::engine::{ClosedFormPll, PllEngine};
use crate::error::{CampaignError, InjectedKill, SweepPointError};
use crate::event_driven::EventDrivenCpPll;
use crate::observe::{CampaignObserver, ObservatoryConfig};
use crate::plan::CampaignPlan;
use crate::scenario::Scenario;
use crate::server::{read_http_request, write_http_response, HttpRequest};
use crate::sidecar::LockSidecar;
use crate::stimulus::FmStimulus;
use crate::supervisor::Supervised;
use pllbist_telemetry::json::{json_str_field, json_u64_field};
use pllbist_telemetry::recorder::{FlightEventKind, NO_POINT};
use pllbist_telemetry::{Collector, Fields, Record, Value, SCHEMA_VERSION};
use pllbist_testkit::rng::TestRng;

/// Journal/submission record bin tag.
const SERVE_BIN: &str = "serve";
/// Journal event record name.
const EVENT_RECORD: &str = "job.event";
/// Submission spec record name.
const SPEC_RECORD: &str = "job.spec";
/// Backends the service can instantiate.
const SERVABLE_BACKENDS: [&str; 3] = ["cp_pll", "event_driven", "closed_form"];

// ---------------------------------------------------------------------------
// Point codec
// ---------------------------------------------------------------------------

/// The service's result codec: one control voltage per modulation
/// point, serialised losslessly as IEEE-754 bits.
#[derive(Clone, Copy, Debug, Default)]
pub struct VoltsCodec;

impl PointCodec for VoltsCodec {
    type Point = f64;

    fn encode(&self, point: &f64) -> Fields {
        vec![("v_bits".to_string(), Value::Str(bits_hex(*point)))]
    }

    fn decode(&self, line: &str) -> Option<f64> {
        f64_from_bits_hex(&json_str_field(line, "v_bits")?)
    }
}

// ---------------------------------------------------------------------------
// Config wire codec
// ---------------------------------------------------------------------------

fn opt_hex(v: Option<f64>) -> String {
    match v {
        Some(v) => bits_hex(v),
        None => "-".to_string(),
    }
}

fn opt_from_hex(s: &str) -> Option<Option<f64>> {
    if s == "-" {
        Some(None)
    } else {
        Some(Some(f64_from_bits_hex(s)?))
    }
}

/// Serialises a [`PllConfig`] for transport inside a submission. Every
/// `f64` travels as its exact bit pattern, so
/// `config_from_wire(&config_to_wire(c)) == Some(c)` holds bit-for-bit
/// — which is what keeps the plan digest stable across the wire.
pub fn config_to_wire(config: &PllConfig) -> String {
    let drive = match config.drive {
        DriveConfig::Voltage { vdd } => format!("v:{}", bits_hex(vdd)),
        DriveConfig::Charge { i_pump, mismatch } => {
            format!("c:{},{}", bits_hex(i_pump), bits_hex(mismatch))
        }
    };
    let filter = match config.filter {
        FilterConfig::PassiveLag { r1, r2, c, r_leak } => format!(
            "lag:{},{},{},{}",
            bits_hex(r1),
            bits_hex(r2),
            bits_hex(c),
            opt_hex(r_leak)
        ),
        FilterConfig::SeriesRc { r, c1, c2, r_leak } => format!(
            "rc:{},{},{},{}",
            bits_hex(r),
            bits_hex(c1),
            opt_hex(c2),
            opt_hex(r_leak)
        ),
        FilterConfig::ActivePi { tau1, tau2 } => {
            format!("pi:{},{}", bits_hex(tau1), bits_hex(tau2))
        }
    };
    let range = match config.vco_range_hz {
        Some((lo, hi)) => format!("{},{}", bits_hex(lo), bits_hex(hi)),
        None => "-".to_string(),
    };
    format!(
        "v1;{};{};{};{};{};{};{},{};{};{}",
        bits_hex(config.f_ref_hz),
        config.divider_n,
        drive,
        filter,
        bits_hex(config.vco_k0),
        bits_hex(config.vco_gain_scale),
        bits_hex(config.vco_curvature.0),
        bits_hex(config.vco_curvature.1),
        range,
        bits_hex(config.pfd_dead_zone),
    )
}

/// Inverse of [`config_to_wire`]. `None` on any malformed field — a
/// hostile submission degrades to a 400, never a panic.
pub fn config_from_wire(wire: &str) -> Option<PllConfig> {
    let mut parts = wire.split(';');
    if parts.next()? != "v1" {
        return None;
    }
    let f_ref_hz = f64_from_bits_hex(parts.next()?)?;
    let divider_n: u32 = parts.next()?.parse().ok()?;
    let (drive_tag, drive_rest) = parts.next()?.split_once(':')?;
    let drive = match drive_tag {
        "v" => DriveConfig::Voltage {
            vdd: f64_from_bits_hex(drive_rest)?,
        },
        "c" => {
            let (i, m) = drive_rest.split_once(',')?;
            DriveConfig::Charge {
                i_pump: f64_from_bits_hex(i)?,
                mismatch: f64_from_bits_hex(m)?,
            }
        }
        _ => return None,
    };
    let (filter_tag, filter_rest) = parts.next()?.split_once(':')?;
    let fs: Vec<&str> = filter_rest.split(',').collect();
    let filter = match (filter_tag, fs.len()) {
        ("lag", 4) => FilterConfig::PassiveLag {
            r1: f64_from_bits_hex(fs[0])?,
            r2: f64_from_bits_hex(fs[1])?,
            c: f64_from_bits_hex(fs[2])?,
            r_leak: opt_from_hex(fs[3])?,
        },
        ("rc", 4) => FilterConfig::SeriesRc {
            r: f64_from_bits_hex(fs[0])?,
            c1: f64_from_bits_hex(fs[1])?,
            c2: opt_from_hex(fs[2])?,
            r_leak: opt_from_hex(fs[3])?,
        },
        ("pi", 2) => FilterConfig::ActivePi {
            tau1: f64_from_bits_hex(fs[0])?,
            tau2: f64_from_bits_hex(fs[1])?,
        },
        _ => return None,
    };
    let vco_k0 = f64_from_bits_hex(parts.next()?)?;
    let vco_gain_scale = f64_from_bits_hex(parts.next()?)?;
    let (c0, c1) = parts.next()?.split_once(',')?;
    let vco_curvature = (f64_from_bits_hex(c0)?, f64_from_bits_hex(c1)?);
    let range = parts.next()?;
    let vco_range_hz = if range == "-" {
        None
    } else {
        let (lo, hi) = range.split_once(',')?;
        Some((f64_from_bits_hex(lo)?, f64_from_bits_hex(hi)?))
    };
    let pfd_dead_zone = f64_from_bits_hex(parts.next()?)?;
    if parts.next().is_some() {
        return None;
    }
    Some(PllConfig {
        f_ref_hz,
        divider_n,
        drive,
        filter,
        vco_k0,
        vco_gain_scale,
        vco_curvature,
        vco_range_hz,
        pfd_dead_zone,
    })
}

// ---------------------------------------------------------------------------
// Fault plan
// ---------------------------------------------------------------------------

/// One process-level fault in a [`FaultPlan`], consumed one per attempt
/// (attempt `n` draws `crash[n]`; attempts past the end run fault-free,
/// which is what guarantees eventual completion).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrashFault {
    /// Panic the sweep with an [`InjectedKill`] after this many point
    /// captures — the in-process stand-in for SIGKILL mid-sweep.
    Kill {
        /// Captures before the kill fires.
        after_points: usize,
    },
    /// [`CrashFault::Kill`], and additionally tear the journal append
    /// that records the interruption (a crash racing its own journal).
    KillTearingJournal {
        /// Captures before the kill fires.
        after_points: usize,
    },
    /// Tear the nth results-file flush after `keep_bytes` bytes and
    /// latch the write error (kill mid-`write(2)`).
    TornResultWrite {
        /// Zero-based flush ordinal the fault fires on.
        at_flush: usize,
        /// Bytes of the encoded line that land on disk.
        keep_bytes: usize,
    },
    /// Reject the nth results-file flush outright (disk full).
    ResultDiskFull {
        /// Zero-based flush ordinal the fault fires on.
        at_flush: usize,
    },
}

/// A deterministic fault schedule carried inside a submission.
///
/// Point-level faults (`flaky_retry`, `flaky_quarantine`) fire in
/// *every* run — including the uninterrupted reference — so the final
/// results file is identical with or without the process-level `crash`
/// faults layered on top. That is the byte-identity contract the
/// `abl15` ablation gates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Grid indices whose first capture per process attempt fails with
    /// a retryable [`SweepPointError::DegenerateFit`].
    pub flaky_retry: Vec<usize>,
    /// Grid indices whose capture panics — quarantined deterministically
    /// by the supervisor as a worker panic.
    pub flaky_quarantine: Vec<usize>,
    /// Process-level faults, one consumed per attempt.
    pub crash: Vec<CrashFault>,
}

impl FaultPlan {
    /// The empty plan: a healthy production submission.
    pub fn none() -> Self {
        Self::default()
    }

    /// A reproducible fault schedule from the seeded testkit PRNG:
    /// roughly a quarter of points flaky-retryable, a further sliver
    /// quarantined, plus `kills` process-level faults of mixed kinds.
    pub fn from_seed(seed: u64, points: usize, kills: usize) -> Self {
        let mut rng = TestRng::seed_from_u64(seed);
        let mut plan = Self::none();
        for i in 0..points {
            let r = rng.next_f64();
            if r < 0.25 {
                plan.flaky_retry.push(i);
            } else if r < 0.32 {
                plan.flaky_quarantine.push(i);
            }
        }
        for _ in 0..kills {
            let crash = match rng.u64_range(0, 4) {
                0 => CrashFault::Kill {
                    after_points: rng.usize_range(1, points.max(2)),
                },
                1 => CrashFault::KillTearingJournal {
                    after_points: rng.usize_range(1, points.max(2)),
                },
                2 => CrashFault::TornResultWrite {
                    at_flush: rng.usize_range(0, points.max(1)),
                    keep_bytes: rng.usize_range(0, 24),
                },
                _ => CrashFault::ResultDiskFull {
                    at_flush: rng.usize_range(0, points.max(1)),
                },
            };
            plan.crash.push(crash);
        }
        plan
    }

    /// The same plan with every process-level fault removed — what an
    /// uninterrupted reference run of the same job executes.
    pub fn reference(&self) -> Self {
        Self {
            flaky_retry: self.flaky_retry.clone(),
            flaky_quarantine: self.flaky_quarantine.clone(),
            crash: Vec::new(),
        }
    }

    /// Serialises the plan for transport inside a submission.
    pub fn to_wire(&self) -> String {
        let csv = |v: &[usize]| -> String {
            if v.is_empty() {
                "-".to_string()
            } else {
                v.iter()
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            }
        };
        let crash = if self.crash.is_empty() {
            "-".to_string()
        } else {
            self.crash
                .iter()
                .map(|c| match c {
                    CrashFault::Kill { after_points } => format!("k{after_points}"),
                    CrashFault::KillTearingJournal { after_points } => format!("K{after_points}"),
                    CrashFault::TornResultWrite {
                        at_flush,
                        keep_bytes,
                    } => format!("t{at_flush}.{keep_bytes}"),
                    CrashFault::ResultDiskFull { at_flush } => format!("f{at_flush}"),
                })
                .collect::<Vec<_>>()
                .join(";")
        };
        format!(
            "fp1|retry:{}|panic:{}|crash:{crash}",
            csv(&self.flaky_retry),
            csv(&self.flaky_quarantine),
        )
    }

    /// Inverse of [`to_wire`](Self::to_wire); `None` on malformed input.
    pub fn from_wire(wire: &str) -> Option<Self> {
        let mut parts = wire.split('|');
        if parts.next()? != "fp1" {
            return None;
        }
        let csv = |s: &str| -> Option<Vec<usize>> {
            if s == "-" {
                Some(Vec::new())
            } else {
                s.split(',').map(|t| t.parse().ok()).collect()
            }
        };
        let retry = parts.next()?.strip_prefix("retry:")?.to_string();
        let panic = parts.next()?.strip_prefix("panic:")?.to_string();
        let crash_s = parts.next()?.strip_prefix("crash:")?.to_string();
        if parts.next().is_some() {
            return None;
        }
        let crash = if crash_s == "-" {
            Vec::new()
        } else {
            crash_s
                .split(';')
                .map(|tok| -> Option<CrashFault> {
                    let rest = tok.get(1..)?;
                    match tok.chars().next()? {
                        'k' => Some(CrashFault::Kill {
                            after_points: rest.parse().ok()?,
                        }),
                        'K' => Some(CrashFault::KillTearingJournal {
                            after_points: rest.parse().ok()?,
                        }),
                        't' => {
                            let (at, keep) = rest.split_once('.')?;
                            Some(CrashFault::TornResultWrite {
                                at_flush: at.parse().ok()?,
                                keep_bytes: keep.parse().ok()?,
                            })
                        }
                        'f' => Some(CrashFault::ResultDiskFull {
                            at_flush: rest.parse().ok()?,
                        }),
                        _ => None,
                    }
                })
                .collect::<Option<Vec<_>>>()?
        };
        Some(Self {
            flaky_retry: csv(&retry)?,
            flaky_quarantine: csv(&panic)?,
            crash,
        })
    }
}

// ---------------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------------

/// Builds the `POST /jobs` body for a plan: the plan's
/// [`header_line`](CampaignPlan::header_line) followed by a `job.spec`
/// record carrying the config, grid, salt, thread count and fault plan
/// — everything the service needs to rebuild the plan via
/// [`CampaignPlan::from_header`] and verify the digest round trip.
pub fn submission_body<E: PllEngine>(
    plan: &CampaignPlan<E>,
    f_mod_hz: &[f64],
    workload_salt: &str,
    faults: &FaultPlan,
) -> String {
    let header = plan.header_line(f_mod_hz, workload_salt);
    let grid = f_mod_hz
        .iter()
        .map(|f| bits_hex(*f))
        .collect::<Vec<_>>()
        .join(",");
    let fields: Fields = vec![
        (
            "config".to_string(),
            Value::Str(config_to_wire(plan.config())),
        ),
        ("grid".to_string(), Value::Str(grid)),
        ("salt".to_string(), Value::Str(workload_salt.to_string())),
        (
            "threads".to_string(),
            Value::U64(plan.schedule().threads().max(1) as u64),
        ),
        ("faults".to_string(), Value::Str(faults.to_wire())),
    ];
    let spec = Record::Result {
        name: SPEC_RECORD.to_string(),
        fields,
    }
    .to_json();
    format!("{header}\n{spec}\n")
}

/// A parsed, validated submission — everything `run_job` needs, plus
/// the verbatim header line the digest check replays against.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The verbatim campaign header line from the submission.
    pub header: String,
    /// The PLL under test.
    pub config: PllConfig,
    /// Modulation grid (Hz), bit-exact from the wire.
    pub grid: Vec<f64>,
    /// Workload salt the digest was computed with.
    pub salt: String,
    /// Worker threads for the sweep.
    pub threads: usize,
    /// Backend tag from the header (`cp_pll` / `event_driven` /
    /// `closed_form`).
    pub backend: String,
    /// The plan digest — doubles as the job id and directory name.
    pub digest: String,
    /// Deterministic fault schedule (empty in production).
    pub faults: FaultPlan,
}

impl JobSpec {
    /// Parses and validates a `POST /jobs` body.
    ///
    /// # Errors
    ///
    /// A human-readable reason (surfaced as the 400 body) when the
    /// header or spec line is missing or malformed, the digest is not
    /// 16 lowercase hex characters (it names a directory — this is the
    /// path-traversal guard), the backend is not servable, the grid is
    /// empty / non-finite / non-positive / has duplicate bit patterns,
    /// or the point count disagrees with the grid.
    pub fn parse(body: &str) -> Result<Self, String> {
        let header = body
            .lines()
            .find(|l| l.contains("\"type\":\"campaign\""))
            .ok_or_else(|| "missing campaign header line".to_string())?
            .to_string();
        let spec_line = body
            .lines()
            .find(|l| l.contains("\"job.spec\""))
            .ok_or_else(|| "missing job.spec line".to_string())?;
        let digest = json_str_field(&header, "digest").ok_or("header missing digest")?;
        if digest.len() != 16
            || !digest
                .chars()
                .all(|c| c.is_ascii_digit() || ('a'..='f').contains(&c))
        {
            return Err("digest must be 16 lowercase hex characters".to_string());
        }
        let backend = json_str_field(&header, "backend").ok_or("header missing backend")?;
        if !SERVABLE_BACKENDS.contains(&backend.as_str()) {
            return Err(format!("backend \"{backend}\" is not servable"));
        }
        let points = json_u64_field(&header, "points").ok_or("header missing points")?;
        let config_wire = json_str_field(spec_line, "config").ok_or("spec missing config")?;
        let config = config_from_wire(&config_wire).ok_or("malformed config")?;
        let grid_wire = json_str_field(spec_line, "grid").ok_or("spec missing grid")?;
        let grid: Vec<f64> = grid_wire
            .split(',')
            .map(f64_from_bits_hex)
            .collect::<Option<_>>()
            .ok_or("malformed grid")?;
        if grid.is_empty() {
            return Err("empty grid".to_string());
        }
        if grid.iter().any(|f| !f.is_finite() || *f <= 0.0) {
            return Err("grid frequencies must be finite and positive".to_string());
        }
        let distinct: BTreeSet<u64> = grid.iter().map(|f| f.to_bits()).collect();
        if distinct.len() != grid.len() {
            return Err("grid frequencies must be distinct".to_string());
        }
        if points != grid.len() as u64 {
            return Err(format!(
                "header points {points} disagrees with grid length {}",
                grid.len()
            ));
        }
        let salt = json_str_field(spec_line, "salt").ok_or("spec missing salt")?;
        if salt.contains('"') || salt.contains('\\') {
            return Err("salt must not contain quotes or backslashes".to_string());
        }
        let threads = json_u64_field(spec_line, "threads").ok_or("spec missing threads")?;
        let threads = usize::try_from(threads)
            .ok()
            .filter(|t| (1..=256).contains(t))
            .ok_or("threads must be in 1..=256")?;
        let faults_wire = json_str_field(spec_line, "faults").ok_or("spec missing faults")?;
        let faults = FaultPlan::from_wire(&faults_wire).ok_or("malformed fault plan")?;
        Ok(Self {
            header,
            config,
            grid,
            salt,
            threads,
            backend,
            digest,
            faults,
        })
    }
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

fn journal_event_line(state: &str, attempt: u32, detail: &str) -> String {
    Record::Result {
        name: EVENT_RECORD.to_string(),
        fields: vec![
            ("state".to_string(), Value::Str(state.to_string())),
            ("attempt".to_string(), Value::U64(u64::from(attempt))),
            ("detail".to_string(), Value::Str(detail.to_string())),
        ],
    }
    .to_json()
}

/// Appends one event to an append-only journal, durably.
///
/// Self-healing by construction: if the existing file does not end in a
/// newline (a previous append was torn mid-crash), a newline is written
/// first so the torn fragment can never concatenate with — and destroy
/// — this record. The write is fsynced before returning; crash-only
/// recovery reads the journal as ground truth.
fn journal_append(path: &Path, state: &str, attempt: u32, detail: &str) -> std::io::Result<()> {
    use std::io::Write;
    let existing = std::fs::read(path).unwrap_or_default();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut out = String::new();
    if existing.is_empty() {
        out.push_str(
            &Record::Run {
                bin: SERVE_BIN.to_string(),
                schema: SCHEMA_VERSION,
            }
            .to_json(),
        );
        out.push('\n');
    } else if existing.last() != Some(&b'\n') {
        out.push('\n');
    }
    out.push_str(&journal_event_line(state, attempt, detail));
    out.push('\n');
    file.write_all(out.as_bytes())?;
    file.sync_all()
}

/// A deliberately torn [`journal_append`]: only the first `keep` bytes
/// of the record land, with no trailing newline and no fsync — what a
/// crash racing its own journal write leaves behind.
fn journal_append_torn(path: &Path, state: &str, attempt: u32, detail: &str, keep: usize) {
    use std::io::Write;
    let line = journal_event_line(state, attempt, detail);
    let keep = keep.min(line.len());
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = file.write_all(&line.as_bytes()[..keep]);
    }
}

/// Replays a journal: `(last parseable state, attempts started)`.
/// Unparsable lines — torn appends — are skipped, never fatal. A
/// missing or empty journal reads as `("queued", 0)`.
fn journal_summary(path: &Path) -> (String, u32) {
    let mut state = "queued".to_string();
    let mut attempts: u32 = 0;
    if let Ok(text) = std::fs::read_to_string(path) {
        for line in text.lines() {
            if !line.contains(EVENT_RECORD) {
                continue;
            }
            if let Some(s) = json_str_field(line, "state") {
                if s == "running" {
                    attempts = attempts.saturating_add(1);
                }
                state = s;
            }
        }
    }
    (state, attempts)
}

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

/// Knobs for one [`CampaignService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Root directory for job state (created if absent).
    pub root: PathBuf,
    /// Bind address; port 0 picks an ephemeral port.
    pub bind: String,
    /// Bounded job queue depth — submissions past it get `429`.
    pub queue_capacity: usize,
    /// Attempt-budget floor per job (raised automatically to cover the
    /// job's injected crash schedule).
    pub max_attempts: u32,
}

impl ServiceConfig {
    /// Defaults rooted at `root`: ephemeral port, queue of 16, 16
    /// attempts.
    pub fn rooted(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            bind: "127.0.0.1:0".to_string(),
            queue_capacity: 16,
            max_attempts: 16,
        }
    }
}

struct ServiceState {
    root: PathBuf,
    max_attempts: u32,
    draining: AtomicBool,
    stop: AtomicBool,
    tx: Mutex<Option<mpsc::SyncSender<String>>>,
    /// Jobs accepted but not yet finished (queued or running).
    inflight: Mutex<BTreeSet<String>>,
    running: Mutex<Option<String>>,
    current_observer: Mutex<Option<Arc<CampaignObserver>>>,
    done: AtomicUsize,
    failed: AtomicUsize,
}

/// Poison-tolerant lock: a panicking holder must not wedge recovery.
fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl ServiceState {
    fn job_dir(&self, job_id: &str) -> PathBuf {
        self.root.join(format!("job-{job_id}"))
    }

    fn journal_path(&self, job_id: &str) -> PathBuf {
        self.job_dir(job_id).join("job.jsonl")
    }

    fn service_journal(&self) -> PathBuf {
        self.root.join("service.jsonl")
    }
}

/// The crash-only campaign server. See the module docs for the
/// durability contract.
pub struct CampaignService {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    accept: Option<JoinHandle<()>>,
    runner: Option<JoinHandle<()>>,
}

impl CampaignService {
    /// Binds, rescans the root for interrupted jobs (resuming them
    /// before any new submission runs) and starts serving.
    ///
    /// # Errors
    ///
    /// Filesystem or bind failure.
    pub fn start(config: ServiceConfig) -> std::io::Result<Self> {
        std::fs::create_dir_all(&config.root)?;
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServiceState {
            root: config.root,
            max_attempts: config.max_attempts.max(1),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            tx: Mutex::new(None),
            inflight: Mutex::new(BTreeSet::new()),
            running: Mutex::new(None),
            current_observer: Mutex::new(None),
            done: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
        });
        let backlog = rescan_backlog(&state);
        let _ = journal_append(
            &state.service_journal(),
            "start",
            0,
            &format!("rescan found {} interrupted job(s)", backlog.len()),
        );
        let (tx, rx) = mpsc::sync_channel::<String>(config.queue_capacity.max(1));
        *lock(&state.tx) = Some(tx);

        let runner_state = Arc::clone(&state);
        let runner = std::thread::spawn(move || {
            for job_id in backlog.into_iter().chain(rx.iter()) {
                run_job(&runner_state, &job_id);
            }
        });

        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_state.stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(mut stream) = stream {
                    serve_client(&accept_state, &mut stream);
                }
            }
        });

        Ok(Self {
            addr,
            state,
            accept: Some(accept),
            runner: Some(runner),
        })
    }

    /// The bound address (the ephemeral port when `bind` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain: new submissions get `503`, queued jobs
    /// still run to completion. Idempotent.
    pub fn drain(&self) {
        drain_state(&self.state);
    }

    /// Drains, waits for queued jobs to finish, stops the listener and
    /// journals the clean stop. (Crash-only: killing the process
    /// instead loses nothing — restart resumes from the journals.)
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        drain_state(&self.state);
        if let Some(runner) = self.runner.take() {
            let _ = runner.join();
        }
        self.state.stop.store(true, Ordering::SeqCst);
        // Self-connect so the accept loop observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let _ = journal_append(&self.state.service_journal(), "stop", 0, "clean shutdown");
    }
}

impl Drop for CampaignService {
    fn drop(&mut self) {
        if self.runner.is_some() || self.accept.is_some() {
            self.stop_threads();
        }
    }
}

fn drain_state(state: &ServiceState) {
    if !state.draining.swap(true, Ordering::SeqCst) {
        let _ = journal_append(&state.service_journal(), "drain", 0, "drain requested");
        if let Some(observer) = lock(&state.current_observer).as_ref() {
            observer
                .recorder()
                .record(0, NO_POINT, FlightEventKind::Drain, "service draining");
        }
    }
    // Dropping the only sender ends the runner's queue iteration once
    // the already-queued jobs are consumed — the graceful half of
    // crash-only.
    lock(&state.tx).take();
}

/// Scans the root for job directories whose journal is not terminal and
/// marks them queued-for-resume. Deterministic order (sorted ids).
fn rescan_backlog(state: &Arc<ServiceState>) -> Vec<String> {
    let mut backlog = Vec::new();
    let entries = match std::fs::read_dir(&state.root) {
        Ok(entries) => entries,
        Err(_) => return backlog,
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(job_id) = name.to_str().and_then(|n| n.strip_prefix("job-")) else {
            continue;
        };
        if !entry.path().join("submit.jsonl").is_file() {
            continue;
        }
        let (last, _) = journal_summary(&state.journal_path(job_id));
        if last == "done" || last == "failed" {
            continue;
        }
        backlog.push(job_id.to_string());
    }
    backlog.sort();
    let mut inflight = lock(&state.inflight);
    for job_id in &backlog {
        inflight.insert(job_id.clone());
        let _ = journal_append(
            &state.journal_path(job_id),
            "queued",
            0,
            "requeued by restart rescan",
        );
    }
    backlog
}

// ---------------------------------------------------------------------------
// HTTP front end
// ---------------------------------------------------------------------------

fn respond(stream: &mut TcpStream, status: &str, body: &str) {
    // Client disconnects mid-response are the client's problem — the
    // durable state is already on disk.
    let _ = write_http_response(stream, status, body);
}

fn serve_client(state: &Arc<ServiceState>, stream: &mut TcpStream) {
    let Some(request) = read_http_request(stream, std::time::Duration::from_secs(2)) else {
        respond(stream, "400 Bad Request", "{\"error\":\"bad request\"}");
        return;
    };
    route(state, stream, &request);
}

fn route(state: &Arc<ServiceState>, stream: &mut TcpStream, request: &HttpRequest) {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("POST", "/jobs") => submit_job(state, stream, &request.body),
        ("POST", "/drain") => {
            drain_state(state);
            respond(stream, "200 OK", "{\"draining\":true}");
        }
        ("GET", "/progress") => {
            let running = lock(&state.running).clone();
            let queued = {
                let inflight = lock(&state.inflight);
                inflight
                    .len()
                    .saturating_sub(usize::from(running.is_some()))
            };
            let running_json = match running {
                Some(id) => format!("\"{id}\""),
                None => "null".to_string(),
            };
            let body = format!(
                "{{\"draining\":{},\"running\":{},\"queued\":{},\"done\":{},\"failed\":{}}}",
                state.draining.load(Ordering::SeqCst),
                running_json,
                queued,
                state.done.load(Ordering::SeqCst),
                state.failed.load(Ordering::SeqCst),
            );
            respond(stream, "200 OK", &body);
        }
        ("GET", "/jobs") => {
            let mut rows = Vec::new();
            if let Ok(entries) = std::fs::read_dir(&state.root) {
                let mut ids: Vec<String> = entries
                    .flatten()
                    .filter_map(|e| {
                        e.file_name()
                            .to_str()
                            .and_then(|n| n.strip_prefix("job-"))
                            .map(str::to_string)
                    })
                    .collect();
                ids.sort();
                for id in ids {
                    let (job_state, attempts) = journal_summary(&state.journal_path(&id));
                    rows.push(format!(
                        "{{\"job\":\"{id}\",\"state\":\"{job_state}\",\"attempts\":{attempts}}}"
                    ));
                }
            }
            respond(stream, "200 OK", &format!("[{}]", rows.join(",")));
        }
        ("GET", _) if path.starts_with("/jobs/") => job_detail(state, stream, path),
        _ => respond(stream, "404 Not Found", "{\"error\":\"no such endpoint\"}"),
    }
}

fn valid_job_id(id: &str) -> bool {
    id.len() == 16
        && id
            .chars()
            .all(|c| c.is_ascii_digit() || ('a'..='f').contains(&c))
}

fn job_detail(state: &Arc<ServiceState>, stream: &mut TcpStream, path: &str) {
    let rest = path.trim_start_matches("/jobs/");
    let (job_id, want_results) = match rest.strip_suffix("/results") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    if !valid_job_id(job_id) {
        respond(stream, "404 Not Found", "{\"error\":\"no such job\"}");
        return;
    }
    let dir = state.job_dir(job_id);
    if !dir.join("submit.jsonl").is_file() {
        respond(stream, "404 Not Found", "{\"error\":\"no such job\"}");
        return;
    }
    if want_results {
        match std::fs::read_to_string(dir.join("campaign.jsonl")) {
            Ok(text) => respond(stream, "200 OK", &text),
            Err(_) => respond(stream, "404 Not Found", "{\"error\":\"no results yet\"}"),
        }
        return;
    }
    let (job_state, attempts) = journal_summary(&state.journal_path(job_id));
    let results_lines = std::fs::read_to_string(dir.join("campaign.jsonl"))
        .map(|text| {
            text.lines()
                .filter(|l| l.contains("\"campaign.point\""))
                .count()
        })
        .unwrap_or(0);
    let body = format!(
        "{{\"job\":\"{job_id}\",\"state\":\"{job_state}\",\"attempts\":{attempts},\"results_lines\":{results_lines}}}"
    );
    respond(stream, "200 OK", &body);
}

fn submit_job(state: &Arc<ServiceState>, stream: &mut TcpStream, body: &[u8]) {
    if state.draining.load(Ordering::SeqCst) {
        respond(
            stream,
            "503 Service Unavailable",
            "{\"error\":\"draining\"}",
        );
        return;
    }
    let Ok(text) = std::str::from_utf8(body) else {
        respond(stream, "400 Bad Request", "{\"error\":\"body not UTF-8\"}");
        return;
    };
    let spec = match JobSpec::parse(text) {
        Ok(spec) => spec,
        Err(reason) => {
            respond(
                stream,
                "400 Bad Request",
                &format!("{{\"error\":\"{reason}\"}}"),
            );
            return;
        }
    };
    let job_id = spec.digest.clone();
    // The inflight lock brackets persist + enqueue so a duplicate
    // submission cannot race the runner reading a half-renamed dir.
    let mut inflight = lock(&state.inflight);
    let journal = state.journal_path(&job_id);
    let (job_state, _) = journal_summary(&journal);
    if job_state == "done" && state.job_dir(&job_id).join("submit.jsonl").is_file() {
        respond(
            stream,
            "200 OK",
            &format!("{{\"job\":\"{job_id}\",\"state\":\"done\"}}"),
        );
        return;
    }
    if inflight.contains(&job_id) {
        respond(
            stream,
            "200 OK",
            &format!("{{\"job\":\"{job_id}\",\"state\":\"{job_state}\"}}"),
        );
        return;
    }
    if let Err(error) = persist_submission(&state.job_dir(&job_id), text) {
        respond(
            stream,
            "500 Internal Server Error",
            &format!("{{\"error\":\"persist failed: {error}\"}}"),
        );
        return;
    }
    let _ = journal_append(&journal, "queued", 0, "submitted");
    let sent = lock(&state.tx)
        .as_ref()
        .map(|tx| tx.try_send(job_id.clone()));
    match sent {
        Some(Ok(())) => {
            inflight.insert(job_id.clone());
            respond(
                stream,
                "200 OK",
                &format!("{{\"job\":\"{job_id}\",\"state\":\"queued\"}}"),
            );
        }
        Some(Err(mpsc::TrySendError::Full(_))) => {
            // Rejected submissions must not resurrect on restart:
            // remove the durable trace before answering 429.
            let _ = std::fs::remove_dir_all(state.job_dir(&job_id));
            respond(
                stream,
                "429 Too Many Requests",
                "{\"error\":\"job queue full\"}",
            );
        }
        Some(Err(mpsc::TrySendError::Disconnected(_))) | None => {
            let _ = std::fs::remove_dir_all(state.job_dir(&job_id));
            respond(
                stream,
                "503 Service Unavailable",
                "{\"error\":\"draining\"}",
            );
        }
    }
}

/// Persists a submission durably: temp file, fsync, atomic rename.
fn persist_submission(dir: &Path, body: &str) -> std::io::Result<()> {
    use std::io::Write;
    std::fs::create_dir_all(dir)?;
    let final_path = dir.join("submit.jsonl");
    let tmp_path = dir.join("submit.jsonl.tmp");
    let mut out = Record::Run {
        bin: SERVE_BIN.to_string(),
        schema: SCHEMA_VERSION,
    }
    .to_json();
    out.push('\n');
    out.push_str(body);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    let mut file = std::fs::File::create(&tmp_path)?;
    file.write_all(out.as_bytes())?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp_path, &final_path)
}

// ---------------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------------

enum AttemptError {
    /// The job can never succeed (bad header, foreign results file).
    Fatal(String),
    /// This attempt died but a retry can finish the job.
    Interrupted(String),
}

struct AttemptStats {
    ok: usize,
    quarantined: usize,
    skipped: usize,
    sidecar_hits: u64,
    sidecar_rejects: u64,
    wall_ms: u128,
}

fn run_job(state: &Arc<ServiceState>, job_id: &str) {
    *lock(&state.running) = Some(job_id.to_string());
    let journal = state.journal_path(job_id);
    let dir = state.job_dir(job_id);
    let spec = std::fs::read_to_string(dir.join("submit.jsonl"))
        .map_err(|e| format!("submission unreadable: {e}"))
        .and_then(|text| JobSpec::parse(&text));
    match spec {
        Err(reason) => {
            let _ = journal_append(&journal, "failed", 0, &reason);
            state.failed.fetch_add(1, Ordering::SeqCst);
        }
        Ok(spec) => loop {
            let (last, attempts) = journal_summary(&journal);
            if last == "done" {
                state.done.fetch_add(1, Ordering::SeqCst);
                break;
            }
            let budget = state.max_attempts.max(spec.faults.crash.len() as u32 + 2);
            if attempts >= budget {
                let _ = journal_append(
                    &journal,
                    "failed",
                    attempts,
                    &format!("attempt budget {budget} exhausted"),
                );
                state.failed.fetch_add(1, Ordering::SeqCst);
                break;
            }
            let _ = journal_append(
                &journal,
                "running",
                attempts,
                &format!("attempt {attempts} started"),
            );
            let crash = spec.faults.crash.get(attempts as usize);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                dispatch_attempt(state, &dir, &spec, attempts, crash)
            }));
            *lock(&state.current_observer) = None;
            match outcome {
                Ok(Ok(stats)) => {
                    let _ = journal_append(
                        &journal,
                        "done",
                        attempts,
                        &format!(
                            "ok={} quarantined={} skipped={} sidecar_hits={} sidecar_rejects={} wall_ms={}",
                            stats.ok,
                            stats.quarantined,
                            stats.skipped,
                            stats.sidecar_hits,
                            stats.sidecar_rejects,
                            stats.wall_ms,
                        ),
                    );
                    state.done.fetch_add(1, Ordering::SeqCst);
                    break;
                }
                Ok(Err(AttemptError::Fatal(reason))) => {
                    let _ = journal_append(&journal, "failed", attempts, &reason);
                    state.failed.fetch_add(1, Ordering::SeqCst);
                    break;
                }
                Ok(Err(AttemptError::Interrupted(reason))) => {
                    let _ = journal_append(&journal, "interrupted", attempts, &reason);
                }
                Err(payload) => {
                    if payload.downcast_ref::<InjectedKill>().is_some() {
                        if matches!(crash, Some(CrashFault::KillTearingJournal { .. })) {
                            journal_append_torn(
                                &journal,
                                "interrupted",
                                attempts,
                                "killed mid-journal-write",
                                12,
                            );
                        } else {
                            let _ =
                                journal_append(&journal, "interrupted", attempts, "injected kill");
                        }
                    } else {
                        let reason = payload
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| payload.downcast_ref::<&str>().copied())
                            .unwrap_or("worker panic escaped the sweep");
                        let _ = journal_append(&journal, "failed", attempts, reason);
                        state.failed.fetch_add(1, Ordering::SeqCst);
                        break;
                    }
                }
            }
        },
    }
    lock(&state.inflight).remove(job_id);
    *lock(&state.running) = None;
}

fn dispatch_attempt(
    state: &ServiceState,
    dir: &Path,
    spec: &JobSpec,
    attempt: u32,
    crash: Option<&CrashFault>,
) -> Result<AttemptStats, AttemptError> {
    match spec.backend.as_str() {
        "cp_pll" => execute_attempt::<CpPll>(state, dir, spec, attempt, crash),
        "event_driven" => execute_attempt::<EventDrivenCpPll>(state, dir, spec, attempt, crash),
        "closed_form" => execute_attempt::<ClosedFormPll>(state, dir, spec, attempt, crash),
        other => Err(AttemptError::Fatal(format!("unknown backend \"{other}\""))),
    }
}

fn execute_attempt<E: PllEngine>(
    state: &ServiceState,
    dir: &Path,
    spec: &JobSpec,
    attempt: u32,
    crash: Option<&CrashFault>,
) -> Result<AttemptStats, AttemptError> {
    let started = Instant::now();
    let plan =
        CampaignPlan::<E>::from_header(&spec.header, spec.config.clone(), &spec.grid, &spec.salt)
            .map_err(|e| AttemptError::Fatal(format!("header rejected: {e}")))?;
    let results = dir.join("campaign.jsonl");
    let log = CampaignLog::open(&results, VoltsCodec, spec.digest.clone(), spec.grid.len())
        .map_err(|e| match e {
            CampaignError::Io(_) => AttemptError::Interrupted(format!("results open: {e}")),
            other => AttemptError::Fatal(format!("results rejected: {other}")),
        })?;
    let skipped = log.completed_count();

    match crash {
        Some(CrashFault::TornResultWrite {
            at_flush,
            keep_bytes,
        }) => {
            let (at, keep) = (*at_flush, *keep_bytes);
            let flushes = AtomicUsize::new(0);
            log.set_write_fault(Some(Box::new(move |_index| {
                if flushes.fetch_add(1, Ordering::SeqCst) == at {
                    Some(InjectedWriteFault {
                        torn_bytes: keep,
                        error: std::io::Error::other("injected torn write"),
                    })
                } else {
                    None
                }
            })));
        }
        Some(CrashFault::ResultDiskFull { at_flush }) => {
            let at = *at_flush;
            let flushes = AtomicUsize::new(0);
            log.set_write_fault(Some(Box::new(move |_index| {
                if flushes.fetch_add(1, Ordering::SeqCst) == at {
                    Some(InjectedWriteFault {
                        torn_bytes: 0,
                        error: std::io::Error::other("injected disk full"),
                    })
                } else {
                    None
                }
            })));
        }
        _ => {}
    }

    let sidecar = LockSidecar::for_results_file(&results, spec.digest.clone());
    let observer = Arc::new(CampaignObserver::new(
        spec.grid.len(),
        spec.threads,
        ObservatoryConfig::for_results_file(&results),
    ));
    if attempt > 0 {
        observer.recorder().record(
            0,
            NO_POINT,
            FlightEventKind::Restart,
            &format!("attempt {attempt} resumes after interruption"),
        );
    }
    *lock(&state.current_observer) = Some(Arc::clone(&observer));

    let kill_after = match crash {
        Some(CrashFault::Kill { after_points })
        | Some(CrashFault::KillTearingJournal { after_points }) => Some(*after_points),
        _ => None,
    };
    let captures = AtomicUsize::new(0);
    let retry_fired: Vec<AtomicBool> = spec.grid.iter().map(|_| AtomicBool::new(false)).collect();
    let f_ref = spec.config.f_ref_hz;

    let capture = |pll: &mut Supervised<E>, fm: f64| -> Result<f64, SweepPointError> {
        if let Some(limit) = kill_after {
            if captures.fetch_add(1, Ordering::SeqCst) + 1 >= limit {
                std::panic::panic_any(InjectedKill { sequence: attempt });
            }
        }
        let index = spec
            .grid
            .iter()
            .position(|g| g.to_bits() == fm.to_bits())
            .unwrap_or(usize::MAX);
        if spec.faults.flaky_quarantine.contains(&index) {
            panic!("injected worker panic at point {index}");
        }
        if spec.faults.flaky_retry.contains(&index)
            && !retry_fired[index].fetch_or(true, Ordering::SeqCst)
        {
            return Err(SweepPointError::DegenerateFit { f_mod_hz: fm });
        }
        Scenario::stimulate(
            pll,
            FmStimulus::pure_sine(f_ref, 0.02 * f_ref, fm),
            2.0 / fm,
        );
        Ok(pll.control_voltage())
    };

    let telemetry = Collector::enabled();
    let outcome = plan.scenario().run_points::<E, VoltsCodec, _>(
        &spec.grid,
        spec.threads,
        plan.checkpoint_enabled(),
        plan.supervision(),
        &telemetry,
        Some(&log),
        Some(&sidecar),
        Some(observer.as_ref()),
        capture,
    );

    log.finish(true)
        .map_err(|e| AttemptError::Interrupted(format!("results finish: {e}")))?;
    let _ = observer.finish();

    let mut sidecar_hits = 0;
    let mut sidecar_rejects = 0;
    for record in telemetry.drain() {
        if let Record::Counter { name, value } = record {
            match name.as_str() {
                "campaign.sidecar_hits" => sidecar_hits = value,
                "campaign.sidecar_rejects" => sidecar_rejects = value,
                _ => {}
            }
        }
    }
    Ok(AttemptStats {
        ok: outcome.points.iter().filter(|p| p.is_ok()).count(),
        quarantined: outcome.points.iter().filter(|p| p.is_err()).count(),
        skipped,
        sidecar_hits,
        sidecar_rejects,
        wall_ms: started.elapsed().as_millis(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exotic_config() -> PllConfig {
        PllConfig {
            f_ref_hz: 2_000.0,
            divider_n: 8,
            drive: DriveConfig::Charge {
                i_pump: 1.2e-3,
                mismatch: 0.03,
            },
            filter: FilterConfig::SeriesRc {
                r: 3.3e3,
                c1: 100e-9,
                c2: Some(10e-9),
                r_leak: None,
            },
            vco_k0: 1_234.5,
            vco_gain_scale: 0.97,
            vco_curvature: (0.01, -0.002),
            vco_range_hz: Some((5_000.0, 25_000.0)),
            pfd_dead_zone: 1e-9,
        }
    }

    #[test]
    fn config_wire_round_trips_every_variant() {
        let mut configs = vec![
            PllConfig::paper_table3(),
            PllConfig::integer_n_charge_pump(),
            exotic_config(),
        ];
        let mut pi = PllConfig::paper_table3();
        pi.filter = FilterConfig::ActivePi {
            tau1: 1e-3,
            tau2: 2e-4,
        };
        configs.push(pi);
        let mut leaky = PllConfig::paper_table3();
        leaky.filter = FilterConfig::PassiveLag {
            r1: 1.0e6,
            r2: 1.0e4,
            c: 1e-7,
            r_leak: Some(1.0e9),
        };
        configs.push(leaky);
        for config in configs {
            let wire = config_to_wire(&config);
            let back = config_from_wire(&wire).expect("round trip");
            assert_eq!(back, config, "wire: {wire}");
        }
    }

    #[test]
    fn config_wire_rejects_truncations() {
        let wire = config_to_wire(&PllConfig::paper_table3());
        for cut in 0..wire.len() {
            // Every strict prefix must be rejected, not mis-parsed.
            assert!(
                config_from_wire(&wire[..cut]).is_none(),
                "prefix of {cut} bytes accepted"
            );
        }
        assert!(config_from_wire(&format!("{wire};extra")).is_none());
        assert!(config_from_wire(&wire.replace("v1", "v2")).is_none());
    }

    #[test]
    fn fault_plan_wire_round_trips_and_is_seed_deterministic() {
        let plan = FaultPlan::from_seed(42, 24, 4);
        assert_eq!(plan, FaultPlan::from_seed(42, 24, 4));
        assert_ne!(plan, FaultPlan::from_seed(43, 24, 4));
        let back = FaultPlan::from_wire(&plan.to_wire()).expect("round trip");
        assert_eq!(back, plan);
        assert_eq!(
            FaultPlan::from_wire(&FaultPlan::none().to_wire()),
            Some(FaultPlan::none())
        );
        let reference = plan.reference();
        assert!(reference.crash.is_empty());
        assert_eq!(reference.flaky_retry, plan.flaky_retry);
        assert!(FaultPlan::from_wire("fp1|retry:-|panic:-").is_none());
        assert!(FaultPlan::from_wire("fp2|retry:-|panic:-|crash:-").is_none());
        assert!(FaultPlan::from_wire("fp1|retry:x|panic:-|crash:-").is_none());
        assert!(FaultPlan::from_wire("fp1|retry:-|panic:-|crash:z9").is_none());
    }

    #[test]
    fn torn_journal_append_heals_on_the_next_write() {
        let dir = std::env::temp_dir().join(format!("pllbist_journal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("job.jsonl");
        journal_append(&path, "queued", 0, "submitted").expect("append");
        journal_append(&path, "running", 0, "attempt 0 started").expect("append");
        journal_append_torn(&path, "interrupted", 0, "killed mid-journal-write", 12);
        let (state, attempts) = journal_summary(&path);
        // The torn record is invisible; the last durable state stands.
        assert_eq!(state, "running");
        assert_eq!(attempts, 1);
        journal_append(&path, "running", 1, "attempt 1 started").expect("append");
        let (state, attempts) = journal_summary(&path);
        assert_eq!(state, "running");
        assert_eq!(attempts, 2);
        let text = std::fs::read_to_string(&path).expect("read");
        // The healed file: torn fragment isolated on its own line.
        assert!(text.ends_with('\n'));
        assert_eq!(text.lines().filter(|l| l.contains("running")).count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submission_round_trips_through_job_spec() {
        let config = PllConfig::paper_table3();
        let plan = CampaignPlan::new(config.clone())
            .engine::<ClosedFormPll>()
            .checkpoint(true);
        let grid = [3.0, 9.0, 27.0];
        let faults = FaultPlan::from_seed(7, grid.len(), 2);
        let body = submission_body(&plan, &grid, "svc-test", &faults);
        let spec = JobSpec::parse(&body).expect("parse");
        assert_eq!(spec.backend, "closed_form");
        assert_eq!(spec.digest, plan.digest(&grid, "svc-test"));
        assert_eq!(spec.config, config);
        assert_eq!(spec.grid, grid);
        assert_eq!(spec.salt, "svc-test");
        assert_eq!(spec.faults, faults);
        // The header survives verbatim, so the digest check replays.
        CampaignPlan::<ClosedFormPll>::from_header(
            &spec.header,
            spec.config,
            &spec.grid,
            "svc-test",
        )
        .expect("header round trip");
    }

    #[test]
    fn job_spec_rejects_hostile_submissions() {
        let plan = CampaignPlan::new(PllConfig::paper_table3()).engine::<ClosedFormPll>();
        let grid = [3.0, 9.0];
        let body = submission_body(&plan, &grid, "s", &FaultPlan::none());
        assert!(JobSpec::parse("").is_err());
        assert!(JobSpec::parse("{\"type\":\"campaign\"}").is_err());
        // Path traversal via the digest-as-directory is rejected.
        let traversal = body.replace(&plan.digest(&grid, "s"), "../../../../etc/x");
        assert!(JobSpec::parse(&traversal).is_err());
        let upper = body.replacen(&plan.digest(&grid, "s"), "ABCDEFABCDEFABCD", 1);
        assert!(JobSpec::parse(&upper).is_err());
        // Duplicate grid entries, negative frequencies, zero threads.
        let dup = submission_body(&plan, &[3.0, 3.0], "s", &FaultPlan::none());
        assert!(JobSpec::parse(&dup).is_err());
        let neg = submission_body(&plan, &[3.0, -9.0], "s", &FaultPlan::none());
        assert!(JobSpec::parse(&neg).is_err());
        let zero_threads = body.replace("\"threads\":1", "\"threads\":0");
        assert!(JobSpec::parse(&zero_threads).is_err());
        let bad_backend = body.replace("closed_form", "mixed_signal");
        assert!(JobSpec::parse(&bad_backend).is_err());
    }
}
