//! Radix-2 fast Fourier transform and spectral helpers.
//!
//! Used for spectral inspection of the DCO's multi-tone FSK stimulus (the
//! paper's two-tone vs ten-step comparison) and for validating the Goertzel
//! single-bin extraction.

use crate::complex::Complex64;

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two (or is zero).
pub fn fft_in_place(data: &mut [Complex64]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -std::f64::consts::TAU / len as f64;
        let wlen = Complex64::from_polar(1.0, ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex64::ONE;
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward FFT of a complex buffer (copying).
pub fn fft(data: &[Complex64]) -> Vec<Complex64> {
    let mut out = data.to_vec();
    fft_in_place(&mut out);
    out
}

/// Inverse FFT with `1/N` normalisation.
pub fn ifft(data: &[Complex64]) -> Vec<Complex64> {
    let n = data.len() as f64;
    let mut out: Vec<Complex64> = data.iter().map(|z| z.conj()).collect();
    fft_in_place(&mut out);
    out.iter_mut().for_each(|z| *z = z.conj() / n);
    out
}

/// FFT of a real signal; returns the full complex spectrum.
pub fn fft_real(signal: &[f64]) -> Vec<Complex64> {
    let data: Vec<Complex64> = signal.iter().map(|&x| Complex64::from_re(x)).collect();
    fft(&data)
}

/// Single-sided amplitude spectrum of a real signal of power-of-two length:
/// `(frequency_bin_hz, amplitude)` pairs for bins `0..=N/2`, scaled so that
/// a pure sine of amplitude `A` shows `A` at its bin.
///
/// # Panics
///
/// Panics if the length is not a power of two or `sample_rate_hz` is not
/// positive.
pub fn amplitude_spectrum(signal: &[f64], sample_rate_hz: f64) -> Vec<(f64, f64)> {
    assert!(sample_rate_hz > 0.0, "sample rate must be positive");
    let n = signal.len();
    let spec = fft_real(signal);
    let df = sample_rate_hz / n as f64;
    (0..=n / 2)
        .map(|k| {
            let scale = if k == 0 || k == n / 2 { 1.0 } else { 2.0 };
            (k as f64 * df, scale * spec[k].abs() / n as f64)
        })
        .collect()
}

/// Applies a Hann window in place (for leakage control when tones are not
/// bin-centred).
pub fn hann_window(signal: &mut [f64]) {
    let n = signal.len();
    if n < 2 {
        return;
    }
    for (i, x) in signal.iter_mut().enumerate() {
        let w = 0.5 * (1.0 - (std::f64::consts::TAU * i as f64 / (n - 1) as f64).cos());
        *x *= w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex64::ZERO; 8];
        data[0] = Complex64::ONE;
        let spec = fft(&data);
        for z in spec {
            assert!((z - Complex64::ONE).abs() < 1e-14);
        }
    }

    #[test]
    fn fft_ifft_round_trip() {
        let data: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let back = ifft(&fft(&data));
        for (a, b) in data.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_identity() {
        let data: Vec<Complex64> = (0..128)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let spec = fft(&data);
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn sine_lands_in_correct_bin() {
        let n = 256;
        let fs = 1000.0;
        let f0 = fs * 10.0 / n as f64; // exactly bin 10
        let amp = 2.5;
        let signal: Vec<f64> = (0..n)
            .map(|i| amp * (TAU * f0 * i as f64 / fs).sin())
            .collect();
        let spec = amplitude_spectrum(&signal, fs);
        let (peak_bin, peak) = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .unwrap();
        assert_eq!(peak_bin, 10);
        assert!((peak.1 - amp).abs() < 1e-10);
        assert!((peak.0 - f0).abs() < 1e-9);
    }

    #[test]
    fn two_tone_spectrum_has_two_lines() {
        let n = 512;
        let fs = 512.0;
        let signal: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (TAU * 16.0 * t).sin() + 0.5 * (TAU * 48.0 * t).sin()
            })
            .collect();
        let spec = amplitude_spectrum(&signal, fs);
        assert!((spec[16].1 - 1.0).abs() < 1e-9);
        assert!((spec[48].1 - 0.5).abs() < 1e-9);
        // Everything else near zero.
        let spur: f64 = spec
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != 16 && *k != 48)
            .map(|(_, (_, a))| *a)
            .fold(0.0, f64::max);
        assert!(spur < 1e-9);
    }

    #[test]
    fn hann_window_tapers_ends() {
        let mut s = vec![1.0; 16];
        hann_window(&mut s);
        assert!(s[0].abs() < 1e-12);
        assert!(s[15].abs() < 1e-12);
        assert!(s[8] > 0.9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut d = vec![Complex64::ZERO; 6];
        fft_in_place(&mut d);
    }
}
