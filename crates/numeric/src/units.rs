//! Newtype wrappers for the physical quantities used throughout the
//! workspace.
//!
//! Frequency appears in three guises in PLL work — cyclic frequency (Hz),
//! angular frequency (rad/s) and period (s) — and confusing them is the
//! classic source of 2π bugs. These newtypes make every conversion explicit.
//!
//! # Example
//!
//! ```
//! use pllbist_numeric::{Hertz, RadPerSec, Seconds};
//!
//! let fn_ = Hertz::new(8.0);
//! let wn: RadPerSec = fn_.to_rad_per_sec();
//! assert!((wn.value() - 50.265).abs() < 1e-2);
//! let period: Seconds = fn_.to_period();
//! assert!((period.value() - 0.125).abs() < 1e-12);
//! ```

use std::f64::consts::TAU;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value in this unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in this unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }
        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }
        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }
        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }
        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }
        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }
        /// Dimensionless ratio of two like quantities.
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }
    };
}

quantity!(
    /// Cyclic frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Angular frequency in radians per second.
    RadPerSec,
    "rad/s"
);
quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Voltage in volts.
    Volts,
    "V"
);
quantity!(
    /// Logarithmic magnitude in decibels (20·log10 convention).
    Decibels,
    "dB"
);
quantity!(
    /// Angle in degrees.
    Degrees,
    "deg"
);

impl Hertz {
    /// Converts to angular frequency: `ω = 2π·f`.
    #[inline]
    pub fn to_rad_per_sec(self) -> RadPerSec {
        RadPerSec::new(self.0 * TAU)
    }

    /// Converts to period `T = 1/f`.
    ///
    /// Returns an infinite period for zero frequency, mirroring `1.0 / 0.0`.
    #[inline]
    pub fn to_period(self) -> Seconds {
        Seconds::new(1.0 / self.0)
    }
}

impl RadPerSec {
    /// Converts to cyclic frequency: `f = ω / 2π`.
    #[inline]
    pub fn to_hertz(self) -> Hertz {
        Hertz::new(self.0 / TAU)
    }
}

impl Seconds {
    /// Converts a period to cyclic frequency `f = 1/T`.
    #[inline]
    pub fn to_hertz(self) -> Hertz {
        Hertz::new(1.0 / self.0)
    }
}

impl Decibels {
    /// Converts a linear amplitude ratio to decibels (`20·log10`).
    ///
    /// # Example
    ///
    /// ```
    /// use pllbist_numeric::Decibels;
    /// assert!((Decibels::from_amplitude_ratio(10.0).value() - 20.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_amplitude_ratio(ratio: f64) -> Self {
        Self::new(20.0 * ratio.log10())
    }

    /// Converts back to a linear amplitude ratio.
    #[inline]
    pub fn to_amplitude_ratio(self) -> f64 {
        10f64.powf(self.0 / 20.0)
    }
}

impl Degrees {
    /// Converts radians to degrees.
    #[inline]
    pub fn from_radians(rad: f64) -> Self {
        Self::new(rad.to_degrees())
    }

    /// Converts to radians.
    #[inline]
    pub fn to_radians(self) -> f64 {
        self.0.to_radians()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hertz_rad_round_trip() {
        let f = Hertz::new(123.456);
        let back = f.to_rad_per_sec().to_hertz();
        assert!((back.value() - f.value()).abs() < 1e-12);
    }

    #[test]
    fn period_round_trip() {
        let f = Hertz::new(1000.0);
        assert!((f.to_period().to_hertz().value() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn decibel_round_trip() {
        let db = Decibels::from_amplitude_ratio(0.5);
        assert!((db.value() + 6.0206).abs() < 1e-3);
        assert!((db.to_amplitude_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degrees_round_trip() {
        let d = Degrees::from_radians(std::f64::consts::PI);
        assert!((d.value() - 180.0).abs() < 1e-12);
        assert!((d.to_radians() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_on_quantities() {
        let a = Seconds::new(2.0);
        let b = Seconds::new(0.5);
        assert_eq!((a + b).value(), 2.5);
        assert_eq!((a - b).value(), 1.5);
        assert_eq!((a * 2.0).value(), 4.0);
        assert_eq!((2.0 * a).value(), 4.0);
        assert_eq!((a / 2.0).value(), 1.0);
        assert_eq!(a / b, 4.0);
        assert_eq!((-a).value(), -2.0);
        assert_eq!(Seconds::new(-3.0).abs().value(), 3.0);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Hertz::new(8.0).to_string(), "8 Hz");
        assert_eq!(Decibels::new(-3.0).to_string(), "-3 dB");
    }
}
