//! Real-coefficient polynomials with complex evaluation and root finding.
//!
//! Polynomials are stored in **ascending** coefficient order
//! (`c[0] + c[1]·x + c[2]·x² + …`), the natural order for transfer-function
//! work where the constant term is the DC behaviour.

use crate::complex::Complex64;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A polynomial with real coefficients, ascending order.
///
/// # Example
///
/// ```
/// use pllbist_numeric::poly::Polynomial;
///
/// // p(x) = 1 + 2x + x²  =  (x + 1)²
/// let p = Polynomial::new([1.0, 2.0, 1.0]);
/// assert_eq!(p.degree(), 2);
/// assert_eq!(p.eval(2.0), 9.0);
/// let roots = p.roots(1e-10, 200);
/// assert!(roots.iter().all(|r| (r.re + 1.0).abs() < 1e-4 && r.im.abs() < 1e-4));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending coefficients, trimming trailing
    /// (highest-order) zeros.
    ///
    /// The zero polynomial is represented by a single `0.0` coefficient.
    pub fn new<I: IntoIterator<Item = f64>>(coeffs: I) -> Self {
        let mut coeffs: Vec<f64> = coeffs.into_iter().collect();
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Self { coeffs }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Self::new([c])
    }

    /// The monomial `x`.
    pub fn x() -> Self {
        Self::new([0.0, 1.0])
    }

    /// Builds a monic polynomial from its real roots: `∏ (x − rᵢ)`.
    pub fn from_roots<I: IntoIterator<Item = f64>>(roots: I) -> Self {
        let mut p = Self::constant(1.0);
        for r in roots {
            p = &p * &Self::new([-r, 1.0]);
        }
        p
    }

    /// Ascending coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// `true` if all coefficients are zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0.0)
    }

    /// Leading (highest-order) coefficient.
    pub fn leading(&self) -> f64 {
        *self.coeffs.last().expect("polynomial is never empty")
    }

    /// Evaluates at a real point by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates at a complex point by Horner's rule.
    pub fn eval_complex(&self, x: Complex64) -> Complex64 {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex64::ZERO, |acc, &c| acc * x + c)
    }

    /// First derivative.
    pub fn derivative(&self) -> Self {
        if self.coeffs.len() == 1 {
            return Self::constant(0.0);
        }
        Self::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, &c)| c * i as f64),
        )
    }

    /// Multiplies every coefficient by a scalar.
    pub fn scale(&self, k: f64) -> Self {
        Self::new(self.coeffs.iter().map(|&c| c * k))
    }

    /// Substitutes `x → k·x`, i.e. returns `p(k·x)`; used for frequency
    /// scaling of transfer functions.
    pub fn scale_arg(&self, k: f64) -> Self {
        let mut pow = 1.0;
        Self::new(self.coeffs.iter().map(|&c| {
            let out = c * pow;
            pow *= k;
            out
        }))
    }

    /// All complex roots via the Durand–Kerner (Weierstrass) simultaneous
    /// iteration.
    ///
    /// Returns an empty vector for constant polynomials. Convergence is
    /// declared when every root moves less than `tol` in one sweep; at most
    /// `max_iter` sweeps are performed (the best iterate so far is returned
    /// even if the tolerance was not met, which for the well-conditioned
    /// low-order polynomials of this workspace does not occur in practice).
    pub fn roots(&self, tol: f64, max_iter: usize) -> Vec<Complex64> {
        let n = self.degree();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            // c0 + c1 x = 0
            return vec![Complex64::from_re(-self.coeffs[0] / self.coeffs[1])];
        }
        if n == 2 {
            return quadratic_roots(self.coeffs[0], self.coeffs[1], self.coeffs[2]).to_vec();
        }
        // Normalise to monic.
        let lead = self.leading();
        let monic: Vec<f64> = self.coeffs.iter().map(|&c| c / lead).collect();
        // Initial guesses on a circle of radius related to the coefficient
        // magnitudes (Cauchy bound), rotated off the real axis.
        let radius = 1.0 + monic[..n].iter().fold(0.0f64, |m, &c| m.max(c.abs()));
        let mut roots: Vec<Complex64> = (0..n)
            .map(|k| {
                Complex64::from_polar(
                    radius,
                    std::f64::consts::TAU * (k as f64 + 0.25) / n as f64 + 0.1,
                )
            })
            .collect();
        let poly = Self::new(monic.iter().copied());
        for _ in 0..max_iter {
            let mut max_step = 0.0f64;
            for i in 0..n {
                let mut denom = Complex64::ONE;
                for j in 0..n {
                    if i != j {
                        denom *= roots[i] - roots[j];
                    }
                }
                let step = poly.eval_complex(roots[i]) / denom;
                roots[i] -= step;
                max_step = max_step.max(step.abs());
            }
            if max_step < tol {
                break;
            }
        }
        roots
    }
}

/// Roots of `c0 + c1·x + c2·x²` in closed form.
///
/// # Panics
///
/// Panics if `c2 == 0` (not a quadratic).
pub fn quadratic_roots(c0: f64, c1: f64, c2: f64) -> [Complex64; 2] {
    assert!(
        c2 != 0.0,
        "leading coefficient of a quadratic must be nonzero"
    );
    let disc = c1 * c1 - 4.0 * c2 * c0;
    if disc >= 0.0 {
        let sq = disc.sqrt();
        // Numerically stable form avoiding cancellation.
        let q = -0.5 * (c1 + c1.signum() * sq);
        let (r1, r2) = if q == 0.0 {
            (0.0, 0.0)
        } else {
            (q / c2, c0 / q)
        };
        [Complex64::from_re(r1), Complex64::from_re(r2)]
    } else {
        let sq = (-disc).sqrt();
        let re = -c1 / (2.0 * c2);
        let im = sq / (2.0 * c2);
        [Complex64::new(re, im), Complex64::new(re, -im)]
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 && self.coeffs.len() > 1 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c >= 0.0 { "+" } else { "-" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            match i {
                0 => write!(f, "{a}")?,
                1 => write!(f, "{a}·x")?,
                _ => write!(f, "{a}·x^{i}")?,
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

impl Add for &Polynomial {
    type Output = Polynomial;
    fn add(self, rhs: Self) -> Polynomial {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        Polynomial::new((0..n).map(|i| {
            self.coeffs.get(i).copied().unwrap_or(0.0) + rhs.coeffs.get(i).copied().unwrap_or(0.0)
        }))
    }
}

impl Sub for &Polynomial {
    type Output = Polynomial;
    fn sub(self, rhs: Self) -> Polynomial {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        Polynomial::new((0..n).map(|i| {
            self.coeffs.get(i).copied().unwrap_or(0.0) - rhs.coeffs.get(i).copied().unwrap_or(0.0)
        }))
    }
}

impl Mul for &Polynomial {
    type Output = Polynomial;
    fn mul(self, rhs: Self) -> Polynomial {
        let mut out = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Polynomial::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trims_trailing_zeros() {
        let p = Polynomial::new([1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
        let z = Polynomial::new([0.0, 0.0]);
        assert!(z.is_zero());
        assert_eq!(z.degree(), 0);
    }

    #[test]
    fn horner_evaluation() {
        let p = Polynomial::new([1.0, -3.0, 2.0]); // 1 - 3x + 2x²
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 0.0);
        assert_eq!(p.eval(2.0), 3.0);
        let z = p.eval_complex(Complex64::I);
        // 1 - 3j + 2(-1) = -1 - 3j
        assert!((z - Complex64::new(-1.0, -3.0)).abs() < 1e-15);
    }

    #[test]
    fn derivative_rules() {
        let p = Polynomial::new([5.0, 1.0, 3.0, 2.0]); // 5 + x + 3x² + 2x³
        assert_eq!(p.derivative().coeffs(), &[1.0, 6.0, 6.0]);
        assert_eq!(Polynomial::constant(7.0).derivative().coeffs(), &[0.0]);
    }

    #[test]
    fn ring_operations() {
        let a = Polynomial::new([1.0, 1.0]); // 1 + x
        let b = Polynomial::new([-1.0, 1.0]); // -1 + x
        assert_eq!((&a * &b).coeffs(), &[-1.0, 0.0, 1.0]); // x² − 1
        assert_eq!((&a + &b).coeffs(), &[0.0, 2.0]);
        assert_eq!((&a - &b).coeffs(), &[2.0]);
    }

    #[test]
    fn from_roots_expands() {
        let p = Polynomial::from_roots([1.0, -2.0]);
        // (x−1)(x+2) = x² + x − 2
        assert_eq!(p.coeffs(), &[-2.0, 1.0, 1.0]);
    }

    #[test]
    fn scale_arg_substitutes() {
        let p = Polynomial::new([1.0, 1.0, 1.0]); // 1 + x + x²
        let q = p.scale_arg(2.0); // 1 + 2x + 4x²
        assert_eq!(q.coeffs(), &[1.0, 2.0, 4.0]);
        assert_eq!(q.eval(3.0), p.eval(6.0));
    }

    #[test]
    fn quadratic_roots_real_and_complex() {
        let [r1, r2] = quadratic_roots(-2.0, 1.0, 1.0); // x²+x−2 = (x+2)(x−1)
        let mut roots = [r1.re, r2.re];
        roots.sort_by(f64::total_cmp);
        assert!((roots[0] + 2.0).abs() < 1e-12 && (roots[1] - 1.0).abs() < 1e-12);

        let [c1, c2] = quadratic_roots(1.0, 0.0, 1.0); // x²+1
        assert!((c1.im.abs() - 1.0).abs() < 1e-12 && c1.re.abs() < 1e-12);
        assert!((c1 - c2.conj()).abs() < 1e-12);
    }

    #[test]
    fn linear_root() {
        let p = Polynomial::new([3.0, -1.5]); // 3 − 1.5x → x = 2
        let r = p.roots(1e-12, 10);
        assert_eq!(r.len(), 1);
        assert!((r[0].re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn durand_kerner_cubic() {
        // (x−1)(x−2)(x−3) = x³ − 6x² + 11x − 6
        let p = Polynomial::new([-6.0, 11.0, -6.0, 1.0]);
        let mut roots: Vec<f64> = p.roots(1e-12, 500).iter().map(|r| r.re).collect();
        roots.sort_by(f64::total_cmp);
        for (got, want) in roots.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn durand_kerner_complex_quartic() {
        // (x²+1)(x²+4): roots ±j, ±2j
        let p = Polynomial::new([4.0, 0.0, 5.0, 0.0, 1.0]);
        let roots = p.roots(1e-12, 500);
        let mut mags: Vec<f64> = roots.iter().map(|r| r.abs()).collect();
        mags.sort_by(f64::total_cmp);
        assert!((mags[0] - 1.0).abs() < 1e-6 && (mags[1] - 1.0).abs() < 1e-6);
        assert!((mags[2] - 2.0).abs() < 1e-6 && (mags[3] - 2.0).abs() < 1e-6);
        for r in &roots {
            assert!(r.re.abs() < 1e-6);
        }
    }

    #[test]
    fn display_renders() {
        let p = Polynomial::new([1.0, -2.0, 3.0]);
        assert_eq!(p.to_string(), "3·x^2 - 2·x + 1");
        assert_eq!(Polynomial::constant(0.0).to_string(), "0");
    }
}
