//! Continuous-time linear state-space models and exact zero-order-hold
//! discretisation.
//!
//! The analogue half of the PLL simulator represents the loop filter as
//! `ẋ = A·x + B·u, y = C·x + D·u`. Because the filter's input (the
//! phase-detector / charge-pump drive) is **piecewise constant between
//! digital events**, the zero-order-hold discretisation is *exact*, not an
//! approximation — the transient engine therefore commits no integration
//! error in the linear elements regardless of step size.

use crate::matrix::Matrix;
use crate::tf::TransferFunction;

/// A single-input single-output continuous-time state-space model.
///
/// # Example
///
/// Discretise a first-order low-pass exactly and compare with the analytic
/// exponential step response:
///
/// ```
/// use pllbist_numeric::statespace::StateSpace;
/// use pllbist_numeric::tf::TransferFunction;
///
/// let tau = 1e-3;
/// let ss = StateSpace::from_transfer_function(
///     &TransferFunction::first_order_lowpass(tau));
/// let dt = 0.2e-3;
/// let zoh = ss.discretize(dt);
/// let mut x = ss.zero_state();
/// let mut t = 0.0;
/// for _ in 0..20 {
///     x = zoh.step(&x, 1.0);
///     t += dt;
///     let y = zoh.output(&x, 1.0);
///     assert!((y - (1.0 - (-t / tau).exp())).abs() < 1e-12);
/// }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StateSpace {
    a: Matrix,
    b: Matrix,
    c: Matrix,
    d: f64,
}

impl StateSpace {
    /// Creates a model from its matrices.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent shapes (`a` must be `n×n`, `b` `n×1`, `c`
    /// `1×n`).
    pub fn new(a: Matrix, b: Matrix, c: Matrix, d: f64) -> Self {
        let n = a.rows();
        assert!(a.is_square(), "A must be square");
        assert_eq!((b.rows(), b.cols()), (n, 1), "B must be n×1");
        assert_eq!((c.rows(), c.cols()), (1, n), "C must be 1×n");
        Self { a, b, c, d }
    }

    /// Builds the controllable canonical realisation of a **proper**
    /// transfer function.
    ///
    /// # Panics
    ///
    /// Panics if the transfer function is improper (numerator degree exceeds
    /// denominator degree).
    pub fn from_transfer_function(tf: &TransferFunction) -> Self {
        assert!(
            tf.relative_degree() >= 0,
            "state-space realisation requires a proper transfer function"
        );
        let den = tf.den().coeffs();
        let n = tf.den().degree();
        let lead = *den.last().expect("nonzero denominator");
        // Normalised denominator: s^n + a_{n-1} s^{n-1} + ... + a_0
        let a_norm: Vec<f64> = den[..n].iter().map(|&c| c / lead).collect();
        // Normalised, zero-padded numerator of length n+1.
        let mut b_norm = vec![0.0; n + 1];
        for (i, &c) in tf.num().coeffs().iter().enumerate() {
            b_norm[i] = c / lead;
        }
        let d = b_norm[n];

        if n == 0 {
            // Pure gain: a degenerate 1-state model with zero dynamics keeps
            // the interface uniform.
            return Self::new(
                Matrix::zeros(1, 1),
                Matrix::zeros(1, 1),
                Matrix::zeros(1, 1),
                d,
            );
        }

        let mut a = Matrix::zeros(n, n);
        for i in 0..n - 1 {
            a[(i, i + 1)] = 1.0;
        }
        for j in 0..n {
            a[(n - 1, j)] = -a_norm[j];
        }
        let mut b = Matrix::zeros(n, 1);
        b[(n - 1, 0)] = 1.0;
        let mut c = Matrix::zeros(1, n);
        for j in 0..n {
            c[(0, j)] = b_norm[j] - a_norm[j] * d;
        }
        Self::new(a, b, c, d)
    }

    /// State dimension.
    pub fn order(&self) -> usize {
        self.a.rows()
    }

    /// The `A` matrix.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// The `B` vector.
    pub fn b(&self) -> &Matrix {
        &self.b
    }

    /// The `C` vector.
    pub fn c(&self) -> &Matrix {
        &self.c
    }

    /// The direct feed-through term `D`.
    pub fn d(&self) -> f64 {
        self.d
    }

    /// A zero initial state vector.
    pub fn zero_state(&self) -> Vec<f64> {
        vec![0.0; self.order()]
    }

    /// Output `y = C·x + D·u` for a given state and input.
    #[allow(clippy::needless_range_loop)] // index form mirrors the matrix algebra
    pub fn output(&self, x: &[f64], u: f64) -> f64 {
        assert_eq!(x.len(), self.order(), "state dimension mismatch");
        let mut y = self.d * u;
        for j in 0..self.order() {
            y += self.c[(0, j)] * x[j];
        }
        y
    }

    /// State derivative `ẋ = A·x + B·u`.
    #[allow(clippy::needless_range_loop)] // index form mirrors the matrix algebra
    pub fn derivative(&self, x: &[f64], u: f64) -> Vec<f64> {
        assert_eq!(x.len(), self.order(), "state dimension mismatch");
        let n = self.order();
        let mut dx = vec![0.0; n];
        for i in 0..n {
            let mut s = self.b[(i, 0)] * u;
            for j in 0..n {
                s += self.a[(i, j)] * x[j];
            }
            dx[i] = s;
        }
        dx
    }

    /// Exact zero-order-hold discretisation with step `dt`.
    ///
    /// Uses the augmented-matrix identity
    /// `expm([[A,B],[0,0]]·dt) = [[Ad,Bd],[0,I]]`, which is valid even when
    /// `A` is singular (as it is for integrators).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite.
    pub fn discretize(&self, dt: f64) -> DiscreteStateSpace {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive and finite");
        let n = self.order();
        let mut aug = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..n {
                aug[(i, j)] = self.a[(i, j)] * dt;
            }
            aug[(i, n)] = self.b[(i, 0)] * dt;
        }
        let e = aug.expm();
        let ad = e.block(0, 0, n, n);
        let bd = e.block(0, n, n, 1);
        DiscreteStateSpace {
            ad,
            bd,
            c: self.c.clone(),
            d: self.d,
            dt,
        }
    }

    /// The model's transfer function `C(sI−A)⁻¹B + D`, reconstructed via
    /// Leverrier's algorithm (useful for round-trip checks).
    pub fn to_transfer_function(&self) -> TransferFunction {
        let n = self.order();
        // Faddeev–LeVerrier: den(s) = s^n + c_{n-1} s^{n-1} + …;
        // num from C adj(sI−A) B.
        let mut m = Matrix::identity(n);
        let mut den = vec![0.0; n + 1];
        den[n] = 1.0;
        // num coefficient of s^{n-1-k} is C·M_k·B.
        let mut num = vec![0.0; n + 1];
        for k in 0..n {
            // num term with current M.
            let cmb = &(&self.c * &m) * &self.b;
            num[n - 1 - k] = cmb[(0, 0)];
            let am = &self.a * &m;
            let trace: f64 = (0..n).map(|i| am[(i, i)]).sum();
            let coeff = -trace / (k as f64 + 1.0);
            den[n - 1 - k] = coeff;
            m = &am + &Matrix::identity(n).scale(coeff);
        }
        // Add the feed-through: num += d * den.
        for i in 0..=n {
            num[i] += self.d * den[i];
        }
        TransferFunction::new(num, den)
    }
}

/// A zero-order-hold discretisation of a [`StateSpace`] model.
#[derive(Clone, Debug, PartialEq)]
pub struct DiscreteStateSpace {
    ad: Matrix,
    bd: Matrix,
    c: Matrix,
    d: f64,
    dt: f64,
}

impl DiscreteStateSpace {
    /// The discretisation step this model was built for.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Advances one step: `x⁺ = Ad·x + Bd·u` with `u` held constant over the
    /// step.
    #[allow(clippy::needless_range_loop)] // index form mirrors the matrix algebra
    pub fn step(&self, x: &[f64], u: f64) -> Vec<f64> {
        let n = self.ad.rows();
        assert_eq!(x.len(), n, "state dimension mismatch");
        let mut nx = vec![0.0; n];
        for i in 0..n {
            let mut s = self.bd[(i, 0)] * u;
            for j in 0..n {
                s += self.ad[(i, j)] * x[j];
            }
            nx[i] = s;
        }
        nx
    }

    /// Output `y = C·x + D·u`.
    #[allow(clippy::needless_range_loop)] // index form mirrors the matrix algebra
    pub fn output(&self, x: &[f64], u: f64) -> f64 {
        let mut y = self.d * u;
        for j in 0..self.c.cols() {
            y += self.c[(0, j)] * x[j];
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_matches_transfer_function_response() {
        // H(s) = (1+0.01 s)/(1+0.1 s): lag filter, D != 0.
        let tf = TransferFunction::new([1.0, 0.01], [1.0, 0.1]);
        let ss = StateSpace::from_transfer_function(&tf);
        assert_eq!(ss.order(), 1);
        let rt = ss.to_transfer_function();
        for w in [0.1, 1.0, 10.0, 100.0] {
            let a = tf.eval_jw(w);
            let b = rt.eval_jw(w);
            assert!((a - b).abs() < 1e-10, "w={w}: {a} vs {b}");
        }
    }

    #[test]
    fn second_order_round_trip() {
        let tf = TransferFunction::new([4.0, 0.5], [4.0, 1.2, 1.0]);
        let ss = StateSpace::from_transfer_function(&tf);
        assert_eq!(ss.order(), 2);
        let rt = ss.to_transfer_function();
        for w in [0.01, 0.5, 2.0, 30.0] {
            assert!((tf.eval_jw(w) - rt.eval_jw(w)).abs() < 1e-9);
        }
    }

    #[test]
    fn pure_gain_realisation() {
        let tf = TransferFunction::gain(2.5);
        let ss = StateSpace::from_transfer_function(&tf);
        assert_eq!(ss.output(&ss.zero_state(), 3.0), 7.5);
        let z = ss.discretize(1.0);
        let x = z.step(&ss.zero_state(), 1.0);
        assert_eq!(z.output(&x, 3.0), 7.5);
    }

    #[test]
    fn integrator_discretisation_is_exact() {
        // 1/s: state ramps linearly with held input, even though A is singular.
        let ss = StateSpace::from_transfer_function(&TransferFunction::integrator(1.0));
        let z = ss.discretize(0.25);
        let mut x = ss.zero_state();
        for _ in 0..8 {
            x = z.step(&x, 2.0);
        }
        // y = ∫ 2 dt over 2 s = 4.
        assert!((z.output(&x, 2.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zoh_matches_analytic_first_order() {
        let tau = 2e-3;
        let ss = StateSpace::from_transfer_function(&TransferFunction::first_order_lowpass(tau));
        let dt = 0.7e-3; // deliberately "large" step: ZOH is still exact
        let z = ss.discretize(dt);
        let mut x = ss.zero_state();
        for k in 1..=40 {
            x = z.step(&x, 1.0);
            let t = k as f64 * dt;
            let want = 1.0 - (-t / tau).exp();
            assert!((z.output(&x, 1.0) - want).abs() < 1e-12, "step {k}");
        }
    }

    #[test]
    fn zoh_matches_analytic_second_order_lag() {
        // Paper's filter: (1+s τ2)/(1+s(τ1+τ2)) in series with an
        // integrator gives a 2-state system with singular-ish A.
        let (t1, t2) = (64.04e-3, 11.9e-3);
        let filt = TransferFunction::new([1.0, t2], [1.0, t1 + t2]);
        let chain = filt.series(&TransferFunction::integrator(1.0));
        let ss = StateSpace::from_transfer_function(&chain);
        let z = ss.discretize(1e-3);
        let mut x = ss.zero_state();
        let steps = 500;
        for _ in 0..steps {
            x = z.step(&x, 1.0);
        }
        let t = steps as f64 * 1e-3;
        // Analytic step response of F(s)/s for unit input:
        // y(t) = t - (τ1)(1 - e^{-t/(τ1+τ2)}) ... derive via partial fractions:
        // F(s)/s = 1/s - τ1/(1+s(τ1+τ2)) → y = t − τ1(1 − e^{−t/(τ1+τ2)})
        let want = t - t1 * (1.0 - (-t / (t1 + t2)).exp());
        assert!((z.output(&x, 1.0) - want).abs() < 1e-9);
    }

    #[test]
    fn derivative_is_consistent_with_matrices() {
        let tf = TransferFunction::new([1.0], [1.0, 2.0, 1.0]);
        let ss = StateSpace::from_transfer_function(&tf);
        let dx = ss.derivative(&[1.0, 2.0], 3.0);
        // A = [[0,1],[-1,-2]], B=[0,1]^T
        assert_eq!(dx, vec![2.0, -1.0 + 2.0 * -2.0 + 3.0]);
    }

    #[test]
    #[should_panic(expected = "proper transfer function")]
    fn improper_tf_rejected() {
        let improper = TransferFunction::new([0.0, 0.0, 1.0], [1.0, 1.0]);
        let _ = StateSpace::from_transfer_function(&improper);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn bad_dt_rejected() {
        let ss = StateSpace::from_transfer_function(&TransferFunction::gain(1.0));
        let _ = ss.discretize(0.0);
    }
}
