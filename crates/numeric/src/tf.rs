//! Rational Laplace-domain transfer functions and block-diagram algebra.
//!
//! A [`TransferFunction`] is a ratio of two real polynomials in `s`. The
//! composition operators implement the block-diagram rules used to assemble
//! the PLL loop of the paper's eq. (1):
//!
//! * [`TransferFunction::series`] — cascade `G1·G2`,
//! * [`TransferFunction::parallel`] — sum `G1 + G2`,
//! * [`TransferFunction::feedback`] — closed loop `G / (1 + G·H)`.

use crate::complex::Complex64;
use crate::poly::Polynomial;
use std::fmt;

/// A proper or improper rational function `N(s)/D(s)` with real
/// coefficients.
///
/// # Example
///
/// Assemble the type-2 PLL of the paper and check its DC gain equals the
/// divider ratio `N` (eq. 4 ⇒ `H(0) = N`):
///
/// ```
/// use pllbist_numeric::tf::TransferFunction;
///
/// let (kd, k0, n) = (0.4, 2400.0, 5.0);
/// let (tau1, tau2) = (64.04e-3, 11.9e-3);
/// let filter = TransferFunction::new([1.0, tau2], [1.0, tau1 + tau2]);
/// let forward = TransferFunction::gain(kd)
///     .series(&filter)
///     .series(&TransferFunction::new([k0], [0.0, 1.0])); // K0/s
/// let h = forward.feedback(&TransferFunction::gain(1.0 / n));
/// assert!((h.dc_gain() - n).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TransferFunction {
    num: Polynomial,
    den: Polynomial,
}

impl TransferFunction {
    /// Creates a transfer function from ascending numerator and denominator
    /// coefficients.
    ///
    /// # Panics
    ///
    /// Panics if the denominator is identically zero.
    pub fn new<N, D>(num: N, den: D) -> Self
    where
        N: IntoIterator<Item = f64>,
        D: IntoIterator<Item = f64>,
    {
        let num = Polynomial::new(num);
        let den = Polynomial::new(den);
        assert!(
            !den.is_zero(),
            "transfer function denominator must be nonzero"
        );
        Self { num, den }
    }

    /// Creates a transfer function from polynomials.
    ///
    /// # Panics
    ///
    /// Panics if the denominator is identically zero.
    pub fn from_polys(num: Polynomial, den: Polynomial) -> Self {
        assert!(
            !den.is_zero(),
            "transfer function denominator must be nonzero"
        );
        Self { num, den }
    }

    /// A pure gain `k`.
    pub fn gain(k: f64) -> Self {
        Self::new([k], [1.0])
    }

    /// An ideal integrator `k/s` — the VCO phase model `θo = (K0/s)·Vc`.
    pub fn integrator(k: f64) -> Self {
        Self::new([k], [0.0, 1.0])
    }

    /// A first-order low-pass `1/(1+s·tau)`.
    pub fn first_order_lowpass(tau: f64) -> Self {
        Self::new([1.0], [1.0, tau])
    }

    /// The canonical unity-DC-gain second-order system with a zero at
    /// `−ωn/(2ζ)`:
    /// `H(s) = (2ζωn·s + ωn²) / (s² + 2ζωn·s + ωn²)` —
    /// the high-gain closed-loop shape of a type-2 PLL (paper fig. 1).
    pub fn second_order_pll(omega_n: f64, zeta: f64) -> Self {
        let a = 2.0 * zeta * omega_n;
        Self::new([omega_n * omega_n, a], [omega_n * omega_n, a, 1.0])
    }

    /// Numerator polynomial.
    pub fn num(&self) -> &Polynomial {
        &self.num
    }

    /// Denominator polynomial.
    pub fn den(&self) -> &Polynomial {
        &self.den
    }

    /// Evaluates `H(s)` at an arbitrary complex point.
    pub fn eval(&self, s: Complex64) -> Complex64 {
        self.num.eval_complex(s) / self.den.eval_complex(s)
    }

    /// Evaluates the frequency response `H(jω)` at angular frequency `omega`
    /// in rad/s.
    pub fn eval_jw(&self, omega: f64) -> Complex64 {
        self.eval(Complex64::jw(omega))
    }

    /// Magnitude of the frequency response at `omega` (rad/s).
    pub fn magnitude(&self, omega: f64) -> f64 {
        self.eval_jw(omega).abs()
    }

    /// Phase of the frequency response at `omega` (rad/s), in radians,
    /// wrapped to `(−π, π]`.
    pub fn phase(&self, omega: f64) -> f64 {
        self.eval_jw(omega).arg()
    }

    /// DC gain `H(0)`; infinite for systems with integrators.
    pub fn dc_gain(&self) -> f64 {
        self.num.coeffs()[0] / self.den.coeffs()[0]
    }

    /// Series (cascade) connection `self · other`.
    pub fn series(&self, other: &Self) -> Self {
        Self {
            num: &self.num * &other.num,
            den: &self.den * &other.den,
        }
    }

    /// Parallel (summing) connection `self + other`.
    pub fn parallel(&self, other: &Self) -> Self {
        Self {
            num: &(&self.num * &other.den) + &(&other.num * &self.den),
            den: &self.den * &other.den,
        }
    }

    /// Negative-feedback closure `self / (1 + self·h)` where `h` is the
    /// feedback-path transfer function.
    ///
    /// For the PLL of eq. (1), the forward path is `Kd·F(s)·K0/s` and the
    /// feedback path is `1/N`.
    pub fn feedback(&self, h: &Self) -> Self {
        // G = ng/dg, H = nh/dh  =>  G/(1+GH) = ng·dh / (dg·dh + ng·nh)
        let num = &self.num * &h.den;
        let den = &(&self.den * &h.den) + &(&self.num * &h.num);
        Self::from_polys(num, den)
    }

    /// Unity-negative-feedback closure `self / (1 + self)`.
    pub fn feedback_unity(&self) -> Self {
        self.feedback(&Self::gain(1.0))
    }

    /// The reciprocal `1/H(s)`.
    ///
    /// # Panics
    ///
    /// Panics if the numerator is identically zero.
    pub fn inv(&self) -> Self {
        Self::from_polys(self.den.clone(), self.num.clone())
    }

    /// Scales the overall gain by `k`.
    pub fn scale(&self, k: f64) -> Self {
        Self {
            num: self.num.scale(k),
            den: self.den.clone(),
        }
    }

    /// Poles (denominator roots).
    pub fn poles(&self) -> Vec<Complex64> {
        self.den.roots(1e-12, 1000)
    }

    /// Zeros (numerator roots).
    pub fn zeros(&self) -> Vec<Complex64> {
        self.num.roots(1e-12, 1000)
    }

    /// `true` if every pole has a strictly negative real part.
    ///
    /// Poles with `|Re| < tol·|pole|` are treated as marginal and reported
    /// unstable.
    pub fn is_stable(&self, tol: f64) -> bool {
        self.poles()
            .iter()
            .all(|p| p.re < -tol * p.abs().max(1e-300))
    }

    /// Relative degree `deg(den) − deg(num)`; negative for improper systems.
    pub fn relative_degree(&self) -> isize {
        self.den.degree() as isize - self.num.degree() as isize
    }
}

impl fmt::Display for TransferFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) / ({})", self.num, self.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn gain_and_integrator() {
        let g = TransferFunction::gain(3.0);
        assert_eq!(g.dc_gain(), 3.0);
        assert_eq!(g.magnitude(123.0), 3.0);

        let i = TransferFunction::integrator(2.0);
        let z = i.eval_jw(4.0); // 2/(4j) = -0.5j
        assert!((z - Complex64::new(0.0, -0.5)).abs() < 1e-15);
    }

    #[test]
    fn lowpass_corner() {
        let tau = 1e-3;
        let lp = TransferFunction::first_order_lowpass(tau);
        let w = 1.0 / tau;
        assert!((lp.magnitude(w) - 1.0 / 2f64.sqrt()).abs() < 1e-12);
        assert!((lp.phase(w) + std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn series_multiplies_responses() {
        let a = TransferFunction::first_order_lowpass(1.0);
        let b = TransferFunction::gain(2.0);
        let c = a.series(&b);
        for w in [0.1, 1.0, 10.0] {
            let lhs = c.eval_jw(w);
            let rhs = a.eval_jw(w) * b.eval_jw(w);
            assert!((lhs - rhs).abs() < 1e-14);
        }
    }

    #[test]
    fn parallel_adds_responses() {
        let a = TransferFunction::first_order_lowpass(1.0);
        let b = TransferFunction::new([0.0, 1.0], [1.0, 1.0]); // s/(1+s)
        let c = a.parallel(&b);
        for w in [0.3, 3.0] {
            let lhs = c.eval_jw(w);
            let rhs = a.eval_jw(w) + b.eval_jw(w);
            assert!((lhs - rhs).abs() < 1e-14);
        }
        // 1/(1+s) + s/(1+s) = 1
        assert!((c.magnitude(5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn feedback_matches_manual_algebra() {
        // G = 10/s with unity feedback: H = 10/(s+10)
        let g = TransferFunction::integrator(10.0);
        let h = g.feedback_unity();
        for w in [1.0, 10.0, 100.0] {
            let want = Complex64::from_re(10.0) / Complex64::new(10.0, w);
            assert!((h.eval_jw(w) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn second_order_pll_shape() {
        let wn = TAU * 8.0;
        let h = TransferFunction::second_order_pll(wn, 0.43);
        // DC gain 1, high-frequency roll-off, peak near wn.
        assert!((h.dc_gain() - 1.0).abs() < 1e-12);
        assert!(h.magnitude(wn) > 1.0);
        assert!(h.magnitude(100.0 * wn) < 0.05);
    }

    #[test]
    fn paper_eq4_composition_matches_direct_form() {
        // Direct eq. (4):
        // H(s) = N·K(1+sτ2) / ( N(τ1+τ2) s² + (N + Kτ2) s + K )
        let (kd, k0, n) = (0.4, 2400.0, 5.0);
        let k = kd * k0;
        let (t1, t2) = (64.04e-3, 11.9e-3);
        let direct = TransferFunction::new([n * k, n * k * t2], [k, n + k * t2, n * (t1 + t2)]);
        let filter = TransferFunction::new([1.0, t2], [1.0, t1 + t2]);
        let composed = TransferFunction::gain(kd)
            .series(&filter)
            .series(&TransferFunction::integrator(k0))
            .feedback(&TransferFunction::gain(1.0 / n));
        for w in [1.0, 10.0, 50.0, 200.0, 1000.0] {
            let a = direct.eval_jw(w);
            let b = composed.eval_jw(w);
            assert!(
                (a - b).abs() / a.abs() < 1e-10,
                "mismatch at w={w}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn poles_zeros_and_stability() {
        let h = TransferFunction::new([1.0], [2.0, 3.0, 1.0]); // poles −1, −2
        let mut poles: Vec<f64> = h.poles().iter().map(|p| p.re).collect();
        poles.sort_by(f64::total_cmp);
        assert!((poles[0] + 2.0).abs() < 1e-9 && (poles[1] + 1.0).abs() < 1e-9);
        assert!(h.is_stable(1e-9));

        let unstable = TransferFunction::new([1.0], [-1.0, 1.0]); // pole +1
        assert!(!unstable.is_stable(1e-9));
    }

    #[test]
    fn inv_and_scale() {
        let h = TransferFunction::new([2.0], [1.0, 1.0]);
        let hi = h.inv();
        for w in [0.5, 2.0] {
            assert!((h.eval_jw(w) * hi.eval_jw(w) - Complex64::ONE).abs() < 1e-13);
        }
        assert_eq!(h.scale(3.0).dc_gain(), 6.0);
    }

    #[test]
    fn relative_degree_reports_properness() {
        assert_eq!(TransferFunction::integrator(1.0).relative_degree(), 1);
        assert_eq!(TransferFunction::gain(1.0).relative_degree(), 0);
        let improper = TransferFunction::new([0.0, 0.0, 1.0], [1.0, 1.0]);
        assert_eq!(improper.relative_degree(), -1);
    }

    #[test]
    #[should_panic(expected = "denominator must be nonzero")]
    fn zero_denominator_panics() {
        let _ = TransferFunction::new([1.0], [0.0]);
    }
}
