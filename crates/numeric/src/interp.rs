//! Interpolation and feature location on sampled waveforms.
//!
//! The transient engine samples continuous quantities at discrete steps;
//! these helpers recover sub-step timing (threshold crossings — used for
//! VCO edge extraction) and sub-sample extrema (parabolic peak refinement —
//! used for Bode peak location and the paper's peak-deviation measurement).

/// Linear interpolation between `(x0, y0)` and `(x1, y1)` at `x`.
pub fn lerp(x0: f64, y0: f64, x1: f64, y1: f64, x: f64) -> f64 {
    if x1 == x0 {
        return y0;
    }
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

/// The `x` where the segment from `(x0, y0)` to `(x1, y1)` crosses `level`;
/// `None` if the segment does not cross it (touching an endpoint counts as
/// crossing).
pub fn crossing_time(x0: f64, y0: f64, x1: f64, y1: f64, level: f64) -> Option<f64> {
    let d0 = y0 - level;
    let d1 = y1 - level;
    if d0 == 0.0 {
        return Some(x0);
    }
    if d1 == 0.0 {
        return Some(x1);
    }
    if d0.signum() == d1.signum() {
        return None;
    }
    Some(x0 + (x1 - x0) * d0 / (d0 - d1))
}

/// All rising crossings of `level` in a uniformly sampled signal starting
/// at `t0` with step `dt`, located by linear interpolation.
pub fn rising_crossings(signal: &[f64], t0: f64, dt: f64, level: f64) -> Vec<f64> {
    let mut out = Vec::new();
    for (i, w) in signal.windows(2).enumerate() {
        if w[0] < level && w[1] >= level {
            let x0 = t0 + i as f64 * dt;
            if let Some(t) = crossing_time(x0, w[0], x0 + dt, w[1], level) {
                out.push(t);
            }
        }
    }
    out
}

/// Vertex of the parabola through three points; returns `(x, y)` of the
/// extremum. Falls back to the middle point when the three are collinear.
///
/// # Panics
///
/// Panics if the abscissae are not strictly increasing.
pub fn parabolic_peak(x: [f64; 3], y: [f64; 3]) -> (f64, f64) {
    assert!(x[0] < x[1] && x[1] < x[2], "abscissae must be increasing");
    // Lagrange form second-difference.
    let d1 = (y[1] - y[0]) / (x[1] - x[0]);
    let d2 = (y[2] - y[1]) / (x[2] - x[1]);
    let curv = (d2 - d1) / (x[2] - x[0]);
    if curv == 0.0 {
        return (x[1], y[1]);
    }
    // Derivative of the interpolating quadratic = 0.
    let xm = 0.5 * (x[0] + x[1]) - d1 / (2.0 * curv);
    // Evaluate the quadratic (Newton form) at xm.
    let ym = y[0] + d1 * (xm - x[0]) + curv * (xm - x[0]) * (xm - x[1]);
    (xm, ym)
}

/// Locates the extremum of a uniformly sampled signal with sub-sample
/// parabolic refinement. Returns `(time, value)`; `None` for fewer than
/// one sample. `maximize` selects max vs min.
pub fn refined_extremum(signal: &[f64], t0: f64, dt: f64, maximize: bool) -> Option<(f64, f64)> {
    if signal.is_empty() {
        return None;
    }
    let idx = if maximize {
        crate::stats::argmax(signal)?
    } else {
        crate::stats::argmin(signal)?
    };
    if idx == 0 || idx + 1 >= signal.len() {
        return Some((t0 + idx as f64 * dt, signal[idx]));
    }
    let x = [
        t0 + (idx - 1) as f64 * dt,
        t0 + idx as f64 * dt,
        t0 + (idx + 1) as f64 * dt,
    ];
    let y = [signal[idx - 1], signal[idx], signal[idx + 1]];
    Some(parabolic_peak(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn lerp_basics() {
        assert_eq!(lerp(0.0, 0.0, 1.0, 10.0, 0.25), 2.5);
        assert_eq!(lerp(1.0, 5.0, 1.0, 9.0, 1.0), 5.0); // degenerate
    }

    #[test]
    fn crossing_detection() {
        assert_eq!(crossing_time(0.0, -1.0, 1.0, 1.0, 0.0), Some(0.5));
        assert_eq!(crossing_time(0.0, 1.0, 1.0, 2.0, 0.0), None);
        assert_eq!(crossing_time(0.0, 0.0, 1.0, 2.0, 0.0), Some(0.0));
        assert_eq!(crossing_time(2.0, 3.0, 3.0, 5.0, 5.0), Some(3.0));
    }

    #[test]
    fn rising_crossings_of_sine() {
        let f = 5.0;
        let fs = 1000.0;
        let signal: Vec<f64> = (0..1000).map(|k| (TAU * f * k as f64 / fs).sin()).collect();
        let times = rising_crossings(&signal, 0.0, 1.0 / fs, 0.0);
        // Rising zero crossings at t = k/f (excluding t=0 which starts at level).
        assert_eq!(times.len(), 4);
        for (k, t) in times.iter().enumerate() {
            assert!((t - (k + 1) as f64 / f).abs() < 1e-4, "t={t}");
        }
    }

    #[test]
    fn parabola_vertex_recovered_exactly() {
        // y = -(x-2)^2 + 3
        let f = |x: f64| -(x - 2.0) * (x - 2.0) + 3.0;
        let (x, y) = parabolic_peak([1.0, 1.8, 3.1], [f(1.0), f(1.8), f(3.1)]);
        assert!((x - 2.0).abs() < 1e-12);
        assert!((y - 3.0).abs() < 1e-12);
    }

    #[test]
    fn collinear_points_fall_back() {
        let (x, y) = parabolic_peak([0.0, 1.0, 2.0], [0.0, 1.0, 2.0]);
        assert_eq!((x, y), (1.0, 1.0));
    }

    #[test]
    fn refined_extremum_of_sine_peak() {
        let f = 2.0;
        let fs = 100.0; // coarse sampling
        let signal: Vec<f64> = (0..100).map(|k| (TAU * f * k as f64 / fs).sin()).collect();
        let (t, v) = refined_extremum(&signal, 0.0, 1.0 / fs, true).unwrap();
        assert!((t - 0.125).abs() < 1e-3, "t={t}");
        assert!((v - 1.0).abs() < 1e-3);
        let (tmin, vmin) = refined_extremum(&signal, 0.0, 1.0 / fs, false).unwrap();
        assert!((tmin - 0.375).abs() < 1e-3);
        assert!((vmin + 1.0).abs() < 1e-3);
    }

    #[test]
    fn extremum_at_boundary() {
        let signal = [3.0, 2.0, 1.0];
        let (t, v) = refined_extremum(&signal, 10.0, 0.5, true).unwrap();
        assert_eq!((t, v), (10.0, 3.0));
        assert!(refined_extremum(&[], 0.0, 1.0, true).is_none());
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn unordered_abscissae_panic() {
        let _ = parabolic_peak([0.0, 0.0, 1.0], [1.0, 2.0, 3.0]);
    }
}
