//! Descriptive statistics over sample slices.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    Some(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased sample variance; `None` for fewer than two samples.
pub fn variance(data: &[f64]) -> Option<f64> {
    if data.len() < 2 {
        return None;
    }
    let m = mean(data)?;
    Some(data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64)
}

/// Sample standard deviation; `None` for fewer than two samples.
pub fn std_dev(data: &[f64]) -> Option<f64> {
    variance(data).map(f64::sqrt)
}

/// Root mean square; `None` for an empty slice.
pub fn rms(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    Some((data.iter().map(|x| x * x).sum::<f64>() / data.len() as f64).sqrt())
}

/// Minimum and maximum; `None` for an empty slice. NaNs are ignored unless
/// all values are NaN, in which case `None` is returned.
pub fn min_max(data: &[f64]) -> Option<(f64, f64)> {
    let mut it = data.iter().copied().filter(|x| !x.is_nan());
    let first = it.next()?;
    Some(it.fold((first, first), |(lo, hi), x| (lo.min(x), hi.max(x))))
}

/// Peak-to-peak span; `None` for an empty slice.
pub fn peak_to_peak(data: &[f64]) -> Option<f64> {
    min_max(data).map(|(lo, hi)| hi - lo)
}

/// Linear-interpolated percentile `p ∈ [0, 100]`; `None` for an empty
/// slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(data: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Index of the maximum value; `None` for empty input. Ties resolve to the
/// first occurrence.
pub fn argmax(data: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in data.iter().enumerate() {
        match best {
            Some((_, b)) if x <= b => {}
            _ if x.is_nan() => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum value; `None` for empty input.
pub fn argmin(data: &[f64]) -> Option<usize> {
    argmax(&data.iter().map(|x| -x).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&d), Some(2.5));
        assert!((variance(&d).unwrap() - 5.0 / 3.0).abs() < 1e-12);
        assert!((std_dev(&d).unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rms_of_sine_is_amplitude_over_sqrt2() {
        let d: Vec<f64> = (0..1000)
            .map(|k| 2.0 * (std::f64::consts::TAU * k as f64 / 1000.0).sin())
            .collect();
        assert!((rms(&d).unwrap() - 2.0 / 2f64.sqrt()).abs() < 1e-3);
    }

    #[test]
    fn min_max_and_ptp() {
        let d = [3.0, -1.0, 7.0, 0.0];
        assert_eq!(min_max(&d), Some((-1.0, 7.0)));
        assert_eq!(peak_to_peak(&d), Some(8.0));
        assert_eq!(min_max(&[f64::NAN, 2.0]), Some((2.0, 2.0)));
        assert_eq!(min_max(&[f64::NAN]), None);
    }

    #[test]
    fn percentiles() {
        let d = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&d, 0.0), Some(1.0));
        assert_eq!(percentile(&d, 50.0), Some(3.0));
        assert_eq!(percentile(&d, 100.0), Some(5.0));
        assert_eq!(percentile(&d, 25.0), Some(2.0));
    }

    #[test]
    fn arg_extrema() {
        let d = [1.0, 5.0, 5.0, -2.0];
        assert_eq!(argmax(&d), Some(1));
        assert_eq!(argmin(&d), Some(3));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[1.0]), None);
        assert_eq!(rms(&[]), None);
        assert_eq!(peak_to_peak(&[]), None);
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_panics() {
        let _ = percentile(&[1.0], 120.0);
    }
}
