//! Least-squares fitting: three-parameter sine fit and linear regression.
//!
//! The sine fit (IEEE-1057 style, known frequency) is the reference method
//! for extracting amplitude and phase from noisy sampled responses and is
//! used to cross-validate the Goertzel extraction and to post-process
//! measured frequency-deviation trajectories.

use crate::matrix::Matrix;

/// Result of a known-frequency sine fit `y ≈ a·cos(ωt) + b·sin(ωt) + c`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SineFit {
    /// Cosine coefficient.
    pub a: f64,
    /// Sine coefficient.
    pub b: f64,
    /// DC offset.
    pub c: f64,
    /// Angular frequency used for the fit (rad/s).
    pub omega: f64,
}

impl SineFit {
    /// Peak amplitude `√(a² + b²)`.
    pub fn amplitude(&self) -> f64 {
        self.a.hypot(self.b)
    }

    /// Phase `φ` such that the fitted tone is `A·cos(ωt + φ)`.
    pub fn phase(&self) -> f64 {
        (-self.b).atan2(self.a)
    }

    /// Evaluates the fitted model at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        self.a * (self.omega * t).cos() + self.b * (self.omega * t).sin() + self.c
    }
}

/// Fits `y ≈ a·cos(ωt) + b·sin(ωt) + c` by linear least squares over the
/// sample pairs `(t, y)`.
///
/// Returns `None` when the system is degenerate (fewer than 3 samples or a
/// singular normal matrix, e.g. all samples at the same instant).
///
/// # Example
///
/// ```
/// use pllbist_numeric::fit::sine_fit;
///
/// let omega = 10.0;
/// let samples: Vec<(f64, f64)> = (0..200)
///     .map(|k| {
///         let t = k as f64 * 1e-3;
///         (t, 2.0 * (omega * t).cos() - 0.5 * (omega * t).sin() + 3.0)
///     })
///     .collect();
/// let fit = sine_fit(&samples, omega).expect("well-conditioned fit");
/// assert!((fit.a - 2.0).abs() < 1e-9 && (fit.b + 0.5).abs() < 1e-9);
/// assert!((fit.c - 3.0).abs() < 1e-9);
/// ```
pub fn sine_fit(samples: &[(f64, f64)], omega: f64) -> Option<SineFit> {
    if samples.len() < 3 {
        return None;
    }
    // Normal equations for the 3-column design matrix [cos, sin, 1].
    let mut ata = Matrix::zeros(3, 3);
    let mut atb = Matrix::zeros(3, 1);
    for &(t, y) in samples {
        let row = [(omega * t).cos(), (omega * t).sin(), 1.0];
        for i in 0..3 {
            for j in 0..3 {
                ata[(i, j)] += row[i] * row[j];
            }
            atb[(i, 0)] += row[i] * y;
        }
    }
    let sol = ata.solve(&atb)?;
    Some(SineFit {
        a: sol[(0, 0)],
        b: sol[(1, 0)],
        c: sol[(2, 0)],
        omega,
    })
}

/// Result of an ordinary least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LineFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination R² (1 for a perfect fit; defined as 1
    /// when the data has zero variance).
    pub r_squared: f64,
}

/// Ordinary least-squares straight-line fit.
///
/// Returns `None` for fewer than 2 samples or zero x-variance.
pub fn line_fit(samples: &[(f64, f64)]) -> Option<LineFit> {
    let n = samples.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = samples.iter().map(|s| s.0).sum::<f64>() / nf;
    let my = samples.iter().map(|s| s.1).sum::<f64>() / nf;
    let sxx: f64 = samples.iter().map(|s| (s.0 - mx) * (s.0 - mx)).sum();
    let sxy: f64 = samples.iter().map(|s| (s.0 - mx) * (s.1 - my)).sum();
    let syy: f64 = samples.iter().map(|s| (s.1 - my) * (s.1 - my)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LineFit {
        slope,
        intercept,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn sine_fit_recovers_parameters() {
        let omega = TAU * 8.0;
        let samples: Vec<(f64, f64)> = (0..500)
            .map(|k| {
                let t = k as f64 * 0.4e-3;
                (t, 1.3 * (omega * t + 0.7).cos() - 0.2)
            })
            .collect();
        let fit = sine_fit(&samples, omega).unwrap();
        assert!((fit.amplitude() - 1.3).abs() < 1e-9);
        assert!((fit.phase() - 0.7).abs() < 1e-9);
        assert!((fit.c + 0.2).abs() < 1e-9);
    }

    #[test]
    fn sine_fit_eval_reproduces_samples() {
        let omega = 5.0;
        let samples: Vec<(f64, f64)> = (0..100)
            .map(|k| {
                let t = k as f64 * 0.01;
                (t, 0.5 * (omega * t).cos() + 0.5)
            })
            .collect();
        let fit = sine_fit(&samples, omega).unwrap();
        for &(t, y) in &samples {
            assert!((fit.eval(t) - y).abs() < 1e-9);
        }
    }

    #[test]
    fn sine_fit_with_noise_is_unbiased() {
        // Deterministic pseudo-noise via a simple LCG so the test is stable.
        let mut seed = 42u64;
        let mut rand = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        };
        let omega = TAU * 3.0;
        let samples: Vec<(f64, f64)> = (0..4000)
            .map(|k| {
                let t = k as f64 * 1e-3;
                (t, (omega * t).cos() + 0.1 * rand())
            })
            .collect();
        let fit = sine_fit(&samples, omega).unwrap();
        assert!((fit.amplitude() - 1.0).abs() < 0.01);
        assert!(fit.phase().abs() < 0.01);
    }

    #[test]
    fn sine_fit_degenerate_cases() {
        assert!(sine_fit(&[(0.0, 1.0), (1.0, 2.0)], 1.0).is_none());
        // All samples at the same time: singular.
        let degenerate = vec![(0.5, 1.0); 10];
        assert!(sine_fit(&degenerate, 1.0).is_none());
    }

    #[test]
    fn line_fit_exact() {
        let samples: Vec<(f64, f64)> = (0..10).map(|k| (k as f64, 2.0 * k as f64 - 1.0)).collect();
        let fit = line_fit(&samples).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn line_fit_flat_data() {
        let samples: Vec<(f64, f64)> = (0..5).map(|k| (k as f64, 3.0)).collect();
        let fit = line_fit(&samples).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 3.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn line_fit_degenerate() {
        assert!(line_fit(&[(1.0, 1.0)]).is_none());
        assert!(line_fit(&[(1.0, 1.0), (1.0, 2.0)]).is_none());
    }
}
