//! Numerical substrate for the `pllbist` workspace.
//!
//! This crate provides every piece of mathematics the PLL simulator and the
//! BIST monitor need, implemented from scratch so the workspace has no
//! external numerical dependencies:
//!
//! * [`complex`] — double-precision complex arithmetic ([`Complex64`]).
//! * [`units`] — newtypes for physical quantities ([`Hertz`], [`Seconds`], …).
//! * [`poly`] — real-coefficient polynomials with complex evaluation and
//!   root finding.
//! * [`tf`] — rational Laplace-domain transfer functions and block-diagram
//!   composition (series / parallel / feedback).
//! * [`bode`] — frequency-response sweeps and feature extraction (peak,
//!   −3 dB bandwidth).
//! * [`matrix`] — small dense matrices with LU solve and the matrix
//!   exponential.
//! * [`statespace`] — continuous state-space models and *exact*
//!   zero-order-hold discretisation.
//! * [`ode`] — classic fixed-step integrators (RK4, trapezoidal).
//! * [`rootfind`] — bracketing scalar root finders (bisection, Brent).
//! * [`fft`] — radix-2 FFT, inverse FFT and spectral helpers.
//! * [`goertzel`] — single-bin DFT for gain/phase extraction at one tone.
//! * [`fit`] — least-squares sine fitting and linear regression.
//! * [`stats`] — descriptive statistics.
//! * [`interp`] — interpolation and threshold-crossing location on sampled
//!   waveforms.
//!
//! # Example
//!
//! Build the closed-loop transfer function of a second-order PLL and read
//! off its resonance:
//!
//! ```
//! use pllbist_numeric::tf::TransferFunction;
//! use pllbist_numeric::bode::BodePlot;
//!
//! // H(s) = (2*zeta*wn*s + wn^2) / (s^2 + 2*zeta*wn*s + wn^2)
//! let (wn, zeta) = (50.0, 0.43);
//! let h = TransferFunction::new(
//!     [wn * wn, 2.0 * zeta * wn],
//!     [wn * wn, 2.0 * zeta * wn, 1.0],
//! );
//! let plot = BodePlot::sweep_log(&h, 1.0, 1000.0, 200);
//! let peak = plot.peak().expect("resonant system");
//! assert!((peak.omega - wn).abs() / wn < 0.2);
//! ```

pub mod bode;
pub mod complex;
pub mod fft;
pub mod fit;
pub mod goertzel;
pub mod interp;
pub mod matrix;
pub mod ode;
pub mod poly;
pub mod rootfind;
pub mod statespace;
pub mod stats;
pub mod tf;
pub mod units;

pub use complex::Complex64;
pub use units::{Decibels, Degrees, Hertz, RadPerSec, Seconds, Volts};
