//! Bracketing scalar root finders.
//!
//! Used by the transient engine to pin down VCO edge times (threshold
//! crossings of the phase accumulator) and by the parameter-estimation code
//! to invert monotone damping relations.

/// Error from a failed root search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindRootError {
    /// `f(a)` and `f(b)` have the same sign, so no root is bracketed.
    NotBracketed,
    /// The iteration budget was exhausted before reaching the tolerance.
    MaxIterations,
}

impl std::fmt::Display for FindRootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotBracketed => write!(f, "root is not bracketed by the interval"),
            Self::MaxIterations => write!(f, "root finder exhausted its iteration budget"),
        }
    }
}

impl std::error::Error for FindRootError {}

/// Bisection on `[a, b]` until the interval is narrower than `tol`.
///
/// # Errors
///
/// Returns [`FindRootError::NotBracketed`] if `f(a)·f(b) > 0`.
///
/// # Example
///
/// ```
/// use pllbist_numeric::rootfind::bisect;
/// # fn main() -> Result<(), pllbist_numeric::rootfind::FindRootError> {
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200)?;
/// assert!((root - 2f64.sqrt()).abs() < 1e-11);
/// # Ok(())
/// # }
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, FindRootError> {
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(FindRootError::NotBracketed);
    }
    for _ in 0..max_iter {
        let m = 0.5 * (a + b);
        if (b - a).abs() < tol {
            return Ok(m);
        }
        let fm = f(m);
        if fm == 0.0 {
            return Ok(m);
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    Err(FindRootError::MaxIterations)
}

/// Brent's method: inverse-quadratic / secant steps with a bisection
/// safety net. Typically converges in a handful of iterations.
///
/// # Errors
///
/// Returns [`FindRootError::NotBracketed`] if `f(a)·f(b) > 0`, or
/// [`FindRootError::MaxIterations`] if the budget runs out.
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, FindRootError> {
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(FindRootError::NotBracketed);
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = 0.0;

    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let lo = (3.0 * a + b) / 4.0;
        let within = (s > lo.min(b)) && (s < lo.max(b));
        let big_step = if mflag {
            (s - b).abs() >= (b - c).abs() / 2.0
        } else {
            (s - b).abs() >= (c - d).abs() / 2.0
        };
        let tiny = if mflag {
            (b - c).abs() < tol
        } else {
            (c - d).abs() < tol
        };
        if !within || big_step || tiny {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(FindRootError::MaxIterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 100).unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bisect_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 100).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 100).unwrap(), 1.0);
    }

    #[test]
    fn bisect_not_bracketed() {
        assert_eq!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(FindRootError::NotBracketed)
        );
    }

    #[test]
    fn brent_transcendental() {
        // cos(x) = x near 0.739085.
        let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-14, 100).unwrap();
        assert!((r - 0.7390851332151607).abs() < 1e-10);
    }

    #[test]
    fn brent_polynomial_with_flat_region() {
        let r = brent(|x| (x - 3.0).powi(3), 0.0, 5.0, 1e-12, 200).unwrap();
        assert!((r - 3.0).abs() < 1e-3);
    }

    #[test]
    fn brent_matches_bisect() {
        let f = |x: f64| (x / 2.0).sin() - 0.3;
        let rb = bisect(f, 0.0, 2.0, 1e-13, 200).unwrap();
        let rr = brent(f, 0.0, 2.0, 1e-13, 200).unwrap();
        assert!((rb - rr).abs() < 1e-10);
    }

    #[test]
    fn brent_not_bracketed() {
        assert_eq!(
            brent(|x| x * x + 0.5, -1.0, 1.0, 1e-12, 100),
            Err(FindRootError::NotBracketed)
        );
    }

    #[test]
    fn error_display() {
        assert!(FindRootError::NotBracketed.to_string().contains("bracket"));
        assert!(FindRootError::MaxIterations.to_string().contains("budget"));
    }
}
