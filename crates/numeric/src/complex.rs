//! Double-precision complex numbers.
//!
//! A minimal but complete complex type sufficient for frequency-domain
//! analysis: arithmetic operators, exponential/logarithm, magnitude and
//! phase accessors. Implemented locally so the workspace carries no external
//! numerics dependency.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use pllbist_numeric::Complex64;
///
/// let s = Complex64::new(0.0, 2.0 * std::f64::consts::PI * 8.0); // jω at 8 Hz
/// assert!((s.abs() - 50.265).abs() < 1e-2);
/// assert!((s.arg().to_degrees() - 90.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates `j·omega`, the Laplace variable evaluated on the imaginary
    /// axis at angular frequency `omega` (rad/s).
    #[inline]
    pub const fn jw(omega: f64) -> Self {
        Self { re: 0.0, im: omega }
    }

    /// Creates a complex number from polar coordinates.
    ///
    /// # Example
    ///
    /// ```
    /// use pllbist_numeric::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!(z.re.abs() < 1e-15 && (z.im - 2.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Magnitude (modulus), computed with `hypot` for robustness.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, avoiding the square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns infinities when `self` is zero, mirroring `1.0 / 0.0`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        Self::new(self.abs().ln(), self.arg())
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Raises to a real power through the principal branch.
    #[inline]
    pub fn powf(self, p: f64) -> Self {
        if self == Self::ZERO {
            return Self::ZERO;
        }
        Self::from_polar(self.abs().powf(p), self.arg() * p)
    }

    /// Integer power by repeated squaring (exact for small exponents).
    pub fn powi(self, mut n: i32) -> Self {
        if n < 0 {
            return self.powi(-n).recip();
        }
        let mut base = self;
        let mut acc = Self::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::from_re(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ by design
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

macro_rules! scalar_ops {
    ($($t:ty),*) => {$(
        impl Add<$t> for Complex64 {
            type Output = Self;
            #[inline]
            fn add(self, rhs: $t) -> Self { Self::new(self.re + rhs as f64, self.im) }
        }
        impl Sub<$t> for Complex64 {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: $t) -> Self { Self::new(self.re - rhs as f64, self.im) }
        }
        impl Mul<$t> for Complex64 {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: $t) -> Self { Self::new(self.re * rhs as f64, self.im * rhs as f64) }
        }
        impl Div<$t> for Complex64 {
            type Output = Self;
            #[inline]
            fn div(self, rhs: $t) -> Self { Self::new(self.re / rhs as f64, self.im / rhs as f64) }
        }
        impl Mul<Complex64> for $t {
            type Output = Complex64;
            #[inline]
            fn mul(self, rhs: Complex64) -> Complex64 { rhs * self }
        }
        impl Add<Complex64> for $t {
            type Output = Complex64;
            #[inline]
            fn add(self, rhs: Complex64) -> Complex64 { rhs + self }
        }
    )*};
}
scalar_ops!(f64);

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}
impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

impl Product for Complex64 {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, Mul::mul)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{E, FRAC_PI_2, PI};

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn construction_and_accessors() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!((z.arg() - (-4.0f64).atan2(3.0)).abs() < 1e-15);
        assert_eq!(z.conj(), Complex64::new(3.0, 4.0));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.25, 4.0);
        assert!(close(a + b - b, a, 1e-15));
        assert!(close(a * b / b, a, 1e-12));
        assert!(close(a * a.recip(), Complex64::ONE, 1e-14));
        assert!(close(-a + a, Complex64::ZERO, 0.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::from_re(-1.0));
    }

    #[test]
    fn exp_and_ln_are_inverse() {
        let z = Complex64::new(0.3, 1.1);
        assert!(close(z.exp().ln(), z, 1e-14));
        // Euler's identity.
        assert!(close(
            Complex64::jw(PI).exp(),
            Complex64::from_re(-1.0),
            1e-15
        ));
        assert!((Complex64::from_re(1.0).exp().re - E).abs() < 1e-15);
    }

    #[test]
    fn sqrt_of_minus_one() {
        let r = Complex64::from_re(-1.0).sqrt();
        assert!(close(r, Complex64::I, 1e-15));
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex64::new(0.7, -0.2);
        let mut acc = Complex64::ONE;
        for _ in 0..7 {
            acc *= z;
        }
        assert!(close(z.powi(7), acc, 1e-14));
        assert!(close(z.powi(-3), (z * z * z).recip(), 1e-12));
        assert_eq!(z.powi(0), Complex64::ONE);
    }

    #[test]
    fn powf_principal_branch() {
        let z = Complex64::from_polar(4.0, FRAC_PI_2);
        let r = z.powf(0.5);
        assert!(close(r, Complex64::from_polar(2.0, FRAC_PI_2 / 2.0), 1e-14));
        assert_eq!(Complex64::ZERO.powf(2.5), Complex64::ZERO);
    }

    #[test]
    fn scalar_mixed_ops() {
        let z = Complex64::new(2.0, -1.0);
        assert_eq!(z * 2.0, Complex64::new(4.0, -2.0));
        assert_eq!(2.0 * z, Complex64::new(4.0, -2.0));
        assert_eq!(z / 2.0, Complex64::new(1.0, -0.5));
        assert_eq!(z + 1.0, Complex64::new(3.0, -1.0));
        assert_eq!(1.0 + z, Complex64::new(3.0, -1.0));
        assert_eq!(z - 1.0, Complex64::new(1.0, -1.0));
    }

    #[test]
    fn sum_and_product_fold() {
        let v = [
            Complex64::new(1.0, 1.0),
            Complex64::new(2.0, -1.0),
            Complex64::new(-0.5, 0.25),
        ];
        let s: Complex64 = v.iter().copied().sum();
        assert!(close(s, Complex64::new(2.5, 0.25), 1e-15));
        let p: Complex64 = v.iter().copied().product();
        let expect = v[0] * v[1] * v[2];
        assert!(close(p, expect, 1e-15));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn nan_and_finite_predicates() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex64::ONE.is_nan());
        assert!(Complex64::ONE.is_finite());
        assert!(!Complex64::new(f64::INFINITY, 0.0).is_finite());
    }
}
