//! Frequency-response sweeps and Bode-plot feature extraction.
//!
//! The paper's measurement (§2) reduces a PLL to three features of its
//! closed-loop Bode plot: the resonance `ωp` (≈ natural frequency `ωn`), the
//! peak height above the 0 dB asymptote (→ damping `ζ`) and the one-sided
//! −3 dB bandwidth `ω3dB`. [`BodePlot`] holds a sampled response — whether it
//! came from the analytic model or from the BIST measurement — and extracts
//! those features uniformly, so theory and measurement are compared on equal
//! footing.

use crate::interp::parabolic_peak;
use crate::tf::TransferFunction;
use crate::units::{Decibels, Degrees, Hertz, RadPerSec};

/// One sample of a frequency response.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BodePoint {
    /// Angular frequency in rad/s.
    pub omega: f64,
    /// Linear magnitude (not dB).
    pub magnitude: f64,
    /// Phase in radians, continuous (unwrapped) across the sweep.
    pub phase: f64,
}

impl BodePoint {
    /// Magnitude in decibels.
    pub fn magnitude_db(&self) -> Decibels {
        Decibels::from_amplitude_ratio(self.magnitude)
    }

    /// Phase in degrees.
    pub fn phase_degrees(&self) -> Degrees {
        Degrees::from_radians(self.phase)
    }

    /// Cyclic frequency in Hz.
    pub fn frequency(&self) -> Hertz {
        RadPerSec::new(self.omega).to_hertz()
    }
}

/// A sampled frequency response, sorted by ascending frequency.
///
/// # Example
///
/// ```
/// use pllbist_numeric::tf::TransferFunction;
/// use pllbist_numeric::bode::BodePlot;
///
/// let h = TransferFunction::second_order_pll(50.0, 0.43);
/// let plot = BodePlot::sweep_log(&h, 1.0, 1000.0, 300);
/// let bw = plot.bandwidth_3db().expect("low-pass response");
/// assert!(bw > 50.0 && bw < 200.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BodePlot {
    points: Vec<BodePoint>,
}

impl BodePlot {
    /// Builds a plot from pre-computed points, sorting by frequency.
    ///
    /// Phases are used as given (callers that assemble plots from wrapped
    /// per-point measurements should call [`BodePlot::unwrap_phase`]).
    pub fn from_points<I: IntoIterator<Item = BodePoint>>(points: I) -> Self {
        let mut points: Vec<BodePoint> = points.into_iter().collect();
        points.sort_by(|a, b| a.omega.total_cmp(&b.omega));
        Self { points }
    }

    /// Sweeps a transfer function over logarithmically spaced angular
    /// frequencies `[w_min, w_max]` (rad/s) with `n` points, unwrapping the
    /// phase.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the bounds are not positive and increasing.
    pub fn sweep_log(h: &TransferFunction, w_min: f64, w_max: f64, n: usize) -> Self {
        assert!(n >= 2, "a sweep needs at least two points");
        assert!(
            w_min > 0.0 && w_max > w_min,
            "log sweep bounds must satisfy 0 < w_min < w_max"
        );
        let ratio = (w_max / w_min).ln();
        let mut plot = Self::from_points((0..n).map(|i| {
            let omega = w_min * (ratio * i as f64 / (n - 1) as f64).exp();
            let z = h.eval_jw(omega);
            BodePoint {
                omega,
                magnitude: z.abs(),
                phase: z.arg(),
            }
        }));
        plot.unwrap_phase();
        plot
    }

    /// The sampled points in ascending frequency order.
    pub fn points(&self) -> &[BodePoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the plot has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Removes 2π discontinuities so the phase is continuous across the
    /// sweep (standard phase unwrapping).
    pub fn unwrap_phase(&mut self) {
        let mut offset = 0.0;
        let mut prev = None;
        for p in &mut self.points {
            if let Some(prev) = prev {
                let mut d = p.phase + offset - prev;
                while d > std::f64::consts::PI {
                    offset -= std::f64::consts::TAU;
                    d -= std::f64::consts::TAU;
                }
                while d < -std::f64::consts::PI {
                    offset += std::f64::consts::TAU;
                    d += std::f64::consts::TAU;
                }
            }
            p.phase += offset;
            prev = Some(p.phase);
        }
    }

    /// Normalises magnitudes to the first (lowest-frequency) point and
    /// references phases to it — exactly what the paper's method does with
    /// its first in-band measurement (§2: "all measurements … can be
    /// referenced to the first measurement").
    ///
    /// Returns `None` if the plot is empty or the reference magnitude is
    /// zero.
    pub fn referenced_to_first(&self) -> Option<Self> {
        let first = *self.points.first()?;
        if first.magnitude == 0.0 {
            return None;
        }
        Some(Self {
            points: self
                .points
                .iter()
                .map(|p| BodePoint {
                    omega: p.omega,
                    magnitude: p.magnitude / first.magnitude,
                    phase: p.phase - first.phase,
                })
                .collect(),
        })
    }

    /// The sample with the largest magnitude, refined by parabolic
    /// interpolation in log-frequency; `None` for empty plots.
    ///
    /// The returned point's `omega`/`magnitude` are the interpolated peak;
    /// its phase is the phase of the nearest sample.
    pub fn peak(&self) -> Option<BodePoint> {
        let (idx, best) = self
            .points
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.magnitude.total_cmp(&b.1.magnitude))?;
        if idx == 0 || idx + 1 == self.points.len() {
            return Some(*best);
        }
        let (l, c, r) = (&self.points[idx - 1], best, &self.points[idx + 1]);
        // Interpolate in (ln ω, magnitude) space; log spacing makes the
        // abscissa uniform enough for the three-point formula. On sparse
        // hand-picked grids the neighbour spacing can be wildly uneven —
        // there the parabola extrapolates nonsense, so fall back to the
        // raw sample.
        let dl = c.omega.ln() - l.omega.ln();
        let dr = r.omega.ln() - c.omega.ln();
        if !(0.4..=2.5).contains(&(dl / dr)) {
            return Some(*best);
        }
        let (x, y) = parabolic_peak(
            [l.omega.ln(), c.omega.ln(), r.omega.ln()],
            [l.magnitude, c.magnitude, r.magnitude],
        );
        Some(BodePoint {
            omega: x.exp(),
            magnitude: y,
            phase: c.phase,
        })
    }

    /// One-sided −3 dB bandwidth: the lowest frequency (rad/s) above the
    /// peak where the magnitude first crosses `ref_mag/√2`, where `ref_mag`
    /// is the magnitude of the first sample (the paper's 0 dB asymptote
    /// reference). Linear interpolation in log-frequency between the
    /// bracketing samples.
    ///
    /// Returns `None` when the response never drops below the threshold in
    /// the sweep, or the plot has fewer than two points.
    pub fn bandwidth_3db(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let threshold = self.points[0].magnitude / 2f64.sqrt();
        let peak_idx = self
            .points
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.magnitude.total_cmp(&b.1.magnitude))
            .map(|(i, _)| i)?;
        for w in self.points[peak_idx..].windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if a.magnitude >= threshold && b.magnitude < threshold {
                let t = (a.magnitude - threshold) / (a.magnitude - b.magnitude);
                let lw = a.omega.ln() + t * (b.omega.ln() - a.omega.ln());
                return Some(lw.exp());
            }
        }
        None
    }

    /// The phase (radians) at angular frequency `omega`, linearly
    /// interpolated in log-frequency; `None` outside the swept range.
    pub fn phase_at(&self, omega: f64) -> Option<f64> {
        self.interp_at(omega, |p| p.phase)
    }

    /// The magnitude at angular frequency `omega`, linearly interpolated in
    /// log-frequency; `None` outside the swept range.
    pub fn magnitude_at(&self, omega: f64) -> Option<f64> {
        self.interp_at(omega, |p| p.magnitude)
    }

    fn interp_at(&self, omega: f64, f: impl Fn(&BodePoint) -> f64) -> Option<f64> {
        if self.points.is_empty() || omega < self.points[0].omega {
            return None;
        }
        for w in self.points.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if omega <= b.omega {
                let t = (omega.ln() - a.omega.ln()) / (b.omega.ln() - a.omega.ln());
                return Some(f(a) + t * (f(b) - f(a)));
            }
        }
        (omega == self.points.last()?.omega).then(|| f(self.points.last().unwrap()))
    }
}

impl FromIterator<BodePoint> for BodePlot {
    fn from_iter<T: IntoIterator<Item = BodePoint>>(iter: T) -> Self {
        Self::from_points(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, TAU};

    fn resonant_plot() -> (BodePlot, f64, f64) {
        let (wn, zeta) = (TAU * 8.0, 0.43);
        let h = TransferFunction::second_order_pll(wn, zeta);
        (BodePlot::sweep_log(&h, wn / 50.0, wn * 50.0, 400), wn, zeta)
    }

    #[test]
    fn sweep_is_sorted_and_sized() {
        let (plot, ..) = resonant_plot();
        assert_eq!(plot.len(), 400);
        assert!(!plot.is_empty());
        assert!(plot.points().windows(2).all(|w| w[0].omega < w[1].omega));
    }

    #[test]
    fn peak_matches_analytic_resonance() {
        let (plot, wn, zeta) = resonant_plot();
        let peak = plot.peak().unwrap();
        // Analytic peak of the 2nd-order-with-zero response.
        let h = TransferFunction::second_order_pll(wn, zeta);
        let mut best = (0.0, 0.0);
        let mut w = wn / 10.0;
        while w < wn * 10.0 {
            let m = h.magnitude(w);
            if m > best.1 {
                best = (w, m);
            }
            w *= 1.0005;
        }
        assert!((peak.omega - best.0).abs() / best.0 < 0.02);
        assert!((peak.magnitude - best.1).abs() / best.1 < 0.005);
        // For zeta = 0.43 this peak is a few dB.
        let db = peak.magnitude_db().value();
        assert!(db > 1.0 && db < 5.0, "peak {db} dB");
    }

    #[test]
    fn bandwidth_beyond_peak() {
        let (plot, wn, _) = resonant_plot();
        let bw = plot.bandwidth_3db().unwrap();
        // Gardner: for a type-2 loop with zeta 0.43, w3dB is ~2x wn.
        assert!(bw > wn && bw < 4.0 * wn, "bw = {bw}, wn = {wn}");
    }

    #[test]
    fn referenced_to_first_normalises() {
        let (plot, ..) = resonant_plot();
        let r = plot.referenced_to_first().unwrap();
        assert!((r.points()[0].magnitude - 1.0).abs() < 1e-15);
        assert_eq!(r.points()[0].phase, 0.0);
    }

    #[test]
    fn phase_unwrap_keeps_continuity() {
        // Third-order system sweeps past -180 degrees without jumps.
        let h = TransferFunction::new([1.0], [1.0, 3.0, 3.0, 1.0]);
        let plot = BodePlot::sweep_log(&h, 0.01, 100.0, 500);
        for w in plot.points().windows(2) {
            assert!((w[1].phase - w[0].phase).abs() < 0.5);
        }
        let last = plot.points().last().unwrap();
        assert!(last.phase < -FRAC_PI_2 * 2.5, "phase {}", last.phase);
    }

    #[test]
    fn interpolated_lookups() {
        let (plot, wn, _) = resonant_plot();
        let m = plot.magnitude_at(wn).unwrap();
        let h = TransferFunction::second_order_pll(wn, 0.43);
        assert!((m - h.magnitude(wn)).abs() / h.magnitude(wn) < 0.01);
        let ph = plot.phase_at(wn).unwrap();
        assert!((ph - h.phase(wn)).abs() < 0.02);
        assert!(plot.magnitude_at(1e-9).is_none());
        assert!(plot.magnitude_at(1e9).is_none());
    }

    #[test]
    fn point_conversions() {
        let p = BodePoint {
            omega: TAU * 10.0,
            magnitude: 2.0,
            phase: -FRAC_PI_2,
        };
        assert!((p.frequency().value() - 10.0).abs() < 1e-12);
        assert!((p.magnitude_db().value() - 6.0206).abs() < 1e-3);
        assert!((p.phase_degrees().value() + 90.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_cases() {
        let empty = BodePlot::default();
        assert!(empty.peak().is_none());
        assert!(empty.bandwidth_3db().is_none());
        assert!(empty.referenced_to_first().is_none());

        let single = BodePlot::from_points([BodePoint {
            omega: 1.0,
            magnitude: 1.0,
            phase: 0.0,
        }]);
        assert!(single.peak().is_some());
        assert!(single.bandwidth_3db().is_none());
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn sweep_needs_two_points() {
        let h = TransferFunction::gain(1.0);
        let _ = BodePlot::sweep_log(&h, 1.0, 10.0, 1);
    }
}
