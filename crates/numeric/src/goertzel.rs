//! Goertzel single-bin DFT.
//!
//! The bench-style baseline measurement (paper fig. 3) extracts the gain and
//! phase of the loop-filter-node response at exactly the modulation
//! frequency; the Goertzel recursion does this in O(N) without a full FFT
//! and — unlike the radix-2 FFT — at an arbitrary, non-bin-centred
//! frequency.

use crate::complex::Complex64;

/// Result of a single-tone correlation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ToneEstimate {
    /// Complex amplitude: `signal ≈ Re{ amplitude · e^{jωt} }` — its `abs()`
    /// is the tone's peak amplitude, its `arg()` the phase of the cosine
    /// component at `t = 0`.
    pub amplitude: Complex64,
    /// The analysed frequency in Hz.
    pub frequency_hz: f64,
}

impl ToneEstimate {
    /// Peak amplitude of the tone.
    pub fn magnitude(&self) -> f64 {
        self.amplitude.abs()
    }

    /// Phase in radians of the tone relative to `cos(ωt)` at the first
    /// sample.
    pub fn phase(&self) -> f64 {
        self.amplitude.arg()
    }
}

/// Correlates `signal` (sampled at `sample_rate_hz`) against a complex
/// exponential at `frequency_hz`, returning amplitude and phase.
///
/// This is a direct single-bin DFT with `2/N` scaling, so a pure tone
/// `A·cos(ωt + φ)` spanning an integer number of periods yields magnitude
/// `A` and phase `φ`. For non-integer spans the estimate degrades gracefully
/// (spectral leakage), which the callers mitigate by choosing measurement
/// windows of whole modulation periods.
///
/// # Panics
///
/// Panics if the signal is empty or the rates are not positive.
pub fn goertzel(signal: &[f64], sample_rate_hz: f64, frequency_hz: f64) -> ToneEstimate {
    assert!(!signal.is_empty(), "signal must not be empty");
    assert!(
        sample_rate_hz > 0.0 && frequency_hz >= 0.0,
        "rates must be positive"
    );
    let n = signal.len() as f64;
    let w = std::f64::consts::TAU * frequency_hz / sample_rate_hz;
    // Goertzel recursion: s[k] = x[k] + 2cos(w) s[k-1] − s[k-2].
    let coeff = 2.0 * w.cos();
    let (mut s1, mut s2) = (0.0f64, 0.0f64);
    for &x in signal {
        let s0 = x + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    // s1 − e^{−jw}·s2 equals the DFT value rotated by e^{+jw(N−1)} (it is
    // referenced to the *last* sample); rotate back so the phase is relative
    // to cos(ωt) at the first sample.
    let x = Complex64::new(s1 - w.cos() * s2, w.sin() * s2)
        * Complex64::from_polar(1.0, -w * (n - 1.0));
    let scale = if frequency_hz == 0.0 { 1.0 } else { 2.0 };
    ToneEstimate {
        amplitude: x * (scale / n),
        frequency_hz,
    }
}

/// Gain and phase of `output` relative to `input` at `frequency_hz`
/// (both signals sampled at `sample_rate_hz`).
///
/// Returns `(gain, phase_rad)` where `phase_rad` is negative when the
/// output lags the input.
///
/// # Panics
///
/// Panics if the signals differ in length or are empty.
pub fn relative_response(
    input: &[f64],
    output: &[f64],
    sample_rate_hz: f64,
    frequency_hz: f64,
) -> (f64, f64) {
    assert_eq!(input.len(), output.len(), "signals must be the same length");
    let i = goertzel(input, sample_rate_hz, frequency_hz);
    let o = goertzel(output, sample_rate_hz, frequency_hz);
    let ratio = o.amplitude / i.amplitude;
    (ratio.abs(), ratio.arg())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn tone(n: usize, fs: f64, f: f64, a: f64, phi: f64) -> Vec<f64> {
        (0..n)
            .map(|k| a * (TAU * f * k as f64 / fs + phi).cos())
            .collect()
    }

    #[test]
    fn recovers_amplitude_and_phase() {
        let fs = 1000.0;
        let f = 50.0; // 20 samples per period, integer periods in 400 samples
        let s = tone(400, fs, f, 1.7, 0.6);
        let est = goertzel(&s, fs, f);
        assert!((est.magnitude() - 1.7).abs() < 1e-10);
        assert!((est.phase() - 0.6).abs() < 1e-10);
    }

    #[test]
    fn non_bin_centred_frequency() {
        let fs = 1000.0;
        let f = 37.5; // 3 full periods in 80 ms = 80 samples? 37.5*0.08=3 ✓
        let s = tone(80, fs, f, 0.9, -1.1);
        let est = goertzel(&s, fs, f);
        assert!((est.magnitude() - 0.9).abs() < 1e-9);
        assert!((est.phase() + 1.1).abs() < 1e-9);
    }

    #[test]
    fn rejects_orthogonal_tone() {
        let fs = 800.0;
        let s = tone(800, fs, 100.0, 1.0, 0.0);
        let est = goertzel(&s, fs, 200.0);
        assert!(est.magnitude() < 1e-10);
    }

    #[test]
    fn dc_component() {
        let s = vec![2.5; 100];
        let est = goertzel(&s, 100.0, 0.0);
        assert!((est.magnitude() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn relative_response_gain_and_lag() {
        let fs = 2000.0;
        let f = 40.0;
        let input = tone(1000, fs, f, 1.0, 0.0);
        let output = tone(1000, fs, f, 0.5, -0.8); // attenuated, lagging
        let (g, ph) = relative_response(&input, &output, fs, f);
        assert!((g - 0.5).abs() < 1e-9);
        assert!((ph + 0.8).abs() < 1e-9);
    }

    #[test]
    fn mixed_signal_extracts_only_target_tone() {
        let fs = 1600.0;
        let n = 1600;
        let s: Vec<f64> = (0..n)
            .map(|k| {
                let t = k as f64 / fs;
                0.7 * (TAU * 80.0 * t + 0.3).cos() + 2.0 * (TAU * 200.0 * t).cos() + 0.5
            })
            .collect();
        let est = goertzel(&s, fs, 80.0);
        assert!((est.magnitude() - 0.7).abs() < 1e-9);
        assert!((est.phase() - 0.3).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_signal_rejected() {
        let _ = goertzel(&[], 1.0, 1.0);
    }
}
