//! Fixed-step ODE integrators.
//!
//! The linear parts of the PLL are stepped exactly via
//! [`crate::statespace::DiscreteStateSpace`]; these general integrators are
//! used for the *non-linear* models (VCO tuning-curve non-linearity,
//! saturating charge pump) and as an independent cross-check in tests.

/// Advances `x` by one step of the classic fourth-order Runge–Kutta method.
///
/// `f(t, x, dx)` writes the derivative of `x` at time `t` into `dx`.
///
/// # Example
///
/// ```
/// use pllbist_numeric::ode::rk4_step;
///
/// // dx/dt = -x, x(0)=1 → x(t)=e^{-t}
/// let mut x = vec![1.0];
/// let dt = 0.01;
/// for k in 0..100 {
///     rk4_step(&mut x, k as f64 * dt, dt, |_, x, dx| dx[0] = -x[0]);
/// }
/// assert!((x[0] - (-1.0f64).exp()).abs() < 1e-9);
/// ```
pub fn rk4_step<F>(x: &mut [f64], t: f64, dt: f64, mut f: F)
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    let n = x.len();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];

    f(t, x, &mut k1);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * dt * k1[i];
    }
    f(t + 0.5 * dt, &tmp, &mut k2);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * dt * k2[i];
    }
    f(t + 0.5 * dt, &tmp, &mut k3);
    for i in 0..n {
        tmp[i] = x[i] + dt * k3[i];
    }
    f(t + dt, &tmp, &mut k4);
    for i in 0..n {
        x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// Integrates from `t0` to `t1` in `steps` equal RK4 steps, returning the
/// final state.
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn rk4_integrate<F>(mut x: Vec<f64>, t0: f64, t1: f64, steps: usize, mut f: F) -> Vec<f64>
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    assert!(steps > 0, "at least one step required");
    let dt = (t1 - t0) / steps as f64;
    for k in 0..steps {
        rk4_step(&mut x, t0 + k as f64 * dt, dt, &mut f);
    }
    x
}

/// One step of the explicit trapezoidal (Heun) method — second order, used
/// where a cheap, dissipative-friendly integrator is preferred.
pub fn heun_step<F>(x: &mut [f64], t: f64, dt: f64, mut f: F)
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    let n = x.len();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    f(t, x, &mut k1);
    for i in 0..n {
        tmp[i] = x[i] + dt * k1[i];
    }
    f(t + dt, &tmp, &mut k2);
    for i in 0..n {
        x[i] += 0.5 * dt * (k1[i] + k2[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rk4_exponential_decay_fourth_order() {
        // Halving dt should reduce the error ~16x.
        let run = |steps: usize| {
            let x = rk4_integrate(vec![1.0], 0.0, 1.0, steps, |_, x, dx| dx[0] = -x[0]);
            (x[0] - (-1.0f64).exp()).abs()
        };
        let e1 = run(20);
        let e2 = run(40);
        assert!(e1 / e2 > 12.0, "order too low: {e1} / {e2}");
    }

    #[test]
    fn rk4_harmonic_oscillator_energy() {
        // x'' = -w^2 x as a 2-state system; energy conserved to high order.
        let w = 3.0;
        let x = rk4_integrate(vec![1.0, 0.0], 0.0, 10.0, 5000, |_, x, dx| {
            dx[0] = x[1];
            dx[1] = -w * w * x[0];
        });
        let energy = 0.5 * x[1] * x[1] + 0.5 * w * w * x[0] * x[0];
        assert!((energy - 0.5 * w * w).abs() < 1e-6);
    }

    #[test]
    fn rk4_time_dependent_rhs() {
        // dx/dt = cos(t) → x = sin(t).
        let x = rk4_integrate(vec![0.0], 0.0, 2.0, 200, |t, _, dx| dx[0] = t.cos());
        assert!((x[0] - 2.0f64.sin()).abs() < 1e-9);
    }

    #[test]
    fn heun_second_order() {
        let run = |steps: usize| {
            let mut x = vec![1.0];
            let dt = 1.0 / steps as f64;
            for k in 0..steps {
                heun_step(&mut x, k as f64 * dt, dt, |_, x, dx| dx[0] = -x[0]);
            }
            (x[0] - (-1.0f64).exp()).abs()
        };
        let e1 = run(50);
        let e2 = run(100);
        assert!(e1 / e2 > 3.5 && e1 / e2 < 4.5, "ratio {}", e1 / e2);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_rejected() {
        let _ = rk4_integrate(vec![0.0], 0.0, 1.0, 0, |_, _, dx| dx[0] = 0.0);
    }
}
