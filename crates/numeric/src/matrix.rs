//! Small dense matrices: arithmetic, LU solve, inverse and the matrix
//! exponential.
//!
//! Loop filters are 1–3 state systems, so these routines are tuned for
//! clarity and robustness on tiny matrices rather than for large-scale
//! performance. The matrix exponential uses scaling-and-squaring with a
//! diagonal Padé(6,6) approximant — accurate to machine precision for the
//! well-scaled matrices that arise from filter discretisation.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use pllbist_numeric::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[0.0, 1.0], &[-2.0, -3.0]]);
/// let e = a.expm();
/// // expm of a stable matrix stays bounded
/// assert!(e.frobenius_norm() < 2.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n×n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut m = Self::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "ragged rows");
            m.data[i * cols..(i + 1) * cols].copy_from_slice(r);
        }
        m
    }

    /// Creates a column vector.
    pub fn column(values: &[f64]) -> Self {
        let mut m = Self::zeros(values.len(), 1);
        m.data.copy_from_slice(values);
        m
    }

    /// Creates a row vector.
    pub fn row(values: &[f64]) -> Self {
        let mut m = Self::zeros(1, values.len());
        m.data.copy_from_slice(values);
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw data in row-major order.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Scales every entry.
    pub fn scale(&self, k: f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * k).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Infinity norm (max absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .map(|x| x.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Extracts a sub-matrix block starting at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Self {
        assert!(
            r0 + rows <= self.rows && c0 + cols <= self.cols,
            "block out of bounds"
        );
        let mut b = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                b[(i, j)] = self[(r0 + i, c0 + j)];
            }
        }
        b
    }

    /// Solves `A·x = b` by LU decomposition with partial pivoting.
    ///
    /// Returns `None` when the matrix is numerically singular.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch (A not square, or b row count ≠ A size).
    pub fn solve(&self, b: &Matrix) -> Option<Matrix> {
        assert!(self.is_square(), "solve requires a square matrix");
        assert_eq!(self.rows, b.rows, "rhs row count must match");
        let n = self.rows;
        let mut lu = self.clone();
        let mut x = b.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Pivot.
            let (piv, piv_val) = (k..n)
                .map(|i| (i, lu[(i, k)].abs()))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty range");
            if piv_val < 1e-300 {
                return None;
            }
            if piv != k {
                for j in 0..n {
                    let t = lu[(k, j)];
                    lu[(k, j)] = lu[(piv, j)];
                    lu[(piv, j)] = t;
                }
                for j in 0..x.cols {
                    let t = x[(k, j)];
                    x[(k, j)] = x[(piv, j)];
                    x[(piv, j)] = t;
                }
                perm.swap(k, piv);
            }
            for i in k + 1..n {
                let f = lu[(i, k)] / lu[(k, k)];
                lu[(i, k)] = f;
                for j in k + 1..n {
                    lu[(i, j)] -= f * lu[(k, j)];
                }
                for j in 0..x.cols {
                    x[(i, j)] -= f * x[(k, j)];
                }
            }
        }
        // Back substitution.
        for j in 0..x.cols {
            for i in (0..n).rev() {
                let mut s = x[(i, j)];
                for k in i + 1..n {
                    s -= lu[(i, k)] * x[(k, j)];
                }
                x[(i, j)] = s / lu[(i, i)];
            }
        }
        Some(x)
    }

    /// Matrix inverse; `None` when singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Matrix> {
        self.solve(&Matrix::identity(self.rows))
    }

    /// Matrix exponential `e^A` by scaling-and-squaring with a Padé(6,6)
    /// approximant.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or is numerically singular at the
    /// Padé solve step (does not occur for finite inputs).
    pub fn expm(&self) -> Matrix {
        assert!(self.is_square(), "expm requires a square matrix");
        let n = self.rows;
        let norm = self.inf_norm();
        // Scale so that ||A/2^s|| <= 0.5.
        let s = if norm > 0.5 {
            (norm / 0.5).log2().ceil() as i32
        } else {
            0
        };
        let a = self.scale(0.5f64.powi(s));

        // Padé(6,6): N = sum c_k A^k, D = sum (-1)^k c_k A^k.
        let c = pade6_coefficients();
        let mut term = Matrix::identity(n);
        let mut num = Matrix::identity(n).scale(c[0]);
        let mut den = Matrix::identity(n).scale(c[0]);
        for (k, &ck) in c.iter().enumerate().skip(1) {
            term = &term * &a;
            num = &num + &term.scale(ck);
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            den = &den + &term.scale(sign * ck);
        }
        let mut e = den
            .solve(&num)
            .expect("Padé denominator is well conditioned for scaled input");
        for _ in 0..s {
            e = &e * &e;
        }
        e
    }
}

fn pade6_coefficients() -> [f64; 7] {
    // c_k = (2m-k)! m! / ((2m)! k! (m-k)!) with m = 6.
    let mut c = [0.0; 7];
    c[0] = 1.0;
    let m = 6.0;
    for k in 1..7 {
        let kf = k as f64;
        c[k] = c[k - 1] * (m - kf + 1.0) / ((2.0 * m - kf + 1.0) * kf);
    }
    c
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: Self) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: Self) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: Self) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        (a - b).frobenius_norm() <= tol
    }

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(Matrix::identity(3)[(2, 2)], 1.0);
        assert_eq!(Matrix::column(&[1.0, 2.0]).rows(), 2);
        assert_eq!(Matrix::row(&[1.0, 2.0]).cols(), 2);
    }

    #[test]
    fn multiplication_and_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
        assert_eq!(
            a.transpose(),
            Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]])
        );
    }

    #[test]
    fn solve_and_inverse() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Matrix::column(&[3.0, 5.0]);
        let x = a.solve(&b).unwrap();
        // 2x+y=3, x+3y=5 → x=0.8, y=1.4
        assert!((x[(0, 0)] - 0.8).abs() < 1e-12);
        assert!((x[(1, 0)] - 1.4).abs() < 1e-12);

        let inv = a.inverse().unwrap();
        assert!(close(&(&a * &inv), &Matrix::identity(2), 1e-12));
    }

    #[test]
    fn singular_detected() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(s.inverse().is_none());
        assert!(s.solve(&Matrix::column(&[1.0, 1.0])).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&Matrix::column(&[2.0, 3.0])).unwrap();
        assert!((x[(0, 0)] - 3.0).abs() < 1e-14);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let z = Matrix::zeros(3, 3);
        assert!(close(&z.expm(), &Matrix::identity(3), 1e-15));
    }

    #[test]
    fn expm_of_diagonal() {
        let d = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -2.0]]);
        let e = d.expm();
        assert!((e[(0, 0)] - 1f64.exp()).abs() < 1e-12);
        assert!((e[(1, 1)] - (-2f64).exp()).abs() < 1e-14);
        assert!(e[(0, 1)].abs() < 1e-14 && e[(1, 0)].abs() < 1e-14);
    }

    #[test]
    fn expm_of_rotation_generator() {
        // A = [[0, -w],[w, 0]] → expm(A·t) is rotation by w·t.
        let w = 2.5;
        let a = Matrix::from_rows(&[&[0.0, -w], &[w, 0.0]]);
        let e = a.expm();
        let want = Matrix::from_rows(&[&[w.cos(), -w.sin()], &[w.sin(), w.cos()]]);
        assert!(close(&e, &want, 1e-12));
    }

    #[test]
    fn expm_semigroup_property() {
        // expm(A) * expm(A) == expm(2A)
        let a = Matrix::from_rows(&[&[-0.3, 1.2, 0.0], &[0.0, -0.7, 0.4], &[0.1, 0.0, -1.5]]);
        let e1 = a.expm();
        let e2 = a.scale(2.0).expm();
        assert!(close(&(&e1 * &e1), &e2, 1e-10));
    }

    #[test]
    fn expm_large_norm_uses_scaling() {
        let a = Matrix::from_rows(&[&[-100.0, 0.0], &[0.0, -200.0]]);
        let e = a.expm();
        assert!(e[(0, 0)] < 1e-40 && e[(1, 1)] < 1e-80);
        assert!(e[(0, 0)] >= 0.0 && e[(1, 1)] >= 0.0);
    }

    #[test]
    fn block_extraction() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let b = m.block(1, 1, 2, 2);
        assert_eq!(b, Matrix::from_rows(&[&[5.0, 6.0], &[8.0, 9.0]]));
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(m.inf_norm(), 7.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = &a * &b;
    }
}
