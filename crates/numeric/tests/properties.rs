//! Property-based tests for the numerical substrate.

use pllbist_numeric::complex::Complex64;
use pllbist_numeric::fft::{fft, ifft};
use pllbist_numeric::fit::sine_fit;
use pllbist_numeric::goertzel::goertzel;
use pllbist_numeric::matrix::Matrix;
use pllbist_numeric::poly::Polynomial;
use pllbist_numeric::statespace::StateSpace;
use pllbist_numeric::tf::TransferFunction;
use proptest::prelude::*;

fn finite(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    range.prop_filter("finite", |x| x.is_finite())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_field_axioms(
        ar in finite(-1e3..1e3), ai in finite(-1e3..1e3),
        br in finite(-1e3..1e3), bi in finite(-1e3..1e3),
        cr in finite(-1e3..1e3), ci in finite(-1e3..1e3),
    ) {
        let (a, b, c) = (
            Complex64::new(ar, ai),
            Complex64::new(br, bi),
            Complex64::new(cr, ci),
        );
        // Commutativity and associativity (within float tolerance).
        prop_assert!(((a + b) - (b + a)).abs() < 1e-9);
        prop_assert!((a * b - b * a).abs() < 1e-6);
        let lhs = (a * b) * c;
        let rhs = a * (b * c);
        prop_assert!((lhs - rhs).abs() <= 1e-6 * lhs.abs().max(1.0));
        // Distributivity.
        let d1 = a * (b + c);
        let d2 = a * b + a * c;
        prop_assert!((d1 - d2).abs() <= 1e-6 * d1.abs().max(1.0));
    }

    #[test]
    fn complex_division_inverts_multiplication(
        ar in finite(-100.0..100.0), ai in finite(-100.0..100.0),
        br in finite(0.1..100.0), bi in finite(0.1..100.0),
    ) {
        let a = Complex64::new(ar, ai);
        let b = Complex64::new(br, bi);
        let q = a * b / b;
        prop_assert!((q - a).abs() < 1e-9 * a.abs().max(1.0));
    }

    #[test]
    fn polynomial_mul_is_evaluation_homomorphism(
        c1 in prop::collection::vec(finite(-5.0..5.0), 1..5),
        c2 in prop::collection::vec(finite(-5.0..5.0), 1..5),
        x in finite(-3.0..3.0),
    ) {
        let p = Polynomial::new(c1);
        let q = Polynomial::new(c2);
        let prod = &p * &q;
        let lhs = prod.eval(x);
        let rhs = p.eval(x) * q.eval(x);
        prop_assert!((lhs - rhs).abs() <= 1e-6 * rhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn polynomial_roots_evaluate_to_zero(
        roots in prop::collection::vec(finite(-3.0..3.0), 2..5),
    ) {
        let p = Polynomial::from_roots(roots.clone());
        let found = p.roots(1e-12, 2000);
        prop_assert_eq!(found.len(), roots.len());
        for r in found {
            let v = p.eval_complex(r).abs();
            prop_assert!(v < 1e-5, "residual {v} at {r}");
        }
    }

    #[test]
    fn fft_round_trip_and_linearity(
        data in prop::collection::vec(finite(-10.0..10.0), 1..6),
        k in finite(-4.0..4.0),
    ) {
        // Pad to a power of two.
        let n = data.len().next_power_of_two().max(2);
        let mut buf: Vec<Complex64> =
            data.iter().map(|&x| Complex64::from_re(x)).collect();
        buf.resize(n, Complex64::ZERO);
        let back = ifft(&fft(&buf));
        for (a, b) in buf.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
        // Linearity: F(k·x) = k·F(x).
        let scaled: Vec<Complex64> = buf.iter().map(|&z| z * k).collect();
        let f1 = fft(&scaled);
        let f2: Vec<Complex64> = fft(&buf).iter().map(|&z| z * k).collect();
        for (a, b) in f1.iter().zip(&f2) {
            prop_assert!((*a - *b).abs() < 1e-7);
        }
    }

    #[test]
    fn goertzel_recovers_random_tones(
        amp in finite(0.1..5.0),
        phase in finite(-3.0..3.0),
        cycles in 3u32..20,
    ) {
        let fs = 1000.0;
        let n = 500usize;
        // Integer number of periods in the window.
        let f = cycles as f64 * fs / n as f64;
        let signal: Vec<f64> = (0..n)
            .map(|k| amp * (std::f64::consts::TAU * f * k as f64 / fs + phase).cos())
            .collect();
        let est = goertzel(&signal, fs, f);
        prop_assert!((est.magnitude() - amp).abs() < 1e-6 * amp);
        let mut dphi = est.phase() - phase;
        while dphi > std::f64::consts::PI { dphi -= std::f64::consts::TAU; }
        while dphi < -std::f64::consts::PI { dphi += std::f64::consts::TAU; }
        prop_assert!(dphi.abs() < 1e-6);
    }

    #[test]
    fn sine_fit_agrees_with_goertzel(
        a in finite(-3.0..3.0),
        b in finite(-3.0..3.0),
        dc in finite(-2.0..2.0),
    ) {
        prop_assume!(a.hypot(b) > 0.05);
        let omega = 40.0;
        let samples: Vec<(f64, f64)> = (0..400)
            .map(|k| {
                let t = k as f64 * 1e-3;
                (t, a * (omega * t).cos() + b * (omega * t).sin() + dc)
            })
            .collect();
        let fit = sine_fit(&samples, omega).unwrap();
        prop_assert!((fit.a - a).abs() < 1e-8);
        prop_assert!((fit.b - b).abs() < 1e-8);
        prop_assert!((fit.c - dc).abs() < 1e-8);
    }

    #[test]
    fn lu_solve_reconstructs_rhs(
        m in prop::collection::vec(finite(-5.0..5.0), 9),
        v in prop::collection::vec(finite(-5.0..5.0), 3),
    ) {
        let a = Matrix::from_rows(&[&m[0..3], &m[3..6], &m[6..9]]);
        let b = Matrix::column(&v);
        if let Some(x) = a.solve(&b) {
            let ax = &a * &x;
            for i in 0..3 {
                prop_assert!(
                    (ax[(i, 0)] - b[(i, 0)]).abs() < 1e-6 * (1.0 + b[(i, 0)].abs()),
                    "row {i}"
                );
            }
        }
    }

    #[test]
    fn expm_inverse_identity(
        m in prop::collection::vec(finite(-2.0..2.0), 4),
    ) {
        // expm(A)·expm(−A) = I.
        let a = Matrix::from_rows(&[&m[0..2], &m[2..4]]);
        let e = a.expm();
        let einv = a.scale(-1.0).expm();
        let prod = &e * &einv;
        let err = (&prod - &Matrix::identity(2)).frobenius_norm();
        prop_assert!(err < 1e-8, "err {err}");
    }

    #[test]
    fn zoh_discretisation_matches_dense_rk4(
        tau in finite(1e-3..1e-1),
        dt in finite(1e-4..5e-3),
        u in finite(-3.0..3.0),
    ) {
        let tf = TransferFunction::first_order_lowpass(tau);
        let ss = StateSpace::from_transfer_function(&tf);
        let z = ss.discretize(dt);
        let mut x = ss.zero_state();
        for _ in 0..10 {
            x = z.step(&x, u);
        }
        let y_exact = z.output(&x, u);
        // Dense RK4 on the same ODE.
        let rk = pllbist_numeric::ode::rk4_integrate(
            vec![0.0],
            0.0,
            10.0 * dt,
            4000,
            |_, s, ds| ds[0] = (-s[0]) / tau + u / tau,
        );
        prop_assert!((y_exact - rk[0]).abs() < 1e-6 * (1.0 + rk[0].abs()));
    }

    #[test]
    fn feedback_composition_reduces_gain_below_unity_loop(
        k in finite(0.1..50.0),
        w in finite(0.1..100.0),
    ) {
        // |G/(1+G)| <= |G| for G = k/s on the jω axis (positive-real G/s).
        let g = TransferFunction::integrator(k);
        let h = g.feedback_unity();
        prop_assert!(h.magnitude(w) <= g.magnitude(w) + 1e-12);
        // And the closed loop is stable.
        prop_assert!(h.is_stable(1e-12));
    }
}
