//! Property-based tests for the numerical substrate (on the in-tree
//! `pllbist-testkit` harness — seeded, deterministic, offline).

use pllbist_numeric::complex::Complex64;
use pllbist_numeric::fft::{fft, ifft};
use pllbist_numeric::fit::sine_fit;
use pllbist_numeric::goertzel::goertzel;
use pllbist_numeric::matrix::Matrix;
use pllbist_numeric::poly::Polynomial;
use pllbist_numeric::statespace::StateSpace;
use pllbist_numeric::tf::TransferFunction;
use pllbist_testkit::{prop_assert, prop_assert_eq, prop_assume, prop_check};

#[test]
fn complex_field_axioms() {
    prop_check!(cases: 64, |g| {
        let (a, b, c) = (
            Complex64::new(g.f64_range(-1e3, 1e3), g.f64_range(-1e3, 1e3)),
            Complex64::new(g.f64_range(-1e3, 1e3), g.f64_range(-1e3, 1e3)),
            Complex64::new(g.f64_range(-1e3, 1e3), g.f64_range(-1e3, 1e3)),
        );
        // Commutativity and associativity (within float tolerance).
        prop_assert!(((a + b) - (b + a)).abs() < 1e-9);
        prop_assert!((a * b - b * a).abs() < 1e-6);
        let lhs = (a * b) * c;
        let rhs = a * (b * c);
        prop_assert!((lhs - rhs).abs() <= 1e-6 * lhs.abs().max(1.0));
        // Distributivity.
        let d1 = a * (b + c);
        let d2 = a * b + a * c;
        prop_assert!((d1 - d2).abs() <= 1e-6 * d1.abs().max(1.0));
        Ok(())
    });
}

#[test]
fn complex_division_inverts_multiplication() {
    prop_check!(cases: 64, |g| {
        let a = Complex64::new(g.f64_range(-100.0, 100.0), g.f64_range(-100.0, 100.0));
        let b = Complex64::new(g.f64_range(0.1, 100.0), g.f64_range(0.1, 100.0));
        let q = a * b / b;
        prop_assert!((q - a).abs() < 1e-9 * a.abs().max(1.0));
        Ok(())
    });
}

#[test]
fn polynomial_mul_is_evaluation_homomorphism() {
    prop_check!(cases: 64, |g| {
        let p = Polynomial::new(g.vec_f64(-5.0, 5.0, 1, 4));
        let q = Polynomial::new(g.vec_f64(-5.0, 5.0, 1, 4));
        let x = g.f64_range(-3.0, 3.0);
        let prod = &p * &q;
        let lhs = prod.eval(x);
        let rhs = p.eval(x) * q.eval(x);
        prop_assert!((lhs - rhs).abs() <= 1e-6 * rhs.abs().max(1.0), "{lhs} vs {rhs}");
        Ok(())
    });
}

#[test]
fn polynomial_roots_evaluate_to_zero() {
    prop_check!(cases: 64, |g| {
        let roots = g.vec_f64(-3.0, 3.0, 2, 4);
        let p = Polynomial::from_roots(roots.clone());
        let found = p.roots(1e-12, 2000);
        prop_assert_eq!(found.len(), roots.len());
        for r in found {
            let v = p.eval_complex(r).abs();
            prop_assert!(v < 1e-5, "residual {v} at {r}");
        }
        Ok(())
    });
}

#[test]
fn fft_round_trip_and_linearity() {
    prop_check!(cases: 64, |g| {
        let data = g.vec_f64(-10.0, 10.0, 1, 5);
        let k = g.f64_range(-4.0, 4.0);
        // Pad to a power of two.
        let n = data.len().next_power_of_two().max(2);
        let mut buf: Vec<Complex64> =
            data.iter().map(|&x| Complex64::from_re(x)).collect();
        buf.resize(n, Complex64::ZERO);
        let back = ifft(&fft(&buf));
        for (a, b) in buf.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
        // Linearity: F(k·x) = k·F(x).
        let scaled: Vec<Complex64> = buf.iter().map(|&z| z * k).collect();
        let f1 = fft(&scaled);
        let f2: Vec<Complex64> = fft(&buf).iter().map(|&z| z * k).collect();
        for (a, b) in f1.iter().zip(&f2) {
            prop_assert!((*a - *b).abs() < 1e-7);
        }
        Ok(())
    });
}

#[test]
fn goertzel_recovers_random_tones() {
    prop_check!(cases: 64, |g| {
        let amp = g.f64_range(0.1, 5.0);
        let phase = g.f64_range(-3.0, 3.0);
        let cycles = g.u32_range(3, 20);
        let fs = 1000.0;
        let n = 500usize;
        // Integer number of periods in the window.
        let f = cycles as f64 * fs / n as f64;
        let signal: Vec<f64> = (0..n)
            .map(|k| amp * (std::f64::consts::TAU * f * k as f64 / fs + phase).cos())
            .collect();
        let est = goertzel(&signal, fs, f);
        prop_assert!((est.magnitude() - amp).abs() < 1e-6 * amp);
        let mut dphi = est.phase() - phase;
        while dphi > std::f64::consts::PI {
            dphi -= std::f64::consts::TAU;
        }
        while dphi < -std::f64::consts::PI {
            dphi += std::f64::consts::TAU;
        }
        prop_assert!(dphi.abs() < 1e-6);
        Ok(())
    });
}

#[test]
fn sine_fit_agrees_with_goertzel() {
    prop_check!(cases: 64, |g| {
        let a = g.f64_range(-3.0, 3.0);
        let b = g.f64_range(-3.0, 3.0);
        let dc = g.f64_range(-2.0, 2.0);
        prop_assume!(a.hypot(b) > 0.05);
        let omega = 40.0;
        let samples: Vec<(f64, f64)> = (0..400)
            .map(|k| {
                let t = k as f64 * 1e-3;
                (t, a * (omega * t).cos() + b * (omega * t).sin() + dc)
            })
            .collect();
        let fit = sine_fit(&samples, omega).unwrap();
        prop_assert!((fit.a - a).abs() < 1e-8);
        prop_assert!((fit.b - b).abs() < 1e-8);
        prop_assert!((fit.c - dc).abs() < 1e-8);
        Ok(())
    });
}

#[test]
fn lu_solve_reconstructs_rhs() {
    prop_check!(cases: 64, |g| {
        let m = g.vec_f64(-5.0, 5.0, 9, 9);
        let v = g.vec_f64(-5.0, 5.0, 3, 3);
        let a = Matrix::from_rows(&[&m[0..3], &m[3..6], &m[6..9]]);
        let b = Matrix::column(&v);
        if let Some(x) = a.solve(&b) {
            let ax = &a * &x;
            for i in 0..3 {
                prop_assert!(
                    (ax[(i, 0)] - b[(i, 0)]).abs() < 1e-6 * (1.0 + b[(i, 0)].abs()),
                    "row {i}"
                );
            }
        }
        Ok(())
    });
}

#[test]
fn expm_inverse_identity() {
    prop_check!(cases: 64, |g| {
        // expm(A)·expm(−A) = I.
        let m = g.vec_f64(-2.0, 2.0, 4, 4);
        let a = Matrix::from_rows(&[&m[0..2], &m[2..4]]);
        let e = a.expm();
        let einv = a.scale(-1.0).expm();
        let prod = &e * &einv;
        let err = (&prod - &Matrix::identity(2)).frobenius_norm();
        prop_assert!(err < 1e-8, "err {err}");
        Ok(())
    });
}

#[test]
fn zoh_discretisation_matches_dense_rk4() {
    prop_check!(cases: 64, |g| {
        let tau = g.f64_range(1e-3, 1e-1);
        let dt = g.f64_range(1e-4, 5e-3);
        let u = g.f64_range(-3.0, 3.0);
        let tf = TransferFunction::first_order_lowpass(tau);
        let ss = StateSpace::from_transfer_function(&tf);
        let z = ss.discretize(dt);
        let mut x = ss.zero_state();
        for _ in 0..10 {
            x = z.step(&x, u);
        }
        let y_exact = z.output(&x, u);
        // Dense RK4 on the same ODE.
        let rk = pllbist_numeric::ode::rk4_integrate(
            vec![0.0],
            0.0,
            10.0 * dt,
            4000,
            |_, s, ds| ds[0] = (-s[0]) / tau + u / tau,
        );
        prop_assert!((y_exact - rk[0]).abs() < 1e-6 * (1.0 + rk[0].abs()));
        Ok(())
    });
}

#[test]
fn feedback_composition_reduces_gain_below_unity_loop() {
    prop_check!(cases: 64, |g| {
        let k = g.f64_range(0.1, 50.0);
        let w = g.f64_range(0.1, 100.0);
        // |G/(1+G)| <= |G| for G = k/s on the jω axis (positive-real G/s).
        let gtf = TransferFunction::integrator(k);
        let h = gtf.feedback_unity();
        prop_assert!(h.magnitude(w) <= gtf.magnitude(w) + 1e-12);
        // And the closed loop is stable.
        prop_assert!(h.is_stable(1e-12));
        Ok(())
    });
}
