//! Minimal hand-rolled JSONL field extraction.
//!
//! The workspace's machine-readable artifacts (telemetry streams,
//! campaign results files, flight-recorder dumps, the bench ledger) are
//! all flat JSON lines written by [`crate::Record::to_json`]-style
//! writers. These helpers read single fields back out without a JSON
//! dependency. They match the **first occurrence** of a key, so writers
//! must keep fixed tag keys ahead of free-text payloads (panic
//! messages) — the convention every encoder in this workspace follows.
//!
//! The adversarial surface (torn lines from a kill mid-write, escaped
//! quotes inside payloads, duplicate keys) is pinned by property tests
//! in `crates/sim/tests/campaign_json_props.rs`.

/// Extracts `"key":<u64>` from a record line.
///
/// First-occurrence matching: keep numeric/tag keys ahead of free-text
/// payloads on the writer side.
pub fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extracts `"key":<f64>` from a record line (plain JSON number —
/// digits, sign, decimal point, exponent; `null` yields `None`).
pub fn json_f64_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extracts `"key":true|false` from a record line (same first-occurrence
/// caveat as [`json_u64_field`]).
pub fn json_bool_field(line: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Extracts and unescapes `"key":"…"` from a record line (same
/// first-occurrence caveat as [`json_u64_field`]).
pub fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[at..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = (&mut chars).take(4).collect();
                    let v = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_field_reads_first_occurrence() {
        let line = "{\"type\":\"x\",\"index\":42,\"index\":7}";
        assert_eq!(json_u64_field(line, "index"), Some(42));
        assert_eq!(json_u64_field(line, "missing"), None);
        assert_eq!(json_u64_field("{\"index\":}", "index"), None);
        assert_eq!(json_u64_field("{\"index\":\"text\"}", "index"), None);
    }

    #[test]
    fn f64_field_reads_json_numbers() {
        let line = "{\"a\":-1.5e-3,\"b\":2,\"c\":null}";
        assert_eq!(json_f64_field(line, "a"), Some(-1.5e-3));
        assert_eq!(json_f64_field(line, "b"), Some(2.0));
        assert_eq!(json_f64_field(line, "c"), None);
        assert_eq!(json_f64_field(line, "d"), None);
    }

    #[test]
    fn bool_field_requires_literal() {
        let line = "{\"ok\":true,\"bad\":maybe}";
        assert_eq!(json_bool_field(line, "ok"), Some(true));
        assert_eq!(json_bool_field(line, "bad"), None);
        assert_eq!(json_bool_field("{\"ok\":false}", "ok"), Some(false));
    }

    #[test]
    fn str_field_unescapes() {
        let line = "{\"msg\":\"a \\\"quoted\\\" \\\\ line\\n\\u0041\"}";
        assert_eq!(
            json_str_field(line, "msg").as_deref(),
            Some("a \"quoted\" \\ line\nA")
        );
        // Torn line (no closing quote) is a clean None, not a panic.
        assert_eq!(json_str_field("{\"msg\":\"trunc", "msg"), None);
        assert_eq!(json_str_field("{\"msg\":\"bad\\q\"}", "msg"), None);
    }
}
