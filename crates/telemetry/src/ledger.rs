//! Bench regression ledger: an append-only JSONL trajectory of headline
//! bench numbers, plus the comparison policy the `bench_ledger_gate`
//! binary enforces.
//!
//! Record schema (one object per line):
//!
//! ```json
//! {"type":"ledger","schema":1,"bin":"abl13_campaign_observatory",
//!  "baseline":false,"metrics":{"observatory.overhead_pct":1.4,...}}
//! ```
//!
//! `metrics` flattens every numeric field of the run's `result` records
//! as `<result_name>.<field>`. `baseline:true` rows are the committed
//! reference (see `results/bench_ledger.jsonl`); [`RunReport::finish`]
//! appends `baseline:false` rows for every `--jsonl` run.
//!
//! [`RunReport::finish`]: crate::RunReport::finish

use std::io::Write as _;
use std::path::Path;

use crate::json::{json_bool_field, json_str_field};
use crate::record::{Record, Value};

/// Ledger record schema version.
pub const LEDGER_SCHEMA: u32 = 1;

/// Default ledger path, relative to the repo root.
pub const DEFAULT_LEDGER_PATH: &str = "results/bench_ledger.jsonl";

/// Environment variable overriding the ledger path. An empty value
/// disables ledger appends entirely.
pub const LEDGER_ENV: &str = "PLLBIST_LEDGER";

/// One ledger row: a bin's flattened headline metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRecord {
    pub bin: String,
    /// Committed reference rows are `true`; fresh runs append `false`.
    pub baseline: bool,
    /// `(metric_key, value)` in emission order; keys are
    /// `<result_name>.<field>`.
    pub metrics: Vec<(String, f64)>,
}

impl LedgerRecord {
    /// Serialises as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96 + 32 * self.metrics.len());
        s.push_str("{\"type\":\"ledger\",\"schema\":");
        s.push_str(&LEDGER_SCHEMA.to_string());
        s.push_str(",\"bin\":");
        crate::record::write_json_str(&mut s, &self.bin);
        s.push_str(",\"baseline\":");
        s.push_str(if self.baseline { "true" } else { "false" });
        s.push_str(",\"metrics\":{");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            crate::record::write_json_str(&mut s, k);
            s.push(':');
            crate::record::write_json_f64(&mut s, *v);
        }
        s.push_str("}}");
        s
    }

    /// Parses one ledger line; `None` for torn or foreign lines.
    pub fn parse(line: &str) -> Option<Self> {
        if json_str_field(line, "type").as_deref() != Some("ledger") {
            return None;
        }
        let bin = json_str_field(line, "bin")?;
        let baseline = json_bool_field(line, "baseline")?;
        // The metrics object is the last key; keys are plain identifiers
        // (result/field names) so a non-escaping scan is sufficient.
        let body_at = line.find("\"metrics\":{")? + "\"metrics\":{".len();
        let body = &line[body_at..];
        let body = &body[..body.rfind('}')?];
        let body = body.strip_suffix('}').unwrap_or(body);
        let mut metrics = Vec::new();
        for pair in body.split(',') {
            if pair.trim().is_empty() {
                continue;
            }
            let (k, v) = pair.split_once(':')?;
            let k = k.trim().trim_matches('"');
            if k.is_empty() {
                continue;
            }
            let value = match v.trim() {
                "null" => f64::NAN,
                v => v.parse().ok()?,
            };
            metrics.push((k.to_string(), value));
        }
        Some(Self {
            bin,
            baseline,
            metrics,
        })
    }

    /// Looks up a metric by exact key.
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Flattens the numeric fields of `result` records into ledger metrics
/// (`<result_name>.<field>`). Booleans flatten to 0/1 so pass/fail
/// flags show up in the trajectory too. Repeated result names (per-row
/// records like abl09's `variant` or drained incident telemetry) keep
/// only their **first** occurrence — the same first-wins rule the JSONL
/// field parsers use — so a ledger row stays one compact object with
/// unique keys; headline verdicts should use unique result names.
pub fn metrics_from_records(records: &[Record]) -> Vec<(String, f64)> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out: Vec<(String, f64)> = Vec::new();
    for r in records {
        let Record::Result { name, fields } = r else {
            continue;
        };
        for (key, value) in fields {
            let v = match value {
                Value::F64(v) => *v,
                Value::U64(v) => *v as f64,
                Value::I64(v) => *v as f64,
                Value::Bool(b) => {
                    if *b {
                        1.0
                    } else {
                        0.0
                    }
                }
                Value::Str(_) => continue,
            };
            let metric = format!("{name}.{key}");
            if seen.insert(metric.clone()) {
                out.push((metric, v));
            }
        }
    }
    out
}

/// Appends one record to the ledger at `path`, creating it if absent.
pub fn append_record(path: &Path, record: &LedgerRecord) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(record.to_json().as_bytes())?;
    file.write_all(b"\n")?;
    file.flush()
}

/// Parses ledger text, skipping torn/foreign lines.
pub fn parse_ledger(text: &str) -> Vec<LedgerRecord> {
    text.lines().filter_map(LedgerRecord::parse).collect()
}

/// Resolves the ledger path for a run: [`LEDGER_ENV`] wins (empty =
/// disabled), otherwise [`DEFAULT_LEDGER_PATH`] when its parent
/// directory exists in the current working directory (i.e. the run was
/// launched from the repo root).
pub fn default_ledger_path() -> Option<std::path::PathBuf> {
    match std::env::var(LEDGER_ENV) {
        Ok(path) if path.is_empty() => None,
        Ok(path) => Some(std::path::PathBuf::from(path)),
        Err(_) => {
            let path = std::path::PathBuf::from(DEFAULT_LEDGER_PATH);
            path.parent()
                .is_some_and(|dir| dir.is_dir())
                .then_some(path)
        }
    }
}

/// Which direction of change counts as a regression for a metric key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better (speedups, utilization, coverage ratios).
    HigherBetter,
    /// Smaller is better (wall times, overhead percentages).
    LowerBetter,
    /// Informational only — never gated (counts, flags, cores).
    Ungated,
}

/// Classifies a metric key by suffix convention. The conventions match
/// what the ablation bins emit; anything unrecognised is ungated so new
/// metrics never fail the gate by accident.
pub fn metric_direction(key: &str) -> Direction {
    if key.ends_with("speedup") || key.ends_with("utilization") || key.ends_with("ratio") {
        Direction::HigherBetter
    } else if key.ends_with("overhead_pct") || key.ends_with("_secs") {
        Direction::LowerBetter
    } else {
        Direction::Ungated
    }
}

/// Gate tolerances. Ratio-style metrics regress when they move against
/// their direction by more than `tolerance_pct` percent; `*overhead_pct`
/// metrics compare in absolute percentage points (`pct_point_slack`),
/// because relative change on a near-zero percentage is noise; wall-time
/// (`*_secs`) metrics are only gated when `gate_secs` is set, since raw
/// seconds do not transfer across machines.
#[derive(Debug, Clone, Copy)]
pub struct GatePolicy {
    pub tolerance_pct: f64,
    pub pct_point_slack: f64,
    pub gate_secs: bool,
}

impl Default for GatePolicy {
    fn default() -> Self {
        Self {
            tolerance_pct: 35.0,
            pct_point_slack: 5.0,
            gate_secs: false,
        }
    }
}

/// One metric's comparison verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    pub bin: String,
    pub metric: String,
    pub baseline: f64,
    pub current: f64,
    /// Signed percent change relative to baseline (positive = current
    /// larger).
    pub change_pct: f64,
    pub verdict: Verdict,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Ok,
    Regressed,
    /// Not gated: informational metric, secs gating off, or the two
    /// records ran on different core counts.
    Skipped,
}

/// Compares one bin's current record against its baseline. When both
/// records carry a `*.cores` metric and they disagree, every comparison
/// is skipped — speedup baselines from a many-core machine are not
/// meaningful on a laptop.
pub fn compare_records(
    baseline: &LedgerRecord,
    current: &LedgerRecord,
    policy: &GatePolicy,
) -> Vec<Comparison> {
    let cores_of = |r: &LedgerRecord| {
        r.metrics
            .iter()
            .find(|(k, _)| k.ends_with(".cores") || k == "cores")
            .map(|(_, v)| *v)
    };
    let cores_mismatch = match (cores_of(baseline), cores_of(current)) {
        (Some(a), Some(b)) => a != b,
        _ => false,
    };
    let mut out = Vec::new();
    for (key, base) in &baseline.metrics {
        let Some(cur) = current.metric(key) else {
            continue;
        };
        if !base.is_finite() || !cur.is_finite() {
            continue;
        }
        let change_pct = if *base != 0.0 {
            100.0 * (cur - base) / base.abs()
        } else if cur == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
        let direction = metric_direction(key);
        let verdict = if cores_mismatch {
            Verdict::Skipped
        } else {
            match direction {
                Direction::Ungated => Verdict::Skipped,
                Direction::LowerBetter if !policy.gate_secs && key.ends_with("_secs") => {
                    Verdict::Skipped
                }
                Direction::HigherBetter => {
                    if change_pct < -policy.tolerance_pct {
                        Verdict::Regressed
                    } else {
                        Verdict::Ok
                    }
                }
                // Overhead percentages gate on absolute percentage-point
                // movement: 0.4 % → 1.0 % is +150 % relative but well
                // inside the noise of a small tax.
                Direction::LowerBetter if key.ends_with("overhead_pct") => {
                    if cur - base > policy.pct_point_slack {
                        Verdict::Regressed
                    } else {
                        Verdict::Ok
                    }
                }
                Direction::LowerBetter => {
                    if change_pct > policy.tolerance_pct {
                        Verdict::Regressed
                    } else {
                        Verdict::Ok
                    }
                }
            }
        };
        out.push(Comparison {
            bin: current.bin.clone(),
            metric: key.clone(),
            baseline: *base,
            current: cur,
            change_pct,
            verdict,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields;

    #[test]
    fn record_round_trips() {
        let rec = LedgerRecord {
            bin: "abl13_campaign_observatory".into(),
            baseline: true,
            metrics: vec![
                ("observatory.overhead_pct".into(), 1.25),
                ("observatory.points".into(), 12.0),
            ],
        };
        let line = rec.to_json();
        assert!(line.starts_with("{\"type\":\"ledger\",\"schema\":1"));
        assert_eq!(LedgerRecord::parse(&line), Some(rec));
        assert_eq!(LedgerRecord::parse("{\"type\":\"result\"}"), None);
        assert_eq!(LedgerRecord::parse("{\"type\":\"ledger\",\"bin"), None);
    }

    #[test]
    fn empty_metrics_round_trip() {
        let rec = LedgerRecord {
            bin: "x".into(),
            baseline: false,
            metrics: vec![],
        };
        assert_eq!(LedgerRecord::parse(&rec.to_json()), Some(rec));
    }

    #[test]
    fn metrics_flatten_result_records() {
        let records = vec![
            Record::Run {
                bin: "b".into(),
                schema: 1,
            },
            Record::Result {
                name: "speedup".into(),
                fields: fields![threads = 4u64, ratio = 2.5, ok = true, label = "x"],
            },
        ];
        let metrics = metrics_from_records(&records);
        assert_eq!(
            metrics,
            vec![
                ("speedup.threads".into(), 4.0),
                ("speedup.ratio".into(), 2.5),
                ("speedup.ok".into(), 1.0),
            ]
        );
    }

    #[test]
    fn directions_follow_suffix_convention() {
        assert_eq!(metric_direction("abl12.speedup"), Direction::HigherBetter);
        assert_eq!(metric_direction("x.utilization"), Direction::HigherBetter);
        assert_eq!(metric_direction("x.overhead_pct"), Direction::LowerBetter);
        assert_eq!(metric_direction("x.wall_secs"), Direction::LowerBetter);
        assert_eq!(metric_direction("x.points"), Direction::Ungated);
    }

    #[test]
    fn gate_flags_real_regressions_only() {
        let base = LedgerRecord {
            bin: "b".into(),
            baseline: true,
            metrics: vec![
                ("s.speedup".into(), 3.0),
                ("s.overhead_pct".into(), 2.0),
                ("s.wall_secs".into(), 10.0),
                ("s.points".into(), 8.0),
            ],
        };
        let mut cur = base.clone();
        cur.baseline = false;
        let policy = GatePolicy::default();
        let cmp = compare_records(&base, &cur, &policy);
        assert!(cmp.iter().all(|c| c.verdict != Verdict::Regressed));

        cur.metrics[0].1 = 1.0; // speedup 3.0 -> 1.0: -67%
        let cmp = compare_records(&base, &cur, &policy);
        assert_eq!(
            cmp.iter()
                .filter(|c| c.verdict == Verdict::Regressed)
                .map(|c| c.metric.as_str())
                .collect::<Vec<_>>(),
            vec!["s.speedup"]
        );
        // Overhead percentages move in absolute points: +2.5 points is
        // fine (even though it is +125 % relative), +6 points is not.
        cur.metrics[0].1 = 3.0;
        cur.metrics[1].1 = 4.5;
        let cmp = compare_records(&base, &cur, &policy);
        assert!(cmp.iter().all(|c| c.verdict != Verdict::Regressed));
        cur.metrics[1].1 = 8.5;
        let cmp = compare_records(&base, &cur, &policy);
        assert!(cmp
            .iter()
            .any(|c| c.metric == "s.overhead_pct" && c.verdict == Verdict::Regressed));

        // wall_secs is not gated by default even when it explodes.
        cur.metrics[1].1 = 2.0;
        cur.metrics[2].1 = 100.0;
        let cmp = compare_records(&base, &cur, &policy);
        assert!(cmp.iter().all(|c| c.verdict != Verdict::Regressed));
        let strict = GatePolicy {
            gate_secs: true,
            ..policy
        };
        let cmp = compare_records(&base, &cur, &strict);
        assert!(cmp
            .iter()
            .any(|c| c.metric == "s.wall_secs" && c.verdict == Verdict::Regressed));
    }

    #[test]
    fn core_count_mismatch_skips_bin() {
        let base = LedgerRecord {
            bin: "b".into(),
            baseline: true,
            metrics: vec![("s.speedup".into(), 3.0), ("s.cores".into(), 16.0)],
        };
        let mut cur = base.clone();
        cur.metrics[0].1 = 1.0;
        cur.metrics[1].1 = 2.0;
        let cmp = compare_records(&base, &cur, &GatePolicy::default());
        assert!(cmp.iter().all(|c| c.verdict == Verdict::Skipped));
    }

    #[test]
    fn ledger_append_and_parse() {
        let dir = std::env::temp_dir().join("pllbist_ledger_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let _ = std::fs::remove_file(&path);
        for baseline in [true, false] {
            append_record(
                &path,
                &LedgerRecord {
                    bin: "demo".into(),
                    baseline,
                    metrics: vec![("r.ratio".into(), 1.0)],
                },
            )
            .unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let rows = parse_ledger(&text);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].baseline);
        assert!(!rows[1].baseline);
        std::fs::remove_file(&path).unwrap();
    }
}
