//! Lock-free campaign progress accounting.
//!
//! A [`ProgressBoard`] is shared (by reference or `Arc`) between the
//! work-stealing workers of a campaign and any number of observers (the
//! status server, the `--progress` terminal line, stall watchdogs).
//! Every mutation is a relaxed atomic increment, so the board is safe to
//! update from inside point closures without serialising workers, and a
//! [`CampaignProgress`] snapshot can be taken at any moment without
//! stopping the run.
//!
//! The board is pure observation: it never feeds back into scheduling or
//! physics, which is what keeps healthy runs bitwise identical whether
//! or not a board is attached (the no-steering contract, see
//! `DESIGN.md`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Geometric wall-time buckets for completed points: `WALL_BUCKETS`
/// decades-ish spanning [`WALL_LO_SECS`, `WALL_HI_SECS`). Used only for
/// the median estimate that drives ETA and stall thresholds, so coarse
/// resolution (~19% per bucket) is plenty.
const WALL_BUCKETS: usize = 128;
const WALL_LO_SECS: f64 = 1e-6;
const WALL_HI_SECS: f64 = 1e4;

struct WorkerCell {
    claimed: AtomicU64,
    done: AtomicU64,
    busy_ns: AtomicU64,
    /// Nanoseconds since board epoch at the last heartbeat; `u64::MAX`
    /// until the worker first checks in.
    heartbeat_ns: AtomicU64,
}

impl WorkerCell {
    fn new() -> Self {
        Self {
            claimed: AtomicU64::new(0),
            done: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            heartbeat_ns: AtomicU64::new(u64::MAX),
        }
    }
}

/// Shared, lock-free progress accounting for one campaign run.
pub struct ProgressBoard {
    epoch: Instant,
    total: u64,
    done: AtomicU64,
    ok: AtomicU64,
    quarantined: AtomicU64,
    skipped: AtomicU64,
    retries: AtomicU64,
    /// Incident tallies keyed by `SweepPointError::kind()` tags,
    /// registered up front so updates stay allocation-free.
    incident_kinds: Vec<(&'static str, AtomicU64)>,
    incidents_other: AtomicU64,
    workers: Vec<WorkerCell>,
    wall_hist: Vec<AtomicU64>,
}

impl ProgressBoard {
    /// Creates a board for `total` points executed by `workers` workers.
    /// `incident_kinds` registers the error-kind tags to tally (unknown
    /// kinds at runtime land in an `other` bucket).
    pub fn new(total: usize, workers: usize, incident_kinds: &[&'static str]) -> Self {
        Self {
            epoch: Instant::now(),
            total: total as u64,
            done: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            incident_kinds: incident_kinds
                .iter()
                .map(|k| (*k, AtomicU64::new(0)))
                .collect(),
            incidents_other: AtomicU64::new(0),
            workers: (0..workers.max(1)).map(|_| WorkerCell::new()).collect(),
            wall_hist: (0..WALL_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Nanoseconds of monotonic time since the board was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    /// Points accounted for so far (fresh completions plus skipped
    /// already-complete points). Monotonically non-decreasing.
    pub fn done_count(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Marks `worker` alive without changing any counters.
    pub fn heartbeat(&self, worker: usize) {
        if let Some(cell) = self.workers.get(worker) {
            cell.heartbeat_ns.store(self.now_ns(), Ordering::Relaxed);
        }
    }

    /// A worker claimed a point off the shared queue.
    pub fn point_claimed(&self, worker: usize) {
        if let Some(cell) = self.workers.get(worker) {
            cell.claimed.fetch_add(1, Ordering::Relaxed);
        }
        self.heartbeat(worker);
    }

    /// A worker finished a point: `ok` is false for quarantined points,
    /// `wall_secs` is the point's wall time including retries.
    pub fn point_done(&self, worker: usize, ok: bool, wall_secs: f64) {
        self.done.fetch_add(1, Ordering::Relaxed);
        if ok {
            self.ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(cell) = self.workers.get(worker) {
            cell.done.fetch_add(1, Ordering::Relaxed);
            cell.busy_ns
                .fetch_add((wall_secs.max(0.0) * 1e9) as u64, Ordering::Relaxed);
        }
        if let Some(bucket) = self.wall_hist.get(wall_bucket(wall_secs)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.heartbeat(worker);
    }

    /// Coarse bulk accounting for bins that only know per-batch totals.
    pub fn points_done_bulk(&self, worker: usize, ok: u64, quarantined: u64) {
        self.done.fetch_add(ok + quarantined, Ordering::Relaxed);
        self.ok.fetch_add(ok, Ordering::Relaxed);
        self.quarantined.fetch_add(quarantined, Ordering::Relaxed);
        if let Some(cell) = self.workers.get(worker) {
            cell.done.fetch_add(ok + quarantined, Ordering::Relaxed);
        }
        self.heartbeat(worker);
    }

    /// Points satisfied from a resumed campaign log rather than executed.
    pub fn points_skipped(&self, n: usize) {
        self.done.fetch_add(n as u64, Ordering::Relaxed);
        self.skipped.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Tallies a supervisor incident by error-kind tag. `retried` marks
    /// incidents that led to a retry rather than a quarantine.
    pub fn incident(&self, kind: &str, retried: bool) {
        if retried {
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
        match self.incident_kinds.iter().find(|(k, _)| *k == kind) {
            Some((_, count)) => count.fetch_add(1, Ordering::Relaxed),
            None => self.incidents_other.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Median wall time of completed points, from the geometric
    /// histogram; `None` until at least one point has finished.
    pub fn median_point_secs(&self) -> Option<f64> {
        let counts: Vec<u64> = self
            .wall_hist
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return None;
        }
        let target = n.div_ceil(2);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_mid_secs(i));
            }
        }
        None
    }

    /// Seconds since the most recent heartbeat from **any** worker;
    /// falls back to time since board creation when no worker has
    /// checked in yet. This is the stall-detection signal: a healthy
    /// campaign always has some worker heartbeating.
    pub fn last_heartbeat_age_secs(&self) -> f64 {
        let now = self.now_ns();
        let newest = self
            .workers
            .iter()
            .map(|c| c.heartbeat_ns.load(Ordering::Relaxed))
            .filter(|&ns| ns != u64::MAX)
            .max();
        match newest {
            Some(ns) => (now.saturating_sub(ns)) as f64 / 1e9,
            None => now as f64 / 1e9,
        }
    }

    /// Takes a consistent-enough snapshot for display. Counters are read
    /// individually with relaxed ordering, so totals can be off by a
    /// point mid-update — fine for monitoring, never used for control.
    pub fn snapshot(&self) -> CampaignProgress {
        let now_ns = self.now_ns();
        let done = self.done.load(Ordering::Relaxed);
        let median = self.median_point_secs();
        let workers: Vec<WorkerProgress> = self
            .workers
            .iter()
            .enumerate()
            .map(|(index, cell)| {
                let hb = cell.heartbeat_ns.load(Ordering::Relaxed);
                let busy_secs = cell.busy_ns.load(Ordering::Relaxed) as f64 / 1e9;
                let elapsed = now_ns as f64 / 1e9;
                WorkerProgress {
                    index,
                    claimed: cell.claimed.load(Ordering::Relaxed),
                    done: cell.done.load(Ordering::Relaxed),
                    busy_secs,
                    utilization: if elapsed > 0.0 {
                        (busy_secs / elapsed).min(1.0)
                    } else {
                        0.0
                    },
                    heartbeat_age_secs: (hb != u64::MAX)
                        .then(|| now_ns.saturating_sub(hb) as f64 / 1e9),
                }
            })
            .collect();
        let remaining = self.total.saturating_sub(done);
        let eta_secs = median.map(|m| remaining as f64 * m / self.workers.len().max(1) as f64);
        let mut incidents: Vec<(String, u64)> = self
            .incident_kinds
            .iter()
            .map(|(k, c)| ((*k).to_string(), c.load(Ordering::Relaxed)))
            .collect();
        let other = self.incidents_other.load(Ordering::Relaxed);
        if other > 0 {
            incidents.push(("other".to_string(), other));
        }
        CampaignProgress {
            total: self.total,
            done,
            ok: self.ok.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            elapsed_secs: now_ns as f64 / 1e9,
            median_point_secs: median,
            eta_secs,
            incidents,
            workers,
        }
    }
}

fn wall_bucket(secs: f64) -> usize {
    if !secs.is_finite() || secs <= WALL_LO_SECS {
        return 0;
    }
    let span = (WALL_HI_SECS / WALL_LO_SECS).ln();
    let frac = (secs / WALL_LO_SECS).ln() / span;
    ((frac * WALL_BUCKETS as f64) as usize).min(WALL_BUCKETS - 1)
}

fn bucket_mid_secs(bucket: usize) -> f64 {
    let span = (WALL_HI_SECS / WALL_LO_SECS).ln();
    let frac = (bucket as f64 + 0.5) / WALL_BUCKETS as f64;
    WALL_LO_SECS * (frac * span).exp()
}

/// Per-worker slice of a [`CampaignProgress`] snapshot.
#[derive(Debug, Clone)]
pub struct WorkerProgress {
    pub index: usize,
    /// Points claimed off the shared queue (includes in-flight work).
    pub claimed: u64,
    /// Points this worker finished.
    pub done: u64,
    /// Accumulated wall time spent inside point closures.
    pub busy_secs: f64,
    /// `busy_secs / elapsed`, clamped to [0, 1].
    pub utilization: f64,
    /// Seconds since this worker's last heartbeat; `None` before its
    /// first claim.
    pub heartbeat_age_secs: Option<f64>,
}

/// Point-in-time snapshot of a campaign, cheap to take and to render.
#[derive(Debug, Clone)]
pub struct CampaignProgress {
    pub total: u64,
    /// Points accounted for: fresh ok + fresh quarantined + skipped.
    pub done: u64,
    pub ok: u64,
    pub quarantined: u64,
    /// Points satisfied from a resumed log without re-execution.
    pub skipped: u64,
    /// Supervisor retries across all points.
    pub retries: u64,
    pub elapsed_secs: f64,
    /// Median wall time of completed points (`None` until one exists).
    pub median_point_secs: Option<f64>,
    /// `remaining * median / workers`; `None` until a median exists.
    pub eta_secs: Option<f64>,
    /// `(error_kind, count)` tallies, in registration order.
    pub incidents: Vec<(String, u64)>,
    pub workers: Vec<WorkerProgress>,
}

impl CampaignProgress {
    /// Fraction complete in [0, 1].
    pub fn completion(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.done as f64 / self.total as f64
        }
    }

    /// Body of the `/progress` endpoint: one flat JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"type\":\"progress\"");
        push_u64(&mut s, "total", self.total);
        push_u64(&mut s, "done", self.done);
        push_u64(&mut s, "ok", self.ok);
        push_u64(&mut s, "quarantined", self.quarantined);
        push_u64(&mut s, "skipped", self.skipped);
        push_u64(&mut s, "retries", self.retries);
        push_f64(&mut s, "completion", self.completion());
        push_f64(&mut s, "elapsed_secs", self.elapsed_secs);
        push_opt_f64(&mut s, "median_point_secs", self.median_point_secs);
        push_opt_f64(&mut s, "eta_secs", self.eta_secs);
        push_u64(&mut s, "workers", self.workers.len() as u64);
        s.push('}');
        s
    }

    /// Body of the `/workers` endpoint.
    pub fn workers_json(&self) -> String {
        let mut s = String::with_capacity(128 + 96 * self.workers.len());
        s.push_str("{\"type\":\"workers\",\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"index\":");
            s.push_str(&w.index.to_string());
            push_u64(&mut s, "claimed", w.claimed);
            push_u64(&mut s, "done", w.done);
            push_f64(&mut s, "busy_secs", w.busy_secs);
            push_f64(&mut s, "utilization", w.utilization);
            push_opt_f64(&mut s, "heartbeat_age_secs", w.heartbeat_age_secs);
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Body of the `/incidents` endpoint.
    pub fn incidents_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"type\":\"incidents\"");
        push_u64(&mut s, "retries", self.retries);
        push_u64(&mut s, "quarantined", self.quarantined);
        s.push_str(",\"by_kind\":{");
        for (i, (kind, count)) in self.incidents.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            s.push_str(kind);
            s.push_str("\":");
            s.push_str(&count.to_string());
        }
        s.push_str("}}");
        s
    }

    /// Single-line terminal rendering for `--progress`, padded so that
    /// successive `\r` rewrites fully overwrite each other.
    pub fn render_line(&self, label: &str) -> String {
        let mut line = format!(
            "[{label}] {}/{} ({:.0}%) ok={} quar={} retry={} skip={}",
            self.done,
            self.total,
            100.0 * self.completion(),
            self.ok,
            self.quarantined,
            self.retries,
            self.skipped,
        );
        if let Some(eta) = self.eta_secs {
            line.push_str(&format!(" eta={:.0}s", eta));
        }
        line.push_str(&format!(" t={:.0}s", self.elapsed_secs));
        let width = 76;
        if line.len() < width {
            line.push_str(&" ".repeat(width - line.len()));
        }
        line
    }
}

fn push_u64(s: &mut String, key: &str, v: u64) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&v.to_string());
}

fn push_f64(s: &mut String, key: &str, v: f64) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    if v.is_finite() {
        s.push_str(&format!("{v:.6}"));
    } else {
        s.push_str("null");
    }
}

fn push_opt_f64(s: &mut String, key: &str, v: Option<f64>) {
    match v {
        Some(v) => push_f64(s, key, v),
        None => {
            s.push_str(",\"");
            s.push_str(key);
            s.push_str("\":null");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{json_f64_field, json_u64_field};

    #[test]
    fn counts_accumulate_and_snapshot() {
        let board = ProgressBoard::new(10, 2, &["degenerate_fit", "worker_panic"]);
        board.points_skipped(3);
        board.point_claimed(0);
        board.point_done(0, true, 0.01);
        board.point_claimed(1);
        board.incident("degenerate_fit", true);
        board.incident("degenerate_fit", false);
        board.incident("martian", false);
        board.point_done(1, false, 0.02);
        let snap = board.snapshot();
        assert_eq!(snap.total, 10);
        assert_eq!(snap.done, 5);
        assert_eq!(snap.ok, 1);
        assert_eq!(snap.quarantined, 1);
        assert_eq!(snap.skipped, 3);
        assert_eq!(snap.retries, 1);
        assert_eq!(
            snap.incidents,
            vec![
                ("degenerate_fit".to_string(), 2),
                ("worker_panic".to_string(), 0),
                ("other".to_string(), 1),
            ]
        );
        assert_eq!(snap.workers.len(), 2);
        assert_eq!(snap.workers[0].claimed, 1);
        assert_eq!(snap.workers[0].done, 1);
        assert!(snap.workers[0].heartbeat_age_secs.is_some());
        assert!(snap.median_point_secs.is_some());
        assert!(snap.eta_secs.is_some());
    }

    #[test]
    fn median_tracks_bucket_scale() {
        let board = ProgressBoard::new(100, 1, &[]);
        for _ in 0..9 {
            board.point_done(0, true, 0.010);
        }
        let m = board.median_point_secs().unwrap_or(0.0);
        assert!((0.005..0.02).contains(&m), "median {m} not near 10ms");
    }

    #[test]
    fn json_bodies_parse_back() {
        let board = ProgressBoard::new(4, 2, &["lock_timeout"]);
        board.point_claimed(0);
        board.point_done(0, true, 0.001);
        let snap = board.snapshot();
        let progress = snap.to_json();
        assert_eq!(json_u64_field(&progress, "total"), Some(4));
        assert_eq!(json_u64_field(&progress, "done"), Some(1));
        assert!(json_f64_field(&progress, "elapsed_secs").is_some());
        let workers = snap.workers_json();
        assert_eq!(json_u64_field(&workers, "claimed"), Some(1));
        let incidents = snap.incidents_json();
        assert_eq!(json_u64_field(&incidents, "lock_timeout"), Some(0));
        assert!(!snap.render_line("test").is_empty());
    }

    #[test]
    fn heartbeat_age_prefers_most_recent_worker() {
        let board = ProgressBoard::new(4, 3, &[]);
        assert!(board.last_heartbeat_age_secs() >= 0.0);
        board.heartbeat(2);
        assert!(board.last_heartbeat_age_secs() < 1.0);
    }
}
