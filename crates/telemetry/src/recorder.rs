//! Flight recorder: a fixed-size ring of recent per-point campaign
//! events for post-mortem timelines.
//!
//! The recorder keeps the last `capacity` events (claim, done, retry,
//! quarantine, watchdog trip, flush, stall markers) with monotonic
//! timestamps. It is dumped to a sidecar JSONL file on stall detection,
//! on panic/abort (via the owning observer's `Drop`), and on clean
//! `finish()` — so a killed campaign always leaves a parseable tail of
//! what the workers were doing.
//!
//! Events are rare (a handful per point, never per simulation step), so
//! a mutex-guarded ring is cheap; the lock tolerates poisoning because
//! dumps frequently happen on panic paths.

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use crate::json::{json_str_field, json_u64_field};

/// Flight-recorder event kinds. `as_str` values are the on-disk tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// Worker claimed a point off the shared queue.
    Claim,
    /// Point finished (ok or quarantined; see `detail`).
    Done,
    /// Supervisor retried a point after a contained incident.
    Retry,
    /// Supervisor quarantined a point.
    Quarantine,
    /// A guardrail watchdog tripped (divergence / step budget).
    WatchdogTrip,
    /// Campaign log flushed the point's result line.
    Flush,
    /// Stall detector fired (no worker heartbeat for too long).
    Stall,
    /// Lifecycle note (campaign start/finish/abort markers).
    Note,
    /// A crash-only service restarted an interrupted job.
    Restart,
    /// Graceful drain: the service stopped accepting work and is
    /// finishing what it holds.
    Drain,
}

impl FlightEventKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            FlightEventKind::Claim => "claim",
            FlightEventKind::Done => "done",
            FlightEventKind::Retry => "retry",
            FlightEventKind::Quarantine => "quarantine",
            FlightEventKind::WatchdogTrip => "watchdog_trip",
            FlightEventKind::Flush => "flush",
            FlightEventKind::Stall => "stall",
            FlightEventKind::Note => "note",
            FlightEventKind::Restart => "restart",
            FlightEventKind::Drain => "drain",
        }
    }

    pub fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "claim" => FlightEventKind::Claim,
            "done" => FlightEventKind::Done,
            "retry" => FlightEventKind::Retry,
            "quarantine" => FlightEventKind::Quarantine,
            "watchdog_trip" => FlightEventKind::WatchdogTrip,
            "flush" => FlightEventKind::Flush,
            "stall" => FlightEventKind::Stall,
            "note" => FlightEventKind::Note,
            "restart" => FlightEventKind::Restart,
            "drain" => FlightEventKind::Drain,
            _ => return None,
        })
    }
}

/// One recorded event. `seq` is a global monotone sequence number (so a
/// dump shows how many events were dropped by the ring), `t_ns` is
/// monotonic nanoseconds since the recorder was created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    pub seq: u64,
    pub t_ns: u64,
    pub worker: u64,
    /// Point index, or `u64::MAX` for events not tied to a point.
    pub point: u64,
    pub kind: FlightEventKind,
    pub detail: String,
}

impl FlightEvent {
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"type\":\"flight\",\"seq\":");
        s.push_str(&self.seq.to_string());
        s.push_str(",\"t_ns\":");
        s.push_str(&self.t_ns.to_string());
        s.push_str(",\"worker\":");
        s.push_str(&self.worker.to_string());
        s.push_str(",\"point\":");
        s.push_str(&self.point.to_string());
        s.push_str(",\"kind\":\"");
        s.push_str(self.kind.as_str());
        s.push_str("\",\"detail\":");
        crate::record::write_json_str(&mut s, &self.detail);
        s.push('}');
        s
    }

    /// Parses one dump line; `None` for headers, torn lines, or foreign
    /// record types.
    pub fn parse(line: &str) -> Option<Self> {
        if json_str_field(line, "type").as_deref() != Some("flight") {
            return None;
        }
        Some(FlightEvent {
            seq: json_u64_field(line, "seq")?,
            t_ns: json_u64_field(line, "t_ns")?,
            worker: json_u64_field(line, "worker")?,
            point: json_u64_field(line, "point")?,
            kind: FlightEventKind::from_tag(&json_str_field(line, "kind")?)?,
            detail: json_str_field(line, "detail")?,
        })
    }
}

/// Sentinel `point` value for events not tied to a specific point.
pub const NO_POINT: u64 = u64::MAX;

struct RecorderState {
    next_seq: u64,
    ring: VecDeque<FlightEvent>,
}

/// Fixed-capacity ring of recent [`FlightEvent`]s.
pub struct FlightRecorder {
    epoch: Instant,
    capacity: usize,
    state: Mutex<RecorderState>,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            epoch: Instant::now(),
            capacity,
            state: Mutex::new(RecorderState {
                next_seq: 0,
                ring: VecDeque::with_capacity(capacity),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RecorderState> {
        // Dumps run on panic paths; a poisoned ring is still readable.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Appends an event, evicting the oldest when the ring is full.
    pub fn record(&self, worker: usize, point: u64, kind: FlightEventKind, detail: &str) {
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut state = self.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.ring.len() == self.capacity {
            state.ring.pop_front();
        }
        state.ring.push_back(FlightEvent {
            seq,
            t_ns,
            worker: worker as u64,
            point,
            kind,
            detail: detail.to_string(),
        });
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (including those evicted).
    pub fn total_recorded(&self) -> u64 {
        self.lock().next_seq
    }

    /// Snapshot of the ring contents, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.lock().ring.iter().cloned().collect()
    }

    /// Renders the ring as JSONL: a header line then one line per event.
    /// `reason` says why the dump happened (finish/stall/abort).
    pub fn dump_jsonl(&self, reason: &str) -> String {
        let state = self.lock();
        let mut out = String::with_capacity(64 + 96 * state.ring.len());
        out.push_str("{\"type\":\"flight_header\",\"schema\":1,\"reason\":");
        crate::record::write_json_str(&mut out, reason);
        out.push_str(",\"recorded\":");
        out.push_str(&state.next_seq.to_string());
        out.push_str(",\"kept\":");
        out.push_str(&state.ring.len().to_string());
        out.push_str("}\n");
        for ev in &state.ring {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes [`Self::dump_jsonl`] to `path`, truncating any prior dump.
    pub fn dump_to(&self, path: &Path, reason: &str) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.dump_jsonl(reason).as_bytes())?;
        file.flush()
    }
}

/// Parses a dump produced by [`FlightRecorder::dump_jsonl`], returning
/// the events in order. Lines that fail to parse (e.g. a torn tail) are
/// skipped; a dump with a valid header and zero torn event lines
/// round-trips exactly.
pub fn parse_dump(text: &str) -> Vec<FlightEvent> {
    text.lines().filter_map(FlightEvent::parse).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_seq() {
        let rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.record(0, i, FlightEventKind::Claim, "c");
        }
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(rec.total_recorded(), 5);
    }

    #[test]
    fn dump_round_trips() {
        let rec = FlightRecorder::new(8);
        rec.record(1, 7, FlightEventKind::Retry, "attempt 2: \"diverged\"");
        rec.record(1, 7, FlightEventKind::Quarantine, "gave up\nafter 3");
        rec.record(0, NO_POINT, FlightEventKind::Note, "finish");
        let dump = rec.dump_jsonl("finish");
        assert!(dump.starts_with("{\"type\":\"flight_header\""));
        let parsed = parse_dump(&dump);
        assert_eq!(parsed, rec.events());
        assert_eq!(parsed[0].kind, FlightEventKind::Retry);
        assert_eq!(parsed[0].detail, "attempt 2: \"diverged\"");
        assert_eq!(parsed[1].detail, "gave up\nafter 3");
    }

    #[test]
    fn torn_dump_still_parses_prefix() {
        let rec = FlightRecorder::new(8);
        rec.record(0, 1, FlightEventKind::Claim, "");
        rec.record(0, 1, FlightEventKind::Done, "ok");
        let dump = rec.dump_jsonl("stall");
        let cut = dump.len() - 12;
        let parsed = parse_dump(&dump[..cut]);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].kind, FlightEventKind::Claim);
    }

    #[test]
    fn timestamps_are_monotone() {
        let rec = FlightRecorder::new(4);
        rec.record(0, 0, FlightEventKind::Claim, "");
        rec.record(0, 0, FlightEventKind::Done, "");
        let ev = rec.events();
        assert!(ev[0].t_ns <= ev[1].t_ns);
    }
}
