//! Machine-readable run reporting for bench binaries.
//!
//! Every `crates/bench` binary prints its human tables to stdout exactly
//! as before; a [`RunReport`] additionally gathers [`Record`]s and, when
//! the user passed `--jsonl <path>`, writes them as JSON lines with a
//! `run` header so downstream tooling can parse results without
//! scraping stdout.

use std::io::Write as _;

use crate::record::{Fields, Record, SCHEMA_VERSION};
use crate::{Collector, SinkConfig, TelemetryConfig};

/// Accumulates a bench run's records and flushes them to the configured
/// sink on [`finish`](Self::finish).
pub struct RunReport {
    bin: &'static str,
    jsonl_path: Option<String>,
    ledger_path: Option<std::path::PathBuf>,
    records: Vec<Record>,
}

impl RunReport {
    /// Creates a report for `bin`, reading `--jsonl <path>` from the
    /// process arguments (all other arguments are ignored, so binaries
    /// with their own flags keep working). A `--jsonl` run also appends
    /// a compact row to the bench regression ledger (see
    /// [`crate::ledger`]) when a ledger path resolves.
    pub fn from_args(bin: &'static str) -> Self {
        let mut report = Self::new(bin, jsonl_path_from(std::env::args().skip(1)));
        if report.wants_jsonl() {
            report.ledger_path = crate::ledger::default_ledger_path();
        }
        report
    }

    /// Creates a report with an explicit JSONL destination (`None` =
    /// records are gathered but only written if a path is set later
    /// logic-free; useful in tests). No ledger append unless
    /// [`set_ledger`](Self::set_ledger) is called.
    pub fn new(bin: &'static str, jsonl_path: Option<String>) -> Self {
        Self {
            bin,
            jsonl_path,
            ledger_path: None,
            records: Vec::new(),
        }
    }

    /// Points this report's ledger append at an explicit path (tests,
    /// custom harnesses). `None` disables the append.
    pub fn set_ledger(&mut self, path: Option<std::path::PathBuf>) {
        self.ledger_path = path;
    }

    /// Telemetry knob for settings structs: enabled iff the run wants
    /// JSONL output, pointing at the same path.
    pub fn telemetry_config(&self) -> TelemetryConfig {
        match &self.jsonl_path {
            Some(path) => TelemetryConfig {
                enabled: true,
                sink: SinkConfig::JsonlPath(path.clone()),
                sample_every: 1,
            },
            None => TelemetryConfig::disabled(),
        }
    }

    /// Whether `--jsonl` was requested.
    pub fn wants_jsonl(&self) -> bool {
        self.jsonl_path.is_some()
    }

    /// Appends a headline result record.
    pub fn result(&mut self, name: &str, fields: Fields) {
        self.records.push(Record::Result {
            name: name.to_string(),
            fields,
        });
    }

    /// Appends pre-built records (e.g. a sweep's drained telemetry).
    pub fn extend(&mut self, records: Vec<Record>) {
        self.records.extend(records);
    }

    /// Drains a collector into this report.
    pub fn absorb(&mut self, collector: &Collector) {
        self.records.extend(collector.drain());
    }

    /// Writes the `run` header plus all records to the JSONL path (if
    /// any), then appends this run's flattened result metrics to the
    /// bench ledger (if a ledger path is set and any metrics exist).
    /// Without `--jsonl` this is a no-op success.
    pub fn finish(self) -> std::io::Result<()> {
        let Some(path) = &self.jsonl_path else {
            return Ok(());
        };
        let mut out = Vec::new();
        let header = Record::Run {
            bin: self.bin.to_string(),
            schema: SCHEMA_VERSION,
        };
        out.extend_from_slice(header.to_json().as_bytes());
        out.push(b'\n');
        for r in &self.records {
            out.extend_from_slice(r.to_json().as_bytes());
            out.push(b'\n');
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(&out)?;
        file.flush()?;
        if let Some(ledger) = &self.ledger_path {
            let metrics = crate::ledger::metrics_from_records(&self.records);
            if !metrics.is_empty() {
                crate::ledger::append_record(
                    ledger,
                    &crate::ledger::LedgerRecord {
                        bin: self.bin.to_string(),
                        baseline: false,
                        metrics,
                    },
                )?;
            }
        }
        Ok(())
    }
}

fn jsonl_path_from(args: impl Iterator<Item = String>) -> Option<String> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg == "--jsonl" {
            return args.next();
        }
        if let Some(path) = arg.strip_prefix("--jsonl=") {
            return Some(path.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields;

    #[test]
    fn jsonl_flag_parses_both_forms() {
        let argv = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            jsonl_path_from(argv(&["--threads", "4", "--jsonl", "/tmp/x.jsonl"]).into_iter()),
            Some("/tmp/x.jsonl".to_string())
        );
        assert_eq!(
            jsonl_path_from(argv(&["--jsonl=/tmp/y.jsonl"]).into_iter()),
            Some("/tmp/y.jsonl".to_string())
        );
        assert_eq!(jsonl_path_from(argv(&["--threads", "4"]).into_iter()), None);
        assert_eq!(jsonl_path_from(argv(&["--jsonl"]).into_iter()), None);
    }

    #[test]
    fn finish_writes_header_then_records() {
        let dir = std::env::temp_dir().join("pllbist_telemetry_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let mut report = RunReport::new("demo_bin", Some(path.to_string_lossy().into_owned()));
        assert!(report.wants_jsonl());
        assert!(report.telemetry_config().enabled);
        report.result("gain_db", fields![f_mod_hz = 8.0, value = -3.1]);
        let tel = Collector::enabled();
        tel.add("sim.steps", 42);
        report.absorb(&tel);
        report.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"type\":\"run\",\"bin\":\"demo_bin\",\"schema\":1}"
        );
        assert!(lines[1].starts_with("{\"type\":\"result\",\"name\":\"gain_db\""));
        assert!(lines[2].contains("\"sim.steps\""));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn without_jsonl_finish_is_noop() {
        let mut report = RunReport::new("demo_bin", None);
        assert!(!report.wants_jsonl());
        assert!(!report.telemetry_config().enabled);
        report.result("x", fields![]);
        report.finish().unwrap();
    }
}
