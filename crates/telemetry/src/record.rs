//! Telemetry records and their two stable renderings: JSON lines for
//! machines, an aligned table for humans.
//!
//! The JSONL field names are a **contract** — external tooling parses
//! them — and are pinned by the `jsonl_schema_snapshot` test below. Add
//! fields if you must; never rename or retype existing ones.

use std::fmt::Write as _;

/// A typed field value carried by spans and result records.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A boolean flag.
    Bool(bool),
    /// An unsigned integer (counts, indices).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point quantity. Non-finite values serialise as `null`.
    F64(f64),
    /// A string label.
    Str(String),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => write_json_f64(out, *v),
            Value::Str(s) => write_json_str(out, s),
        }
    }

    fn render(&self) -> String {
        match self {
            Value::Bool(b) => b.to_string(),
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => format!("{v:.6}"),
            Value::Str(s) => s.clone(),
        }
    }
}

/// A `(key, value)` field list (insertion order preserved).
pub type Fields = Vec<(String, Value)>;

/// Builds a [`Fields`] list with identifier keys:
/// `fields![f_mod_hz = 8.0, tones = 5usize]`.
#[macro_export]
macro_rules! fields {
    ($($key:ident = $value:expr),* $(,)?) => {
        vec![$((String::from(stringify!($key)), $crate::Value::from($value))),*]
    };
}

/// One telemetry record.
///
/// JSONL schema (one object per line, `type` discriminates):
///
/// | `type`    | keys                                                          |
/// |-----------|---------------------------------------------------------------|
/// | `run`     | `bin`, `schema`                                               |
/// | `span`    | `name`, `thread`, `depth`, `t_ns`, `dur_ns`, `fields`         |
/// | `counter` | `name`, `value`                                               |
/// | `gauge`   | `name`, `value`                                               |
/// | `hist`    | `name`, `count`, `min`, `max`, `p50`, `p90`, `p99`            |
/// | `result`  | `name`, `fields`                                              |
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// Run header: which binary produced the stream, and the schema
    /// version of every following line.
    Run {
        /// Producing binary's name.
        bin: String,
        /// Schema version (bump when the contract changes).
        schema: u32,
    },
    /// A completed timed scope.
    Span {
        /// Span name (dotted hierarchy, e.g. `monitor.tone`).
        name: String,
        /// Label of the recording thread.
        thread: String,
        /// Nesting depth within the recording thread (0 = outermost).
        depth: u32,
        /// Start time in nanoseconds since the collector's epoch.
        t_ns: u64,
        /// Wall-clock duration in nanoseconds.
        dur_ns: u64,
        /// Attached fields.
        fields: Fields,
    },
    /// A monotonically accumulated count.
    Counter {
        /// Counter name.
        name: String,
        /// Accumulated value.
        value: u64,
    },
    /// A last-write-wins measurement.
    Gauge {
        /// Gauge name.
        name: String,
        /// Recorded value.
        value: f64,
    },
    /// A histogram snapshot (fixed log-scale buckets; see
    /// [`crate::Histogram`]).
    Hist {
        /// Histogram name.
        name: String,
        /// Samples recorded.
        count: u64,
        /// Smallest sample.
        min: f64,
        /// Largest sample.
        max: f64,
        /// Median estimate.
        p50: f64,
        /// 90th-percentile estimate.
        p90: f64,
        /// 99th-percentile estimate.
        p99: f64,
    },
    /// A headline result of a bench/ablation run.
    Result {
        /// Result name.
        name: String,
        /// The result's values.
        fields: Fields,
    },
    /// Resumable-campaign header: binds a results file to the
    /// configuration that produced it, so a resumed run can refuse a
    /// stale or foreign file.
    Campaign {
        /// Digest of the producing configuration (16 lowercase hex
        /// characters, FNV-1a 64 of the config + grid + settings).
        digest: String,
        /// Total points in the campaign grid.
        points: u64,
    },
}

/// The current JSONL schema version emitted in `run` headers.
pub const SCHEMA_VERSION: u32 = 1;

pub(crate) fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_fields(out: &mut String, fields: &Fields) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_str(out, k);
        out.push(':');
        v.write_json(out);
    }
    out.push('}');
}

impl Record {
    /// Serialises this record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        match self {
            Record::Run { bin, schema } => {
                out.push_str("{\"type\":\"run\",\"bin\":");
                write_json_str(&mut out, bin);
                let _ = write!(out, ",\"schema\":{schema}}}");
            }
            Record::Span {
                name,
                thread,
                depth,
                t_ns,
                dur_ns,
                fields,
            } => {
                out.push_str("{\"type\":\"span\",\"name\":");
                write_json_str(&mut out, name);
                out.push_str(",\"thread\":");
                write_json_str(&mut out, thread);
                let _ = write!(
                    out,
                    ",\"depth\":{depth},\"t_ns\":{t_ns},\"dur_ns\":{dur_ns}"
                );
                out.push_str(",\"fields\":");
                write_fields(&mut out, fields);
                out.push('}');
            }
            Record::Counter { name, value } => {
                out.push_str("{\"type\":\"counter\",\"name\":");
                write_json_str(&mut out, name);
                let _ = write!(out, ",\"value\":{value}}}");
            }
            Record::Gauge { name, value } => {
                out.push_str("{\"type\":\"gauge\",\"name\":");
                write_json_str(&mut out, name);
                out.push_str(",\"value\":");
                write_json_f64(&mut out, *value);
                out.push('}');
            }
            Record::Hist {
                name,
                count,
                min,
                max,
                p50,
                p90,
                p99,
            } => {
                out.push_str("{\"type\":\"hist\",\"name\":");
                write_json_str(&mut out, name);
                let _ = write!(out, ",\"count\":{count}");
                for (key, v) in [
                    ("min", *min),
                    ("max", *max),
                    ("p50", *p50),
                    ("p90", *p90),
                    ("p99", *p99),
                ] {
                    let _ = write!(out, ",\"{key}\":");
                    write_json_f64(&mut out, v);
                }
                out.push('}');
            }
            Record::Result { name, fields } => {
                out.push_str("{\"type\":\"result\",\"name\":");
                write_json_str(&mut out, name);
                out.push_str(",\"fields\":");
                write_fields(&mut out, fields);
                out.push('}');
            }
            Record::Campaign { digest, points } => {
                out.push_str("{\"type\":\"campaign\",\"digest\":");
                write_json_str(&mut out, digest);
                let _ = write!(out, ",\"points\":{points}}}");
            }
        }
        out
    }
}

/// Serialises records as JSON lines (one record per line, trailing
/// newline).
pub fn to_jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

fn render_fields(fields: &Fields) -> String {
    fields
        .iter()
        .map(|(k, v)| format!("{k}={}", v.render()))
        .collect::<Vec<_>>()
        .join(" ")
}

fn format_ns(ns: u64) -> String {
    let secs = ns as f64 * 1e-9;
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{ns} ns")
    }
}

/// Renders records as a human-readable report (spans first, then
/// metrics, then results).
pub fn render_table(records: &[Record]) -> String {
    let mut spans = String::new();
    let mut metrics = String::new();
    let mut results = String::new();
    for r in records {
        match r {
            Record::Run { bin, schema } => {
                let _ = writeln!(metrics, " run          {bin} (schema v{schema})");
            }
            Record::Span {
                name,
                thread,
                depth,
                dur_ns,
                fields,
                ..
            } => {
                let indent = "  ".repeat(*depth as usize);
                let _ = writeln!(
                    spans,
                    " {indent}{name:<30} {:>12}  [{thread}] {}",
                    format_ns(*dur_ns),
                    render_fields(fields)
                );
            }
            Record::Counter { name, value } => {
                let _ = writeln!(metrics, " counter      {name:<34} {value}");
            }
            Record::Gauge { name, value } => {
                let _ = writeln!(metrics, " gauge        {name:<34} {value:.6}");
            }
            Record::Hist {
                name,
                count,
                min,
                max,
                p50,
                p90,
                p99,
            } => {
                let _ = writeln!(
                    metrics,
                    " hist         {name:<34} n={count} min={min:.3e} p50={p50:.3e} \
                     p90={p90:.3e} p99={p99:.3e} max={max:.3e}"
                );
            }
            Record::Result { name, fields } => {
                let _ = writeln!(
                    results,
                    " result       {name:<34} {}",
                    render_fields(fields)
                );
            }
            Record::Campaign { digest, points } => {
                let _ = writeln!(metrics, " campaign     digest={digest} points={points}");
            }
        }
    }
    let mut out = String::new();
    if !spans.is_empty() {
        out.push_str("spans:\n");
        out.push_str(&spans);
    }
    if !metrics.is_empty() {
        out.push_str("metrics:\n");
        out.push_str(&metrics);
    }
    if !results.is_empty() {
        out.push_str("results:\n");
        out.push_str(&results);
    }
    if out.is_empty() {
        out.push_str("(no telemetry records)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The JSONL schema is a stable contract: field names, order and
    /// types are pinned here. A failure means external consumers break —
    /// bump [`SCHEMA_VERSION`] and update the docs before touching this.
    #[test]
    fn jsonl_schema_snapshot() {
        let records = vec![
            Record::Run {
                bin: "abl09_telemetry_overhead".into(),
                schema: SCHEMA_VERSION,
            },
            Record::Span {
                name: "monitor.tone".into(),
                thread: "main".into(),
                depth: 1,
                t_ns: 1_500,
                dur_ns: 42_000,
                fields: fields![f_mod_hz = 8.0, peak_found = true, tone = 3usize],
            },
            Record::Counter {
                name: "sim.steps".into(),
                value: 123_456,
            },
            Record::Gauge {
                name: "monitor.transcript_bytes".into(),
                value: 960.0,
            },
            Record::Hist {
                name: "monitor.tone_wall_secs".into(),
                count: 5,
                min: 0.001,
                max: 0.25,
                p50: 0.01,
                p90: 0.2,
                p99: 0.25,
            },
            Record::Result {
                name: "speedup".into(),
                fields: fields![threads = 4u64, ratio = 2.5],
            },
            Record::Campaign {
                digest: "00f1e2d3c4b5a697".into(),
                points: 1000,
            },
        ];
        let expected = concat!(
            "{\"type\":\"run\",\"bin\":\"abl09_telemetry_overhead\",\"schema\":1}\n",
            "{\"type\":\"span\",\"name\":\"monitor.tone\",\"thread\":\"main\",\"depth\":1,",
            "\"t_ns\":1500,\"dur_ns\":42000,",
            "\"fields\":{\"f_mod_hz\":8,\"peak_found\":true,\"tone\":3}}\n",
            "{\"type\":\"counter\",\"name\":\"sim.steps\",\"value\":123456}\n",
            "{\"type\":\"gauge\",\"name\":\"monitor.transcript_bytes\",\"value\":960}\n",
            "{\"type\":\"hist\",\"name\":\"monitor.tone_wall_secs\",\"count\":5,",
            "\"min\":0.001,\"max\":0.25,\"p50\":0.01,\"p90\":0.2,\"p99\":0.25}\n",
            "{\"type\":\"result\",\"name\":\"speedup\",\"fields\":{\"threads\":4,\"ratio\":2.5}}\n",
            "{\"type\":\"campaign\",\"digest\":\"00f1e2d3c4b5a697\",\"points\":1000}\n",
        );
        assert_eq!(to_jsonl(&records), expected);
    }

    #[test]
    fn strings_are_escaped() {
        let r = Record::Result {
            name: "quote\"slash\\line\nend".into(),
            fields: fields![],
        };
        assert_eq!(
            r.to_json(),
            "{\"type\":\"result\",\"name\":\"quote\\\"slash\\\\line\\nend\",\"fields\":{}}"
        );
        let mut s = String::new();
        write_json_str(&mut s, "\u{1}");
        assert_eq!(s, "\"\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let r = Record::Gauge {
            name: "g".into(),
            value: f64::NAN,
        };
        assert_eq!(
            r.to_json(),
            "{\"type\":\"gauge\",\"name\":\"g\",\"value\":null}"
        );
        let r = Record::Gauge {
            name: "g".into(),
            value: f64::INFINITY,
        };
        assert!(r.to_json().ends_with("\"value\":null}"));
    }

    #[test]
    fn table_renders_every_record_kind() {
        let records = vec![
            Record::Run {
                bin: "x".into(),
                schema: 1,
            },
            Record::Span {
                name: "a.b".into(),
                thread: "main".into(),
                depth: 0,
                t_ns: 0,
                dur_ns: 2_500_000,
                fields: fields![k = 1u64],
            },
            Record::Counter {
                name: "c".into(),
                value: 7,
            },
            Record::Gauge {
                name: "g".into(),
                value: 1.25,
            },
            Record::Hist {
                name: "h".into(),
                count: 2,
                min: 0.5,
                max: 1.5,
                p50: 1.0,
                p90: 1.4,
                p99: 1.5,
            },
            Record::Result {
                name: "r".into(),
                fields: fields![ok = true],
            },
            Record::Campaign {
                digest: "deadbeefdeadbeef".into(),
                points: 12,
            },
        ];
        let table = render_table(&records);
        for needle in [
            "spans:",
            "metrics:",
            "results:",
            "a.b",
            "2.500 ms",
            "k=1",
            "ok=true",
            "digest=deadbeefdeadbeef points=12",
        ] {
            assert!(table.contains(needle), "missing {needle:?} in:\n{table}");
        }
        assert_eq!(render_table(&[]), "(no telemetry records)\n");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format_ns(12), "12 ns");
        assert_eq!(format_ns(2_500), "2.500 µs");
        assert_eq!(format_ns(2_500_000), "2.500 ms");
        assert_eq!(format_ns(2_500_000_000), "2.500 s");
    }
}
