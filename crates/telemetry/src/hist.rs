//! Fixed-bucket log-scale histogram with quantile readout.
//!
//! Built for wall-time samples spanning nanoseconds to seconds: buckets
//! are geometrically spaced between a configurable `lo` and `hi`, so
//! relative error per bucket is constant regardless of magnitude. The
//! struct is plain data (no locks) — the [`crate::Collector`] guards it
//! behind its own mutex.

/// Number of geometric buckets between `lo` and `hi` (plus one underflow
/// and one overflow bucket either side).
const BUCKETS: usize = 96;

/// A fixed-memory histogram over positive samples.
///
/// Quantiles are estimated by walking the cumulative bucket counts and
/// geometrically interpolating inside the target bucket, then clamping
/// to the exact observed `[min, max]`. With the default range
/// (1 ns .. 1000 s) relative quantile error is bounded by one bucket
/// width (~30% per decade / 96 buckets ≈ 27% of a decade, i.e. well
/// under a factor of 2 and typically a few percent).
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    /// log(hi/lo), cached for bucket index math.
    log_span: f64,
    counts: [u64; BUCKETS + 2],
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for Histogram {
    /// Range suited to wall-clock seconds: 1 ns to 1000 s.
    fn default() -> Self {
        Self::with_range(1e-9, 1e3)
    }
}

impl Histogram {
    /// Creates a histogram with geometric buckets spanning `[lo, hi]`.
    ///
    /// # Panics
    /// If `lo` or `hi` is not positive and finite, or `lo >= hi`.
    pub fn with_range(lo: f64, hi: f64) -> Self {
        assert!(
            lo > 0.0 && hi.is_finite() && lo < hi,
            "invalid histogram range"
        );
        Self {
            lo,
            hi,
            log_span: (hi / lo).ln(),
            counts: [0; BUCKETS + 2],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one sample. Non-finite samples are ignored; values
    /// outside the bucket range land in the under/overflow buckets but
    /// still update `min`/`max` exactly.
    pub fn record(&mut self, sample: f64) {
        if !sample.is_finite() {
            return;
        }
        let idx = if sample < self.lo {
            0
        } else if sample >= self.hi {
            BUCKETS + 1
        } else {
            1 + ((sample / self.lo).ln() / self.log_span * BUCKETS as f64) as usize
        };
        // Float rounding at the top edge can land exactly on BUCKETS.
        self.counts[idx.min(BUCKETS + 1)] += 1;
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Estimated quantile (`q` in `[0, 1]`), or `None` if empty.
    ///
    /// `q = 0` returns the exact min and `q = 1` the exact max; interior
    /// quantiles are bucket estimates clamped into `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        let target = q * self.count as f64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if (next as f64) >= target {
                let est = if idx == 0 {
                    self.lo
                } else if idx == BUCKETS + 1 {
                    self.hi
                } else {
                    // Geometric midpoint-ish: interpolate within the
                    // bucket by the fraction of the target rank inside it.
                    let frac = (target - seen as f64) / c as f64;
                    let b = idx - 1;
                    self.lo * ((b as f64 + frac) / BUCKETS as f64 * self.log_span).exp()
                };
                return Some(est.clamp(self.min, self.max));
            }
            seen = next;
        }
        Some(self.max)
    }

    /// `(p50, p90, p99)` convenience readout, or `None` if empty.
    pub fn percentiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.5)?,
            self.quantile(0.9)?,
            self.quantile(0.99)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.percentiles(), None);
    }

    #[test]
    fn single_sample_every_quantile_is_that_sample() {
        let mut h = Histogram::default();
        h.record(0.037);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!(
                (v - 0.037).abs() < 1e-12,
                "q={q}: got {v}, want exactly the single sample"
            );
        }
    }

    #[test]
    fn extreme_quantiles_are_exact_min_max() {
        let mut h = Histogram::default();
        for s in [3.0e-6, 1.0e-3, 2.2e-3, 0.5, 7.7] {
            h.record(s);
        }
        assert_eq!(h.quantile(0.0), Some(3.0e-6));
        assert_eq!(h.quantile(1.0), Some(7.7));
        assert_eq!(h.min(), Some(3.0e-6));
        assert_eq!(h.max(), Some(7.7));
    }

    #[test]
    fn median_of_uniform_log_spread_is_close() {
        let mut h = Histogram::default();
        // 999 samples log-uniform over [1e-6, 1e0]: true median = 1e-3.
        for i in 0..999 {
            let t = i as f64 / 998.0;
            h.record(1e-6 * (t * (1e0f64 / 1e-6).ln()).exp());
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!(
            (p50.ln() - 1e-3f64.ln()).abs() < 0.2,
            "p50 {p50:.3e} should be within one bucket of 1e-3"
        );
        let (q50, q90, q99) = h.percentiles().unwrap();
        assert!(q50 <= q90 && q90 <= q99, "quantiles must be monotone");
    }

    #[test]
    fn out_of_range_samples_clamp_but_min_max_stay_exact() {
        let mut h = Histogram::with_range(1e-3, 1e0);
        h.record(1e-9); // underflow bucket
        h.record(1e6); // overflow bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(1e-9));
        assert_eq!(h.max(), Some(1e6));
        // Interior quantile estimates clamp into the observed range.
        let p50 = h.quantile(0.5).unwrap();
        assert!((1e-9..=1e6).contains(&p50));
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut h = Histogram::default();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);
        h.record(1.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 1.0);
    }

    #[test]
    fn quantile_out_of_domain_clamps() {
        let mut h = Histogram::default();
        h.record(2.0);
        h.record(4.0);
        assert_eq!(h.quantile(-1.0), Some(2.0));
        assert_eq!(h.quantile(2.0), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn invalid_range_panics() {
        let _ = Histogram::with_range(1.0, 1.0);
    }
}
