//! Zero-dependency observability for the pllbist workspace.
//!
//! The paper's whole argument is *measurement you can trust from the
//! outside*: every Table 2 stage (settle, peak capture, hold, count) is
//! observable at the pins. This crate gives the simulator the same
//! property — every sweep stage, solver hot path and worker thread emits
//! structured records a machine can read back — while preserving the
//! workspace's hermetic-build invariant (plain `std`, no serde, no
//! tracing crates; `cargo build --offline` keeps working).
//!
//! Three record families, one [`Collector`]:
//!
//! * **spans** ([`span!`]) — nestable, monotonic-clock timed scopes with
//!   static-key/typed-value fields. The collector is `Sync`, so sweep
//!   workers on `std::thread::scope` threads report into one place; each
//!   record carries its thread label and per-thread nesting depth.
//! * **metrics** — named [counters](Collector::add),
//!   [gauges](Collector::gauge) and fixed-bucket log-scale
//!   [histograms](Collector::observe) with p50/p90/p99 readout, for hot-path event
//!   counts (solver steps, PFD glitches, MFREQ strobes, …).
//! * **results** — the headline numbers a bench binary produces, so a
//!   run is machine-checkable without scraping its stdout tables.
//!
//! Every record serialises to one JSON line (hand-rolled writer, schema
//! documented on [`Record`]) and to a human-readable table
//! ([`render_table`]). A disabled collector ([`Collector::disabled`])
//! reduces every operation to an `Option` check on an `Arc` — no clock
//! reads, no allocation, no locks — which is what makes the
//! `enabled = false` default free enough to thread through the hot
//! sweep paths (ablation `abl09_telemetry_overhead` bounds the enabled
//! cost too).
//!
//! # Example
//!
//! ```
//! use pllbist_telemetry::{span, Collector, Record};
//!
//! let tel = Collector::enabled();
//! {
//!     let _sweep = span!(tel, "sweep.point", f_mod_hz = 8.0);
//!     tel.add("solver.steps", 1234);
//!     tel.observe("tone_wall_secs", 0.021);
//! }
//! let records = tel.drain();
//! assert!(records.iter().any(|r| matches!(r, Record::Span { name, .. } if name == "sweep.point")));
//! let jsonl = pllbist_telemetry::to_jsonl(&records);
//! assert!(jsonl.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
//! ```

pub mod collector;
pub mod hist;
pub mod json;
pub mod ledger;
pub mod progress;
pub mod record;
pub mod recorder;
pub mod report;

pub use collector::{Collector, SpanBuilder, SpanGuard};
pub use hist::Histogram;
pub use json::{json_bool_field, json_f64_field, json_str_field, json_u64_field};
pub use ledger::{LedgerRecord, LEDGER_SCHEMA};
pub use progress::{CampaignProgress, ProgressBoard, WorkerProgress};
pub use record::{render_table, to_jsonl, Fields, Record, Value, SCHEMA_VERSION};
pub use recorder::{parse_dump, FlightEvent, FlightEventKind, FlightRecorder};
pub use report::RunReport;

/// Where drained telemetry records should go when a run finishes.
///
/// Plain data (no handles) so it can live inside `MonitorSettings` /
/// `BenchSettings` and keep their `Clone`/`Debug`/`PartialEq` derives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SinkConfig {
    /// Keep records in memory only; the caller drains and drops them.
    Null,
    /// Render the record table to stdout at the end of the run.
    Stdout,
    /// Append records as JSON lines to this path.
    JsonlPath(String),
}

/// The observability knob threaded through the sweep stacks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch: `false` compiles the instrumentation down to a
    /// no-op collector (near-zero overhead).
    pub enabled: bool,
    /// Where the records go when the owning run report finishes.
    pub sink: SinkConfig,
    /// Record every Nth span per span name (1 = every span). Counters,
    /// gauges and histograms are aggregates and are never sampled.
    pub sample_every: u64,
}

impl TelemetryConfig {
    /// Telemetry off (the default for library settings constructors).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            sink: SinkConfig::Null,
            sample_every: 1,
        }
    }

    /// Telemetry on, records kept in memory for the caller to drain.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            sink: SinkConfig::Null,
            sample_every: 1,
        }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_off() {
        let cfg = TelemetryConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg.sink, SinkConfig::Null);
        assert_eq!(cfg.sample_every, 1);
        assert_eq!(cfg, TelemetryConfig::disabled());
        assert!(TelemetryConfig::enabled().enabled);
    }
}
