//! The thread-safe telemetry collector and the [`span!`](crate::span) timing macro.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled must be near-free.** A disabled collector is
//!    `inner: None`; every operation is one `Option` discriminant check
//!    and an immediate return — no clock read, no allocation, no lock.
//!    `abl09_telemetry_overhead` holds this to the measured floor.
//! 2. **Thread-safe, not thread-local aggregation.** Sweep workers from
//!    `pllbist_sim::parallel` live inside `std::thread::scope`, so a
//!    shared `Arc<Mutex<State>>` is simplest and correct; the hot
//!    per-ODE-step paths never touch the collector (they keep intrinsic
//!    `u64` counters that are flushed here at stage boundaries).
//! 3. **Deterministic drain order.** Counters/gauges/histograms live in
//!    `BTreeMap`s so [`Collector::drain`] emits them in name order;
//!    spans come first in completion order.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::Histogram;
use crate::record::{Fields, Record};
use crate::TelemetryConfig;

#[derive(Default)]
struct State {
    spans: Vec<Record>,
    /// Per-span-name occurrence counts, for `sample_every` decimation.
    span_seen: BTreeMap<String, u64>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

struct Inner {
    epoch: Instant,
    sample_every: u64,
    state: Mutex<State>,
}

/// Shared handle to a telemetry buffer. Cheap to clone (an `Arc`), safe
/// to use from scoped worker threads. See the [module docs](self).
#[derive(Clone)]
pub struct Collector {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::disabled()
    }
}

thread_local! {
    /// Current span nesting depth on this thread (for indent/structure
    /// in the output; purely cosmetic, never used for correctness).
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn thread_label() -> String {
    let t = std::thread::current();
    match t.name() {
        Some(name) => name.to_string(),
        None => format!("{:?}", t.id()),
    }
}

impl Collector {
    /// A no-op collector: every operation returns immediately.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An active collector recording every span (`sample_every = 1`).
    pub fn enabled() -> Self {
        Self::with_sampling(1)
    }

    /// An active collector recording every Nth span per span name.
    /// `sample_every = 0` is treated as 1.
    pub fn with_sampling(sample_every: u64) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                sample_every: sample_every.max(1),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// Builds a collector from the plain-data config knob.
    pub fn from_config(config: &TelemetryConfig) -> Self {
        if config.enabled {
            Self::with_sampling(config.sample_every)
        } else {
            Self::disabled()
        }
    }

    /// Whether this collector records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a timed span. Prefer the [`span!`](crate::span) macro, which attaches
    /// fields with less ceremony. The returned guard records the span
    /// when dropped.
    pub fn span(&self, name: &'static str) -> SpanBuilder<'_> {
        SpanBuilder {
            collector: self,
            name,
            fields: Vec::new(),
        }
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        if delta == 0 {
            return;
        }
        let mut state = inner.state.lock().unwrap();
        match state.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                state.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Sets the named gauge (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.state.lock().unwrap();
        match state.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                state.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Records a sample into the named histogram (default range,
    /// 1 ns .. 1000 s — suited to wall-clock seconds).
    pub fn observe(&self, name: &str, sample: f64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.state.lock().unwrap();
        state
            .hists
            .entry(name.to_string())
            .or_default()
            .record(sample);
    }

    /// Merges pre-built records (e.g. a worker's result batch or a
    /// nested run's drained telemetry) into this collector's span list.
    pub fn extend(&self, records: Vec<Record>) {
        let Some(inner) = &self.inner else { return };
        if records.is_empty() {
            return;
        }
        let mut state = inner.state.lock().unwrap();
        for r in records {
            match r {
                Record::Counter { name, value } => match state.counters.get_mut(&name) {
                    Some(v) => *v += value,
                    None => {
                        state.counters.insert(name, value);
                    }
                },
                Record::Gauge { name, value } => {
                    state.gauges.insert(name, value);
                }
                other => state.spans.push(other),
            }
        }
    }

    /// Takes every record accumulated so far, leaving the collector
    /// empty (epoch unchanged). Spans first (completion order), then
    /// counters, gauges and histograms in name order.
    pub fn drain(&self) -> Vec<Record> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut state = inner.state.lock().unwrap();
        let mut out = std::mem::take(&mut state.spans);
        for (name, value) in std::mem::take(&mut state.counters) {
            out.push(Record::Counter { name, value });
        }
        for (name, value) in std::mem::take(&mut state.gauges) {
            out.push(Record::Gauge { name, value });
        }
        for (name, h) in std::mem::take(&mut state.hists) {
            if let (Some(min), Some(max), Some((p50, p90, p99))) =
                (h.min(), h.max(), h.percentiles())
            {
                out.push(Record::Hist {
                    name,
                    count: h.count(),
                    min,
                    max,
                    p50,
                    p90,
                    p99,
                });
            }
        }
        state.span_seen.clear();
        out
    }
}

/// Pending span: holds the name and fields until [`start`](Self::start)
/// reads the clock.
pub struct SpanBuilder<'a> {
    collector: &'a Collector,
    name: &'static str,
    fields: Fields,
}

impl SpanBuilder<'_> {
    /// Attaches a field (no-op when the collector is disabled).
    pub fn field(mut self, key: &'static str, value: impl Into<crate::record::Value>) -> Self {
        if self.collector.is_enabled() {
            self.fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Reads the clock and returns the guard that records on drop.
    pub fn start(self) -> SpanGuard {
        let Some(inner) = &self.collector.inner else {
            return SpanGuard { active: None };
        };
        DEPTH.with(|d| d.set(d.get() + 1));
        SpanGuard {
            active: Some(ActiveSpan {
                inner: Arc::clone(inner),
                name: self.name,
                fields: self.fields,
                started: Instant::now(),
            }),
        }
    }
}

struct ActiveSpan {
    inner: Arc<Inner>,
    name: &'static str,
    fields: Fields,
    started: Instant,
}

/// RAII guard: records the span into the collector when dropped.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else {
            return;
        };
        let dur_ns = span.started.elapsed().as_nanos() as u64;
        let t_ns = span
            .started
            .saturating_duration_since(span.inner.epoch)
            .as_nanos() as u64;
        let depth = DEPTH.with(|d| {
            let v = d.get().saturating_sub(1);
            d.set(v);
            v
        });
        let mut state = span.inner.state.lock().unwrap();
        let seen = state.span_seen.entry(span.name.to_string()).or_insert(0);
        *seen += 1;
        // Keep the 1st, (N+1)th, (2N+1)th … occurrence per name.
        if (*seen - 1) % span.inner.sample_every != 0 {
            return;
        }
        state.spans.push(Record::Span {
            name: span.name.to_string(),
            thread: thread_label(),
            depth,
            t_ns,
            dur_ns,
            fields: span.fields,
        });
    }
}

/// Opens a timed span on a [`Collector`], recording it when the guard
/// drops:
///
/// ```
/// use pllbist_telemetry::{span, Collector};
/// let tel = Collector::enabled();
/// {
///     let _g = span!(tel, "sweep.point", f_mod_hz = 8.0, tone = 3usize);
///     // … timed work …
/// }
/// assert_eq!(tel.drain().len(), 1);
/// ```
#[macro_export]
macro_rules! span {
    ($collector:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $collector.span($name)$(.field(stringify!($key), $value))*.start()
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Value;

    #[test]
    fn disabled_collector_records_nothing() {
        let tel = Collector::disabled();
        {
            let _g = span!(tel, "a", x = 1u64);
            tel.add("c", 5);
            tel.gauge("g", 1.0);
            tel.observe("h", 0.5);
        }
        assert!(!tel.is_enabled());
        assert!(tel.drain().is_empty());
    }

    #[test]
    fn spans_record_fields_and_nesting_depth() {
        let tel = Collector::enabled();
        {
            let _outer = span!(tel, "outer");
            let _inner = span!(tel, "inner", f_mod_hz = 8.0, ok = true);
        }
        let records = tel.drain();
        assert_eq!(records.len(), 2);
        // Inner drops first, so completion order is inner then outer.
        match &records[0] {
            Record::Span {
                name,
                depth,
                fields,
                ..
            } => {
                assert_eq!(name, "inner");
                assert_eq!(*depth, 1);
                assert_eq!(
                    fields,
                    &vec![
                        ("f_mod_hz".to_string(), Value::F64(8.0)),
                        ("ok".to_string(), Value::Bool(true)),
                    ]
                );
            }
            other => panic!("expected span, got {other:?}"),
        }
        match &records[1] {
            Record::Span { name, depth, .. } => {
                assert_eq!(name, "outer");
                assert_eq!(*depth, 0);
            }
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn counters_accumulate_and_drain_in_name_order() {
        let tel = Collector::enabled();
        tel.add("z.second", 2);
        tel.add("a.first", 1);
        tel.add("z.second", 3);
        tel.add("ignored.zero", 0);
        tel.gauge("g.mid", 1.5);
        tel.gauge("g.mid", 2.5);
        let records = tel.drain();
        assert_eq!(
            records,
            vec![
                Record::Counter {
                    name: "a.first".into(),
                    value: 1
                },
                Record::Counter {
                    name: "z.second".into(),
                    value: 5
                },
                Record::Gauge {
                    name: "g.mid".into(),
                    value: 2.5
                },
            ]
        );
        assert!(
            tel.drain().is_empty(),
            "drain must leave the collector empty"
        );
    }

    #[test]
    fn histograms_drain_with_percentiles() {
        let tel = Collector::enabled();
        for i in 1..=100 {
            tel.observe("wall", i as f64 * 1e-3);
        }
        let records = tel.drain();
        assert_eq!(records.len(), 1);
        match &records[0] {
            Record::Hist {
                name,
                count,
                min,
                max,
                p50,
                p90,
                p99,
            } => {
                assert_eq!(name, "wall");
                assert_eq!(*count, 100);
                assert_eq!(*min, 1e-3);
                assert_eq!(*max, 0.1);
                assert!(*p50 <= *p90 && *p90 <= *p99);
                assert!((*p50 - 0.05).abs() < 0.02, "p50 {p50} far from 0.05");
            }
            other => panic!("expected hist, got {other:?}"),
        }
    }

    #[test]
    fn sampling_keeps_every_nth_span_per_name() {
        let tel = Collector::with_sampling(3);
        for _ in 0..7 {
            let _g = span!(tel, "tick");
        }
        for _ in 0..2 {
            let _g = span!(tel, "other");
        }
        let records = tel.drain();
        let ticks = records
            .iter()
            .filter(|r| matches!(r, Record::Span { name, .. } if name == "tick"))
            .count();
        let others = records
            .iter()
            .filter(|r| matches!(r, Record::Span { name, .. } if name == "other"))
            .count();
        assert_eq!(ticks, 3, "occurrences 1, 4, 7 of 7");
        assert_eq!(others, 1, "occurrence 1 of 2");
    }

    #[test]
    fn spans_merge_across_scoped_threads() {
        let tel = Collector::enabled();
        std::thread::scope(|scope| {
            for worker in 0..4usize {
                let tel = tel.clone();
                scope.spawn(move || {
                    let _g = span!(tel, "worker.chunk", worker = worker);
                    tel.add("items", 10);
                });
            }
        });
        let records = tel.drain();
        let spans: Vec<_> = records
            .iter()
            .filter_map(|r| match r {
                Record::Span {
                    name,
                    thread,
                    depth,
                    ..
                } => Some((name, thread, *depth)),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 4);
        for (name, _thread, depth) in &spans {
            assert_eq!(*name, "worker.chunk");
            // Depth counters are thread-local: each worker span is outermost.
            assert_eq!(*depth, 0);
        }
        assert!(records
            .iter()
            .any(|r| matches!(r, Record::Counter { name, value: 40 } if name == "items")));
    }

    #[test]
    fn extend_merges_counters_and_keeps_spans() {
        let tel = Collector::enabled();
        tel.add("c", 1);
        tel.extend(vec![
            Record::Counter {
                name: "c".into(),
                value: 2,
            },
            Record::Gauge {
                name: "g".into(),
                value: 7.0,
            },
            Record::Result {
                name: "r".into(),
                fields: Vec::new(),
            },
        ]);
        let records = tel.drain();
        assert!(records.contains(&Record::Counter {
            name: "c".into(),
            value: 3
        }));
        assert!(records.contains(&Record::Gauge {
            name: "g".into(),
            value: 7.0
        }));
        assert!(records.contains(&Record::Result {
            name: "r".into(),
            fields: Vec::new()
        }));
    }
}
