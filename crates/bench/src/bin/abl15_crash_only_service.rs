//! **Ablation abl15** — the crash-only campaign service under fire.
//!
//! One campaign is submitted to the service three ways: an
//! uninterrupted single-threaded reference, a battered run whose fault
//! plan injects kills mid-sweep, a torn journal append, a torn results
//! write and a disk-full rejection (repeated at several thread counts,
//! with a client disconnecting mid-results-stream for good measure),
//! and a SIGKILL-style restart whose job directory is seeded with a
//! torn prefix of the reference results file. Every run must reach
//! `done` with a campaign file **byte-identical** to the reference, the
//! restarted runs must preserve pre-crash work verbatim
//! (`preserved_work_ratio` = 1.0), and the journal must show the
//! resumed final attempt restoring lock from the checkpoint sidecar
//! instead of re-settling (`sidecar_hits=1`).
//!
//! `PLLBIST_ABL15_POINTS` (default 8) sizes the grid;
//! `PLLBIST_ABL15_SEED` (default 2003) seeds the point-fault plan.
//! `--jsonl <path>` records the run report (and appends the ledger row
//! when `PLLBIST_LEDGER` is set).

use std::io::{Read, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use pllbist_sim::config::PllConfig;
use pllbist_sim::service::{
    submission_body, CampaignService, CrashFault, FaultPlan, ServiceConfig,
};
use pllbist_sim::{
    http_get_with_retries, http_post, CampaignPlan, EventDrivenCpPll, Scheduler, SupervisorPolicy,
};
use pllbist_telemetry::json::json_str_field;
use pllbist_telemetry::{fields, Record, RunReport, SCHEMA_VERSION};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pllbist_abl15_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn plan(threads: usize) -> CampaignPlan<EventDrivenCpPll> {
    let scheduler = if threads == 1 {
        Scheduler::Serial
    } else {
        Scheduler::WorkStealing { threads }
    };
    CampaignPlan::new(PllConfig::paper_table3())
        .engine::<EventDrivenCpPll>()
        .lock_settle(0.05)
        .supervised(SupervisorPolicy::default())
        .scheduler(scheduler)
}

fn wait_done(addr: std::net::SocketAddr, job: &str) {
    let started = Instant::now();
    loop {
        // The hardened client: overall per-request deadline plus
        // bounded exponential backoff over transient failures.
        let body =
            http_get_with_retries(addr, &format!("/jobs/{job}"), 4, Duration::from_millis(5))
                .expect("poll job state");
        match json_str_field(&body, "state").as_deref() {
            Some("done") => return,
            Some("failed") => panic!("job {job} failed: {body}"),
            _ => {}
        }
        assert!(
            started.elapsed() < Duration::from_secs(300),
            "job {job} did not finish"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A client that connects, asks for the results stream, reads a few
/// bytes and hangs up — the server must shrug it off.
fn disconnect_mid_stream(addr: std::net::SocketAddr, job: &str) {
    if let Ok(mut stream) = std::net::TcpStream::connect(addr) {
        let _ = write!(
            stream,
            "GET /jobs/{job}/results HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        );
        let mut first = [0u8; 16];
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let _ = stream.read(&mut first);
        // Drop: the socket closes with the response mid-flight.
    }
}

fn main() {
    // Injected kills unwind as panics by design; keep their backtraces
    // out of the campaign log.
    std::panic::set_hook(Box::new(|_| {}));

    let mut report = RunReport::from_args("abl15_crash_only_service");
    let points = env_usize("PLLBIST_ABL15_POINTS", 8).max(4);
    let seed = env_u64("PLLBIST_ABL15_SEED", 2003);
    let grid: Vec<f64> = (0..points).map(|i| 1.5 + 2.7 * i as f64).collect();
    let salt = "abl15";

    // Point-level faults fire in every run, reference included; the
    // crash schedule below is what only the battered runs endure:
    // two plain kills, a kill that also tears the journal append, a
    // torn results flush and a disk-full rejection — five interrupted
    // attempts before the clean sixth.
    let mut faults = FaultPlan::from_seed(seed, points, 0);
    faults.crash = vec![
        CrashFault::Kill {
            after_points: (points / 3).max(1),
        },
        CrashFault::TornResultWrite {
            at_flush: 1,
            keep_bytes: 9,
        },
        CrashFault::KillTearingJournal { after_points: 1 },
        CrashFault::ResultDiskFull { at_flush: 1 },
        CrashFault::Kill { after_points: 1 },
    ];
    let kills = faults
        .crash
        .iter()
        .filter(|c| {
            matches!(
                c,
                CrashFault::Kill { .. } | CrashFault::KillTearingJournal { .. }
            )
        })
        .count();
    println!(
        "abl15 — crash-only campaign service ({points} points, {} crash faults, {kills} kills, {} flaky, {} quarantined)\n",
        faults.crash.len(),
        faults.flaky_retry.len(),
        faults.flaky_quarantine.len(),
    );

    let job = plan(1).digest(&grid, salt);
    let job_file = |root: &PathBuf, name: &str| root.join(format!("job-{job}")).join(name);

    // Reference: serial, no crash faults, one attempt.
    let ref_root = tmp_root("reference");
    let t0 = Instant::now();
    let reference_bytes = {
        let service = CampaignService::start(ServiceConfig::rooted(&ref_root)).expect("start ref");
        let body = submission_body(&plan(1), &grid, salt, &faults.reference());
        http_post(service.addr(), "/jobs", &body).expect("submit ref");
        wait_done(service.addr(), &job);
        service.shutdown();
        std::fs::read(job_file(&ref_root, "campaign.jsonl")).expect("reference bytes")
    };
    let reference_secs = t0.elapsed().as_secs_f64();
    println!(" reference        | serial   | 1 attempt  | {reference_secs:.3}s");

    // Battered runs: same job, crash faults armed, several thread
    // counts, a client disconnecting mid-stream while each runs.
    let mut identical = 0usize;
    let mut runs = 0usize;
    let mut interruptions = 0usize;
    let mut sidecar_hits_seen = 0usize;
    let mut faulted_secs = 0.0f64;
    for threads in [1usize, 4] {
        let root = tmp_root(&format!("faulted_t{threads}"));
        let t1 = Instant::now();
        let service = CampaignService::start(ServiceConfig::rooted(&root)).expect("start faulted");
        let body = submission_body(&plan(threads), &grid, salt, &faults);
        http_post(service.addr(), "/jobs", &body).expect("submit faulted");
        disconnect_mid_stream(service.addr(), &job);
        wait_done(service.addr(), &job);
        disconnect_mid_stream(service.addr(), &job);
        service.shutdown();
        let secs = t1.elapsed().as_secs_f64();
        faulted_secs = faulted_secs.max(secs);

        let bytes = std::fs::read(job_file(&root, "campaign.jsonl")).expect("faulted bytes");
        let same = bytes == reference_bytes;
        runs += 1;
        identical += usize::from(same);
        let journal = std::fs::read_to_string(job_file(&root, "job.jsonl")).expect("journal");
        let interrupted = journal
            .lines()
            .filter(|l| l.contains("\"interrupted\""))
            .count();
        interruptions += interrupted;
        let done_line = journal
            .lines()
            .rfind(|l| l.contains("\"done\""))
            .expect("done event");
        let sidecar_hit = done_line.contains("sidecar_hits=1");
        sidecar_hits_seen += usize::from(sidecar_hit);
        println!(
            " faulted          | {threads:>2} thread | {interrupted} interrupts | {secs:.3}s | bytes {} | sidecar {}",
            if same { "identical" } else { "DIVERGED" },
            if sidecar_hit { "hit" } else { "MISS" },
        );
        assert!(same, "threads {threads}: recovered bytes diverged");
        assert!(
            interrupted >= kills,
            "threads {threads}: expected >= {kills} interruptions, saw {interrupted}"
        );
        assert!(
            sidecar_hit,
            "threads {threads}: resumed attempt must restore lock from the sidecar:\n{journal}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    // SIGKILL-style restart: seed a job directory with exactly what a
    // killed service leaves on disk — the durable submission, a journal
    // whose last append was torn, and a results file truncated mid-line
    // — then start a fresh service on it and let the rescan finish the
    // job.
    let restart_root = tmp_root("restart");
    let dir = restart_root.join(format!("job-{job}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let run_header = Record::Run {
        bin: "serve".to_string(),
        schema: SCHEMA_VERSION,
    }
    .to_json();
    let body = submission_body(&plan(2), &grid, salt, &faults.reference());
    std::fs::write(dir.join("submit.jsonl"), format!("{run_header}\n{body}")).expect("submit");
    let reference_text = String::from_utf8(reference_bytes.clone()).expect("utf8");
    let all_lines: Vec<&str> = reference_text.lines().collect();
    let keep_records = points / 2;
    let preserved: Vec<String> = all_lines[..2 + keep_records]
        .iter()
        .map(|l| l.to_string())
        .collect();
    let mut torn = preserved.join("\n");
    torn.push('\n');
    torn.push_str(&all_lines[2 + keep_records][..all_lines[2 + keep_records].len() / 2]);
    std::fs::write(dir.join("campaign.jsonl"), &torn).expect("torn results");
    let event = |state: &str| {
        format!(
            "{{\"type\":\"result\",\"name\":\"job.event\",\"fields\":{{\"state\":\"{state}\",\"attempt\":0,\"detail\":\"pre-kill\"}}}}"
        )
    };
    std::fs::write(
        dir.join("job.jsonl"),
        // The trailing fragment is a torn journal append: no newline.
        format!(
            "{run_header}\n{}\n{}\n{{\"type\":\"result\",\"na",
            event("queued"),
            event("running"),
        ),
    )
    .expect("torn journal");

    let t2 = Instant::now();
    let service = CampaignService::start(ServiceConfig::rooted(&restart_root)).expect("restart");
    wait_done(service.addr(), &job);
    service.shutdown();
    let restart_secs = t2.elapsed().as_secs_f64();
    let restarted = std::fs::read(job_file(&restart_root, "campaign.jsonl")).expect("bytes");
    let restart_same = restarted == reference_bytes;
    runs += 1;
    identical += usize::from(restart_same);
    // Preserved-work ratio: every pre-kill record must survive
    // verbatim at its original position.
    let restarted_text = String::from_utf8(restarted).expect("utf8");
    let restarted_lines: Vec<&str> = restarted_text.lines().collect();
    let kept = preserved
        .iter()
        .enumerate()
        .filter(|(i, line)| restarted_lines.get(*i) == Some(&line.as_str()))
        .count();
    let preserved_ratio = kept as f64 / preserved.len() as f64;
    let flight =
        std::fs::read_to_string(job_file(&restart_root, "campaign.flight.jsonl")).expect("flight");
    let restart_marked = flight.contains("\"restart\"");
    println!(
        " restart (rescan) | 2 thread | torn tail  | {restart_secs:.3}s | bytes {} | preserved {kept}/{} | flight restart {}",
        if restart_same { "identical" } else { "DIVERGED" },
        preserved.len(),
        if restart_marked { "marked" } else { "MISSING" },
    );
    assert!(restart_same, "restart: recovered bytes diverged");
    assert!(
        (preserved_ratio - 1.0).abs() < f64::EPSILON,
        "restart: pre-kill work not preserved verbatim ({kept}/{})",
        preserved.len()
    );
    assert!(restart_marked, "restart: flight timeline missing marker");
    let _ = std::fs::remove_dir_all(&restart_root);
    let _ = std::fs::remove_dir_all(&ref_root);

    let byte_identical = identical == runs;
    println!(
        "\ncompletion: {runs}/{runs} campaigns done, {identical}/{runs} byte-identical, {interruptions} injected interruptions survived"
    );
    report.result(
        "crash_only",
        fields![
            points = points,
            runs = runs,
            kills = kills,
            crash_faults = faults.crash.len(),
            interruptions = interruptions,
            byte_identical = byte_identical,
            preserved_work_ratio = preserved_ratio,
            sidecar_resumes = sidecar_hits_seen,
            reference_secs = reference_secs,
            faulted_secs = faulted_secs,
            restart_secs = restart_secs
        ],
    );
    report.finish().expect("write --jsonl output");
    assert!(byte_identical, "every recovered campaign must match");
    println!("abl15: PASS — crash-only recovery byte-identical under kills, torn writes, disk-full and disconnects");
}
