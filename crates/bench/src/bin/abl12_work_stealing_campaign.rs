//! **Ablation abl12** — the work-stealing campaign scheduler vs a serial
//! schedule, plus the resumable results file.
//!
//! Part A (scheduling): a retry-heavy grid — every expensive point
//! clustered at the front, where a naive contiguous split would strand
//! the retry ladder on one worker. The same supervised sweep runs under
//! a serial plan (`threads = 1`) and the per-point work-stealing
//! scheduler (`threads = 0`, one worker per core); outcomes must be
//! identical and the stealing schedule must be ≥1.3× faster (median
//! over reps) on a multi-core host. On a single-core host both take the
//! serial path and the ratio is reported without the assertion.
//!
//! Part B (resume): the same campaign streams to a results file via the
//! campaign-log path of the plan runner. The run is "killed" at several
//! depths (file truncated to a prefix plus a torn trailing line — what
//! a real kill mid-write leaves) and resumed at *different* thread
//! counts. The resumed file must be **byte-identical** to the
//! uninterrupted run's, quarantined points included.
//!
//! Knobs: `PLLBIST_ABL12_MIN_SPEEDUP` (default 1.3),
//! `PLLBIST_ABL12_REPS` (default 3), `PLLBIST_ABL12_POINTS`
//! (default 16). `--jsonl <path>` writes the run report; `--progress`
//! renders an in-place status line over the timed runs.

use pllbist_bench::progress::{ProgressLine, ProgressSource};
use pllbist_sim::behavioral::CpPll;
use pllbist_sim::campaign::{
    bits_hex, config_digest, f64_from_bits_hex, json_str_field, CampaignLog, PointCodec,
};
use pllbist_sim::config::PllConfig;
use pllbist_sim::parallel::available_parallelism;
use pllbist_sim::scenario::{Scenario, SupervisedPoints};
use pllbist_sim::supervisor::Supervised;
use pllbist_sim::{PllEngine, SupervisorPolicy, SweepPointError};
use pllbist_telemetry::{fields, Collector, Fields, ProgressBoard, RunReport, Value};
use std::sync::Arc;
use std::time::Instant;

/// Lock-settle for the campaign scenario: long enough that a retry's
/// extended re-settle dominates a healthy point's cost.
const LOCK_SETTLE: f64 = 0.2;

/// Bin-local campaign codec: the point is the settled control voltage.
struct VoltageCodec;

impl PointCodec for VoltageCodec {
    type Point = f64;

    fn encode(&self, point: &f64) -> Fields {
        vec![("v_bits".to_string(), Value::Str(bits_hex(*point)))]
    }

    fn decode(&self, line: &str) -> Option<f64> {
        f64_from_bits_hex(&json_str_field(line, "v_bits")?)
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The campaign's capture: healthy tones settle briefly and read the
/// control voltage; tones at or below `sick_cutoff` burn their attempt
/// and fail typed-retryable, so the supervisor re-locks and re-settles
/// them through the full deterministic retry ladder — the expensive,
/// front-clustered work Part A's schedules fight over.
fn capture(
    pll: &mut Supervised<CpPll>,
    f_mod: f64,
    sick_cutoff: f64,
) -> Result<f64, SweepPointError> {
    let t = pll.time();
    pll.advance_to(t + 0.01);
    if f_mod <= sick_cutoff {
        return Err(SweepPointError::DegenerateFit { f_mod_hz: f_mod });
    }
    Ok(pll.control_voltage())
}

/// Asserts two supervised sweeps produced identical outcomes: healthy
/// values bit-for-bit, quarantined errors variant-for-variant.
fn assert_same_outcomes(a: &SupervisedPoints<f64>, b: &SupervisedPoints<f64>, label: &str) {
    assert_eq!(a.points.len(), b.points.len(), "{label}: point count");
    for (i, (x, y)) in a.points.iter().zip(&b.points).enumerate() {
        match (x, y) {
            (Ok(vx), Ok(vy)) => assert_eq!(
                vx.to_bits(),
                vy.to_bits(),
                "{label}: point {i} value diverged"
            ),
            (Err(ex), Err(ey)) => assert_eq!(ex, ey, "{label}: point {i} error diverged"),
            _ => panic!("{label}: point {i} ok/err disagreement"),
        }
    }
}

fn main() {
    let mut report = RunReport::from_args("abl12_work_stealing_campaign");
    let cfg = PllConfig::paper_table3();
    let policy = SupervisorPolicy::default();
    let points = env_usize("PLLBIST_ABL12_POINTS", 16).max(4);
    let reps = env_usize("PLLBIST_ABL12_REPS", 3).max(1);
    let min_speedup = env_f64("PLLBIST_ABL12_MIN_SPEEDUP", 1.3);
    let cores = available_parallelism();

    // Retry-heavy grid: the first quarter of the tones is sick, i.e.
    // clustered exactly where a contiguous schedule hurts most.
    let tones: Vec<f64> = (0..points).map(|i| 1.0 + i as f64).collect();
    let n_sick = (points / 4).max(1);
    let sick_cutoff = tones[n_sick - 1];
    let scenario = Scenario::with_lock_settle(&cfg, LOCK_SETTLE);
    println!(
        "abl12 — work-stealing campaign ({points} points, {n_sick} retry-heavy, \
         {cores} core(s), {reps} rep(s))\n"
    );

    // ---- Part A: serial vs work-stealing wall clock --------------------
    let run_at = |threads: usize, tel: &Collector| {
        scenario.run_points::<CpPll, pllbist_sim::NullCodec<f64>, _>(
            &tones,
            threads,
            true,
            Some(&policy),
            tel,
            None,
            None,
            None,
            |pll, fm| capture(pll, fm, sick_cutoff),
        )
    };

    // Coarse `--progress` feed: one board tick per timed sweep / resume
    // round trip (the timed regions themselves stay unobserved).
    let board = Arc::new(ProgressBoard::new(2 * reps + 4, 1, &[]));
    let progress_board = Arc::clone(&board);
    let progress = ProgressLine::if_requested(
        "abl12 work-stealing campaign",
        Arc::new(move || progress_board.snapshot()) as ProgressSource,
    );

    // Warm-up so neither timed run pays first-touch costs.
    let reference = run_at(0, &Collector::disabled());
    assert_eq!(reference.points.len(), points);
    assert_eq!(reference.quarantined_count(), n_sick);

    let mut serial_secs = Vec::with_capacity(reps);
    let mut stealing_secs = Vec::with_capacity(reps);
    for rep in 0..reps {
        let t0 = Instant::now();
        let serial = run_at(1, &Collector::disabled());
        serial_secs.push(t0.elapsed().as_secs_f64());
        board.point_done(0, true, serial_secs[rep]);

        let t1 = Instant::now();
        let stealing = run_at(0, &Collector::disabled());
        stealing_secs.push(t1.elapsed().as_secs_f64());
        board.point_done(0, true, stealing_secs[rep]);

        assert_same_outcomes(&reference, &serial, "serial");
        assert_same_outcomes(&reference, &stealing, "stealing");
        println!(
            " rep {rep}: serial {:>7.3}s | stealing {:>7.3}s",
            serial_secs[rep], stealing_secs[rep]
        );
    }
    let serial_median = median(&mut serial_secs);
    let stealing_median = median(&mut stealing_secs);
    let speedup = serial_median / stealing_median;
    println!(
        "\nmedian: serial {serial_median:.3}s, stealing {stealing_median:.3}s \
         → {speedup:.2}× on {cores} core(s)"
    );
    if cores == 1 {
        println!("(single-core host: both schedules take the serial path, ~1.0× expected)");
    } else {
        assert!(
            speedup >= min_speedup,
            "work stealing must be ≥{min_speedup}× over serial on a retry-heavy \
             grid ({cores} cores): got {speedup:.2}×"
        );
    }
    report.result(
        "schedule",
        fields![
            cores = cores,
            points = points,
            sick_points = n_sick,
            reps = reps,
            serial_secs = serial_median,
            stealing_secs = stealing_median,
            speedup = speedup
        ],
    );

    // ---- Part B: kill-and-resume byte identity -------------------------
    let digest = config_digest(
        &cfg,
        &tones,
        &format!("abl12-voltage-campaign|settle:{LOCK_SETTLE}|sick:{sick_cutoff}|{policy:?}"),
    );
    let path = std::env::temp_dir().join(format!(
        "pllbist_abl12_campaign_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let run_resumable = |threads: usize| {
        let log = CampaignLog::open(&path, VoltageCodec, digest.clone(), tones.len())
            .expect("open campaign log");
        let skipped = log.completed_count();
        let tel = Collector::disabled();
        let swept = scenario.run_points::<CpPll, VoltageCodec, _>(
            &tones,
            threads,
            true,
            Some(&policy),
            &tel,
            Some(&log),
            None,
            None,
            |pll, fm| capture(pll, fm, sick_cutoff),
        );
        log.finish(true).expect("campaign completes");
        (swept, skipped)
    };

    let (uninterrupted, _) = run_resumable(0);
    board.point_done(0, true, 0.0);
    assert_same_outcomes(&reference, &uninterrupted, "resumable");
    let reference_bytes = std::fs::read(&path).expect("read results file");
    let reference_lines: Vec<&str> = std::str::from_utf8(&reference_bytes)
        .expect("utf8 results file")
        .lines()
        .collect();
    assert_eq!(reference_lines.len(), 2 + points, "header + one line/point");

    println!("\nkill-and-resume round trips (results file: {points} points + header):");
    let mut round_trips = 0usize;
    for (kill_after, resume_threads) in [(1usize, 1usize), (points / 2, 2), (points - 1, 4)] {
        // A kill mid-write leaves a clean prefix plus one torn line.
        let mut killed = reference_lines[..2 + kill_after].join("\n");
        killed.push('\n');
        killed.push_str("{\"type\":\"result\",\"name\":\"campaign.po");
        std::fs::write(&path, &killed).expect("write killed file");

        let (resumed, skipped) = run_resumable(resume_threads);
        board.point_done(0, true, 0.0);
        assert_eq!(
            skipped, kill_after,
            "resume must skip exactly the surviving prefix"
        );
        assert_same_outcomes(&reference, &resumed, "resumed");
        let resumed_bytes = std::fs::read(&path).expect("read resumed file");
        assert_eq!(
            resumed_bytes, reference_bytes,
            "resumed file must be byte-identical (killed after {kill_after}, \
             resumed on {resume_threads} threads)"
        );
        println!(
            " killed after {kill_after:>3} point(s), resumed on {resume_threads} \
             thread(s): skipped {skipped}, file byte-identical"
        );
        round_trips += 1;
    }
    let _ = std::fs::remove_file(&path);
    drop(progress);
    report.result(
        "resume",
        fields![
            round_trips = round_trips,
            points = points,
            quarantined = reference.quarantined_count(),
            byte_identical = true
        ],
    );
    report.finish().expect("write --jsonl output");
    println!(
        "\nabl12: PASS — schedules agree outcome-for-outcome, resumed files \
         byte-identical across thread counts"
    );
}
