//! Regenerates **fig. 1**: the generic second-order closed-loop magnitude
//! and phase plots with the paper's annotated features — the 0 dB
//! asymptote, the resonance ωp and the one-sided 3 dB bandwidth ω3dB —
//! for a family of damping factors around the paper's ζ = 0.43.
//!
//! `--jsonl <path>` writes the run report; `--progress` renders an
//! in-place status line over the damping-factor sweeps.

use std::sync::Arc;
use std::time::Instant;

use pllbist_bench::progress::{ProgressLine, ProgressSource};
use pllbist_bench::{ascii_plot, magnitude_series, phase_series};
use pllbist_numeric::bode::BodePlot;
use pllbist_numeric::tf::TransferFunction;
use pllbist_telemetry::{fields, ProgressBoard, RunReport};
use std::f64::consts::TAU;

fn main() {
    let mut report = RunReport::from_args("fig01_second_order_bode");
    let wn = TAU * 8.0; // normalise to the paper's 8 Hz loop
    println!("fig. 1 — second-order closed-loop response (unity-gain referred)\n");

    let zetas = [0.3, 0.43, 0.7, 1.0];
    let mut mag_series = Vec::new();
    let mut ph_series = Vec::new();
    let glyphs = ['*', 'o', '+', 'x'];
    // Coarse `--progress` feed: one tick per damping-factor sweep.
    let board = Arc::new(ProgressBoard::new(zetas.len(), 1, &[]));
    let progress_board = Arc::clone(&board);
    let progress = ProgressLine::if_requested(
        "fig01",
        Arc::new(move || progress_board.snapshot()) as ProgressSource,
    );
    let mut plots = Vec::new();
    for &z in &zetas {
        let t0 = Instant::now();
        let h = TransferFunction::second_order_pll(wn, z);
        plots.push(BodePlot::sweep_log(&h, wn / 30.0, wn * 30.0, 240));
        board.point_done(0, true, t0.elapsed().as_secs_f64());
    }
    drop(progress);
    let labels: Vec<String> = zetas.iter().map(|z| format!("ζ={z}")).collect();
    for ((plot, label), glyph) in plots.iter().zip(&labels).zip(glyphs) {
        mag_series.push((label.as_str(), glyph, magnitude_series(plot)));
        ph_series.push((label.as_str(), glyph, phase_series(plot)));
    }
    println!("{}", ascii_plot(&mag_series, 78, 18, "|H| (dB) vs log10 f"));
    println!("{}", ascii_plot(&ph_series, 78, 14, "∠H (deg) vs log10 f"));

    println!(" ζ     | peak f (Hz) | peak (dB) | f3dB (Hz) | 0 dB asymptote");
    println!(" ------+-------------+-----------+-----------+----------------");
    for (plot, z) in plots.iter().zip(zetas) {
        let peak = plot.peak().expect("resonance or shoulder");
        let bw = plot.bandwidth_3db().expect("low-pass rolloff");
        let dc = plot.points()[0].magnitude_db().value();
        println!(
            " {z:<5} | {:>11.2} | {:>9.2} | {:>9.2} | {:+.3} dB at {:.2} Hz",
            peak.frequency().value(),
            peak.magnitude_db().value(),
            bw / TAU,
            dc,
            plot.points()[0].frequency().value()
        );
        report.result(
            "damping_features",
            fields![
                zeta = z,
                peak_f_hz = peak.frequency().value(),
                peak_db = peak.magnitude_db().value(),
                f3db_hz = bw / TAU,
                dc_db = dc
            ],
        );
    }
    println!(
        "\nshape checks: lower ζ ⇒ taller peak; all curves start on the 0 dB\n\
         asymptote and roll off past ω3dB — matching the paper's fig. 1."
    );
    report.finish().expect("write --jsonl output");
}
