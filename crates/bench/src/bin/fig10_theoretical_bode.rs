//! Regenerates **fig. 10**: the theoretical magnitude and phase plots of
//! the paper's eq. 4 with the (reconstructed) Table 3 parameters — plus
//! the hold-referred response the BIST actually reads, so figs. 11/12 can
//! be compared against the right curve.
//!
//! `--jsonl <path>` writes the run report; `--progress` renders an
//! in-place status line over the theory sweeps.

use std::sync::Arc;
use std::time::Instant;

use pllbist_bench::progress::{ProgressLine, ProgressSource};
use pllbist_bench::{ascii_plot, bode_table, magnitude_series, phase_series};
use pllbist_numeric::bode::BodePlot;
use pllbist_sim::config::PllConfig;
use pllbist_telemetry::{fields, ProgressBoard, RunReport};
use std::f64::consts::TAU;

fn main() {
    let mut report = RunReport::from_args("fig10_theoretical_bode");
    let cfg = PllConfig::paper_table3();
    let a = cfg.analysis();
    let p = a.second_order().expect("second-order loop");
    println!(
        "fig. 10 — theoretical plots of eq. 4 (fn = {:.2} Hz, ζ = {:.3})\n",
        p.natural_frequency_hz(),
        p.damping
    );

    // Coarse `--progress` feed: one tick per theory sweep.
    let board = Arc::new(ProgressBoard::new(2, 1, &[]));
    let progress_board = Arc::clone(&board);
    let progress = ProgressLine::if_requested(
        "fig10",
        Arc::new(move || progress_board.snapshot()) as ProgressSource,
    );
    let t0 = Instant::now();
    let full = a.bode(0.5, 100.0, 120);
    board.point_done(0, true, t0.elapsed().as_secs_f64());
    let t0 = Instant::now();
    let hold = BodePlot::sweep_log(&a.hold_referred_transfer(), 0.5 * TAU, 100.0 * TAU, 120);
    board.point_done(0, true, t0.elapsed().as_secs_f64());
    drop(progress);

    println!(
        "{}",
        ascii_plot(
            &[
                ("eq. 4 (full, divided output)", '*', magnitude_series(&full)),
                ("hold-referred (BIST readout)", 'o', magnitude_series(&hold)),
            ],
            78,
            16,
            "|H| (dB) vs log10 f"
        )
    );
    println!(
        "{}",
        ascii_plot(
            &[
                ("eq. 4 (full)", '*', phase_series(&full)),
                ("hold-referred", 'o', phase_series(&hold)),
            ],
            78,
            14,
            "∠H (deg) vs log10 f"
        )
    );

    let coarse = a.bode(0.5, 100.0, 15);
    println!(
        "{}",
        bode_table(&coarse, "eq. 4 response (table, full readout):")
    );

    let peak = full.peak().expect("resonance");
    println!(
        "features: peak {:.2} dB at {:.2} Hz; phase at fn = {:.1}°; f3dB = {:.2} Hz",
        peak.magnitude_db().value(),
        peak.frequency().value(),
        a.feedback_transfer().phase(p.omega_n).to_degrees(),
        full.bandwidth_3db().unwrap_or(f64::NAN) / TAU
    );
    let hold_peak = hold.peak().expect("resonance");
    println!(
        "hold-referred: peak {:.2} dB at {:.2} Hz; phase at fn = −90° exactly",
        hold_peak.magnitude_db().value(),
        hold_peak.frequency().value(),
    );
    report.result(
        "theory_features",
        fields![
            fn_hz = p.natural_frequency_hz(),
            damping = p.damping,
            full_peak_db = peak.magnitude_db().value(),
            full_peak_f_hz = peak.frequency().value(),
            full_f3db_hz = full.bandwidth_3db().unwrap_or(f64::NAN) / TAU,
            hold_peak_db = hold_peak.magnitude_db().value(),
            hold_peak_f_hz = hold_peak.frequency().value()
        ],
    );
    report.finish().expect("write --jsonl output");
}
